file(REMOVE_RECURSE
  "../bench/fig1_network_size"
  "../bench/fig1_network_size.pdb"
  "CMakeFiles/fig1_network_size.dir/fig1_network_size.cpp.o"
  "CMakeFiles/fig1_network_size.dir/fig1_network_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
