# Empty dependencies file for fig1_network_size.
# This may be replaced when dependencies are built.
