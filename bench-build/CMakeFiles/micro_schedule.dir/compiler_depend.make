# Empty compiler generated dependencies file for micro_schedule.
# This may be replaced when dependencies are built.
