file(REMOVE_RECURSE
  "../bench/micro_schedule"
  "../bench/micro_schedule.pdb"
  "CMakeFiles/micro_schedule.dir/micro_schedule.cpp.o"
  "CMakeFiles/micro_schedule.dir/micro_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
