# Empty compiler generated dependencies file for abl_prediction.
# This may be replaced when dependencies are built.
