file(REMOVE_RECURSE
  "../bench/abl_prediction"
  "../bench/abl_prediction.pdb"
  "CMakeFiles/abl_prediction.dir/abl_prediction.cpp.o"
  "CMakeFiles/abl_prediction.dir/abl_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
