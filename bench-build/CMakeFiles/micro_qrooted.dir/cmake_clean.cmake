file(REMOVE_RECURSE
  "../bench/micro_qrooted"
  "../bench/micro_qrooted.pdb"
  "CMakeFiles/micro_qrooted.dir/micro_qrooted.cpp.o"
  "CMakeFiles/micro_qrooted.dir/micro_qrooted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_qrooted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
