# Empty dependencies file for micro_qrooted.
# This may be replaced when dependencies are built.
