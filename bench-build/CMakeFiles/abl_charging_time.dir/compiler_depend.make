# Empty compiler generated dependencies file for abl_charging_time.
# This may be replaced when dependencies are built.
