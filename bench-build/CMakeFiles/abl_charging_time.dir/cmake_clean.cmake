file(REMOVE_RECURSE
  "../bench/abl_charging_time"
  "../bench/abl_charging_time.pdb"
  "CMakeFiles/abl_charging_time.dir/abl_charging_time.cpp.o"
  "CMakeFiles/abl_charging_time.dir/abl_charging_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_charging_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
