file(REMOVE_RECURSE
  "../bench/micro_service"
  "../bench/micro_service.pdb"
  "CMakeFiles/micro_service.dir/micro_service.cpp.o"
  "CMakeFiles/micro_service.dir/micro_service.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
