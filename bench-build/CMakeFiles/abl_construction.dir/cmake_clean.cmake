file(REMOVE_RECURSE
  "../bench/abl_construction"
  "../bench/abl_construction.pdb"
  "CMakeFiles/abl_construction.dir/abl_construction.cpp.o"
  "CMakeFiles/abl_construction.dir/abl_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
