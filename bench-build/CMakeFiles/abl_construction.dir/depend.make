# Empty dependencies file for abl_construction.
# This may be replaced when dependencies are built.
