# Empty dependencies file for micro_improve.
# This may be replaced when dependencies are built.
