file(REMOVE_RECURSE
  "../bench/micro_improve"
  "../bench/micro_improve.pdb"
  "CMakeFiles/micro_improve.dir/micro_improve.cpp.o"
  "CMakeFiles/micro_improve.dir/micro_improve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
