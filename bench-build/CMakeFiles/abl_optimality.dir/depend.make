# Empty dependencies file for abl_optimality.
# This may be replaced when dependencies are built.
