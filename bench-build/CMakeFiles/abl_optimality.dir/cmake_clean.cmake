file(REMOVE_RECURSE
  "../bench/abl_optimality"
  "../bench/abl_optimality.pdb"
  "CMakeFiles/abl_optimality.dir/abl_optimality.cpp.o"
  "CMakeFiles/abl_optimality.dir/abl_optimality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
