file(REMOVE_RECURSE
  "../bench/abl_fleet"
  "../bench/abl_fleet.pdb"
  "CMakeFiles/abl_fleet.dir/abl_fleet.cpp.o"
  "CMakeFiles/abl_fleet.dir/abl_fleet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
