# Empty compiler generated dependencies file for abl_fleet.
# This may be replaced when dependencies are built.
