file(REMOVE_RECURSE
  "../bench/fig3_var_network_size"
  "../bench/fig3_var_network_size.pdb"
  "CMakeFiles/fig3_var_network_size.dir/fig3_var_network_size.cpp.o"
  "CMakeFiles/fig3_var_network_size.dir/fig3_var_network_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_var_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
