# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_var_network_size.
