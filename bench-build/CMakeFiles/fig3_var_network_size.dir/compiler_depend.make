# Empty compiler generated dependencies file for fig3_var_network_size.
# This may be replaced when dependencies are built.
