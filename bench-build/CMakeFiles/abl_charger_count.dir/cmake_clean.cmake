file(REMOVE_RECURSE
  "../bench/abl_charger_count"
  "../bench/abl_charger_count.pdb"
  "CMakeFiles/abl_charger_count.dir/abl_charger_count.cpp.o"
  "CMakeFiles/abl_charger_count.dir/abl_charger_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_charger_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
