# Empty compiler generated dependencies file for abl_charger_count.
# This may be replaced when dependencies are built.
