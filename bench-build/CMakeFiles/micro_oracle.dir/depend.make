# Empty dependencies file for micro_oracle.
# This may be replaced when dependencies are built.
