file(REMOVE_RECURSE
  "../bench/micro_oracle"
  "../bench/micro_oracle.pdb"
  "CMakeFiles/micro_oracle.dir/micro_oracle.cpp.o"
  "CMakeFiles/micro_oracle.dir/micro_oracle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
