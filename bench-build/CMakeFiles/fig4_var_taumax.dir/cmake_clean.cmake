file(REMOVE_RECURSE
  "../bench/fig4_var_taumax"
  "../bench/fig4_var_taumax.pdb"
  "CMakeFiles/fig4_var_taumax.dir/fig4_var_taumax.cpp.o"
  "CMakeFiles/fig4_var_taumax.dir/fig4_var_taumax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_var_taumax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
