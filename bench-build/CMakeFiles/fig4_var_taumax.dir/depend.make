# Empty dependencies file for fig4_var_taumax.
# This may be replaced when dependencies are built.
