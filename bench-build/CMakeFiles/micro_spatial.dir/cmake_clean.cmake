file(REMOVE_RECURSE
  "../bench/micro_spatial"
  "../bench/micro_spatial.pdb"
  "CMakeFiles/micro_spatial.dir/micro_spatial.cpp.o"
  "CMakeFiles/micro_spatial.dir/micro_spatial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
