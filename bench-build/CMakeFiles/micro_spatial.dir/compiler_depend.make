# Empty compiler generated dependencies file for micro_spatial.
# This may be replaced when dependencies are built.
