file(REMOVE_RECURSE
  "../bench/fig2_taumax"
  "../bench/fig2_taumax.pdb"
  "CMakeFiles/fig2_taumax.dir/fig2_taumax.cpp.o"
  "CMakeFiles/fig2_taumax.dir/fig2_taumax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_taumax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
