# Empty compiler generated dependencies file for fig2_taumax.
# This may be replaced when dependencies are built.
