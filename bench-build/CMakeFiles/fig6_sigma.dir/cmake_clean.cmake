file(REMOVE_RECURSE
  "../bench/fig6_sigma"
  "../bench/fig6_sigma.pdb"
  "CMakeFiles/fig6_sigma.dir/fig6_sigma.cpp.o"
  "CMakeFiles/fig6_sigma.dir/fig6_sigma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
