# Empty dependencies file for fig6_sigma.
# This may be replaced when dependencies are built.
