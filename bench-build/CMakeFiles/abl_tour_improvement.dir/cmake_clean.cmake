file(REMOVE_RECURSE
  "../bench/abl_tour_improvement"
  "../bench/abl_tour_improvement.pdb"
  "CMakeFiles/abl_tour_improvement.dir/abl_tour_improvement.cpp.o"
  "CMakeFiles/abl_tour_improvement.dir/abl_tour_improvement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tour_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
