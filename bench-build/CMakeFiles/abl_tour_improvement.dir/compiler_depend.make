# Empty compiler generated dependencies file for abl_tour_improvement.
# This may be replaced when dependencies are built.
