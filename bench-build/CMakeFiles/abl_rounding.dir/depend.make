# Empty dependencies file for abl_rounding.
# This may be replaced when dependencies are built.
