file(REMOVE_RECURSE
  "../bench/abl_rounding"
  "../bench/abl_rounding.pdb"
  "CMakeFiles/abl_rounding.dir/abl_rounding.cpp.o"
  "CMakeFiles/abl_rounding.dir/abl_rounding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
