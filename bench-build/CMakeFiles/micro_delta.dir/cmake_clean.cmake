file(REMOVE_RECURSE
  "../bench/micro_delta"
  "../bench/micro_delta.pdb"
  "CMakeFiles/micro_delta.dir/micro_delta.cpp.o"
  "CMakeFiles/micro_delta.dir/micro_delta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
