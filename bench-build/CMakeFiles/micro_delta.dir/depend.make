# Empty dependencies file for micro_delta.
# This may be replaced when dependencies are built.
