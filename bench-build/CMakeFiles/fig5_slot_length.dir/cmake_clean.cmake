file(REMOVE_RECURSE
  "../bench/fig5_slot_length"
  "../bench/fig5_slot_length.pdb"
  "CMakeFiles/fig5_slot_length.dir/fig5_slot_length.cpp.o"
  "CMakeFiles/fig5_slot_length.dir/fig5_slot_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_slot_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
