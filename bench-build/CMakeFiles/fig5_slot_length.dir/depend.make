# Empty dependencies file for fig5_slot_length.
# This may be replaced when dependencies are built.
