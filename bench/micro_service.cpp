// micro_service — in-process svc::Server benchmark.
//
// Three measurements over one paper-sized instance family:
//   * cold latency  — every request a fresh topology seed (cache miss,
//     full resolve + solve), closed loop at concurrency 1;
//   * warm latency  — one instance repeated (PlanCache hit after the
//     priming solve), closed loop at concurrency 1;
//   * throughput    — warm requests at queue depths {1, 8, 64}: the
//     service-pipeline ceiling (admission, dispatch, cache probe,
//     response) with solving amortized away.
//
// Percentiles come from obs::Histogram + HistogramSnapshot::quantile —
// the same estimator the service's own svc.request_latency_ms uses.
//
// Flags: --n 800, --q 5, --policy MinTotalDistance, --horizon 1000,
//        --cold 12, --warm 200, --per-depth 256, --depths 1,8,64,
//        --seed 1, --threads 0, --json FILE
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using mwc::svc::Request;
using mwc::svc::Response;
using mwc::svc::Server;

constexpr double kBucketsMs[] = {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,
                                 1.0,  2.5,   5.0,  10.0, 25.0, 50.0,
                                 100.0, 250.0, 500.0, 1000.0, 2500.0,
                                 5000.0, 10000.0, 30000.0};

struct LoopResult {
  double elapsed_s = 0.0;
  std::size_t answered = 0;
  std::size_t errors = 0;
  std::size_t cached = 0;
};

/// Closed loop: keeps at most `depth` requests outstanding until `count`
/// have been answered; per-request latency lands in `latency`.
LoopResult closed_loop(Server& server, const Request& base,
                       std::size_t count, std::size_t depth,
                       std::uint64_t seed0, std::uint64_t seed_stride,
                       mwc::obs::Histogram& latency) {
  LoopResult result;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    Request request = base;
    request.id = "b" + std::to_string(i);
    request.network.seed = seed0 + seed_stride * i;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return outstanding < depth; });
      ++outstanding;
    }
    const auto sent = Clock::now();
    server.submit(std::move(request), [&, sent](const Response& r) {
      latency.observe(std::chrono::duration<double, std::milli>(
                          Clock::now() - sent)
                          .count());
      std::lock_guard<std::mutex> lock(mutex);
      --outstanding;
      ++result.answered;
      if (!r.ok) ++result.errors;
      if (r.cached) ++result.cached;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

double quantile_of(const mwc::obs::Registry& registry,
                   const std::string& name, double q) {
  return registry.snapshot().histograms.at(name).quantile(q);
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const Request base =
      mwc::svc::RequestBuilder("template")
          .policy(args.get_or("policy", "MinTotalDistance"))
          .preset(static_cast<std::size_t>(args.get_int_or("n", 800)),
                  static_cast<std::size_t>(args.get_int_or("q", 5)),
                  /*field_side=*/1000.0, seed)
          .cycle_model({}, seed)
          .horizon(args.get_double_or("horizon", 1000.0))
          .build();

  const std::size_t cold_count =
      static_cast<std::size_t>(args.get_int_or("cold", 12));
  const std::size_t warm_count =
      static_cast<std::size_t>(args.get_int_or("warm", 200));
  const std::size_t per_depth =
      static_cast<std::size_t>(args.get_int_or("per-depth", 256));
  std::vector<std::size_t> depths;
  {
    const std::string spec = args.get_or("depths", "1,8,64");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto comma = spec.find(',', pos);
      depths.push_back(static_cast<std::size_t>(
          std::stoul(spec.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  mwc::svc::ServerOptions options;
  options.queue_capacity = 1024;  // sized so the sweep never rejects
  options.threads = static_cast<std::size_t>(args.get_int_or("threads", 0));
  options.cache_capacity = 2048;
  Server server(options);

  mwc::obs::Registry local;
  auto& cold_hist = local.histogram("svc.bench.cold_ms", kBucketsMs);
  auto& warm_hist = local.histogram("svc.bench.warm_ms", kBucketsMs);

  // Cold: fresh seed per request, nothing shares a cache entry.
  const auto cold = closed_loop(server, base, cold_count, 1, seed, 1,
                                cold_hist);
  const double cold_p50 = quantile_of(local, "svc.bench.cold_ms", 0.5);
  const double cold_p95 = quantile_of(local, "svc.bench.cold_ms", 0.95);
  std::printf("cold  n=%zu  count=%zu  p50 %.3f ms  p95 %.3f ms  "
              "(%zu cached, %zu errors)\n",
              base.network.deployment.n, cold_count, cold_p50, cold_p95,
              cold.cached, cold.errors);

  // Warm: one fixed seed; the priming request above (seed) already
  // populated its entry, so every request here is a PlanCache hit.
  const auto warm = closed_loop(server, base, warm_count, 1, seed, 0,
                                warm_hist);
  const double warm_p50 = quantile_of(local, "svc.bench.warm_ms", 0.5);
  const double warm_p95 = quantile_of(local, "svc.bench.warm_ms", 0.95);
  std::printf("warm  count=%zu  p50 %.3f ms  p95 %.3f ms  "
              "(%zu/%zu cached)  speedup p50 %.1fx\n",
              warm_count, warm_p50, warm_p95, warm.cached, warm.answered,
              warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0);

  mwc::svc::Json sweep = mwc::svc::Json::array();
  for (const std::size_t depth : depths) {
    auto& hist = local.histogram(
        "svc.bench.depth" + std::to_string(depth) + "_ms", kBucketsMs);
    const auto run =
        closed_loop(server, base, per_depth, depth, seed, 0, hist);
    const double rps = run.elapsed_s > 0.0
                           ? static_cast<double>(run.answered) / run.elapsed_s
                           : 0.0;
    std::printf("depth %-3zu  %zu reqs in %.3f s  %.0f req/s\n", depth,
                run.answered, run.elapsed_s, rps);
    mwc::svc::Json row = mwc::svc::Json::object();
    row.set("depth", mwc::svc::Json(depth));
    row.set("requests", mwc::svc::Json(run.answered));
    row.set("req_per_s", mwc::svc::Json(rps));
    sweep.push_back(std::move(row));
  }

  const bool failed = cold.errors + warm.errors > 0 ||
                      warm.cached != warm.answered;
  if (const auto json_path = args.get("json")) {
    mwc::svc::Json doc = mwc::svc::Json::object();
    doc.set("bench", mwc::svc::Json("micro_service"));
    doc.set("n", mwc::svc::Json(base.network.deployment.n));
    doc.set("q", mwc::svc::Json(base.network.deployment.q));
    doc.set("policy", mwc::svc::Json(base.policy));
    doc.set("horizon", mwc::svc::Json(base.horizon));
    doc.set("cold_count", mwc::svc::Json(cold_count));
    doc.set("cold_p50_ms", mwc::svc::Json(cold_p50));
    doc.set("cold_p95_ms", mwc::svc::Json(cold_p95));
    doc.set("warm_count", mwc::svc::Json(warm_count));
    doc.set("warm_p50_ms", mwc::svc::Json(warm_p50));
    doc.set("warm_p95_ms", mwc::svc::Json(warm_p95));
    doc.set("warm_speedup_p50",
            mwc::svc::Json(warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0));
    doc.set("depth_sweep", std::move(sweep));
    doc.set("cache_hits",
            mwc::svc::Json(server.cache().hits()));
    doc.set("cache_misses",
            mwc::svc::Json(server.cache().misses()));
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    const std::string text = doc.dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  server.shutdown();
  return failed ? 1 : 0;
}
