// Head-to-head of the exhaustive O(n²) tour polish against the
// candidate-list O(n·k) path (2-opt/Or-opt with don't-look bits plus the
// candidate-pruned q-rooted MSF).
//
//   ./micro_improve [--n 800] [--q 4] [--k 12] [--trials 3]
//                   [--threads 0] [--exhaustive-cap 3000] [--json PATH]
//                   [--metrics-out PATH] [--trace-out PATH]
//
// Above --exhaustive-cap the O(n²) exhaustive arm is skipped (its sweeps
// take hours at n = 10k+) and the candidate arm is additionally timed
// with the geom::simd backend disabled, so the large-n grid cells report
// the vector-vs-scalar ratio of the identical candidate pipeline
// instead (bit-identical tours either way).
//
// Both arms run the full q_rooted_tsp pipeline (MSF → double-tree →
// polish) on the identical oracle-backed instance; the candidate arm's
// timing includes building the CandidateGraph, since that is part of its
// pipeline cost. --threads > 1 additionally reports the candidate arm
// with per-charger polish fanned out over a ThreadPool (bit-identical
// tours, see tests/tsp/candidates_test.cpp).
//
// scripts/bench_improve.sh loops n in {100, 800, 2000} and merges the
// --json outputs into BENCH_improve.json (target: >= 5x at n=800 with
// <= 1% longer tours). CI runs `--trials 1 --n 100` and validates the
// --metrics-out sidecar, pinning the tsp.cand.* / tsp.improve.* counter
// schema.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "geom/simd.hpp"
#include "obs/obs.hpp"
#include "tsp/candidates.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 800));
  const auto q = static_cast<std::size_t>(args.get_int_or("q", 4));
  const auto k = static_cast<std::size_t>(args.get_int_or("k", 12));
  const auto trials = static_cast<std::size_t>(args.get_int_or("trials", 3));
  const auto threads =
      static_cast<std::size_t>(args.get_int_or("threads", 0));
  const auto exhaustive_cap =
      static_cast<std::size_t>(args.get_int_or("exhaustive-cap", 3000));
  const bool run_exhaustive = n <= exhaustive_cap;
  const std::string json_path = args.get_or("json", "");
  const std::string metrics_path = args.get_or("metrics-out", "");
  const std::string trace_path = args.get_or("trace-out", "");
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  // Deterministic instance; the oracle caches distance rows lazily, so
  // warm it with one dense MSF before timing either arm. Above ~8 GiB
  // the O(n²) matrix cannot exist and the arms run on direct geometry.
  Rng rng(20140917 + n);
  tsp::QRootedInstance instance;
  instance.depots.reserve(q);
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  instance.sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  const double matrix_gb = static_cast<double>(n + q) *
                           static_cast<double>(n + q) * 8.0 /
                           (1024.0 * 1024.0 * 1024.0);
  const bool matrix_fits = matrix_gb <= 8.0;
  tsp::DistanceOracle oracle;
  tsp::DistanceView view;
  double checksum = 0.0;
  if (matrix_fits) {
    oracle = tsp::DistanceOracle(instance.depots, instance.sensors);
    view = oracle.view();
    checksum += tsp::q_rooted_msf(view, q).total_weight;
  } else {
    view = tsp::DistanceView::direct(instance.depots, instance.sensors);
  }

  tsp::QRootedOptions exhaustive;
  exhaustive.improve = true;
  exhaustive.improve_options.exhaustive = true;

  tsp::QRootedOptions candidate;
  candidate.improve = true;
  candidate.candidate_msf = true;
  candidate.candidate_options.k = k;

  const auto combined = instance.points().materialize();

  double exhaustive_ms = 0.0;
  double candidate_ms = 0.0;
  double candidate_scalar_ms = 0.0;
  double parallel_ms = 0.0;
  double exhaustive_length = 0.0;
  double candidate_length = 0.0;
  double candidate_scalar_length = 0.0;
  Timer timer;
  for (std::size_t t = 0; t < trials; ++t) {
    double e_ms = 0.0;
    if (run_exhaustive) {
      timer.reset();
      const auto ref = tsp::q_rooted_tsp(view, q, exhaustive);
      e_ms = timer.elapsed_ms();
      exhaustive_length = ref.total_length;
      checksum += ref.total_length;
    }

    // Graph construction is inside the timed region on purpose: the
    // candidate arm pays for its own index.
    timer.reset();
    const auto graph = tsp::CandidateGraph::build(
        combined, candidate.candidate_options);
    tsp::QRootedOptions with_graph = candidate;
    with_graph.candidates = &graph;
    const auto acc = tsp::q_rooted_tsp(view, q, with_graph);
    const double c_ms = timer.elapsed_ms();
    candidate_length = acc.total_length;
    checksum += acc.total_length;

    // The identical candidate pipeline on the scalar fallback kernels —
    // the vector-vs-scalar ratio for the large-n cells (tours must come
    // out bit-identical; geom/simd.hpp's exactness contract).
    geom::simd::set_enabled(false);
    timer.reset();
    const auto scalar_graph = tsp::CandidateGraph::build(
        combined, candidate.candidate_options);
    tsp::QRootedOptions with_scalar_graph = candidate;
    with_scalar_graph.candidates = &scalar_graph;
    const auto sc = tsp::q_rooted_tsp(view, q, with_scalar_graph);
    const double s_ms = timer.elapsed_ms();
    geom::simd::set_enabled(true);
    candidate_scalar_length = sc.total_length;
    checksum += sc.total_length;

    double p_ms = c_ms;
    if (threads != 1) {
      ThreadPool pool(threads);
      timer.reset();
      const auto par = tsp::q_rooted_tsp(view, q, with_graph, &pool);
      p_ms = timer.elapsed_ms();
      checksum += par.total_length;
    }

    if (t == 0) {
      exhaustive_ms = e_ms;
      candidate_ms = c_ms;
      candidate_scalar_ms = s_ms;
      parallel_ms = p_ms;
    } else {
      exhaustive_ms = std::min(exhaustive_ms, e_ms);
      candidate_ms = std::min(candidate_ms, c_ms);
      candidate_scalar_ms = std::min(candidate_scalar_ms, s_ms);
      parallel_ms = std::min(parallel_ms, p_ms);
    }
  }

  const double speedup = candidate_ms > 0.0 ? exhaustive_ms / candidate_ms
                                            : 0.0;
  const double simd_speedup =
      candidate_ms > 0.0 ? candidate_scalar_ms / candidate_ms : 0.0;
  const double quality_pct =
      exhaustive_length > 0.0
          ? (candidate_length / exhaustive_length - 1.0) * 100.0
          : 0.0;
  std::printf("micro_improve: n=%zu q=%zu k=%zu trials=%zu (%s view)\n", n, q,
              k, trials, matrix_fits ? "oracle" : "direct");
  if (run_exhaustive) {
    std::printf("  exhaustive polish %10.3f ms  length %12.3f\n",
                exhaustive_ms, exhaustive_length);
  } else {
    std::printf("  exhaustive polish skipped (n > cap %zu)\n", exhaustive_cap);
  }
  std::printf("  candidate polish  %10.3f ms  length %12.3f\n",
              candidate_ms, candidate_length);
  std::printf("  candidate scalar  %10.3f ms  length %12.3f  (%.2fx simd)\n",
              candidate_scalar_ms, candidate_scalar_length, simd_speedup);
  std::printf("  parallel polish   %10.3f ms\n", parallel_ms);
  std::printf("  speedup %.2fx, tour delta %+.3f%%  (checksum %.3f)\n",
              speedup, quality_pct, checksum);
  if (candidate_scalar_length != candidate_length) {
    std::fprintf(stderr,
                 "FAIL: scalar-fallback candidate tours diverged from the "
                 "simd tours (%.6f vs %.6f)\n",
                 candidate_scalar_length, candidate_length);
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_improve\",\n"
                 "  \"n\": %zu,\n"
                 "  \"q\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"trials\": %zu,\n"
                 "  \"exhaustive_ran\": %s,\n"
                 "  \"exhaustive_ms\": %.6f,\n"
                 "  \"candidate_ms\": %.6f,\n"
                 "  \"candidate_scalar_ms\": %.6f,\n"
                 "  \"simd_speedup\": %.3f,\n"
                 "  \"parallel_ms\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"exhaustive_length\": %.6f,\n"
                 "  \"candidate_length\": %.6f,\n"
                 "  \"quality_delta_pct\": %.4f\n"
                 "}\n",
                 n, q, k, trials, run_exhaustive ? "true" : "false",
                 exhaustive_ms, candidate_ms, candidate_scalar_ms,
                 simd_speedup, parallel_ms, speedup, exhaustive_length,
                 candidate_length, quality_pct);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    if (obs::Registry::global().write_json(metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    if (obs::write_chrome_trace(trace_path)) {
      std::printf("wrote %s (%zu events)\n", trace_path.c_str(),
                  obs::trace_event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
