// Micro-benchmark for the shared distance oracle and the parallel batched
// tour-costing pipeline.
//
//   ./micro_oracle [--n 800] [--q 10] [--reps 5] [--threads 0]
//                  [--max-matrix-gb 8] [--json PATH]
//
// Three measurements over one random q-rooted instance:
//   * cold   — q_rooted_tsp through direct geometry (every probe pays a
//              hypot), the pre-oracle implementation's path;
//   * cached — the same construction through a warm DistanceOracle
//              (probes are row-major array loads);
//   * batch  — the K+1 cumulative dispatch classes costed back-to-back:
//              serially on direct geometry vs concurrently on a
//              ThreadPool over one fresh shared oracle (the
//              Simulator::precost_dispatches shape).
//
// With --json the results (timings in ms plus speedups) are written as a
// single JSON object; scripts/reproduce_all.sh stores it as
// BENCH_oracle.json.
//
// Above --max-matrix-gb the O(n^2) oracle cannot be materialized (n =
// 100k would need ~80 GiB), so the cached/batch arms are skipped and
// only the direct-geometry cold arm runs — the large-n grid cell still
// completes instead of OOMing.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

mwc::tsp::QRootedInstance random_instance(std::size_t n, std::size_t q,
                                          std::uint64_t seed) {
  mwc::Rng rng(seed);
  mwc::tsp::QRootedInstance instance;
  instance.depots.reserve(q);
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  instance.sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 800));
  const auto q = static_cast<std::size_t>(args.get_int_or("q", 10));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 5));
  const auto threads =
      static_cast<std::size_t>(args.get_int_or("threads", 0));
  const auto max_matrix_gb =
      static_cast<double>(args.get_int_or("max-matrix-gb", 8));
  const std::string json_path = args.get_or("json", "");

  const auto instance = random_instance(n, q, 20140917);
  const double matrix_gb = static_cast<double>(n + q) *
                           static_cast<double>(n + q) * 8.0 /
                           (1024.0 * 1024.0 * 1024.0);
  const bool matrix_fits = matrix_gb <= max_matrix_gb;
  std::vector<std::size_t> all_ids(n);
  for (std::size_t i = 0; i < n; ++i) all_ids[i] = i;
  double checksum = 0.0;  // defeats dead-code elimination

  // Per-rep timings; the minimum is the noise-robust estimate (scheduler
  // interference only ever adds time), the mean is reported alongside.
  std::vector<double> cold_times(reps), cached_times(reps);
  Timer timer;

  // Cold: the pre-oracle dispatch-costing path — rebuild the
  // QRootedInstance (point copies), construct through direct geometry,
  // and take per-depot lengths off a materialized point copy.
  for (std::size_t r = 0; r < reps; ++r) {
    timer.reset();
    tsp::QRootedInstance round;
    round.depots = instance.depots;
    round.sensors.reserve(all_ids.size());
    for (std::size_t id : all_ids)
      round.sensors.push_back(instance.sensors[id]);
    const auto tours = tsp::q_rooted_tsp(round);
    const auto points = round.points().materialize();
    for (const auto& tour : tours.tours) checksum += tour.length(points);
    cold_times[r] = timer.elapsed_ms();
  }

  // Cached: the oracle-backed dispatch-costing path over one shared
  // oracle; the first costing pays the row materialization (reported
  // separately), the repeats run warm. Skipped above the matrix cap —
  // there the cold/direct arm above is the whole measurement.
  double warmup_ms = 0.0;
  if (matrix_fits) {
    const tsp::DistanceOracle oracle(instance.depots, instance.sensors);
    timer.reset();
    checksum +=
        tsp::q_rooted_tsp(oracle.dispatch_view(all_ids), q).total_length;
    warmup_ms = timer.elapsed_ms();
    for (std::size_t r = 0; r < reps; ++r) {
      timer.reset();
      const auto view = oracle.dispatch_view(all_ids);
      const auto tours = tsp::q_rooted_tsp(view, q);
      for (const auto& tour : tours.tours) checksum += tour.length_with(view);
      cached_times[r] = timer.elapsed_ms();
    }
  } else {
    cached_times.assign(reps, 0.0);
  }

  const auto min_of = [](const std::vector<double>& v) {
    double m = v.front();
    for (double t : v) m = std::min(m, t);
    return m;
  };
  const auto mean_of = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double t : v) s += t;
    return s / static_cast<double>(v.size());
  };
  const double cold_ms = min_of(cold_times);
  const double cached_ms = min_of(cached_times);
  const double cold_mean_ms = mean_of(cold_times);
  const double cached_mean_ms = mean_of(cached_times);

  // Batch: K+1 = 8 cumulative dispatch classes (prefixes of the sensor
  // list, doubling like MinTotalDistance's V_0 ⊆ V_0∪V_1 ⊆ ...).
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t size = (n + 127) / 128; size <= n; size *= 2) {
    std::vector<std::size_t> ids;
    ids.reserve(size);
    for (std::size_t i = 0; i < size && i < n; ++i) ids.push_back(i);
    classes.push_back(std::move(ids));
    if (classes.back().size() == n) break;
  }

  ThreadPool pool(threads);
  double batch_cold_ms = 0.0;
  double batch_parallel_ms = 0.0;
  if (matrix_fits) {
    timer.reset();
    for (const auto& ids : classes) {
      tsp::QRootedInstance sub;
      sub.depots = instance.depots;
      sub.sensors.reserve(ids.size());
      for (std::size_t id : ids) sub.sensors.push_back(instance.sensors[id]);
      checksum += tsp::q_rooted_tsp(sub.distances(), q).total_length;
    }
    batch_cold_ms = timer.elapsed_ms();

    const tsp::DistanceOracle shared(instance.depots, instance.sensors);
    timer.reset();
    std::vector<double> totals(classes.size());
    parallel_for(pool, 0, classes.size(), [&](std::size_t k) {
      totals[k] =
          tsp::q_rooted_tsp(shared.dispatch_view(classes[k]), q).total_length;
    });
    batch_parallel_ms = timer.elapsed_ms();
    for (double t : totals) checksum += t;
  }

  const double speedup_cached = cached_ms > 0.0 ? cold_ms / cached_ms : 0.0;
  const double speedup_parallel =
      batch_parallel_ms > 0.0 ? batch_cold_ms / batch_parallel_ms : 0.0;

  std::printf("micro_oracle: n=%zu q=%zu reps=%zu threads=%zu\n", n, q, reps,
              pool.size());
  std::printf("  cold           %9.3f ms/rep (min; mean %.3f)\n", cold_ms,
              cold_mean_ms);
  if (matrix_fits) {
    std::printf("  oracle warmup  %9.3f ms (first touch)\n", warmup_ms);
    std::printf(
        "  cached         %9.3f ms/rep (min; mean %.3f)   (%.2fx vs cold)\n",
        cached_ms, cached_mean_ms, speedup_cached);
    std::printf("  batch cold     %9.3f ms for %zu classes\n", batch_cold_ms,
                classes.size());
    std::printf("  batch parallel %9.3f ms for %zu classes (%.2fx)\n",
                batch_parallel_ms, classes.size(), speedup_parallel);
  } else {
    std::printf("  cached/batch   skipped (matrix %.1f GiB > cap %.1f GiB; "
                "direct geometry only)\n",
                matrix_gb, max_matrix_gb);
  }
  std::printf("  (checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_oracle\",\n"
                 "  \"n\": %zu,\n"
                 "  \"q\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"matrix_fits\": %s,\n"
                 "  \"batch_classes\": %zu,\n"
                 "  \"cold_ms_per_rep\": %.6f,\n"
                 "  \"cold_ms_per_rep_mean\": %.6f,\n"
                 "  \"oracle_warmup_ms\": %.6f,\n"
                 "  \"cached_ms_per_rep\": %.6f,\n"
                 "  \"cached_ms_per_rep_mean\": %.6f,\n"
                 "  \"speedup_cached_vs_cold\": %.3f,\n"
                 "  \"batch_cold_ms\": %.6f,\n"
                 "  \"batch_parallel_ms\": %.6f,\n"
                 "  \"speedup_parallel_batch\": %.3f\n"
                 "}\n",
                 n, q, reps, pool.size(), matrix_fits ? "true" : "false",
                 classes.size(), cold_ms,
                 cold_mean_ms, warmup_ms, cached_ms, cached_mean_ms,
                 speedup_cached, batch_cold_ms, batch_parallel_ms,
                 speedup_parallel);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
