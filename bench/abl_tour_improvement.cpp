// Ablation: does polishing Algorithm 2's tours with 2-opt/Or-opt change
// the MinTotalDistance-vs-Greedy story? (Library extension; the paper
// stops at the double-tree shortcut.)
//
// Expected outcome: both policies improve by a similar factor, so the
// *ratio* — the paper's headline claim — is essentially unchanged.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "Greedy"});

  int rc = 0;
  for (bool improve : {false, true}) {
    FigureReport report(
        improve ? "Ablation A1 (2-opt on)" : "Ablation A1 (2-opt off)",
        "tour improvement ablation, linear distribution", "n");
    rc |= mwc::bench::run_figure(ctx, report, [&] {
      for (std::size_t n : {100u, 200u, 400u}) {
        auto config = ctx.base;
        config.deployment.n = n;
        config.sim.tour_options.improve = improve;
        report.add_point({static_cast<double>(n),
                          run_policies(config, kinds, ctx.pool.get())});
      }
    });
  }
  return rc;
}
