// micro_stream — streaming-session replan latency (mwc.svc.stream.v1).
//
// For every instance size in --grid, measures
//   * cold p50         — handle_request on a fresh topology seed per
//     repeat (full resolve + solve + horizon simulation, no cache), and
//   * replan push p50  — one surge observation through a live
//     svc::SessionManager: wall time from handing the observe frame to
//     the manager until the unsolicited plan push lands in the client's
//     push callback (feasibility monitor + update_cycles synthesis +
//     Server queue + handle_delta repair + push serialization).
// Each repeat opens a fresh session and surges a different sensor set,
// so every replan derives a distinct plan (no derived-plan cache hits).
// The headline number is the cold/replan p50 ratio at the largest n:
// a deadline-triggered replan must beat re-solving from scratch, or
// pushing revised plans mid-session buys nothing.
//
// Flags: --grid 200,800,2000, --q 5, --horizon 200, --cold 5,
//        --reps 16, --surge 8, --seed 1, --json FILE
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/engine.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/session.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * double(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  return samples[lo] + (pos - double(lo)) * (samples[hi] - samples[lo]);
}

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    out.push_back(static_cast<std::size_t>(
        std::stoul(spec.substr(pos, comma - pos))));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Collects unsolicited plan pushes from the manager's worker threads.
class PushMailbox {
 public:
  mwc::svc::StreamHub::PushFn fn() {
    return [this](std::string) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++count_;
      }
      cv_.notify_all();
      return true;
    };
  }

  bool wait_count(std::size_t target, std::chrono::milliseconds budget) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, budget, [&] { return count_ >= target; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
};

std::string observe_frame(std::uint64_t sid, double t,
                          const std::vector<double>& rates) {
  std::string out =
      "{\"v\":\"mwc.svc.stream.v1\",\"op\":\"observe\",\"id\":\"o\","
      "\"session\":";
  out += std::to_string(sid);
  out += ",\"t\":";
  mwc::svc::append_json_number(out, t);
  out += ",\"rates\":[";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i > 0) out += ',';
    mwc::svc::append_json_number(out, rates[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);

  const std::vector<std::size_t> grid =
      parse_list(args.get_or("grid", "200,800,2000"));
  const std::size_t q = static_cast<std::size_t>(args.get_int_or("q", 5));
  const double horizon = args.get_double_or("horizon", 200.0);
  const std::size_t cold_reps =
      static_cast<std::size_t>(args.get_int_or("cold", 5));
  const std::size_t reps =
      static_cast<std::size_t>(args.get_int_or("reps", 16));
  const std::size_t surge_sensors =
      static_cast<std::size_t>(args.get_int_or("surge", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const double field = 1000.0;

  bool failed = false;
  mwc::svc::Json rows = mwc::svc::Json::array();
  for (const std::size_t n : grid) {
    // Base cycles on a {10,20,30,40} grid: the first charging round is
    // V_0 (tau in [10,20]), so slow-cycle sensors live on the plan's
    // recharge promise — exactly what the deadline trigger watches.
    std::vector<double> tau(n);
    for (std::size_t i = 0; i < n; ++i)
      tau[i] = 10.0 + double(i % 4) * 10.0;
    const auto request_for = [&](const std::string& id,
                                 std::uint64_t topology_seed) {
      return mwc::svc::RequestBuilder(id)
          .preset(n, q, field, topology_seed)
          .cycle_values(tau)
          .horizon(horizon)
          .build();
    };

    // Cold reference: distinct topologies, no cache in sight.
    std::vector<double> cold_ms;
    for (std::size_t r = 0; r < cold_reps; ++r) {
      const auto start = Clock::now();
      const mwc::svc::Response response =
          handle_request(request_for("cold", seed + 1000 + r), nullptr);
      cold_ms.push_back(std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count());
      if (!response.ok) {
        std::fprintf(stderr, "cold solve failed: %s\n",
                     response.message.c_str());
        failed = true;
      }
    }
    const double cold_p50 = quantile(cold_ms, 0.5);

    mwc::svc::ServerOptions server_options;
    server_options.threads = 2;
    mwc::svc::Server server(server_options);
    mwc::svc::SessionOptions session_options;
    session_options.max_sessions = reps + 1;
    mwc::svc::SessionManager manager(server, session_options);

    // Base plan the sessions stream against.
    mwc::svc::Response base;
    {
      std::mutex mutex;
      std::condition_variable cv;
      bool done = false;
      server.submit(request_for("base", seed),
                    [&](const mwc::svc::Response& r) {
                      std::lock_guard<std::mutex> lock(mutex);
                      base = r;
                      done = true;
                      cv.notify_all();
                    });
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done; });
    }
    if (!base.ok) {
      std::fprintf(stderr, "base solve failed: %s\n", base.message.c_str());
      return 1;
    }
    const std::string open_line =
        "{\"v\":\"mwc.svc.stream.v1\",\"op\":\"open\",\"id\":\"o\","
        "\"base\":\"" +
        mwc::svc::fingerprint_hex(base.plan->fingerprint) + "\"}";

    std::vector<double> calm(n);
    for (std::size_t i = 0; i < n; ++i) calm[i] = 1.0 / tau[i];

    std::vector<double> replan_ms;
    std::size_t push_failures = 0;
    PushMailbox mailbox;
    for (std::size_t r = 0; r < reps; ++r) {
      bool streaming = false;
      const mwc::svc::Json ack = mwc::svc::Json::parse(
          manager.handle_frame(r + 1, open_line, mailbox.fn(),
                               &streaming));
      if (!ack.at("ok").as_bool()) {
        std::fprintf(stderr, "open failed: %s\n", ack.dump().c_str());
        return 1;
      }
      const std::uint64_t sid =
          static_cast<std::uint64_t>(ack.at("session").as_int());

      // Surge a sliding window of sensors 8x past plan, observed early
      // enough (t = 0.25) that nobody has died yet. Each repeat's
      // window differs, so each update_cycles patch derives a distinct
      // plan fingerprint.
      std::vector<double> rates = calm;
      for (std::size_t k = 0; k < surge_sensors; ++k)
        rates[(r * 131 + k) % n] *= 8.0;

      const auto start = Clock::now();
      const mwc::svc::Json observe_ack = mwc::svc::Json::parse(
          manager.handle_frame(r + 1, observe_frame(sid, 0.25, rates),
                               mailbox.fn(), &streaming));
      const bool triggered = observe_ack.at("ok").as_bool() &&
                             observe_ack.at("replan").as_bool();
      if (!triggered || !mailbox.wait_count(
                            replan_ms.size() + push_failures + 1,
                            std::chrono::seconds(30))) {
        ++push_failures;
        continue;
      }
      replan_ms.push_back(std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count());
      manager.drop_connection(r + 1);
    }
    failed = failed || push_failures > 0 || replan_ms.empty();

    const double replan_p50 = quantile(replan_ms, 0.5);
    const double replan_p95 = quantile(replan_ms, 0.95);
    const double speedup = replan_p50 > 0.0 ? cold_p50 / replan_p50 : 0.0;
    // The manager counts a push *after* the client callback returns;
    // give the last worker a beat to finish bookkeeping.
    mwc::svc::StreamStats stats = manager.stats();
    for (int spin = 0; spin < 200 && stats.pushes < replan_ms.size();
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      stats = manager.stats();
    }
    std::printf("n=%-5zu cold p50 %9.3f ms  replan push p50 %8.3f ms  "
                "p95 %8.3f ms  speedup %7.1fx  (%zu pushes, %zu failures)\n",
                n, cold_p50, replan_p50, replan_p95, speedup,
                static_cast<std::size_t>(stats.pushes), push_failures);

    mwc::svc::Json row = mwc::svc::Json::object();
    row.set("n", mwc::svc::Json(n));
    row.set("q", mwc::svc::Json(q));
    row.set("surge_sensors", mwc::svc::Json(surge_sensors));
    row.set("cold_p50_ms", mwc::svc::Json(cold_p50));
    row.set("replan_push_p50_ms", mwc::svc::Json(replan_p50));
    row.set("replan_push_p95_ms", mwc::svc::Json(replan_p95));
    row.set("speedup_p50", mwc::svc::Json(speedup));
    row.set("replans", mwc::svc::Json(std::size_t(stats.replans)));
    row.set("pushes", mwc::svc::Json(std::size_t(stats.pushes)));
    row.set("failures", mwc::svc::Json(push_failures));
    rows.push_back(std::move(row));
  }

  if (const auto json_path = args.get("json")) {
    mwc::svc::Json doc = mwc::svc::Json::object();
    doc.set("bench", mwc::svc::Json("micro_stream"));
    doc.set("horizon", mwc::svc::Json(horizon));
    doc.set("cold_reps", mwc::svc::Json(cold_reps));
    doc.set("reps", mwc::svc::Json(reps));
    doc.set("rows", std::move(rows));
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    const std::string text = doc.dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return failed ? 1 : 0;
}
