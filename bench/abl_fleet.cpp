// Ablation: fleet variants beyond the paper — capacity-limited chargers
// (per-trip length budget, cf. Liang et al. [7]) and min-max fleets
// (several vehicles per depot minimizing the longest tour, cf. Xu et al.
// [16]) — applied to one full-network charging round at n = 200.
//
// Expected outcomes: total travelled distance grows as the per-trip
// budget tightens (extra return legs), and the round makespan falls
// roughly as 1/k with k vehicles per depot until the farthest round trip
// dominates.
#include <iostream>
#include <numeric>

#include "charging/fleet.hpp"
#include "charging/min_total_distance.hpp"
#include "sim/simulator.hpp"
#include "wsn/cycles.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);

  Rng rng(ctx.base.seed);
  const wsn::Network network =
      wsn::deploy_random(ctx.base.deployment, rng);
  std::vector<std::size_t> ids(network.n());
  std::iota(ids.begin(), ids.end(), std::size_t{0});

  std::printf("=== Ablation A4a: capacity-limited chargers (n=%zu, q=%zu) "
              "===\n",
              network.n(), network.q());
  {
    ConsoleTable table(
        {"capacity (km)", "trips", "total (km)", "max trip (km)",
         "overhead"});
    const auto unlimited = charging::plan_capacitated_round(network, ids,
                                                            1e12);
    // Smallest feasible budget: the longest single round trip from a
    // tour's own depot (capacities below it admit no split).
    double floor_m = 0.0;
    for (const auto& depot_trips : unlimited.trips) {
      for (const auto& trip : depot_trips) {
        if (trip.tour.size() < 2) continue;
        const auto root = trip.tour.order().front();
        for (std::size_t v : trip.tour.order()) {
          if (v == root) continue;
          // Combined indexing: depots then sensors in `ids` order.
          const auto& depot_pos = network.depots()[root];
          const auto& sensor_pos =
              network.sensor(ids[v - network.q()]).position;
          floor_m = std::max(floor_m,
                             2.0 * geom::distance(depot_pos, sensor_pos));
        }
      }
    }
    std::printf("(smallest feasible per-trip budget: %.2f km)\n",
                floor_m / 1000.0);
    for (double cap_km : {20.0, 10.0, 6.0, 4.0, 3.0, 2.0}) {
      if (cap_km * 1000.0 < floor_m) continue;
      const auto plan =
          charging::plan_capacitated_round(network, ids, cap_km * 1000.0);
      table.add_row({fmt_fixed(cap_km, 1), std::to_string(plan.num_trips),
                     fmt_fixed(plan.total_length / 1000.0, 2),
                     fmt_fixed(plan.max_trip_length / 1000.0, 2),
                     fmt_fixed(100.0 * (plan.total_length /
                                            unlimited.total_length -
                                        1.0),
                               1) +
                         "%"});
    }
    table.print(std::cout);
  }

  std::printf("\n=== Ablation A4c: full MinTotalDistance runs under trip "
              "budgets ===\n");
  {
    ConsoleTable table({"capacity (km)", "MTD cost (km)", "overhead"});
    const wsn::CycleModel cycles(network, ctx.base.cycles, 1);
    double baseline = 0.0;
    for (double cap_km : {0.0, 10.0, 6.0, 4.0, 3.0}) {
      auto sim_options = ctx.base.sim;
      sim_options.trip_capacity = cap_km * 1000.0;
      mwc::sim::Simulator simulator(network, cycles, sim_options);
      mwc::charging::MinTotalDistancePolicy policy;
      const auto result = simulator.run(policy);
      if (cap_km == 0.0) baseline = result.service_cost;
      table.add_row(
          {cap_km == 0.0 ? "unlimited" : fmt_fixed(cap_km, 0),
           fmt_fixed(result.service_cost / 1000.0, 1),
           fmt_fixed(100.0 * (result.service_cost / baseline - 1.0), 1) +
               "%"});
    }
    table.print(std::cout);
  }

  std::printf("\n=== Ablation A4b: min-max fleets (vehicles per depot) "
              "===\n");
  {
    ConsoleTable table({"k", "total (km)", "makespan tour (km)",
                        "speedup vs k=1"});
    const double single =
        charging::plan_minmax_round(network, ids, 1).max_trip_length;
    for (std::size_t k = 1; k <= 8; ++k) {
      const auto plan = charging::plan_minmax_round(network, ids, k);
      table.add_row({std::to_string(k),
                     fmt_fixed(plan.total_length / 1000.0, 2),
                     fmt_fixed(plan.max_trip_length / 1000.0, 2),
                     fmt_fixed(single / plan.max_trip_length, 2) + "x"});
    }
    table.print(std::cout);
  }
  return 0;
}
