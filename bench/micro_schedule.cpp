// Microbenchmarks of the scheduling layer: Algorithm 3 schedule builds,
// the variable-cycle heuristic's plan recompute, one full simulated
// period, and the exact DP solver — the costs a user pays per experiment.
#include <benchmark/benchmark.h>

#include "charging/exact_schedule.hpp"
#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "charging/var_heuristic.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace mwc;

struct World {
  wsn::Network network;
  wsn::CycleModel cycles;
};

World make_world(std::size_t n, double slot_sigma = 0.0) {
  wsn::DeploymentConfig deployment;
  deployment.n = n;
  deployment.q = 5;
  Rng rng(1);
  auto network = wsn::deploy_random(deployment, rng);
  wsn::CycleModelConfig config;
  config.sigma = slot_sigma;
  wsn::CycleModel cycles(network, config, 2);
  return World{std::move(network), std::move(cycles)};
}

void BM_BuildSchedule(benchmark::State& state) {
  const auto world = make_world(static_cast<std::size_t>(state.range(0)));
  const auto taus = world.cycles.fixed_cycles();
  for (auto _ : state) {
    auto schedule = charging::build_min_total_distance_schedule(
        world.network, taus, 1000.0);
    benchmark::DoNotOptimize(schedule.total_cost);
  }
}
BENCHMARK(BM_BuildSchedule)->Range(64, 512);

void BM_SimulateFixedPeriod(benchmark::State& state) {
  const auto world = make_world(static_cast<std::size_t>(state.range(0)));
  sim::SimOptions options;
  options.horizon = 1000.0;
  sim::Simulator simulator(world.network, world.cycles, options);
  for (auto _ : state) {
    charging::MinTotalDistancePolicy policy;
    benchmark::DoNotOptimize(simulator.run(policy).service_cost);
  }
}
BENCHMARK(BM_SimulateFixedPeriod)->Range(64, 512);

void BM_SimulateVariablePeriod(benchmark::State& state) {
  const auto world =
      make_world(static_cast<std::size_t>(state.range(0)), 2.0);
  sim::SimOptions options;
  options.horizon = 1000.0;
  options.slot_length = 10.0;
  sim::Simulator simulator(world.network, world.cycles, options);
  for (auto _ : state) {
    charging::MinTotalDistanceVarPolicy policy;
    benchmark::DoNotOptimize(simulator.run(policy).service_cost);
  }
}
BENCHMARK(BM_SimulateVariablePeriod)->Range(64, 256);

void BM_GreedySimulatedPeriod(benchmark::State& state) {
  const auto world = make_world(static_cast<std::size_t>(state.range(0)));
  sim::SimOptions options;
  options.horizon = 1000.0;
  sim::Simulator simulator(world.network, world.cycles, options);
  for (auto _ : state) {
    charging::GreedyPolicy policy(charging::GreedyOptions{.threshold = 1.0});
    benchmark::DoNotOptimize(simulator.run(policy).service_cost);
  }
}
BENCHMARK(BM_GreedySimulatedPeriod)->Range(64, 256);

void BM_ExactDpSolver(benchmark::State& state) {
  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(state.range(0));
  deployment.q = 2;
  deployment.field_side = 200.0;
  Rng rng(3);
  const auto network = wsn::deploy_random(deployment, rng);
  std::vector<double> cycles;
  for (std::size_t i = 0; i < network.n(); ++i)
    cycles.push_back(static_cast<double>(1 + (i % 4)));
  for (auto _ : state) {
    auto result = charging::solve_exact_schedule(network, cycles, 12.0);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_ExactDpSolver)->DenseRange(3, 6);

}  // namespace
