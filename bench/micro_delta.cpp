// micro_delta — incremental re-planning benchmark (mwc.svc.v2).
//
// For every instance size in --grid, measures
//   * cold p50   — handle_request on a fresh topology seed per repeat
//     (full resolve + solve + horizon simulation, no cache), and
//   * delta p50  — handle_delta against the cached base plan, one
//     distinct patch per repeat (derived-plan cache never hit),
// for each patch size in --patches. The headline number is the
// cold/delta p50 ratio; the v2 redesign targets >= 10x at n=2000 with a
// single-sensor patch.
//
// Flags: --grid 200,800,2000, --patches 1,4,16, --q 5, --horizon 200,
//        --cold 5, --reps 24, --seed 1, --improve (default true),
//        --json FILE
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "svc/delta.hpp"
#include "svc/engine.hpp"
#include "svc/json.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    out.push_back(static_cast<std::size_t>(
        std::stoul(spec.substr(pos, comma - pos))));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);

  const std::vector<std::size_t> grid =
      parse_list(args.get_or("grid", "200,800,2000"));
  const std::vector<std::size_t> patches =
      parse_list(args.get_or("patches", "1,4,16"));
  const std::size_t q = static_cast<std::size_t>(args.get_int_or("q", 5));
  const double horizon = args.get_double_or("horizon", 200.0);
  const std::size_t cold_reps =
      static_cast<std::size_t>(args.get_int_or("cold", 5));
  const std::size_t delta_reps =
      static_cast<std::size_t>(args.get_int_or("reps", 24));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const bool improve = args.get_bool_or("improve", true);
  const double field = 1000.0;

  bool failed = false;
  mwc::svc::Json rows = mwc::svc::Json::array();
  for (const std::size_t n : grid) {
    const auto request_for = [&](const std::string& id,
                                 std::uint64_t topology_seed) {
      return mwc::svc::RequestBuilder(id)
          .preset(n, q, field, topology_seed)
          .cycle_values(std::vector<double>(n, 5.0))
          .horizon(horizon)
          .improve(improve)
          .build();
    };

    // Cold reference: distinct topologies, no cache in sight.
    std::vector<double> cold_ms;
    for (std::size_t r = 0; r < cold_reps; ++r) {
      const auto start = Clock::now();
      const mwc::svc::Response response =
          handle_request(request_for("cold", seed + 1000 + r), nullptr);
      cold_ms.push_back(std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count());
      if (!response.ok) {
        std::fprintf(stderr, "cold solve failed: %s\n",
                     response.message.c_str());
        failed = true;
      }
    }
    const double cold_p50 = median(cold_ms);

    // Base plan for the delta stream.
    mwc::svc::PlanCache cache(1024);
    const mwc::svc::Response base =
        handle_request(request_for("base", seed), &cache);
    if (!base.ok) {
      std::fprintf(stderr, "base solve failed: %s\n", base.message.c_str());
      return 1;
    }

    for (const std::size_t patch_size : patches) {
      std::vector<double> delta_ms;
      std::size_t errors = 0;
      for (std::size_t r = 0; r < delta_reps; ++r) {
        mwc::svc::DeltaBuilder builder("d", base.plan->fingerprint);
        for (std::size_t k = 0; k < patch_size; ++k) {
          const double jitter = static_cast<double>(r * patch_size + k);
          builder.move_sensor(
              (r * 131 + k * 37 + 11) % n,
              {std::min(field, 40.0 + 13.0 * jitter -
                                   field * std::floor(13.0 * jitter / field)),
               std::min(field, 70.0 + 29.0 * jitter -
                                   field * std::floor(29.0 * jitter / field))});
        }
        const auto start = Clock::now();
        const mwc::svc::Response response =
            handle_delta(builder.build(), &cache);
        delta_ms.push_back(std::chrono::duration<double, std::milli>(
                               Clock::now() - start)
                               .count());
        if (!response.ok) ++errors;
      }
      failed = failed || errors > 0;
      const double delta_p50 = median(delta_ms);
      const double speedup = delta_p50 > 0.0 ? cold_p50 / delta_p50 : 0.0;
      std::printf("n=%-5zu patch=%-3zu cold p50 %9.3f ms  delta p50 "
                  "%8.3f ms  speedup %7.1fx  (%zu errors)\n",
                  n, patch_size, cold_p50, delta_p50, speedup, errors);

      mwc::svc::Json row = mwc::svc::Json::object();
      row.set("n", mwc::svc::Json(n));
      row.set("q", mwc::svc::Json(q));
      row.set("patch_ops", mwc::svc::Json(patch_size));
      row.set("cold_p50_ms", mwc::svc::Json(cold_p50));
      row.set("delta_p50_ms", mwc::svc::Json(delta_p50));
      row.set("speedup_p50", mwc::svc::Json(speedup));
      row.set("errors", mwc::svc::Json(errors));
      rows.push_back(std::move(row));
    }
  }

  if (const auto json_path = args.get("json")) {
    mwc::svc::Json doc = mwc::svc::Json::object();
    doc.set("bench", mwc::svc::Json("micro_delta"));
    doc.set("horizon", mwc::svc::Json(horizon));
    doc.set("improve", mwc::svc::Json(improve));
    doc.set("cold_reps", mwc::svc::Json(cold_reps));
    doc.set("delta_reps", mwc::svc::Json(delta_reps));
    doc.set("rows", std::move(rows));
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    const std::string text = doc.dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return failed ? 1 : 0;
}
