// Ablation: what the geometric cycle rounding + power-of-two round
// alignment buys. Compares MinTotalDistance against
//  * PerSensorPeriodic — each sensor on its own exact cadence, batching
//    only coincidental deadlines (no rounding, no alignment), and
//  * PeriodicAll — the naive "charge everyone every τ_min" strategy the
//    paper dismisses in Sec. III-C.
//
// Expected outcome: MinTotalDistance < PerSensorPeriodic << PeriodicAll
// under the linear distribution; rounding costs at most 2x in frequency
// but wins far more through tour sharing.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "PerSensorPeriodic",
                              "PeriodicAll"});

  FigureReport report("Ablation A3",
                      "cycle rounding & round alignment ablation", "n");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (std::size_t n : {100u, 200u, 300u}) {
      auto config = ctx.base;
      config.deployment.n = n;
      report.add_point({static_cast<double>(n),
                        run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
