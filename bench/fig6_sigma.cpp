// Fig. 6 of the paper: impact of the charging-cycle variance σ — service
// cost vs σ (0..50) at n = 200, τ_max = 50, ΔT = 10, linear distribution.
//
// Expected shape (paper): both costs grow with σ; the heuristic's
// advantage erodes and vanishes around σ = 50, where short-cycle sensors
// appear far from the base station.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/true);

  const auto kinds = ctx.policies_or({"MinTotalDistance-var",
                              "Greedy"});
  const double sigma_values[] = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};

  FigureReport report("Fig. 6",
                      "service cost vs cycle variance sigma",
                      "sigma");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (double sigma : sigma_values) {
      auto config = ctx.base;
      config.cycles.sigma = sigma;
      report.add_point({sigma,
                        run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
