// Fig. 2 of the paper: service cost vs the maximum charging cycle τ_max
// (1..50) at n = 200, fixed cycles, under (a) linear and (b) random
// distributions.
//
// Expected shape (paper): near-identical costs while τ_max <= 10; the gap
// then grows with τ_max under the linear distribution, and stays marginal
// under the random one.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  using namespace mwc::exp;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "Greedy"});
  const double taumax_values[] = {1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0};

  int rc = 0;
  const struct {
    const char* id;
    const char* title;
    wsn::CycleDistribution distribution;
  } panels[] = {
      {"Fig. 2(a)", "service cost vs tau_max, linear distribution",
       wsn::CycleDistribution::kLinear},
      {"Fig. 2(b)", "service cost vs tau_max, random distribution",
       wsn::CycleDistribution::kRandom},
  };

  for (const auto& panel : panels) {
    FigureReport report(panel.id, panel.title, "tau_max");
    rc |= bench::run_figure(ctx, report, [&] {
      for (double taumax : taumax_values) {
        auto config = ctx.base;
        config.cycles.distribution = panel.distribution;
        config.cycles.tau_max = taumax;
        // σ jitter cannot exceed the [τ_min, τ_max] band meaningfully
        // when the band collapses.
        config.cycles.sigma =
            std::min(config.cycles.sigma, (taumax - 1.0) / 2.0);
        report.add_point({taumax,
                          run_policies(config, kinds, ctx.pool.get())});
      }
    });
    if (!ctx.csv_path.empty() || !ctx.svg_path.empty()) break;
  }
  return rc;
}
