// Microbenchmark for the SoA + portable-SIMD distance kernels at the
// extended size grid (n up to 100k sensors).
//
//   ./micro_kernels [--n 10000] [--q 10] [--reps 3]
//                   [--max-matrix-gb 8] [--json PATH]
//                   [--metrics-out PATH]
//
// Four arms, each timed with the vector backend enabled vs the scalar
// fallback (geom::simd::set_enabled) on the identical instance:
//   * fill   — LazyDistanceMatrix::materialize_all (the oracle row-fill
//              kernel); skipped when the n x n matrix would exceed
//              --max-matrix-gb, i.e. at n = 100k;
//   * row    — raw geom::simd::distance_row sweeps over the SoA
//              coordinates (no matrix, runs at every n);
//   * probe  — DistanceView::direct batched distances_to probes, the
//              shape the q-rooted MSF and 2-opt/Or-opt scans issue;
//   * solve  — end-to-end q_rooted_tsp (candidate MSF + candidate
//              polish), oracle-backed when the matrix fits and through
//              direct geometry above the cap.
//
// The two solve arms must produce *identical* tours (the kernels are
// bit-exact by contract — docs/ALGORITHMS.md §9); the binary exits
// nonzero if the tour lengths diverge by more than 1%, so CI catches a
// backend that trades accuracy for speed. scripts/bench_kernels.sh runs
// n in {10k, 100k} and merges the JSON outputs into BENCH_kernels.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "geom/simd.hpp"
#include "geom/soa.hpp"
#include "obs/obs.hpp"
#include "tsp/candidates.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

mwc::tsp::QRootedInstance random_instance(std::size_t n, std::size_t q,
                                          std::uint64_t seed) {
  mwc::Rng rng(seed);
  mwc::tsp::QRootedInstance instance;
  instance.depots.reserve(q);
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  instance.sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return instance;
}

/// Times `fn()` `reps` times with the SIMD backend toggled as given and
/// returns the minimum (scheduler noise only ever adds time).
template <typename Fn>
double timed_min_ms(bool simd_on, std::size_t reps, Fn&& fn) {
  mwc::geom::simd::set_enabled(simd_on);
  double best = 0.0;
  mwc::Timer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    timer.reset();
    fn();
    const double ms = timer.elapsed_ms();
    best = r == 0 ? ms : std::min(best, ms);
  }
  mwc::geom::simd::set_enabled(true);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 10'000));
  const auto q = static_cast<std::size_t>(args.get_int_or("q", 10));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 3));
  const auto max_matrix_gb =
      static_cast<double>(args.get_int_or("max-matrix-gb", 8));
  const std::string json_path = args.get_or("json", "");
  const std::string metrics_path = args.get_or("metrics-out", "");

  const auto instance = random_instance(n, q, 20140917 + n);
  const std::size_t total = n + q;
  const double matrix_gb = static_cast<double>(total) *
                           static_cast<double>(total) * 8.0 / (1024.0 * 1024.0 * 1024.0);
  const bool matrix_fits = matrix_gb <= max_matrix_gb;
  double checksum = 0.0;  // defeats dead-code elimination

  std::printf("micro_kernels: n=%zu q=%zu reps=%zu backend=%s lanes=%u\n", n,
              q, reps, geom::simd::backend(),
              static_cast<unsigned>(geom::simd::lanes()));
  if (!geom::simd::compiled_in())
    std::printf("  (MWC_SIMD=OFF build: both arms run the scalar loops)\n");

  // --- fill: oracle row materialization, the hottest kernel in the
  // q-rooted pipeline. A fresh matrix per rep so every rep pays every
  // row, but construction (allocation) stays outside the timed region —
  // the arm measures the fill kernel, not mmap.
  double fill_scalar_ms = 0.0, fill_simd_ms = 0.0, fill_hypot_ms = 0.0;
  if (matrix_fits) {
    // One untimed cold pass faults the n^2 pages in; the timed reps
    // reset the row flags and re-fill warm storage, so the arm measures
    // the fill kernel rather than the page-fault cost both arms share.
    geom::LazyDistanceMatrix warm(instance.points().materialize());
    warm.materialize_all();
    const auto fill_with = [&](bool simd_on) {
      geom::simd::set_enabled(simd_on);
      double best = 0.0;
      Timer timer;
      for (std::size_t r = 0; r < reps; ++r) {
        warm.reset();
        timer.reset();
        warm.materialize_all();
        const double ms = timer.elapsed_ms();
        best = r == 0 ? ms : std::min(best, ms);
        checksum += warm(0, total - 1);
      }
      geom::simd::set_enabled(true);
      return best;
    };
    fill_simd_ms = fill_with(true);
    fill_scalar_ms = fill_with(false);

    // Seed fill baseline: every entry through per-pair std::hypot on the
    // AoS points, the LazyDistanceMatrix::fill_row this PR replaced (one
    // pass — it is the slow arm). Reusing one cache-resident row buffer
    // even flatters it: the real seed also paid the n^2 stores.
    const auto aos = instance.points().materialize();
    std::vector<double> seed_row(total);
    Timer seed_timer;
    for (std::size_t i = 0; i < total; ++i) {
      const geom::Point& p = aos[i];
      for (std::size_t j = 0; j < total; ++j)
        seed_row[j] = std::hypot(p.x - aos[j].x, p.y - aos[j].y);
      checksum += seed_row[total - 1];
    }
    fill_hypot_ms = seed_timer.elapsed_ms();

    const double entries =
        static_cast<double>(total) * static_cast<double>(total);
    std::printf("  fill   scalar %10.3f ms   simd %10.3f ms   %5.2fx"
                "  (%.1fM entries/s vectorized)\n",
                fill_scalar_ms, fill_simd_ms,
                fill_simd_ms > 0.0 ? fill_scalar_ms / fill_simd_ms : 0.0,
                entries / fill_simd_ms / 1e3);
    std::printf("  fill   hypot  %10.3f ms   (seed kernel, %5.2fx vs simd "
                "fill)\n",
                fill_hypot_ms,
                fill_simd_ms > 0.0 ? fill_hypot_ms / fill_simd_ms : 0.0);
  } else {
    std::printf("  fill   skipped (matrix %.1f GiB > cap %.1f GiB)\n",
                matrix_gb, max_matrix_gb);
  }

  // --- row: the raw distance_row kernel over the SoA coordinates. Runs
  // at every n (no O(n^2) storage): kRows query rows of n entries each.
  const geom::PointsSoA soa(instance.depots, instance.sensors);
  const std::size_t row_count = std::min<std::size_t>(total, 2048);
  std::vector<double> row_out(total);
  const auto row_once = [&] {
    for (std::size_t i = 0; i < row_count; ++i) {
      geom::simd::distance_row(soa.x(i), soa.y(i), soa.xs().data(),
                               soa.ys().data(), row_out.data(), total);
      checksum += row_out[total - 1];
    }
  };
  const double row_simd_ms = timed_min_ms(true, reps, row_once);
  const double row_scalar_ms = timed_min_ms(false, reps, row_once);

  // Seed baseline: the per-pair std::hypot AoS loop these row kernels
  // replaced (the pre-SoA DistanceMatrix/LazyDistanceMatrix fill). The
  // honest "what did the rewrite buy end-users" number; the scalar arm
  // above isolates the vectorization share of it (both arms run the
  // identical sqrt(squared_norm) arithmetic, so on hosts whose single
  // sqrt unit bounds vector throughput the on/off ratio tops out near
  // 2x while the hypot ratio stays large).
  const auto points_aos = instance.points().materialize();
  const auto row_hypot_once = [&] {
    for (std::size_t i = 0; i < row_count; ++i) {
      const geom::Point& p = points_aos[i];
      for (std::size_t j = 0; j < total; ++j)
        row_out[j] = std::hypot(p.x - points_aos[j].x, p.y - points_aos[j].y);
      checksum += row_out[total - 1];
    }
  };
  const double row_hypot_ms = timed_min_ms(true, reps, row_hypot_once);

  const double row_entries =
      static_cast<double>(row_count) * static_cast<double>(total);
  std::printf("  row    scalar %10.3f ms   simd %10.3f ms   %5.2fx"
              "  (%zu rows, %.1fM entries/s vectorized)\n",
              row_scalar_ms, row_simd_ms,
              row_simd_ms > 0.0 ? row_scalar_ms / row_simd_ms : 0.0,
              row_count, row_entries / row_simd_ms / 1e3);
  std::printf("  seed   hypot  %10.3f ms   (%5.2fx vs simd row kernel, "
              "%5.2fx vs scalar fallback)\n",
              row_hypot_ms,
              row_simd_ms > 0.0 ? row_hypot_ms / row_simd_ms : 0.0,
              row_scalar_ms > 0.0 ? row_hypot_ms / row_scalar_ms : 0.0);

  // --- probe: batched DistanceView::direct probes (gather + one row
  // kernel per call), the exact shape the MSF/2-opt scans issue.
  const auto direct =
      tsp::DistanceView::direct(instance.depots, instance.sensors);
  constexpr std::size_t kBatch = 4096;
  std::vector<std::size_t> js(std::min<std::size_t>(kBatch, total));
  {
    Rng rng(0xBA7C);
    for (auto& j : js)
      j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  }
  std::vector<double> probe_out(js.size());
  const std::size_t probe_iters = 1024;
  const auto probe_once = [&] {
    for (std::size_t it = 0; it < probe_iters; ++it) {
      direct.distances_to(it % total, js, probe_out.data());
      checksum += probe_out[0];
    }
  };
  const double probe_simd_ms = timed_min_ms(true, reps, probe_once);
  const double probe_scalar_ms = timed_min_ms(false, reps, probe_once);
  std::printf("  probe  scalar %10.3f ms   simd %10.3f ms   %5.2fx"
              "  (%zu probes/batch)\n",
              probe_scalar_ms, probe_simd_ms,
              probe_simd_ms > 0.0 ? probe_scalar_ms / probe_simd_ms : 0.0,
              js.size());

  // --- solve: end-to-end q_rooted_tsp, candidate MSF + candidate polish.
  // Oracle-backed when the matrix fits (row fills dominate); direct
  // geometry above the cap (the n = 100k grid cell).
  tsp::QRootedOptions options;
  options.improve = true;
  options.candidate_msf = true;
  const auto graph =
      tsp::CandidateGraph::build(points_aos, options.candidate_options);
  options.candidates = &graph;

  const char* solve_mode = matrix_fits ? "oracle" : "direct";
  double solve_scalar_ms = 0.0, solve_simd_ms = 0.0;
  double solve_scalar_length = 0.0, solve_simd_length = 0.0;
  const auto solve_with = [&](bool simd_on, double& ms_out,
                              double& length_out) {
    geom::simd::set_enabled(simd_on);
    Timer timer;
    for (std::size_t r = 0; r < reps; ++r) {
      timer.reset();
      double length = 0.0;
      if (matrix_fits) {
        // Fresh oracle per rep: the row fills are the point of the arm.
        const tsp::DistanceOracle oracle(instance.depots, instance.sensors);
        length = tsp::q_rooted_tsp(oracle.view(), q, options).total_length;
      } else {
        length = tsp::q_rooted_tsp(direct, q, options).total_length;
      }
      const double ms = timer.elapsed_ms();
      ms_out = r == 0 ? ms : std::min(ms_out, ms);
      length_out = length;
      checksum += length;
    }
    geom::simd::set_enabled(true);
  };
  solve_with(true, solve_simd_ms, solve_simd_length);
  solve_with(false, solve_scalar_ms, solve_scalar_length);

  const double solve_speedup =
      solve_simd_ms > 0.0 ? solve_scalar_ms / solve_simd_ms : 0.0;
  const double tour_delta_pct =
      solve_scalar_length > 0.0
          ? (solve_simd_length / solve_scalar_length - 1.0) * 100.0
          : 0.0;
  std::printf("  solve  scalar %10.3f ms   simd %10.3f ms   %5.2fx"
              "  (%s view, tour delta %+.4f%%)\n",
              solve_scalar_ms, solve_simd_ms, solve_speedup, solve_mode,
              tour_delta_pct);
  std::printf("  (checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_kernels\",\n"
                 "  \"n\": %zu,\n"
                 "  \"q\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"backend\": \"%s\",\n"
                 "  \"lanes\": %u,\n"
                 "  \"simd_compiled_in\": %s,\n"
                 "  \"matrix_fits\": %s,\n"
                 "  \"fill_scalar_ms\": %.6f,\n"
                 "  \"fill_simd_ms\": %.6f,\n"
                 "  \"fill_speedup\": %.3f,\n"
                 "  \"fill_hypot_ms\": %.6f,\n"
                 "  \"fill_speedup_vs_seed\": %.3f,\n"
                 "  \"row_rows\": %zu,\n"
                 "  \"row_scalar_ms\": %.6f,\n"
                 "  \"row_simd_ms\": %.6f,\n"
                 "  \"row_speedup\": %.3f,\n"
                 "  \"row_hypot_ms\": %.6f,\n"
                 "  \"row_speedup_vs_seed\": %.3f,\n"
                 "  \"probe_scalar_ms\": %.6f,\n"
                 "  \"probe_simd_ms\": %.6f,\n"
                 "  \"probe_speedup\": %.3f,\n"
                 "  \"solve_mode\": \"%s\",\n"
                 "  \"solve_scalar_ms\": %.6f,\n"
                 "  \"solve_simd_ms\": %.6f,\n"
                 "  \"solve_speedup\": %.3f,\n"
                 "  \"solve_scalar_length\": %.6f,\n"
                 "  \"solve_simd_length\": %.6f,\n"
                 "  \"tour_delta_pct\": %.6f\n"
                 "}\n",
                 n, q, reps, geom::simd::backend(),
                 static_cast<unsigned>(geom::simd::lanes()),
                 geom::simd::compiled_in() ? "true" : "false",
                 matrix_fits ? "true" : "false", fill_scalar_ms, fill_simd_ms,
                 fill_simd_ms > 0.0 ? fill_scalar_ms / fill_simd_ms : 0.0,
                 fill_hypot_ms,
                 fill_simd_ms > 0.0 ? fill_hypot_ms / fill_simd_ms : 0.0,
                 row_count, row_scalar_ms, row_simd_ms,
                 row_simd_ms > 0.0 ? row_scalar_ms / row_simd_ms : 0.0,
                 row_hypot_ms,
                 row_simd_ms > 0.0 ? row_hypot_ms / row_simd_ms : 0.0,
                 probe_scalar_ms, probe_simd_ms,
                 probe_simd_ms > 0.0 ? probe_scalar_ms / probe_simd_ms : 0.0,
                 solve_mode, solve_scalar_ms, solve_simd_ms, solve_speedup,
                 solve_scalar_length, solve_simd_length, tour_delta_pct);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    if (obs::Registry::global().write_json(metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }

  // The exactness gate: both solve arms computed every distance as
  // sqrt(squared_norm), so the tours must agree. A >1% divergence means a
  // backend broke the bit-exactness contract.
  if (std::abs(tour_delta_pct) > 1.0) {
    std::fprintf(stderr,
                 "FAIL: simd/scalar tour lengths diverge by %+.4f%% "
                 "(> 1%% bound)\n",
                 tour_delta_pct);
    return 1;
  }
  return 0;
}
