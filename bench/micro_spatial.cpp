// Microbenchmark: uniform-grid vs kd-tree nearest-neighbour and k-NN
// queries over sensor deployments (the spatial-index design choice called
// out in DESIGN.md), plus a SoA brute-force baseline through the
// geom::simd row kernel. Uniform deployments favour the grid; the
// kd-tree is insensitive to clustering; brute force wins only at tiny n.
//
//   ./micro_spatial [--n 10000] [--queries 2048] [--k 12]
//                   [--json PATH] [--metrics-out PATH]
//
// The two indexes are also cross-checked on every k-NN query: both must
// return the identical (index, distance) list — the tie-break contract
// pinned by tests/geom/soa_test.cpp — so a bench run doubles as an
// agreement sweep at sizes the unit tests don't reach.
//
// scripts/bench_spatial.sh loops n in {1k, 10k, 100k}, merges the JSON
// outputs into BENCH_spatial.json, and validates the --metrics-out
// sidecar (the geom.simd.* counters) with scripts/validate_metrics.py.
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "geom/simd.hpp"
#include "geom/soa.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using mwc::Rng;
using mwc::geom::BBox;
using mwc::geom::GridIndex;
using mwc::geom::KdTree;
using mwc::geom::Point;

std::vector<Point> uniform_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

std::vector<Point> clustered_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  const std::size_t clusters = 8;
  std::vector<Point> centers;
  for (std::size_t c = 0; c < clusters; ++c)
    centers.push_back({rng.uniform(100.0, 900.0),
                       rng.uniform(100.0, 900.0)});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = centers[i % clusters];
    pts.push_back({c.x + rng.normal(0.0, 20.0), c.y + rng.normal(0.0, 20.0)});
  }
  return pts;
}

/// Per-query microseconds for `fn(q)` over every query point.
template <typename Fn>
double per_query_us(std::span<const Point> queries, Fn&& fn) {
  mwc::Timer timer;
  for (const Point& q : queries) fn(q);
  return timer.elapsed_ms() * 1e3 / static_cast<double>(queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 10'000));
  const auto num_queries =
      static_cast<std::size_t>(args.get_int_or("queries", 2048));
  const auto k = static_cast<std::size_t>(args.get_int_or("k", 12));
  const std::string json_path = args.get_or("json", "");
  const std::string metrics_path = args.get_or("metrics-out", "");

  const auto uniform = uniform_points(n, 1);
  const auto clustered = clustered_points(n, 1);
  const auto queries = uniform_points(num_queries, 2);
  double checksum = 0.0;  // defeats dead-code elimination

  // Build times (one cold build each; construction is not the hot path).
  Timer timer;
  const GridIndex grid(uniform, BBox::of(uniform.begin(), uniform.end()));
  const double grid_build_ms = timer.elapsed_ms();
  timer.reset();
  const KdTree kd(uniform);
  const double kd_build_ms = timer.elapsed_ms();
  const GridIndex grid_clustered(
      clustered, BBox::of(clustered.begin(), clustered.end()));
  const KdTree kd_clustered(clustered);

  // Nearest-neighbour throughput, uniform and clustered deployments.
  const double grid_nn_us = per_query_us(
      queries, [&](const Point& q) { checksum += grid.nearest(q); });
  const double kd_nn_us = per_query_us(
      queries, [&](const Point& q) { checksum += kd.nearest(q); });
  const double grid_nn_clustered_us = per_query_us(
      queries, [&](const Point& q) { checksum += grid_clustered.nearest(q); });
  const double kd_nn_clustered_us = per_query_us(
      queries, [&](const Point& q) { checksum += kd_clustered.nearest(q); });

  // k-NN throughput; every query doubles as a cross-index agreement
  // check (identical sorted (index, distance) lists, ties included).
  std::size_t disagreements = 0;
  const double grid_knn_us = per_query_us(queries, [&](const Point& q) {
    checksum += grid.knearest(q, k).back().second;
  });
  const double kd_knn_us = per_query_us(queries, [&](const Point& q) {
    checksum += kd.knearest(q, k).back().second;
  });
  for (const Point& q : queries) {
    if (kd.knearest(q, k) != grid.knearest(q, k)) ++disagreements;
  }

  // Brute-force baseline: one geom::simd squared-distance row over the
  // SoA coordinates per query, then a scalar argmin. Linear in n, but at
  // small n it beats both indexes' pointer chasing — the crossover is
  // the design datum this bench exists to record.
  const geom::PointsSoA soa{std::span<const Point>(uniform)};
  std::vector<double> d2(n);
  const double brute_nn_us = per_query_us(queries, [&](const Point& q) {
    geom::simd::distance2_row(q.x, q.y, soa.xs().data(), soa.ys().data(),
                              d2.data(), n);
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (d2[i] < d2[best]) best = i;
    checksum += static_cast<double>(best);
  });

  std::printf("micro_spatial: n=%zu queries=%zu k=%zu backend=%s\n", n,
              num_queries, k, geom::simd::backend());
  std::printf("  build        grid %8.3f ms   kdtree %8.3f ms\n",
              grid_build_ms, kd_build_ms);
  std::printf("  nn uniform   grid %8.3f us   kdtree %8.3f us   brute %8.3f us\n",
              grid_nn_us, kd_nn_us, brute_nn_us);
  std::printf("  nn clustered grid %8.3f us   kdtree %8.3f us\n",
              grid_nn_clustered_us, kd_nn_clustered_us);
  std::printf("  knn (k=%zu)   grid %8.3f us   kdtree %8.3f us   (%zu/%zu "
              "disagreements)\n",
              k, grid_knn_us, kd_knn_us, disagreements, num_queries);
  std::printf("  (checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_spatial\",\n"
                 "  \"n\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"backend\": \"%s\",\n"
                 "  \"grid_build_ms\": %.6f,\n"
                 "  \"kd_build_ms\": %.6f,\n"
                 "  \"grid_nn_us\": %.6f,\n"
                 "  \"kd_nn_us\": %.6f,\n"
                 "  \"brute_nn_us\": %.6f,\n"
                 "  \"grid_nn_clustered_us\": %.6f,\n"
                 "  \"kd_nn_clustered_us\": %.6f,\n"
                 "  \"grid_knn_us\": %.6f,\n"
                 "  \"kd_knn_us\": %.6f,\n"
                 "  \"knn_disagreements\": %zu\n"
                 "}\n",
                 n, num_queries, k, geom::simd::backend(), grid_build_ms,
                 kd_build_ms, grid_nn_us, kd_nn_us, brute_nn_us,
                 grid_nn_clustered_us, kd_nn_clustered_us, grid_knn_us,
                 kd_knn_us, disagreements);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    if (obs::Registry::global().write_json(metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  if (disagreements != 0) {
    std::fprintf(stderr,
                 "FAIL: kd-tree and grid k-NN lists disagree on %zu/%zu "
                 "queries\n",
                 disagreements, num_queries);
    return 1;
  }
  return 0;
}
