// Microbenchmark: uniform-grid vs kd-tree nearest-neighbour queries over
// sensor deployments (the spatial-index design choice called out in
// DESIGN.md). Uniform deployments favour the grid; the kd-tree is
// insensitive to clustering.
#include <benchmark/benchmark.h>

#include <vector>

#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "util/rng.hpp"

namespace {

using mwc::Rng;
using mwc::geom::BBox;
using mwc::geom::GridIndex;
using mwc::geom::KdTree;
using mwc::geom::Point;

std::vector<Point> uniform_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

std::vector<Point> clustered_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  const std::size_t clusters = 8;
  std::vector<Point> centers;
  for (std::size_t c = 0; c < clusters; ++c)
    centers.push_back({rng.uniform(100.0, 900.0),
                       rng.uniform(100.0, 900.0)});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = centers[i % clusters];
    pts.push_back({c.x + rng.normal(0.0, 20.0), c.y + rng.normal(0.0, 20.0)});
  }
  return pts;
}

std::vector<Point> queries(std::size_t n, std::uint64_t seed) {
  return uniform_points(n, seed);
}

template <typename MakePoints>
void bench_grid(benchmark::State& state, MakePoints&& make) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = make(n, 1);
  const GridIndex index(pts, BBox::square(1000.0));
  const auto qs = queries(1024, 2);
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(qs[qi++ & 1023]));
  }
}

template <typename MakePoints>
void bench_kdtree(benchmark::State& state, MakePoints&& make) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = make(n, 1);
  const KdTree index(pts);
  const auto qs = queries(1024, 2);
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(qs[qi++ & 1023]));
  }
}

void BM_GridNN_Uniform(benchmark::State& state) {
  bench_grid(state, uniform_points);
}
void BM_KdTreeNN_Uniform(benchmark::State& state) {
  bench_kdtree(state, uniform_points);
}
void BM_GridNN_Clustered(benchmark::State& state) {
  bench_grid(state, clustered_points);
}
void BM_KdTreeNN_Clustered(benchmark::State& state) {
  bench_kdtree(state, clustered_points);
}

BENCHMARK(BM_GridNN_Uniform)->Range(256, 4096);
BENCHMARK(BM_KdTreeNN_Uniform)->Range(256, 4096);
BENCHMARK(BM_GridNN_Clustered)->Range(256, 4096);
BENCHMARK(BM_KdTreeNN_Clustered)->Range(256, 4096);

void BM_GridBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = uniform_points(n, 3);
  for (auto _ : state) {
    GridIndex index(pts, BBox::square(1000.0));
    benchmark::DoNotOptimize(index.size());
  }
}
void BM_KdTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = uniform_points(n, 3);
  for (auto _ : state) {
    KdTree index(pts);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_GridBuild)->Range(256, 4096);
BENCHMARK(BM_KdTreeBuild)->Range(256, 4096);

}  // namespace
