// Ablation A8: empirical optimality gap on tiny instances. The exact DP
// (integer-grid dispatch times, brute-force tours) gives the true optimum
// for small n; this bench measures how far MinTotalDistance and Greedy
// actually sit from it — versus the 2(K+2) worst-case guarantee.
//
// Expected outcome: MinTotalDistance lands within ~1.1-1.6x of the grid
// optimum on random tiny instances, far below the worst case; Greedy's
// gap is larger and more variable.
#include <iostream>

#include "charging/exact_schedule.hpp"
#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);
  const std::size_t instances =
      std::max<std::size_t>(ctx.base.trials * 3, 20);

  std::printf("=== Ablation A8: cost vs the exact grid optimum on tiny "
              "instances ===\n");
  RunningStats mtd_ratio, greedy_ratio;
  double mtd_worst = 0.0, greedy_worst = 0.0;
  std::size_t max_K = 0;

  for (std::size_t trial = 0; trial < instances; ++trial) {
    Rng rng(ctx.base.seed, trial);
    wsn::DeploymentConfig deployment;
    deployment.n = static_cast<std::size_t>(rng.uniform_int(3, 5));
    deployment.q = static_cast<std::size_t>(rng.uniform_int(1, 2));
    deployment.field_side = 200.0;
    const auto network = wsn::deploy_random(deployment, rng);

    std::vector<double> cycles;
    for (std::size_t i = 0; i < network.n(); ++i)
      cycles.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    const double T = 12.0;

    const auto exact =
        charging::solve_exact_schedule(network, cycles, T);
    if (exact.cost <= 0.0) continue;  // trivial instance

    const auto alg =
        charging::build_min_total_distance_schedule(network, cycles, T);
    max_K = std::max(max_K, alg.partition.K);
    const double r_mtd = alg.total_cost / exact.cost;
    mtd_ratio.add(r_mtd);
    mtd_worst = std::max(mtd_worst, r_mtd);

    // Greedy through the simulator on the same instance.
    wsn::CycleModelConfig band;
    band.tau_min = 1.0;
    band.tau_max = 4.0;
    band.sigma = 0.0;
    const auto model = wsn::CycleModel::from_means(cycles, band, 1);
    sim::SimOptions options;
    options.horizon = T;
    sim::Simulator simulator(network, model, options);
    charging::GreedyPolicy greedy(charging::GreedyOptions{.threshold = 1.0});
    const auto result = simulator.run(greedy);
    const double r_greedy = result.service_cost / exact.cost;
    greedy_ratio.add(r_greedy);
    greedy_worst = std::max(greedy_worst, r_greedy);
  }

  ConsoleTable table({"algorithm", "mean ratio", "worst ratio",
                      "guarantee"});
  table.add_row({"MinTotalDistance", fmt_fixed(mtd_ratio.mean(), 3),
                 fmt_fixed(mtd_worst, 3),
                 "2(K+2) = " +
                     fmt_fixed(2.0 * (double(max_K) + 2.0), 0)});
  table.add_row({"Greedy", fmt_fixed(greedy_ratio.mean(), 3),
                 fmt_fixed(greedy_worst, 3), "none"});
  table.print(std::cout);
  std::printf("\n(%zu random instances, n in [3,5], tau in [1,4], T=12; "
              "ratios vs the exact integer-grid optimum)\n",
              static_cast<std::size_t>(mtd_ratio.count()));
  return 0;
}
