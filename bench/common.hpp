// Shared scaffolding for the figure-reproduction bench binaries.
//
// Every binary accepts:
//   --trials N      topologies per data point (default 10; paper used 100)
//   --threads N     worker threads (default: hardware)
//   --seed S        master seed
//   --csv PATH      also write the series to a CSV file
//   --improve       polish tours with 2-opt/Or-opt (ablation)
//   --policies A,B  comma-separated exp::PolicyRegistry names overriding
//                   the bench's default policy set (no recompile needed)
//   --metrics-out F write the global obs::Registry snapshot (counters,
//                   gauges, histograms) as mwc.metrics.v1 JSON after the
//                   run — the metrics sidecar next to the CSV results
//   --trace-out F   enable span collection and write a Chrome
//                   trace-event JSON (chrome://tracing / Perfetto)
// and honours MWC_TRIALS as a fallback for --trials, so
// `MWC_TRIALS=100 ./fig1_network_size` reproduces the paper-scale run.
#pragma once

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mwc::bench {

struct BenchContext {
  exp::ExperimentConfig base;
  std::unique_ptr<ThreadPool> pool;
  std::string csv_path;
  std::string svg_path;
  std::string metrics_path;  ///< --metrics-out: registry JSON sidecar
  std::string trace_path;    ///< --trace-out: Chrome trace-event JSON
  /// Registry names from --policies (empty: use the bench's defaults).
  std::vector<std::string> policies;

  /// The --policies override when given, else `defaults`. Names are
  /// validated against the registry either way.
  std::vector<std::string> policies_or(
      std::initializer_list<const char*> defaults) const {
    std::vector<std::string> out;
    if (policies.empty()) {
      out.assign(defaults.begin(), defaults.end());
    } else {
      out = policies;
    }
    for (const auto& name : out) (void)exp::policy_name(name);
    return out;
  }
};

inline BenchContext make_context(int argc, char** argv, bool variable) {
  CliArgs args(argc, argv);
  BenchContext ctx;
  ctx.base = variable ? exp::paper_defaults_variable()
                      : exp::paper_defaults();
  const long long default_trials = env_int_or("MWC_TRIALS", 10);
  ctx.base.trials = static_cast<std::size_t>(
      args.get_int_or("trials", default_trials));
  ctx.base.seed = static_cast<std::uint64_t>(
      args.get_int_or("seed", static_cast<long long>(ctx.base.seed)));
  ctx.base.sim.tour_options.improve = args.get_bool_or("improve", false);
  const auto threads =
      static_cast<std::size_t>(args.get_int_or("threads", 0));
  ctx.pool = std::make_unique<ThreadPool>(threads);
  ctx.csv_path = args.get_or("csv", "");
  ctx.svg_path = args.get_or("svg", "");
  ctx.metrics_path = args.get_or("metrics-out", "");
  ctx.trace_path = args.get_or("trace-out", "");
  // Span collection is opt-in: enabling costs one atomic flag load per
  // span site otherwise.
  if (!ctx.trace_path.empty()) obs::set_trace_enabled(true);
  const std::string policies_csv = args.get_or("policies", "");
  for (std::size_t pos = 0; pos < policies_csv.size();) {
    std::size_t comma = policies_csv.find(',', pos);
    if (comma == std::string::npos) comma = policies_csv.size();
    if (comma > pos)
      ctx.policies.push_back(policies_csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return ctx;
}

/// Runs the sweep in `fill` (which mutates the report), prints it, and
/// writes the CSV if requested.
template <typename FillFn>
int run_figure(BenchContext& ctx, exp::FigureReport& report, FillFn&& fill) {
  Timer timer;
  fill();
  report.print();
  std::printf("(%zu trials/point, %.1f s total)\n\n", ctx.base.trials,
              timer.elapsed_seconds());
  if (!ctx.csv_path.empty()) {
    report.write_csv(ctx.csv_path);
    std::printf("wrote %s\n", ctx.csv_path.c_str());
  }
  if (!ctx.svg_path.empty()) {
    report.write_svg(ctx.svg_path);
    std::printf("wrote %s\n", ctx.svg_path.c_str());
  }
  if (!ctx.metrics_path.empty()) {
    if (obs::Registry::global().write_json(ctx.metrics_path)) {
      std::printf("wrote %s\n", ctx.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", ctx.metrics_path.c_str());
    }
  }
  if (!ctx.trace_path.empty()) {
    if (obs::write_chrome_trace(ctx.trace_path)) {
      std::printf("wrote %s (%zu events)\n", ctx.trace_path.c_str(),
                  obs::trace_event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", ctx.trace_path.c_str());
    }
  }
  return 0;
}

}  // namespace mwc::bench
