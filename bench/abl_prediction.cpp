// Ablation A6: knowledge model of the greedy baseline. The paper's greedy
// acts on EWMA-*predicted* residual lifetimes (Sec. VI-A); this library's
// default greedy reads exact slot-level state. This bench sweeps ΔT for
// the exact-knowledge greedy vs the EWMA greedy (γ = 0.5) and reports
// cost plus sensor deaths.
//
// Measured outcome (see EXPERIMENTS.md): prediction is not free — the
// EWMA greedy pays a cost premium that *grows* with ΔT (a stale estimate
// persists for a whole slot, and longer slots make systematic over- and
// under-estimates last longer), and without an extra safety margin beyond
// Δl it loses sensors whenever a cycle collapses faster than the
// predictor tracks. The library's default greedy therefore uses exact
// slot-level knowledge: it is the *stronger* baseline, making the
// reproduced MinTotalDistance-var advantages conservative.
#include <iostream>
#include <memory>

#include "charging/greedy.hpp"
#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace {

struct Outcome {
  mwc::Summary cost;
  std::size_t dead = 0;
};

Outcome run_greedy(const mwc::exp::ExperimentConfig& config, double gamma,
                   mwc::ThreadPool& pool) {
  std::vector<double> costs(config.trials);
  std::vector<std::size_t> deaths(config.trials);
  mwc::parallel_for(pool, 0, config.trials, [&](std::size_t trial) {
    mwc::Rng rng(config.seed, 2 * trial);
    const auto network = mwc::wsn::deploy_random(config.deployment, rng);
    const mwc::wsn::CycleModel cycles(
        network, config.cycles, mwc::mix64(config.seed, 2 * trial + 1));
    mwc::sim::Simulator simulator(network, cycles, config.sim);
    mwc::charging::GreedyOptions options;
    options.threshold = config.cycles.tau_min;
    options.prediction_gamma = gamma;
    mwc::charging::GreedyPolicy policy(options);
    const auto result = simulator.run(policy);
    costs[trial] = result.service_cost;
    deaths[trial] = result.dead_sensors;
  });
  Outcome outcome;
  outcome.cost = mwc::summarize(costs);
  for (std::size_t d : deaths) outcome.dead += d;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwc;
  auto ctx = bench::make_context(argc, argv, /*variable=*/true);

  std::printf("=== Ablation A6: exact vs EWMA-predicted lifetimes in the "
              "greedy baseline ===\n");
  ConsoleTable table({"DT", "greedy exact (km)", "greedy EWMA (km)",
                      "EWMA premium", "EWMA deaths"});
  for (double slot : {1.0, 2.0, 4.0, 10.0, 20.0}) {
    auto config = ctx.base;
    config.sim.slot_length = slot;
    const auto exact = run_greedy(config, 0.0, *ctx.pool);
    const auto ewma = run_greedy(config, 0.5, *ctx.pool);
    table.add_row(
        {fmt_fixed(slot, 0), fmt_fixed(exact.cost.mean / 1000.0, 1),
         fmt_fixed(ewma.cost.mean / 1000.0, 1),
         fmt_fixed(100.0 * (ewma.cost.mean / exact.cost.mean - 1.0), 1) +
             "%",
         std::to_string(ewma.dead)});
  }
  table.print(std::cout);
  std::printf("\n(%zu trials/point; deaths are totals across trials — the "
              "exact greedy never loses a sensor by construction)\n",
              ctx.base.trials);
  return 0;
}
