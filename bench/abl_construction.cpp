// Ablation A7: tour constructor inside Algorithm 2. The paper uses the
// double-tree shortcut (2-approx); this bench swaps in the
// Christofides-style MST+matching constructor (and optionally 2-opt on
// top of either) and measures the effect on the Fig.-1 comparison.
//
// Expected outcome: Christofides cuts absolute service costs ~8-12%, the
// MinTotalDistance-vs-Greedy *ratio* barely moves — the paper's headline
// is about scheduling, not tour construction.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  using namespace mwc::exp;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "Greedy"});
  const struct {
    const char* name;
    tsp::TourConstruction construction;
  } variants[] = {
      {"double-tree (paper)", tsp::TourConstruction::kDoubleTree},
      {"christofides", tsp::TourConstruction::kChristofides},
  };

  int rc = 0;
  for (const auto& variant : variants) {
    FigureReport report(std::string("Ablation A7 (") + variant.name + ")",
                        "tour constructor inside Algorithm 2", "n");
    rc |= bench::run_figure(ctx, report, [&] {
      for (std::size_t n : {100u, 200u, 400u}) {
        auto config = ctx.base;
        config.deployment.n = n;
        config.sim.tour_options.construction = variant.construction;
        report.add_point({static_cast<double>(n),
                          run_policies(config, kinds, ctx.pool.get())});
      }
    });
  }
  return rc;
}
