// Fig. 4 of the paper: MinTotalDistance-var vs Greedy under variable
// cycles, sweeping τ_max at n = 200 (linear distribution, ΔT = 10, σ = 2).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/true);

  const auto kinds = ctx.policies_or({"MinTotalDistance-var",
                              "Greedy"});
  const double taumax_values[] = {1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0};

  FigureReport report("Fig. 4",
                      "service cost vs tau_max, variable cycles",
                      "tau_max");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (double taumax : taumax_values) {
      auto config = ctx.base;
      config.cycles.tau_max = taumax;
      config.cycles.sigma =
          std::min(config.cycles.sigma, (taumax - 1.0) / 2.0);
      report.add_point({taumax,
                        run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
