// Microbenchmarks of the algorithmic kernels: Prim's dense MST, the
// q-rooted MSF/TSP (Algorithms 1 and 2), and the tour improvers. These
// back the complexity claims in the paper (O(n^2) per scheduling).
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/mst.hpp"
#include "tsp/construct.hpp"
#include "tsp/improve.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"

namespace {

using mwc::Rng;
using mwc::geom::Point;

std::vector<Point> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

mwc::tsp::QRootedInstance random_instance(std::size_t q, std::size_t m,
                                          std::uint64_t seed) {
  Rng rng(seed);
  mwc::tsp::QRootedInstance inst;
  for (std::size_t l = 0; l < q; ++l)
    inst.depots.push_back({rng.uniform(0.0, 1000.0),
                           rng.uniform(0.0, 1000.0)});
  for (std::size_t k = 0; k < m; ++k)
    inst.sensors.push_back({rng.uniform(0.0, 1000.0),
                            rng.uniform(0.0, 1000.0)});
  return inst;
}

void BM_PrimMstDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 1);
  for (auto _ : state) {
    auto mst = mwc::graph::prim_mst(
        n, [&](std::size_t a, std::size_t b) {
          return mwc::geom::distance(pts[a], pts[b]);
        });
    benchmark::DoNotOptimize(mst.total_weight);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_PrimMstDense)->Range(64, 1024)->Complexity(benchmark::oNSquared);

void BM_QRootedMsf(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = random_instance(5, m, 2);
  for (auto _ : state) {
    auto forest = mwc::tsp::q_rooted_msf(inst);
    benchmark::DoNotOptimize(forest.total_weight);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_QRootedMsf)->Range(64, 1024)->Complexity(benchmark::oNSquared);

void BM_QRootedTsp(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = random_instance(5, m, 3);
  for (auto _ : state) {
    auto tours = mwc::tsp::q_rooted_tsp(inst);
    benchmark::DoNotOptimize(tours.total_length);
  }
}
BENCHMARK(BM_QRootedTsp)->Range(64, 1024);

void BM_QRootedTspImproved(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = random_instance(5, m, 4);
  mwc::tsp::QRootedOptions options;
  options.improve = true;
  for (auto _ : state) {
    auto tours = mwc::tsp::q_rooted_tsp(inst, options);
    benchmark::DoNotOptimize(tours.total_length);
  }
}
BENCHMARK(BM_QRootedTspImproved)->Range(64, 256);

void BM_DoubleTreeTour(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 5);
  for (auto _ : state) {
    auto tour = mwc::tsp::double_tree_tour(pts);
    benchmark::DoNotOptimize(tour.size());
  }
}
BENCHMARK(BM_DoubleTreeTour)->Range(64, 1024);

void BM_TwoOpt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 6);
  const auto base = mwc::tsp::nearest_neighbor_tour(pts);
  for (auto _ : state) {
    auto tour = base;
    benchmark::DoNotOptimize(mwc::tsp::two_opt(tour, pts));
  }
}
BENCHMARK(BM_TwoOpt)->Range(32, 256);

}  // namespace
