// Ablation: fleet sizing — service cost as a function of the number of
// mobile chargers q (1..10), n = 200, linear distribution, fixed cycles.
// One depot stays co-located with the base station; the rest are random.
//
// Expected outcome: diminishing returns — the first few depots cut the
// cost substantially (shorter approach legs), then the curve flattens:
// total tour length is dominated by the sensor-visiting legs, which q
// cannot reduce below the MSF weight.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "Greedy"});

  FigureReport report("Ablation A2", "service cost vs charger count q",
                      "q");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (std::size_t q = 1; q <= 10; ++q) {
      auto config = ctx.base;
      config.deployment.q = q;
      report.add_point({static_cast<double>(q),
                        run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
