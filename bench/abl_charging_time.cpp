// Assumption validation: the paper ignores the duration of a charging
// round, arguing it is orders of magnitude below a fully-charged sensor's
// lifetime (Sec. III-A). This bench computes actual round durations under
// a travel-speed + per-sensor charging-time model and reports the ratio
// to the shortest charging cycle, sweeping vehicle speed — exposing where
// the assumption would break (very slow vehicles / very large rounds).
#include <iostream>
#include <numeric>

#include "charging/fleet.hpp"
#include "charging/rounding.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);

  Rng rng(ctx.base.seed);
  const wsn::Network network =
      wsn::deploy_random(ctx.base.deployment, rng);
  const wsn::CycleModel cycle_model(network, ctx.base.cycles, 1);
  const auto cycles = cycle_model.fixed_cycles();
  const auto partition = charging::partition_by_cycles(cycles);

  // The heaviest round charges every sensor; the most frequent one only
  // V_0. Interpret a cycle time unit as one day (a fully charged sensor
  // lasting τ_min = 1 "lasts a day" at minimum — conservative versus the
  // weeks the paper cites).
  constexpr double kSecondsPerCycleUnit = 24.0 * 3600.0;
  std::vector<std::size_t> all(network.n());
  std::iota(all.begin(), all.end(), std::size_t{0});

  std::printf("=== Ablation A5: charging-round duration vs the "
              "negligible-time assumption ===\n");
  std::printf("n=%zu, q=%zu, full round; 1 cycle unit == 1 day\n\n",
              network.n(), network.q());
  ConsoleTable table({"speed (m/s)", "charge (s/sensor)",
                      "round duration (h)", "fraction of tau_min",
                      "assumption"});
  for (double speed : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    for (double charge_s : {30.0, 300.0}) {
      charging::DurationModel model{speed, charge_s};
      const auto plan = charging::plan_minmax_round(network, all, 1);
      const double seconds = charging::round_duration_seconds(plan, model);
      const double fraction =
          seconds / (partition.tau1 * kSecondsPerCycleUnit);
      table.add_row({fmt_fixed(speed, 1), fmt_fixed(charge_s, 0),
                     fmt_fixed(seconds / 3600.0, 2),
                     fmt_fixed(100.0 * fraction, 1) + "%",
                     fraction < 0.1 ? "holds" : "BREAKS"});
    }
  }
  table.print(std::cout);
  std::printf("\nReading: at walking-robot speeds the full-network round "
              "finishes within hours — well under the shortest charging "
              "cycle — validating the paper's model; only sub-1 m/s "
              "vehicles with long per-sensor charging times strain it.\n");
  return 0;
}
