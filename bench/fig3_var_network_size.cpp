// Fig. 3 of the paper: MinTotalDistance-var vs Greedy under *variable*
// maximum charging cycles, sweeping network size n (linear distribution,
// ΔT = 10, σ = 2).
//
// Expected shape (paper): the variable-cycle heuristic remains clearly
// cheaper than Greedy, comparable to its fixed-cycle advantage.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/true);

  const auto kinds = ctx.policies_or({"MinTotalDistance-var",
                              "Greedy"});

  FigureReport report(
      "Fig. 3", "service cost vs network size, variable cycles", "n");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (std::size_t n = 100; n <= 500; n += 100) {
      auto config = ctx.base;
      config.deployment.n = n;
      report.add_point({static_cast<double>(n),
                        run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
