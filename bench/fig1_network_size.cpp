// Fig. 1 of the paper: service cost of MinTotalDistance vs Greedy as the
// network size n varies from 100 to 500, under (a) the linear and (b) the
// random charging-cycle distribution. Fixed maximum charging cycles,
// τ_min = 1, τ_max = 50, T = 1000, q = 5.
//
// Expected shape (paper): under the linear distribution MinTotalDistance
// costs 55-60% of Greedy; under the random distribution 87-93%.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  using namespace mwc::exp;
  auto ctx = bench::make_context(argc, argv, /*variable=*/false);

  const auto kinds = ctx.policies_or({"MinTotalDistance",
                              "Greedy"});

  int rc = 0;
  const struct {
    const char* id;
    const char* title;
    wsn::CycleDistribution distribution;
  } panels[] = {
      {"Fig. 1(a)", "service cost vs network size, linear distribution",
       wsn::CycleDistribution::kLinear},
      {"Fig. 1(b)", "service cost vs network size, random distribution",
       wsn::CycleDistribution::kRandom},
  };

  for (const auto& panel : panels) {
    FigureReport report(panel.id, panel.title, "n");
    rc |= bench::run_figure(ctx, report, [&] {
      for (std::size_t n = 100; n <= 500; n += 100) {
        auto config = ctx.base;
        config.deployment.n = n;
        config.cycles.distribution = panel.distribution;
        report.add_point({static_cast<double>(n),
                          run_policies(config, kinds, ctx.pool.get())});
      }
    });
    if (!ctx.csv_path.empty() || !ctx.svg_path.empty()) break;  // files cover panel (a) only
  }
  return rc;
}
