// Fig. 5 of the paper: stability of charging cycles — service cost vs the
// slot length ΔT (cycles are redrawn each slot), n = 200, τ_max = 50,
// σ = 2.
//
// Expected shape (paper): MinTotalDistance-var approaches Greedy as ΔT
// shrinks toward 1 (extremely unstable cycles) and wins clearly once
// cycles are stable for even a few time units (ΔT >= 4).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mwc::exp;
  auto ctx = mwc::bench::make_context(argc, argv, /*variable=*/true);

  const auto kinds = ctx.policies_or({"MinTotalDistance-var",
                              "Greedy"});
  const double slot_values[] = {1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0};

  FigureReport report("Fig. 5",
                      "service cost vs slot length DT, variable cycles",
                      "DT");
  return mwc::bench::run_figure(ctx, report, [&] {
    for (double slot : slot_values) {
      auto config = ctx.base;
      config.sim.slot_length = slot;
      report.add_point({slot, run_policies(config, kinds, ctx.pool.get())});
    }
  });
}
