// Micro-benchmark for the mwc::obs instrumentation overhead.
//
//   ./micro_obs [--n 400] [--q 5] [--reps 20] [--json PATH]
//
// Times the hottest instrumented path — q_rooted_tsp with 2-opt/Or-opt
// polish over a warm oracle-backed view (MWC_OBS_SCOPE spans, probe-count
// flushes, gauge adds) — plus one Simulator::run over the same network
// (per-dispatch counters + the residual-margin histogram). Built twice by
// scripts/bench_obs.sh, once with -DMWC_OBS=ON and once with
// -DMWC_OBS=OFF, the two --json outputs quantify the telemetry overhead
// (budget: within 2%); the merged result is committed as BENCH_obs.json.
//
// The JSON records which configuration produced it ("obs_enabled") so the
// merge script can't mix the arms up.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "charging/min_total_distance.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 400));
  const auto q = static_cast<std::size_t>(args.get_int_or("q", 5));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 20));
  const std::string json_path = args.get_or("json", "");

  // Deterministic instance shared by both arms of the comparison.
  wsn::DeploymentConfig deploy;
  deploy.n = n;
  deploy.q = q;
  deploy.field_side = 1000.0;
  Rng rng(20140917);
  const wsn::Network network = wsn::deploy_random(deploy, rng);

  std::vector<geom::Point> sensors;
  sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    sensors.push_back(network.sensor(i).position);
  const tsp::DistanceOracle oracle(network.depots(), sensors);
  std::vector<std::size_t> all_ids(n);
  for (std::size_t i = 0; i < n; ++i) all_ids[i] = i;

  tsp::QRootedOptions options;
  options.improve = true;  // polish loops are the probe-heaviest path

  double checksum = 0.0;  // defeats dead-code elimination
  // Warm the oracle rows so every timed rep runs the identical path.
  checksum += tsp::q_rooted_tsp(oracle.dispatch_view(all_ids), q, options)
                  .total_length;

  std::vector<double> tour_times(reps);
  Timer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    timer.reset();
    const auto view = oracle.dispatch_view(all_ids);
    checksum += tsp::q_rooted_tsp(view, q, options).total_length;
    tour_times[r] = timer.elapsed_ms();
  }

  // One short simulated horizon: dispatch counters, cache counters, and
  // the residual-margin histogram on every executed dispatch.
  wsn::CycleModelConfig cycle_config;
  cycle_config.tau_min = 1.0;
  cycle_config.tau_max = 20.0;
  const wsn::CycleModel cycles(network, cycle_config, 7);
  sim::SimOptions sim_options;
  sim_options.horizon = 50.0;
  std::vector<double> sim_times(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    sim::Simulator simulator(network, cycles, sim_options);
    charging::MinTotalDistancePolicy policy;
    timer.reset();
    const auto result = simulator.run(policy);
    sim_times[r] = timer.elapsed_ms();
    checksum += result.service_cost;
  }

  const auto min_of = [](const std::vector<double>& v) {
    double m = v.front();
    for (double t : v) m = std::min(m, t);
    return m;
  };
  const auto mean_of = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double t : v) s += t;
    return s / static_cast<double>(v.size());
  };

  const double tour_ms = min_of(tour_times);
  const double sim_ms = min_of(sim_times);
  std::printf("micro_obs: n=%zu q=%zu reps=%zu obs_enabled=%d\n", n, q,
              reps, MWC_OBS_ENABLED);
  std::printf("  q_rooted_tsp+improve %9.3f ms/rep (min; mean %.3f)\n",
              tour_ms, mean_of(tour_times));
  std::printf("  simulator run        %9.3f ms/rep (min; mean %.3f)\n",
              sim_ms, mean_of(sim_times));
  std::printf("  (checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_obs\",\n"
                 "  \"obs_enabled\": %d,\n"
                 "  \"n\": %zu,\n"
                 "  \"q\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"tour_ms_per_rep\": %.6f,\n"
                 "  \"tour_ms_per_rep_mean\": %.6f,\n"
                 "  \"sim_ms_per_rep\": %.6f,\n"
                 "  \"sim_ms_per_rep_mean\": %.6f\n"
                 "}\n",
                 MWC_OBS_ENABLED, n, q, reps, tour_ms, mean_of(tour_times),
                 sim_ms, mean_of(sim_times));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
