// Micro-benchmark for the mwc::obs instrumentation overhead.
//
//   ./micro_obs [--n 400] [--q 5] [--reps 20] [--svc-batch 256]
//               [--json PATH]
//
// Times the hottest instrumented path — q_rooted_tsp with 2-opt/Or-opt
// polish over a warm oracle-backed view (MWC_OBS_SCOPE spans, probe-count
// flushes, gauge adds) — plus one Simulator::run over the same network
// (per-dispatch counters + the residual-margin histogram), plus the
// service warm-request path: cache-hit requests over a socketpair to an
// mwcd-style serve loop, measured plain and then with the full
// observability plane active (client trace id on the wire, per-stage
// timing echo, access log). Built
// twice by scripts/bench_obs.sh, once with -DMWC_OBS=ON and once with
// -DMWC_OBS=OFF, the two --json outputs quantify the telemetry overhead
// (budget: within 2%, 3% for the traced service path); the merged result
// is committed as BENCH_obs.json.
//
// The JSON records which configuration produced it ("obs_enabled") so the
// merge script can't mix the arms up.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "charging/min_total_distance.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "svc/access_log.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "wsn/deployment.hpp"

namespace {

/// mwcd-style dispatch loop over one connection: split `fd`'s byte
/// stream into JSONL lines, submit each, write response lines back
/// under a mutex. Returns when the peer half-closes.
void serve_fd(mwc::svc::Server& server, int fd) {
  std::mutex write_mutex;
  std::string pending;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    std::size_t newline;
    while ((newline = pending.find('\n', start)) != std::string::npos) {
      const std::string line = pending.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      server.submit_line(
          line,
          [fd, &write_mutex](const mwc::svc::Response& response) {
            const std::string out = mwc::svc::to_jsonl(response);
            std::lock_guard<std::mutex> lock(write_mutex);
            (void)!::write(fd, out.data(), out.size());
          },
          "bench");
    }
    pending.erase(0, start);
  }
}

/// One arm of the service comparison: an in-process server behind a
/// socketpair running an mwcd-style serve loop, so every round trip
/// pays what a daemon client pays — socket write, line split, wire
/// parse, queue, cache probe, response serialization, socket read —
/// minus only the network.
class SvcArm {
 public:
  SvcArm(bool traced, std::size_t n, std::size_t q,
         const std::string& access_path)
      : log_(access_path) {
    using namespace mwc;
    svc::RequestBuilder builder("warm");
    builder.preset(n, q, 1000.0, 11).horizon(100.0);
    if (traced) builder.trace_id("bench-warm-request");
    line_ = builder.to_json_line() + "\n";

    svc::ServerOptions options;
    options.threads = 1;
    options.cache_capacity = 4;
    if (traced) options.access_log = &log_;
    server_ = std::make_unique<svc::Server>(options);

    ok_ = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_) == 0;
    if (!ok_) return;
    serve_thread_ = std::thread(
        [server = server_.get(), fd = fds_[1]] { serve_fd(*server, fd); });
  }

  ~SvcArm() {
    if (!ok_) return;
    ::shutdown(fds_[0], SHUT_WR);  // serve loop sees EOF and returns
    serve_thread_.join();
    ::close(fds_[1]);
    ::close(fds_[0]);
    server_->shutdown();
  }

  bool ok() const { return ok_; }

  /// One request/response round trip; returns response bytes.
  std::size_t round_trip() {
    if (::write(fds_[0], line_.data(), line_.size()) !=
        static_cast<ssize_t>(line_.size()))
      return 0;
    // Sequential round trips: one response line, possibly split across
    // reads, never interleaved with another.
    char buf[1 << 16];
    std::size_t total = 0;
    for (;;) {
      const ssize_t r = ::read(fds_[0], buf, sizeof buf);
      if (r <= 0) return 0;
      total += static_cast<std::size_t>(r);
      if (std::memchr(buf, '\n', static_cast<std::size_t>(r)) != nullptr)
        return total;
    }
  }

 private:
  mwc::svc::AccessLog log_;
  std::unique_ptr<mwc::svc::Server> server_;
  std::string line_;
  int fds_[2] = {-1, -1};
  bool ok_ = false;
  std::thread serve_thread_;
};

/// Microseconds per warm (cache-hit) request for both arms of the
/// observability comparison — [0] plain, [1] traced (client trace id on
/// the wire forcing the stage-timing echo, plus a JSONL access log).
/// The arms run interleaved, batch by batch, so machine-level drift
/// (frequency scaling, noisy neighbours) hits both equally; each arm
/// reports its min over `reps` batches of `batch` round trips. `sink`
/// accumulates response bytes to defeat dead-code elimination.
std::array<double, 2> svc_warm_us_per_request(std::size_t n, std::size_t q,
                                              std::size_t reps,
                                              std::size_t batch,
                                              const std::string& access_path,
                                              double* sink) {
  using namespace mwc;
  SvcArm plain(false, n, q, access_path);
  SvcArm traced(true, n, q, access_path);
  if (!plain.ok() || !traced.ok()) return {-1.0, -1.0};
  SvcArm* arms[2] = {&plain, &traced};

  std::array<double, 2> best_ms = {0.0, 0.0};
  Timer timer;
  for (SvcArm* arm : arms)
    *sink += static_cast<double>(arm->round_trip());  // prime the caches
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t a = 0; a < 2; ++a) {
      timer.reset();
      for (std::size_t i = 0; i < batch; ++i)
        *sink += static_cast<double>(arms[a]->round_trip());
      const double ms = timer.elapsed_ms();
      if (r == 0 || ms < best_ms[a]) best_ms[a] = ms;
    }
  }
  return {best_ms[0] * 1000.0 / static_cast<double>(batch),
          best_ms[1] * 1000.0 / static_cast<double>(batch)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 400));
  const auto q = static_cast<std::size_t>(args.get_int_or("q", 5));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 20));
  const std::string json_path = args.get_or("json", "");

  // Deterministic instance shared by both arms of the comparison.
  wsn::DeploymentConfig deploy;
  deploy.n = n;
  deploy.q = q;
  deploy.field_side = 1000.0;
  Rng rng(20140917);
  const wsn::Network network = wsn::deploy_random(deploy, rng);

  std::vector<geom::Point> sensors;
  sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    sensors.push_back(network.sensor(i).position);
  const tsp::DistanceOracle oracle(network.depots(), sensors);
  std::vector<std::size_t> all_ids(n);
  for (std::size_t i = 0; i < n; ++i) all_ids[i] = i;

  tsp::QRootedOptions options;
  options.improve = true;  // polish loops are the probe-heaviest path

  double checksum = 0.0;  // defeats dead-code elimination
  // Warm the oracle rows so every timed rep runs the identical path.
  checksum += tsp::q_rooted_tsp(oracle.dispatch_view(all_ids), q, options)
                  .total_length;

  std::vector<double> tour_times(reps);
  Timer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    timer.reset();
    const auto view = oracle.dispatch_view(all_ids);
    checksum += tsp::q_rooted_tsp(view, q, options).total_length;
    tour_times[r] = timer.elapsed_ms();
  }

  // One short simulated horizon: dispatch counters, cache counters, and
  // the residual-margin histogram on every executed dispatch.
  wsn::CycleModelConfig cycle_config;
  cycle_config.tau_min = 1.0;
  cycle_config.tau_max = 20.0;
  const wsn::CycleModel cycles(network, cycle_config, 7);
  sim::SimOptions sim_options;
  sim_options.horizon = 50.0;
  std::vector<double> sim_times(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    sim::Simulator simulator(network, cycles, sim_options);
    charging::MinTotalDistancePolicy policy;
    timer.reset();
    const auto result = simulator.run(policy);
    sim_times[r] = timer.elapsed_ms();
    checksum += result.service_cost;
  }

  // Service warm path: cache-hit requests through an in-process server,
  // plain vs the full observability plane (trace ids + access log). Both
  // arms run in THIS binary, so the plain/traced delta isolates the
  // per-request cost of tracing + logging from the build-level
  // MWC_OBS=ON/OFF delta that the tour/sim sections measure.
  const auto svc_batch =
      static_cast<std::size_t>(args.get_int_or("svc-batch", 256));
  const std::string access_path = json_path.empty()
                                      ? "micro_obs_access.jsonl"
                                      : json_path + ".access.jsonl";
  const std::array<double, 2> svc_us = svc_warm_us_per_request(
      n, q, reps, svc_batch, access_path, &checksum);
  const double svc_plain_us = svc_us[0];
  const double svc_traced_us = svc_us[1];
  std::remove(access_path.c_str());

  const auto min_of = [](const std::vector<double>& v) {
    double m = v.front();
    for (double t : v) m = std::min(m, t);
    return m;
  };
  const auto mean_of = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double t : v) s += t;
    return s / static_cast<double>(v.size());
  };

  const double tour_ms = min_of(tour_times);
  const double sim_ms = min_of(sim_times);
  std::printf("micro_obs: n=%zu q=%zu reps=%zu obs_enabled=%d\n", n, q,
              reps, MWC_OBS_ENABLED);
  std::printf("  q_rooted_tsp+improve %9.3f ms/rep (min; mean %.3f)\n",
              tour_ms, mean_of(tour_times));
  std::printf("  simulator run        %9.3f ms/rep (min; mean %.3f)\n",
              sim_ms, mean_of(sim_times));
  std::printf("  svc warm plain       %9.3f us/req (min over %zu x %zu)\n",
              svc_plain_us, reps, svc_batch);
  std::printf("  svc warm traced+log  %9.3f us/req (min over %zu x %zu)\n",
              svc_traced_us, reps, svc_batch);
  std::printf("  (checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_obs\",\n"
                 "  \"obs_enabled\": %d,\n"
                 "  \"n\": %zu,\n"
                 "  \"q\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"tour_ms_per_rep\": %.6f,\n"
                 "  \"tour_ms_per_rep_mean\": %.6f,\n"
                 "  \"sim_ms_per_rep\": %.6f,\n"
                 "  \"sim_ms_per_rep_mean\": %.6f,\n"
                 "  \"svc_batch\": %zu,\n"
                 "  \"svc_plain_us_per_req\": %.6f,\n"
                 "  \"svc_traced_us_per_req\": %.6f\n"
                 "}\n",
                 MWC_OBS_ENABLED, n, q, reps, tour_ms, mean_of(tour_times),
                 sim_ms, mean_of(sim_times), svc_batch, svc_plain_us,
                 svc_traced_us);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
