#include "wsn/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace mwc::wsn {
namespace {

TEST(EwmaPredictor, InitialPrediction) {
  const EwmaPredictor p(0.5, 2.0);
  EXPECT_DOUBLE_EQ(p.predicted_rate(), 2.0);
}

TEST(EwmaPredictor, SingleObservationBlends) {
  EwmaPredictor p(0.5, 2.0);
  p.observe(4.0);
  EXPECT_DOUBLE_EQ(p.predicted_rate(), 3.0);  // 0.5*4 + 0.5*2
}

TEST(EwmaPredictor, ConvergesToConstantSignal) {
  EwmaPredictor p(0.3, 10.0);
  for (int i = 0; i < 100; ++i) p.observe(1.0);
  EXPECT_NEAR(p.predicted_rate(), 1.0, 1e-9);
}

TEST(EwmaPredictor, TracksNoisySignalMean) {
  EwmaPredictor p(0.2, 5.0);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) p.observe(3.0 + rng.uniform(-0.5, 0.5));
  EXPECT_NEAR(p.predicted_rate(), 3.0, 0.3);
}

TEST(EwmaPredictor, HighGammaReactsFaster) {
  EwmaPredictor fast(0.9, 0.0), slow(0.1, 0.0);
  fast.observe(1.0);
  slow.observe(1.0);
  EXPECT_GT(fast.predicted_rate(), slow.predicted_rate());
}

TEST(EwmaPredictor, PredictedCycle) {
  EwmaPredictor p(0.5, 0.1);
  EXPECT_DOUBLE_EQ(p.predicted_cycle(1.0), 10.0);
  EXPECT_DOUBLE_EQ(p.predicted_cycle(2.0), 20.0);
}

TEST(EwmaPredictor, ZeroRateGivesInfiniteCycle) {
  EwmaPredictor p(0.5, 0.0);
  EXPECT_TRUE(std::isinf(p.predicted_cycle(1.0)));
  EXPECT_TRUE(std::isinf(p.predicted_residual_lifetime(0.5)));
}

TEST(EwmaPredictor, ResidualLifetime) {
  EwmaPredictor p(0.5, 0.2);
  EXPECT_DOUBLE_EQ(p.predicted_residual_lifetime(1.0), 5.0);
}

TEST(EwmaPredictorDeath, InvalidGammaAborts) {
  EXPECT_DEATH(EwmaPredictor(0.0, 1.0), "gamma");
  EXPECT_DEATH(EwmaPredictor(1.0, 1.0), "gamma");
}

TEST(FleetPredictor, SizesAndRates) {
  FleetPredictor fleet(0.5, {1.0, 2.0, 4.0});
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_DOUBLE_EQ(fleet.predicted_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(fleet.predicted_cycle(2, 1.0), 0.25);
}

TEST(FleetPredictor, ZeroThresholdReportsAnyChange) {
  FleetPredictor fleet(0.5, {1.0, 1.0});
  const auto reporters = fleet.observe({1.0, 2.0});
  // Sensor 0's prediction is unchanged (0.5*1+0.5*1); sensor 1 moved.
  ASSERT_EQ(reporters.size(), 1u);
  EXPECT_EQ(reporters[0], 1u);
}

TEST(FleetPredictor, ThresholdSuppressesSmallChanges) {
  FleetPredictor fleet(0.5, {10.0, 10.0}, /*report_threshold=*/0.5);
  // Small drift (relative change ~5%) -> no reports.
  EXPECT_TRUE(fleet.observe({11.0, 10.5}).empty());
  // Big jump on sensor 0 -> reported.
  const auto reporters = fleet.observe({60.0, 10.5});
  ASSERT_EQ(reporters.size(), 1u);
  EXPECT_EQ(reporters[0], 0u);
}

TEST(FleetPredictor, ObserveRejectsLengthMismatch) {
  FleetPredictor fleet(0.5, {1.0, 2.0, 4.0});
  EXPECT_THROW(fleet.observe({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fleet.observe({1.0, 2.0, 4.0, 8.0}), std::invalid_argument);
  EXPECT_THROW(fleet.observe({}), std::invalid_argument);
  // A rejected observation must leave every prediction untouched.
  EXPECT_DOUBLE_EQ(fleet.predicted_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(fleet.predicted_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(fleet.predicted_rate(2), 4.0);
  // The fleet still accepts a correctly sized vector afterwards.
  fleet.observe({2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(fleet.predicted_rate(0), 1.5);
}

TEST(FleetPredictor, ReportBaselineUpdatesOnReport) {
  FleetPredictor fleet(0.9, {1.0}, 0.3);
  // First big jump reports and re-baselines.
  EXPECT_EQ(fleet.observe({10.0}).size(), 1u);
  // Staying near the new level does not re-report.
  EXPECT_TRUE(fleet.observe({9.5}).empty());
}

}  // namespace
}  // namespace mwc::wsn
