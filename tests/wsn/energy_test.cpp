#include "wsn/energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::wsn {
namespace {

Network dense_network(std::size_t n = 150, std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.n = n;
  config.field_side = 1000.0;
  Rng rng(seed);
  return deploy_random(config, rng);
}

TEST(EnergyProfile, LoadsConserveData) {
  const auto net = dense_network();
  EnergyModelConfig config;
  config.comm_range = 200.0;
  const auto profile = compute_energy_profile(net, config);
  // Every sensor generates gen_rate; total inflow at the BS equals n * gen.
  double into_base = 0.0;
  for (std::size_t v = 0; v < net.n(); ++v) {
    if (profile.route_parent[v] == EnergyProfile::kToBaseStation)
      into_base += profile.load[v];
  }
  EXPECT_NEAR(into_base, config.gen_rate * double(net.n()), 1e-9);
}

TEST(EnergyProfile, LeafCarriesOwnLoadOnly) {
  const auto net = dense_network(100, 2);
  EnergyModelConfig config;
  config.comm_range = 200.0;
  const auto profile = compute_energy_profile(net, config);
  // A sensor nobody routes through carries exactly its own data.
  std::vector<bool> is_parent(net.n(), false);
  for (std::size_t v = 0; v < net.n(); ++v) {
    if (profile.route_parent[v] != EnergyProfile::kToBaseStation)
      is_parent[profile.route_parent[v]] = true;
  }
  bool found_leaf = false;
  for (std::size_t v = 0; v < net.n(); ++v) {
    if (!is_parent[v]) {
      EXPECT_DOUBLE_EQ(profile.load[v], config.gen_rate);
      found_leaf = true;
    }
  }
  EXPECT_TRUE(found_leaf);
}

TEST(EnergyProfile, RatesPositiveAndCyclesFinite) {
  const auto net = dense_network(120, 3);
  EnergyModelConfig config;
  const auto profile = compute_energy_profile(net, config);
  for (std::size_t v = 0; v < net.n(); ++v) {
    EXPECT_GT(profile.rate[v], 0.0);
    EXPECT_TRUE(std::isfinite(profile.cycle[v]));
    EXPECT_GT(profile.cycle[v], 0.0);
  }
}

TEST(EnergyProfile, RelaysNearBaseDrainFaster) {
  // With enough density, the average cycle of the nearest quartile should
  // be well below the farthest quartile — the paper's "linear" rationale.
  const auto net = dense_network(300, 4);
  EnergyModelConfig config;
  config.comm_range = 150.0;
  const auto profile = compute_energy_profile(net, config);

  std::vector<std::size_t> order(net.n());
  for (std::size_t i = 0; i < net.n(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net.distance_to_base(a) < net.distance_to_base(b);
  });
  const std::size_t quartile = net.n() / 4;
  double near_cycle = 0.0, far_cycle = 0.0;
  for (std::size_t k = 0; k < quartile; ++k) {
    near_cycle += profile.cycle[order[k]];
    far_cycle += profile.cycle[order[net.n() - 1 - k]];
  }
  EXPECT_LT(near_cycle, far_cycle);
}

TEST(EnergyProfile, HopCountsPositive) {
  const auto net = dense_network(80, 5);
  EnergyModelConfig config;
  const auto profile = compute_energy_profile(net, config);
  for (std::size_t v = 0; v < net.n(); ++v)
    EXPECT_GE(profile.hops[v], 1u);
}

TEST(EnergyProfile, SparseNetworkFallsBackToDirect) {
  DeploymentConfig dconfig;
  dconfig.n = 5;
  dconfig.field_side = 10000.0;  // far apart, disconnected at range 150
  Rng rng(6);
  const auto net = deploy_random(dconfig, rng);
  EnergyModelConfig config;
  config.comm_range = 150.0;
  config.allow_direct_fallback = true;
  const auto profile = compute_energy_profile(net, config);
  for (std::size_t v = 0; v < net.n(); ++v)
    EXPECT_GT(profile.rate[v], 0.0);
}

TEST(EnergyProfile, EmptyNetwork) {
  const Network net;
  const auto profile = compute_energy_profile(net, {});
  EXPECT_TRUE(profile.rate.empty());
}

TEST(Battery, DischargeAndRecharge) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.level(), 10.0);
  EXPECT_DOUBLE_EQ(b.discharge(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(b.level(), 4.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 0.4);
  EXPECT_DOUBLE_EQ(b.recharge_full(), 6.0);
  EXPECT_DOUBLE_EQ(b.level(), 10.0);
}

TEST(Battery, ClampsAtZero) {
  Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.discharge(10.0, 1.0), 5.0);  // only 5 available
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, LifetimeAtRate) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.lifetime_at(2.0), 5.0);
  EXPECT_TRUE(std::isinf(b.lifetime_at(0.0)));
  b.discharge(1.0, 4.0);
  EXPECT_DOUBLE_EQ(b.lifetime_at(2.0), 3.0);
}

TEST(Battery, ResidualLifetimeRescalesLikeSimulator) {
  // The simulator's residual-life rescale at a rate change must match the
  // explicit battery model: fraction is invariant.
  Battery b(1.0);
  b.discharge(0.1, 4.0);  // 0.6 left; at rate 0.1 residual life = 6
  EXPECT_NEAR(b.lifetime_at(0.1), 6.0, 1e-12);
  // Rate doubles: residual life halves — same as scaling by tau_new/tau_old.
  EXPECT_NEAR(b.lifetime_at(0.2), 3.0, 1e-12);
}

TEST(BatteryDeath, NonPositiveCapacityAborts) {
  EXPECT_DEATH(Battery(0.0), "capacity");
}

}  // namespace
}  // namespace mwc::wsn
