#include "wsn/cycles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::wsn {
namespace {

Network test_network(std::size_t n = 100, std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.n = n;
  Rng rng(seed);
  return deploy_random(config, rng);
}

TEST(CycleModel, CyclesWithinBounds) {
  const auto net = test_network();
  CycleModelConfig config;
  config.tau_min = 1.0;
  config.tau_max = 50.0;
  config.sigma = 10.0;
  const CycleModel model(net, config, 42);
  for (std::size_t slot = 0; slot < 20; ++slot) {
    for (std::size_t i = 0; i < net.n(); ++i) {
      const double tau = model.cycle_at_slot(i, slot);
      EXPECT_GE(tau, config.tau_min);
      EXPECT_LE(tau, config.tau_max);
    }
  }
}

TEST(CycleModel, LinearMeansGrowWithDistance) {
  const auto net = test_network(200, 2);
  CycleModelConfig config;
  config.distribution = CycleDistribution::kLinear;
  const CycleModel model(net, config, 1);
  for (std::size_t i = 0; i < net.n(); ++i) {
    for (std::size_t j = 0; j < net.n(); ++j) {
      if (net.distance_to_base(i) < net.distance_to_base(j)) {
        EXPECT_LE(model.mean_cycle(i), model.mean_cycle(j) + 1e-12);
      }
    }
  }
}

TEST(CycleModel, LinearExtremes) {
  const auto net = test_network(300, 3);
  CycleModelConfig config;
  config.tau_min = 1.0;
  config.tau_max = 50.0;
  const CycleModel model(net, config, 1);
  double lo = 1e18, hi = -1e18;
  for (std::size_t i = 0; i < net.n(); ++i) {
    lo = std::min(lo, model.mean_cycle(i));
    hi = std::max(hi, model.mean_cycle(i));
  }
  EXPECT_GE(lo, config.tau_min);
  EXPECT_LE(hi, config.tau_max);
  // The farthest sensor has exactly tau_max by construction.
  EXPECT_NEAR(hi, config.tau_max, 1e-9);
}

TEST(CycleModel, RandomMeansSpreadIndependentOfDistance) {
  const auto net = test_network(400, 4);
  CycleModelConfig config;
  config.distribution = CycleDistribution::kRandom;
  const CycleModel model(net, config, 7);
  // Correlation between distance and mean cycle should be near zero.
  double sum_d = 0, sum_t = 0;
  for (std::size_t i = 0; i < net.n(); ++i) {
    sum_d += net.distance_to_base(i);
    sum_t += model.mean_cycle(i);
  }
  const double md = sum_d / double(net.n());
  const double mt = sum_t / double(net.n());
  double sdt = 0, sdd = 0, stt = 0;
  for (std::size_t i = 0; i < net.n(); ++i) {
    const double dd = net.distance_to_base(i) - md;
    const double dt = model.mean_cycle(i) - mt;
    sdt += dd * dt;
    sdd += dd * dd;
    stt += dt * dt;
  }
  const double corr = sdt / std::sqrt(sdd * stt);
  EXPECT_LT(std::abs(corr), 0.15);
}

TEST(CycleModel, SigmaZeroIsDeterministicAcrossSlots) {
  const auto net = test_network(50, 5);
  CycleModelConfig config;
  config.sigma = 0.0;
  const CycleModel model(net, config, 3);
  for (std::size_t i = 0; i < net.n(); ++i) {
    const double tau0 = model.cycle_at_slot(i, 0);
    for (std::size_t slot = 1; slot < 10; ++slot)
      EXPECT_EQ(model.cycle_at_slot(i, slot), tau0);
    EXPECT_DOUBLE_EQ(tau0, model.mean_cycle(i));
  }
}

TEST(CycleModel, SigmaPositiveVariesAcrossSlots) {
  const auto net = test_network(50, 6);
  CycleModelConfig config;
  config.sigma = 2.0;
  const CycleModel model(net, config, 3);
  bool any_varied = false;
  for (std::size_t i = 0; i < net.n() && !any_varied; ++i) {
    if (model.cycle_at_slot(i, 0) != model.cycle_at_slot(i, 1))
      any_varied = true;
  }
  EXPECT_TRUE(any_varied);
}

TEST(CycleModel, SameSeedSameDraws) {
  const auto net = test_network(30, 7);
  CycleModelConfig config;
  const CycleModel a(net, config, 99), b(net, config, 99);
  for (std::size_t slot = 0; slot < 5; ++slot)
    EXPECT_EQ(a.cycles_at_slot(slot), b.cycles_at_slot(slot));
}

TEST(CycleModel, DifferentSeedsDiffer) {
  const auto net = test_network(30, 8);
  CycleModelConfig config;
  const CycleModel a(net, config, 1), b(net, config, 2);
  EXPECT_NE(a.cycles_at_slot(0), b.cycles_at_slot(0));
}

TEST(CycleModel, RandomAccessOrderIndependent) {
  const auto net = test_network(20, 9);
  CycleModelConfig config;
  const CycleModel model(net, config, 5);
  const double late_first = model.cycle_at_slot(10, 500);
  const double early = model.cycle_at_slot(10, 1);
  const double late_again = model.cycle_at_slot(10, 500);
  (void)early;
  EXPECT_EQ(late_first, late_again);
}

TEST(CycleModel, FixedCyclesAreSlotZero) {
  const auto net = test_network(20, 10);
  CycleModelConfig config;
  const CycleModel model(net, config, 5);
  EXPECT_EQ(model.fixed_cycles(), model.cycles_at_slot(0));
}

TEST(CycleModelDeath, InvalidConfigAborts) {
  const auto net = test_network(5, 11);
  CycleModelConfig config;
  config.tau_min = 0.0;
  EXPECT_DEATH(CycleModel(net, config, 1), "tau_min");
}

}  // namespace
}  // namespace mwc::wsn
