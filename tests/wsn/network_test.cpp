#include "wsn/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mwc::wsn {
namespace {

Network make_network() {
  std::vector<Sensor> sensors{
      {0, {0, 0}, 1.0}, {1, {3, 4}, 1.0}, {2, {500, 500}, 2.0}};
  return Network(std::move(sensors), {0, 0}, {{0, 0}, {10, 10}},
                 geom::BBox::square(1000.0));
}

TEST(Network, BasicAccessors) {
  const auto net = make_network();
  EXPECT_EQ(net.n(), 3u);
  EXPECT_EQ(net.q(), 2u);
  EXPECT_EQ(net.base_station(), geom::Point(0, 0));
  EXPECT_EQ(net.sensor(2).battery_capacity, 2.0);
  EXPECT_EQ(net.field().hi, geom::Point(1000, 1000));
}

TEST(Network, SensorPointsMatch) {
  const auto net = make_network();
  ASSERT_EQ(net.sensor_points().size(), 3u);
  for (std::size_t i = 0; i < net.n(); ++i)
    EXPECT_EQ(net.sensor_points()[i], net.sensor(i).position);
}

TEST(Network, DistancesToBase) {
  const auto net = make_network();
  EXPECT_DOUBLE_EQ(net.distance_to_base(0), 0.0);
  EXPECT_DOUBLE_EQ(net.distance_to_base(1), 5.0);
  EXPECT_NEAR(net.max_distance_to_base(), net.distance_to_base(2), 1e-12);
}

TEST(Network, EmptyNetwork) {
  const Network net;
  EXPECT_EQ(net.n(), 0u);
  EXPECT_EQ(net.q(), 0u);
  EXPECT_EQ(net.max_distance_to_base(), 0.0);
}

TEST(NetworkDeath, MisnumberedSensorIdsAbort) {
  std::vector<Sensor> sensors{{1, {0, 0}, 1.0}};  // id 1 at index 0
  EXPECT_DEATH(Network(std::move(sensors), {0, 0}, {},
                       geom::BBox::square(10.0)),
               "ids");
}

}  // namespace
}  // namespace mwc::wsn
