#include "wsn/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::wsn {
namespace {

TEST(TraceProcess, BasicAccess) {
  const TraceCycleProcess trace({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(trace.n(), 2u);
  EXPECT_EQ(trace.recorded_slots(), 2u);
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(1, 1), 4.0);
}

TEST(TraceProcess, HoldsLastSlotBeyondTrace) {
  const TraceCycleProcess trace({{1.0}, {5.0}});
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(0, 99), 5.0);
}

TEST(TraceProcess, CyclesAtSlotVector) {
  const TraceCycleProcess trace({{1.0, 2.0, 3.0}});
  EXPECT_EQ(trace.cycles_at_slot(0), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TraceProcessDeath, InvalidInputs) {
  using Rows = std::vector<std::vector<double>>;
  EXPECT_DEATH(TraceCycleProcess(Rows{}), "at least one slot");
  EXPECT_DEATH(TraceCycleProcess(Rows{{1.0}, {1.0, 2.0}}), "ragged");
  EXPECT_DEATH(TraceCycleProcess(Rows{{0.0}}), "positive");
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/mwc_trace_test.csv";
};

TEST_F(TraceIoTest, RoundTrip) {
  const TraceCycleProcess original({{1.5, 2.5}, {3.5, 4.5}, {5.5, 6.5}});
  save_cycle_trace(original, 3, path_);
  const auto loaded = load_cycle_trace(path_);
  EXPECT_EQ(loaded.n(), 2u);
  EXPECT_EQ(loaded.recorded_slots(), 3u);
  for (std::size_t s = 0; s < 3; ++s)
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_DOUBLE_EQ(loaded.cycle_at_slot(i, s),
                       original.cycle_at_slot(i, s));
}

TEST_F(TraceIoTest, SnapshotOfSyntheticModelReplaysIdentically) {
  wsn::DeploymentConfig deployment;
  deployment.n = 20;
  Rng rng(1);
  const auto network = deploy_random(deployment, rng);
  CycleModelConfig config;
  config.sigma = 3.0;
  const CycleModel model(network, config, 7);

  save_cycle_trace(model, 12, path_);
  const auto trace = load_cycle_trace(path_);
  for (std::size_t s = 0; s < 12; ++s) {
    for (std::size_t i = 0; i < network.n(); ++i) {
      EXPECT_NEAR(trace.cycle_at_slot(i, s), model.cycle_at_slot(i, s),
                  1e-4 * model.cycle_at_slot(i, s));
    }
  }
}

TEST_F(TraceIoTest, AcceptsCrlfLineEndings) {
  {
    std::ofstream out(path_);
    // A Windows-authored trace: header + every row CRLF-terminated.
    out << "# slots=2 n=2\r\n1.5,2.5\r\n3.5,4.5\r\n";
  }
  const auto trace = load_cycle_trace(path_);
  EXPECT_EQ(trace.n(), 2u);
  EXPECT_EQ(trace.recorded_slots(), 2u);
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(1, 1), 4.5);
}

TEST_F(TraceIoTest, AcceptsTrailingBlankLine) {
  {
    std::ofstream out(path_);
    // Trailing newline(s) after the last row — including the CRLF form,
    // where the final "blank" line getline sees is a lone '\r'.
    out << "1.0,2.0\n3.0,4.0\n\n";
  }
  EXPECT_EQ(load_cycle_trace(path_).recorded_slots(), 2u);
  {
    std::ofstream out(path_);
    out << "1.0,2.0\r\n3.0,4.0\r\n\r\n";
  }
  const auto trace = load_cycle_trace(path_);
  EXPECT_EQ(trace.recorded_slots(), 2u);
  EXPECT_DOUBLE_EQ(trace.cycle_at_slot(1, 1), 4.0);
}

TEST_F(TraceIoTest, CrlfStillRejectsMalformedRows) {
  {
    std::ofstream out(path_);
    out << "1.0,2.0\r\nnot_a_number,3.0\r\n";
  }
  EXPECT_THROW(load_cycle_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, MalformedFilesThrow) {
  {
    std::ofstream out(path_);
    out << "1.0,2.0\nnot_a_number,3.0\n";
  }
  EXPECT_THROW(load_cycle_trace(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "# only a header\n";
  }
  EXPECT_THROW(load_cycle_trace(path_), std::runtime_error);
  EXPECT_THROW(load_cycle_trace("/nonexistent_zzz/trace.csv"),
               std::runtime_error);
}

TEST_F(TraceIoTest, SimulatorRunsOnTrace) {
  wsn::DeploymentConfig deployment;
  deployment.n = 15;
  deployment.q = 2;
  Rng rng(2);
  const auto network = deploy_random(deployment, rng);

  // Hand-built history: cycles drift downward over 10 slots.
  std::vector<std::vector<double>> rows;
  for (std::size_t s = 0; s < 10; ++s) {
    std::vector<double> row;
    for (std::size_t i = 0; i < network.n(); ++i)
      row.push_back(4.0 + double(i % 5) - 0.2 * double(s));
    rows.push_back(std::move(row));
  }
  const TraceCycleProcess trace(std::move(rows));

  sim::SimOptions options;
  options.horizon = 60.0;
  options.slot_length = 5.0;
  sim::Simulator simulator(network, trace, options);
  charging::MinTotalDistanceVarPolicy policy;
  const auto result = simulator.run(policy);
  EXPECT_EQ(result.dead_sensors, 0u);
  EXPECT_GT(result.service_cost, 0.0);
}

}  // namespace
}  // namespace mwc::wsn
