#include "wsn/deployment.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mwc::wsn {
namespace {

TEST(DeployRandom, RespectsConfig) {
  DeploymentConfig config;
  config.n = 100;
  config.q = 5;
  config.field_side = 1000.0;
  Rng rng(1);
  const auto net = deploy_random(config, rng);
  EXPECT_EQ(net.n(), 100u);
  EXPECT_EQ(net.q(), 5u);
  EXPECT_EQ(net.base_station(), geom::Point(500, 500));
}

TEST(DeployRandom, SensorsInsideField) {
  DeploymentConfig config;
  config.n = 300;
  Rng rng(2);
  const auto net = deploy_random(config, rng);
  for (const auto& s : net.sensors())
    EXPECT_TRUE(net.field().contains(s.position))
        << "sensor " << s.id << " outside field";
  for (const auto& d : net.depots())
    EXPECT_TRUE(net.field().contains(d));
}

TEST(DeployRandom, DepotZeroAtBaseStation) {
  DeploymentConfig config;
  Rng rng(3);
  const auto net = deploy_random(config, rng);
  ASSERT_GE(net.q(), 1u);
  EXPECT_EQ(net.depots()[0], net.base_station());
}

TEST(DeployRandom, NoDepotAtBaseWhenDisabled) {
  DeploymentConfig config;
  config.depot_at_base_station = false;
  config.q = 3;
  Rng rng(4);
  const auto net = deploy_random(config, rng);
  EXPECT_EQ(net.q(), 3u);
  // Vanishingly unlikely a random depot is exactly the centre.
  for (const auto& d : net.depots()) EXPECT_NE(d, net.base_station());
}

TEST(DeployRandom, IdsAreSequential) {
  DeploymentConfig config;
  config.n = 50;
  Rng rng(5);
  const auto net = deploy_random(config, rng);
  for (std::size_t i = 0; i < net.n(); ++i) EXPECT_EQ(net.sensor(i).id, i);
}

TEST(DeployRandom, DeterministicForSameRngStream) {
  DeploymentConfig config;
  config.n = 40;
  Rng a(77), b(77);
  const auto na = deploy_random(config, a);
  const auto nb = deploy_random(config, b);
  for (std::size_t i = 0; i < na.n(); ++i)
    EXPECT_EQ(na.sensor(i).position, nb.sensor(i).position);
  EXPECT_EQ(na.depots(), nb.depots());
}

TEST(DeployRandom, BatteryCapacityApplied) {
  DeploymentConfig config;
  config.n = 10;
  config.battery_capacity = 3.5;
  Rng rng(6);
  const auto net = deploy_random(config, rng);
  for (const auto& s : net.sensors())
    EXPECT_DOUBLE_EQ(s.battery_capacity, 3.5);
}

TEST(DeployGrid, CoversFieldEvenly) {
  DeploymentConfig config;
  config.n = 100;
  config.field_side = 1000.0;
  Rng rng(7);
  const auto net = deploy_grid(config, 0.0, rng);
  EXPECT_EQ(net.n(), 100u);
  for (const auto& s : net.sensors())
    EXPECT_TRUE(net.field().contains(s.position));
  // Zero jitter: first two sensors are one grid step apart in x.
  const double dx = net.sensor(1).position.x - net.sensor(0).position.x;
  EXPECT_NEAR(dx, 100.0, 1e-9);
}

TEST(DeployGrid, JitterStaysInCell) {
  DeploymentConfig config;
  config.n = 64;
  Rng rng(8);
  const auto net = deploy_grid(config, 0.4, rng);
  for (const auto& s : net.sensors())
    EXPECT_TRUE(net.field().contains(s.position));
}

TEST(DeployRandom, ZeroSensors) {
  DeploymentConfig config;
  config.n = 0;
  Rng rng(9);
  const auto net = deploy_random(config, rng);
  EXPECT_EQ(net.n(), 0u);
  EXPECT_EQ(net.q(), 5u);
}

}  // namespace
}  // namespace mwc::wsn
