#include "wsn/storm.hpp"

#include <gtest/gtest.h>

#include "charging/greedy.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::wsn {
namespace {

Network test_network(std::size_t n = 80, std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.n = n;
  Rng rng(seed);
  return deploy_random(config, rng);
}

TEST(StormProcess, SlotZeroIsCalm) {
  const auto net = test_network();
  StormConfig config;
  const StormCycleProcess storm(net, config, 1);
  for (std::size_t i = 0; i < net.n(); ++i) {
    EXPECT_FALSE(storm.storming(i, 0));
    EXPECT_DOUBLE_EQ(storm.cycle_at_slot(i, 0), storm.mean_cycle(i));
  }
  EXPECT_DOUBLE_EQ(storm.storm_fraction(0), 0.0);
}

TEST(StormProcess, CyclesWithinBounds) {
  const auto net = test_network(60, 2);
  StormConfig config;
  config.stress_factor = 8.0;
  const StormCycleProcess storm(net, config, 2);
  for (std::size_t slot = 0; slot < 50; ++slot) {
    for (std::size_t i = 0; i < net.n(); ++i) {
      const double tau = storm.cycle_at_slot(i, slot);
      EXPECT_GE(tau, config.tau_min);
      EXPECT_LE(tau, config.tau_max);
    }
  }
}

TEST(StormProcess, StormShrinksCycle) {
  const auto net = test_network(100, 3);
  StormConfig config;
  config.p_enter = 0.5;
  config.stress_factor = 4.0;
  const StormCycleProcess storm(net, config, 3);
  bool found = false;
  for (std::size_t slot = 1; slot < 20 && !found; ++slot) {
    for (std::size_t i = 0; i < net.n(); ++i) {
      if (storm.storming(i, slot)) {
        EXPECT_LT(storm.cycle_at_slot(i, slot),
                  storm.mean_cycle(i) + 1e-12);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "no storm within 20 slots at p_enter=0.5";
}

TEST(StormProcess, StationaryStormFractionNearExpected) {
  const auto net = test_network(300, 4);
  StormConfig config;
  config.p_enter = 0.1;
  config.p_exit = 0.3;
  const StormCycleProcess storm(net, config, 4);
  // Stationary fraction of a 2-state chain: p_enter / (p_enter + p_exit).
  const double expected = 0.1 / 0.4;
  double avg = 0.0;
  const std::size_t slots = 200;
  for (std::size_t s = 50; s < 50 + slots; ++s)
    avg += storm.storm_fraction(s) / double(slots);
  EXPECT_NEAR(avg, expected, 0.05);
}

TEST(StormProcess, DeterministicPerSeed) {
  const auto net = test_network(40, 5);
  StormConfig config;
  const StormCycleProcess a(net, config, 7), b(net, config, 7);
  for (std::size_t s = 0; s < 30; ++s)
    EXPECT_EQ(a.cycles_at_slot(s), b.cycles_at_slot(s));
}

TEST(StormProcess, RandomAccessConsistent) {
  const auto net = test_network(30, 6);
  StormConfig config;
  const StormCycleProcess storm(net, config, 8);
  const double late = storm.cycle_at_slot(5, 100);
  (void)storm.cycle_at_slot(5, 3);
  EXPECT_EQ(storm.cycle_at_slot(5, 100), late);
}

TEST(StormProcess, RegionalModeStormsAreSpatiallyCoherent) {
  const auto net = test_network(300, 7);
  StormConfig config;
  config.regional = true;
  config.storm_radius = 250.0;
  const StormCycleProcess storm(net, config, 9);
  // Find a slot with a storm; all storming sensors must fit in a disc of
  // the configured radius.
  for (std::size_t slot = 1; slot < 40; ++slot) {
    std::vector<std::size_t> stormers;
    for (std::size_t i = 0; i < net.n(); ++i)
      if (storm.storming(i, slot)) stormers.push_back(i);
    if (stormers.size() < 2) continue;
    for (std::size_t a : stormers)
      for (std::size_t b : stormers)
        EXPECT_LE(geom::distance(net.sensor(a).position,
                                 net.sensor(b).position),
                  2.0 * config.storm_radius + 1e-9);
    return;
  }
  GTEST_SKIP() << "no multi-sensor storm in 40 slots";
}

TEST(StormProcess, RegionalModeDeterministicPerSeed) {
  const auto net = test_network(200, 9);
  StormConfig config;
  config.regional = true;
  config.storm_radius = 300.0;
  const StormCycleProcess a(net, config, 11), b(net, config, 11);
  const StormCycleProcess other(net, config, 12);
  bool any_storm = false;
  bool seeds_differ = false;
  for (std::size_t slot = 0; slot < 64; ++slot) {
    for (std::size_t i = 0; i < net.n(); ++i) {
      // The regional chain is a pure function of (seed, slot): two
      // processes with the same seed must replay the identical storm
      // trajectory, query order notwithstanding.
      ASSERT_EQ(a.storming(i, slot), b.storming(i, slot))
          << "slot " << slot << " sensor " << i;
      ASSERT_DOUBLE_EQ(a.cycle_at_slot(i, slot), b.cycle_at_slot(i, slot));
      any_storm = any_storm || a.storming(i, slot);
      seeds_differ =
          seeds_differ || a.storming(i, slot) != other.storming(i, slot);
    }
  }
  EXPECT_TRUE(any_storm) << "no regional storm in 64 slots";
  EXPECT_TRUE(seeds_differ) << "independent seeds replayed the same storms";
}

TEST(StormProcess, RegionalChainCorrelatesSensorsInsideRadius) {
  const auto net = test_network(300, 10);
  StormConfig config;
  config.regional = true;
  config.storm_radius = 350.0;
  const StormCycleProcess storm(net, config, 13);
  // In regional mode a slot's storm is one shared cell, not independent
  // per-sensor draws: whenever any sensor storms, every sensor within
  // storm_radius of it either storms too or lies outside the (unknown)
  // cell centre's disc — so the storming set must be pairwise within one
  // cell diameter, and across many active slots the same nearby sensors
  // storm together far more often than independent chains would allow.
  std::size_t active_slots = 0;
  for (std::size_t slot = 1; slot < 80; ++slot) {
    std::vector<std::size_t> stormers;
    for (std::size_t i = 0; i < net.n(); ++i)
      if (storm.storming(i, slot)) stormers.push_back(i);
    if (stormers.empty()) continue;
    ++active_slots;
    for (const std::size_t a : stormers)
      for (const std::size_t b : stormers)
        ASSERT_LE(geom::distance(net.sensor(a).position,
                                 net.sensor(b).position),
                  2.0 * config.storm_radius + 1e-9)
            << "slot " << slot;
  }
  // ~half of all slots carry an active cell (the regional gate); with 80
  // slots the chance of fewer than 10 is negligible.
  EXPECT_GE(active_slots, 10u);
}

TEST(StormProcess, AdaptivePoliciesSurviveStorms) {
  const auto net = test_network(60, 8);
  StormConfig config;
  config.p_enter = 0.15;
  config.stress_factor = 6.0;
  const StormCycleProcess storm(net, config, 10);

  sim::SimOptions options;
  options.horizon = 300.0;
  options.slot_length = 5.0;
  sim::Simulator simulator(net, storm, options);

  charging::MinTotalDistanceVarPolicy var;
  EXPECT_EQ(simulator.run(var).dead_sensors, 0u);
  charging::GreedyPolicy greedy(
      charging::GreedyOptions{.threshold = config.tau_min});
  EXPECT_EQ(simulator.run(greedy).dead_sensors, 0u);
}

}  // namespace
}  // namespace mwc::wsn
