file(REMOVE_RECURSE
  "CMakeFiles/dsu_test.dir/graph/dsu_test.cpp.o"
  "CMakeFiles/dsu_test.dir/graph/dsu_test.cpp.o.d"
  "dsu_test"
  "dsu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
