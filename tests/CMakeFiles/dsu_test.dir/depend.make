# Empty dependencies file for dsu_test.
# This may be replaced when dependencies are built.
