file(REMOVE_RECURSE
  "CMakeFiles/grid_index_test.dir/geom/grid_index_test.cpp.o"
  "CMakeFiles/grid_index_test.dir/geom/grid_index_test.cpp.o.d"
  "grid_index_test"
  "grid_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
