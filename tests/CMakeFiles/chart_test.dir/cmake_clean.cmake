file(REMOVE_RECURSE
  "CMakeFiles/chart_test.dir/viz/chart_test.cpp.o"
  "CMakeFiles/chart_test.dir/viz/chart_test.cpp.o.d"
  "chart_test"
  "chart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
