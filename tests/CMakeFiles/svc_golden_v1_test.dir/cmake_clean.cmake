file(REMOVE_RECURSE
  "CMakeFiles/svc_golden_v1_test.dir/svc/golden_v1_test.cpp.o"
  "CMakeFiles/svc_golden_v1_test.dir/svc/golden_v1_test.cpp.o.d"
  "svc_golden_v1_test"
  "svc_golden_v1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_golden_v1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
