# Empty dependencies file for svc_golden_v1_test.
# This may be replaced when dependencies are built.
