file(REMOVE_RECURSE
  "CMakeFiles/lemma3_construction_test.dir/integration/lemma3_construction_test.cpp.o"
  "CMakeFiles/lemma3_construction_test.dir/integration/lemma3_construction_test.cpp.o.d"
  "lemma3_construction_test"
  "lemma3_construction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma3_construction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
