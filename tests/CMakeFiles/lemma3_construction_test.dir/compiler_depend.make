# Empty compiler generated dependencies file for lemma3_construction_test.
# This may be replaced when dependencies are built.
