# Empty dependencies file for euler_test.
# This may be replaced when dependencies are built.
