file(REMOVE_RECURSE
  "CMakeFiles/euler_test.dir/graph/euler_test.cpp.o"
  "CMakeFiles/euler_test.dir/graph/euler_test.cpp.o.d"
  "euler_test"
  "euler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
