file(REMOVE_RECURSE
  "CMakeFiles/deployment_test.dir/wsn/deployment_test.cpp.o"
  "CMakeFiles/deployment_test.dir/wsn/deployment_test.cpp.o.d"
  "deployment_test"
  "deployment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
