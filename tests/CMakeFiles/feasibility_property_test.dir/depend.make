# Empty dependencies file for feasibility_property_test.
# This may be replaced when dependencies are built.
