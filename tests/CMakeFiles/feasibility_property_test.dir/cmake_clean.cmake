file(REMOVE_RECURSE
  "CMakeFiles/feasibility_property_test.dir/integration/feasibility_property_test.cpp.o"
  "CMakeFiles/feasibility_property_test.dir/integration/feasibility_property_test.cpp.o.d"
  "feasibility_property_test"
  "feasibility_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
