# Empty compiler generated dependencies file for solve_test.
# This may be replaced when dependencies are built.
