file(REMOVE_RECURSE
  "CMakeFiles/solve_test.dir/sim/solve_test.cpp.o"
  "CMakeFiles/solve_test.dir/sim/solve_test.cpp.o.d"
  "solve_test"
  "solve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
