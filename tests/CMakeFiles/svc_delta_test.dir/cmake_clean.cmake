file(REMOVE_RECURSE
  "CMakeFiles/svc_delta_test.dir/svc/delta_test.cpp.o"
  "CMakeFiles/svc_delta_test.dir/svc/delta_test.cpp.o.d"
  "svc_delta_test"
  "svc_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
