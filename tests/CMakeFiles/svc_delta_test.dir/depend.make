# Empty dependencies file for svc_delta_test.
# This may be replaced when dependencies are built.
