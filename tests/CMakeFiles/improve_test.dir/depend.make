# Empty dependencies file for improve_test.
# This may be replaced when dependencies are built.
