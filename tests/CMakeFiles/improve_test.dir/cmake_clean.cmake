file(REMOVE_RECURSE
  "CMakeFiles/improve_test.dir/tsp/improve_test.cpp.o"
  "CMakeFiles/improve_test.dir/tsp/improve_test.cpp.o.d"
  "improve_test"
  "improve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/improve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
