file(REMOVE_RECURSE
  "CMakeFiles/var_heuristic_test.dir/charging/var_heuristic_test.cpp.o"
  "CMakeFiles/var_heuristic_test.dir/charging/var_heuristic_test.cpp.o.d"
  "var_heuristic_test"
  "var_heuristic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/var_heuristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
