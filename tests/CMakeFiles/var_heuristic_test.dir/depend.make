# Empty dependencies file for var_heuristic_test.
# This may be replaced when dependencies are built.
