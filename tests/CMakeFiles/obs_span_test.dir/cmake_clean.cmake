file(REMOVE_RECURSE
  "CMakeFiles/obs_span_test.dir/obs/span_test.cpp.o"
  "CMakeFiles/obs_span_test.dir/obs/span_test.cpp.o.d"
  "obs_span_test"
  "obs_span_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
