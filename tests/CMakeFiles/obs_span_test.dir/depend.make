# Empty dependencies file for obs_span_test.
# This may be replaced when dependencies are built.
