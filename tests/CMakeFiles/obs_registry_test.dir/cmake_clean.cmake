file(REMOVE_RECURSE
  "CMakeFiles/obs_registry_test.dir/obs/registry_test.cpp.o"
  "CMakeFiles/obs_registry_test.dir/obs/registry_test.cpp.o.d"
  "obs_registry_test"
  "obs_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
