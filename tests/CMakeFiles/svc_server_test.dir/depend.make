# Empty dependencies file for svc_server_test.
# This may be replaced when dependencies are built.
