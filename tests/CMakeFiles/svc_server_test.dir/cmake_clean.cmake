file(REMOVE_RECURSE
  "CMakeFiles/svc_server_test.dir/svc/server_test.cpp.o"
  "CMakeFiles/svc_server_test.dir/svc/server_test.cpp.o.d"
  "svc_server_test"
  "svc_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
