file(REMOVE_RECURSE
  "CMakeFiles/cross_validation_test.dir/integration/cross_validation_test.cpp.o"
  "CMakeFiles/cross_validation_test.dir/integration/cross_validation_test.cpp.o.d"
  "cross_validation_test"
  "cross_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
