# Empty dependencies file for min_total_distance_test.
# This may be replaced when dependencies are built.
