file(REMOVE_RECURSE
  "CMakeFiles/min_total_distance_test.dir/charging/min_total_distance_test.cpp.o"
  "CMakeFiles/min_total_distance_test.dir/charging/min_total_distance_test.cpp.o.d"
  "min_total_distance_test"
  "min_total_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_total_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
