file(REMOVE_RECURSE
  "CMakeFiles/cycles_test.dir/wsn/cycles_test.cpp.o"
  "CMakeFiles/cycles_test.dir/wsn/cycles_test.cpp.o.d"
  "cycles_test"
  "cycles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
