# Empty dependencies file for cycles_test.
# This may be replaced when dependencies are built.
