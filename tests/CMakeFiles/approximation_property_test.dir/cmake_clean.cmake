file(REMOVE_RECURSE
  "CMakeFiles/approximation_property_test.dir/integration/approximation_property_test.cpp.o"
  "CMakeFiles/approximation_property_test.dir/integration/approximation_property_test.cpp.o.d"
  "approximation_property_test"
  "approximation_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
