# Empty compiler generated dependencies file for approximation_property_test.
# This may be replaced when dependencies are built.
