file(REMOVE_RECURSE
  "CMakeFiles/distance_test.dir/geom/distance_test.cpp.o"
  "CMakeFiles/distance_test.dir/geom/distance_test.cpp.o.d"
  "distance_test"
  "distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
