# Empty compiler generated dependencies file for bbox_test.
# This may be replaced when dependencies are built.
