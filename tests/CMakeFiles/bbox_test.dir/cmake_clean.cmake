file(REMOVE_RECURSE
  "CMakeFiles/bbox_test.dir/geom/bbox_test.cpp.o"
  "CMakeFiles/bbox_test.dir/geom/bbox_test.cpp.o.d"
  "bbox_test"
  "bbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
