# Empty dependencies file for svc_wire_test.
# This may be replaced when dependencies are built.
