file(REMOVE_RECURSE
  "CMakeFiles/svc_wire_test.dir/svc/wire_test.cpp.o"
  "CMakeFiles/svc_wire_test.dir/svc/wire_test.cpp.o.d"
  "svc_wire_test"
  "svc_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
