# Empty dependencies file for tour_test.
# This may be replaced when dependencies are built.
