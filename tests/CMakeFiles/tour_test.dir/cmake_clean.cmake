file(REMOVE_RECURSE
  "CMakeFiles/tour_test.dir/tsp/tour_test.cpp.o"
  "CMakeFiles/tour_test.dir/tsp/tour_test.cpp.o.d"
  "tour_test"
  "tour_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
