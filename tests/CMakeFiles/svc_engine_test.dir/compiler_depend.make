# Empty compiler generated dependencies file for svc_engine_test.
# This may be replaced when dependencies are built.
