file(REMOVE_RECURSE
  "CMakeFiles/svc_engine_test.dir/svc/engine_test.cpp.o"
  "CMakeFiles/svc_engine_test.dir/svc/engine_test.cpp.o.d"
  "svc_engine_test"
  "svc_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
