file(REMOVE_RECURSE
  "CMakeFiles/rounding_test.dir/charging/rounding_test.cpp.o"
  "CMakeFiles/rounding_test.dir/charging/rounding_test.cpp.o.d"
  "rounding_test"
  "rounding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
