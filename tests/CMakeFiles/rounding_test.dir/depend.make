# Empty dependencies file for rounding_test.
# This may be replaced when dependencies are built.
