# Empty dependencies file for svc_json_test.
# This may be replaced when dependencies are built.
