file(REMOVE_RECURSE
  "CMakeFiles/svc_json_test.dir/svc/json_test.cpp.o"
  "CMakeFiles/svc_json_test.dir/svc/json_test.cpp.o.d"
  "svc_json_test"
  "svc_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
