# Empty dependencies file for exact_schedule_test.
# This may be replaced when dependencies are built.
