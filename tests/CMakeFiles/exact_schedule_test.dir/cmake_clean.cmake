file(REMOVE_RECURSE
  "CMakeFiles/exact_schedule_test.dir/charging/exact_schedule_test.cpp.o"
  "CMakeFiles/exact_schedule_test.dir/charging/exact_schedule_test.cpp.o.d"
  "exact_schedule_test"
  "exact_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
