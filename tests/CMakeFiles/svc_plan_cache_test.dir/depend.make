# Empty dependencies file for svc_plan_cache_test.
# This may be replaced when dependencies are built.
