file(REMOVE_RECURSE
  "CMakeFiles/svc_plan_cache_test.dir/svc/plan_cache_test.cpp.o"
  "CMakeFiles/svc_plan_cache_test.dir/svc/plan_cache_test.cpp.o.d"
  "svc_plan_cache_test"
  "svc_plan_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_plan_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
