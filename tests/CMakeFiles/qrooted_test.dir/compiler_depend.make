# Empty compiler generated dependencies file for qrooted_test.
# This may be replaced when dependencies are built.
