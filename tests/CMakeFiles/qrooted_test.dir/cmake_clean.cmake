file(REMOVE_RECURSE
  "CMakeFiles/qrooted_test.dir/tsp/qrooted_test.cpp.o"
  "CMakeFiles/qrooted_test.dir/tsp/qrooted_test.cpp.o.d"
  "qrooted_test"
  "qrooted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrooted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
