file(REMOVE_RECURSE
  "CMakeFiles/repair_test.dir/tsp/repair_test.cpp.o"
  "CMakeFiles/repair_test.dir/tsp/repair_test.cpp.o.d"
  "repair_test"
  "repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
