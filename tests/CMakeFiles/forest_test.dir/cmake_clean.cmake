file(REMOVE_RECURSE
  "CMakeFiles/forest_test.dir/graph/forest_test.cpp.o"
  "CMakeFiles/forest_test.dir/graph/forest_test.cpp.o.d"
  "forest_test"
  "forest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
