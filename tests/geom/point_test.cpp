#include "geom/point.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace mwc::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ(a + b, Point(4.0, 7.0));
  EXPECT_EQ(b - a, Point(2.0, 3.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Point(1.5, 2.5));
}

TEST(Point, Norms) {
  const Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(p.norm(), 5.0);
}

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
}

TEST(Point, DistanceSymmetry) {
  const Point a{-2.5, 7.0}, b{4.0, -1.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Point, DotAndCross) {
  const Point a{1, 0}, b{0, 1};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cross(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(b, a), -1.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 1.0);
}

TEST(Point, MidpointAndLerp) {
  const Point a{0, 0}, b{4, 8};
  EXPECT_EQ(midpoint(a, b), Point(2, 4));
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.25), Point(1, 2));
}

TEST(Point, StreamOutput) {
  std::ostringstream oss;
  oss << Point{1.5, -2.0};
  EXPECT_EQ(oss.str(), "(1.5, -2)");
}

TEST(Point, DistanceIsSqrtOfSquaredNorm) {
  // The SIMD exactness contract (docs/ALGORITHMS.md §9): distance is
  // exactly sqrt(squared_norm(dx, dy)) — the one form every vector lane
  // and scalar path computes — not std::hypot (whose different rounding
  // could not be matched by vsqrtpd-style kernels). Bit-equality, not
  // near-equality.
  const Point a{-2.5, 7.0}, b{4.0, -1.0};
  EXPECT_EQ(distance(a, b), std::sqrt(squared_norm(a.x - b.x, a.y - b.y)));
  EXPECT_EQ(distance2(a, b), squared_norm(a.x - b.x, a.y - b.y));
  EXPECT_EQ(distance2(a.x, a.y, b.x, b.y), distance2(a, b));
}

TEST(Point, DistanceStaysFiniteAcrossDeploymentFields) {
  // sqrt(dx^2+dy^2) overflows only past ~1e154 — far beyond any planar
  // WSN field; pin that plausible field extremes stay finite.
  const Point a{0.0, 0.0}, b{1e9, 1e9};
  EXPECT_TRUE(std::isfinite(distance(a, b)));
}

}  // namespace
}  // namespace mwc::geom
