// PointsSoA round-trip equivalence with the AoS Point API, and the
// cross-index k-NN agreement pinned at the new bench scales: KdTree and
// GridIndex must return *identical* sorted (index, distance) lists —
// including exact-distance ties — at n = 10k and n = 100k.
#include "geom/soa.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/bbox.hpp"
#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "geom/point.hpp"
#include "util/rng.hpp"

namespace mwc::geom {
namespace {

std::vector<Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

TEST(PointsSoA, RoundTripBitForBit) {
  const auto pts = random_points(257, 0x50A);
  const PointsSoA soa{std::span<const Point>(pts)};
  ASSERT_EQ(soa.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(soa.x(i), pts[i].x);
    EXPECT_EQ(soa.y(i), pts[i].y);
    EXPECT_EQ(soa.point(i), pts[i]);
  }
  const auto back = soa.materialize();
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(back[i], pts[i]);
}

TEST(PointsSoA, HeadTailConcatenation) {
  const auto depots = random_points(3, 0xDE07);
  const auto sensors = random_points(41, 0x5E50);
  const PointsSoA soa(depots, sensors);
  ASSERT_EQ(soa.size(), depots.size() + sensors.size());
  for (std::size_t i = 0; i < depots.size(); ++i)
    EXPECT_EQ(soa.point(i), depots[i]);
  for (std::size_t i = 0; i < sensors.size(); ++i)
    EXPECT_EQ(soa.point(depots.size() + i), sensors[i]);
}

TEST(PointsSoA, AssignReplacesContents) {
  const auto first = random_points(10, 1);
  const auto second = random_points(4, 2);
  PointsSoA soa{std::span<const Point>(first)};
  soa.assign(second);
  ASSERT_EQ(soa.size(), second.size());
  for (std::size_t i = 0; i < second.size(); ++i)
    EXPECT_EQ(soa.point(i), second[i]);
  EXPECT_FALSE(soa.empty());
  soa.assign({});
  EXPECT_TRUE(soa.empty());
}

/// Queries both indexes for the same k-NN lists and requires identity:
/// same indices, same distances, same order. Both sort by (distance^2,
/// index), so exact ties must resolve identically too.
void expect_knn_agreement(std::span<const Point> pts, std::size_t num_queries,
                          std::size_t k, std::uint64_t seed) {
  const KdTree kd(pts);
  const BBox bounds = BBox::of(pts.begin(), pts.end());
  const GridIndex grid(pts, bounds, /*target_per_cell=*/2.0);
  mwc::Rng rng(seed);
  for (std::size_t t = 0; t < num_queries; ++t) {
    // Mix on-point queries (exercise distance-0 and duplicate ties) with
    // free-floating ones inside the point extent.
    const Point q =
        t % 2 == 0
            ? pts[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(pts.size()) - 1))]
            : Point{rng.uniform(bounds.lo.x, bounds.hi.x),
                    rng.uniform(bounds.lo.y, bounds.hi.y)};
    const auto a = kd.knearest(q, k);
    const auto b = grid.knearest(q, k);
    ASSERT_EQ(a.size(), b.size()) << "query " << t;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].first, b[j].first) << "query " << t << " rank " << j;
      EXPECT_EQ(a[j].second, b[j].second) << "query " << t << " rank " << j;
    }
  }
}

TEST(IndexAgreement, KnnIdentical10k) {
  const auto pts = random_points(10'000, 0x10C0);
  expect_knn_agreement(pts, /*num_queries=*/64, /*k=*/12, 0xAB);
}

TEST(IndexAgreement, KnnIdentical100k) {
  const auto pts = random_points(100'000, 0x100C0);
  expect_knn_agreement(pts, /*num_queries=*/32, /*k=*/12, 0xCD);
}

TEST(IndexAgreement, KnnIdenticalUnderMassTies) {
  // Integer lattice with duplicated points: many exact distance ties per
  // query; both indexes must break them on the smaller index.
  std::vector<Point> pts;
  for (int x = 0; x < 20; ++x)
    for (int y = 0; y < 20; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  expect_knn_agreement(pts, /*num_queries=*/40, /*k=*/9, 0xEF);
}

}  // namespace
}  // namespace mwc::geom
