#include "geom/distance.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace mwc::geom {
namespace {

std::vector<Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  return pts;
}

TEST(DistanceMatrix, Empty) {
  const DistanceMatrix d(std::vector<Point>{});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DistanceMatrix, DiagonalZero) {
  const auto pts = random_points(20, 1);
  const DistanceMatrix d(pts);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d(i, i), 0.0);
}

TEST(DistanceMatrix, Symmetric) {
  const auto pts = random_points(20, 2);
  const DistanceMatrix d(pts);
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t j = 0; j < d.size(); ++j)
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
}

TEST(DistanceMatrix, MatchesPointDistance) {
  const auto pts = random_points(15, 3);
  const DistanceMatrix d(pts);
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t j = 0; j < d.size(); ++j)
      EXPECT_DOUBLE_EQ(d(i, j), distance(pts[i], pts[j]));
}

TEST(DistanceMatrix, EuclideanSatisfiesTriangleInequality) {
  const auto pts = random_points(25, 4);
  const DistanceMatrix d(pts);
  EXPECT_TRUE(d.satisfies_triangle_inequality());
}

TEST(DistanceMatrix, RowSpan) {
  const auto pts = random_points(10, 5);
  const DistanceMatrix d(pts);
  const auto row3 = d.row(3);
  ASSERT_EQ(row3.size(), 10u);
  for (std::size_t j = 0; j < 10; ++j) EXPECT_EQ(row3[j], d(3, j));
}

TEST(TourLength, SquareTour) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const std::vector<std::size_t> order{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(closed_tour_length(pts, order), 4.0);
  EXPECT_DOUBLE_EQ(path_length(pts, order), 3.0);
}

TEST(TourLength, DegenerateTours) {
  const std::vector<Point> pts{{0, 0}, {3, 4}};
  EXPECT_EQ(closed_tour_length(pts, std::vector<std::size_t>{}), 0.0);
  EXPECT_EQ(closed_tour_length(pts, std::vector<std::size_t>{0}), 0.0);
  const std::vector<std::size_t> pair{0, 1};
  EXPECT_DOUBLE_EQ(closed_tour_length(pts, pair), 10.0);  // there and back
  EXPECT_DOUBLE_EQ(path_length(pts, pair), 5.0);
}

}  // namespace
}  // namespace mwc::geom
