#include "geom/kdtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "geom/grid_index.hpp"
#include "util/rng.hpp"

namespace mwc::geom {
namespace {

std::vector<Point> random_points(std::size_t n, std::uint64_t seed,
                                 double side = 1000.0) {
  mwc::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

TEST(KdTree, Empty) {
  const KdTree tree((std::vector<Point>()));
  EXPECT_TRUE(tree.empty());
  const auto [i, d] = tree.nearest_with_distance({0, 0});
  EXPECT_TRUE(std::isinf(d));
  (void)i;
}

TEST(KdTree, SinglePoint) {
  const std::vector<Point> pts{{3, 4}};
  const KdTree tree(pts);
  const auto [i, d] = tree.nearest_with_distance({0, 0});
  EXPECT_EQ(i, 0u);
  EXPECT_DOUBLE_EQ(d, 5.0);
}

class KdTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KdTreeProperty, NearestMatchesBruteForce) {
  const auto seed = GetParam();
  const auto pts = random_points(300, seed);
  const KdTree tree(pts);
  mwc::Rng rng(seed ^ 0xFACE);
  for (int trial = 0; trial < 300; ++trial) {
    const Point q{rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0)};
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : pts) best = std::min(best, distance2(p, q));
    EXPECT_DOUBLE_EQ(distance2(pts[tree.nearest(q)], q), best);
  }
}

TEST_P(KdTreeProperty, AgreesWithGridIndex) {
  const auto seed = GetParam();
  const auto pts = random_points(250, seed);
  const KdTree tree(pts);
  const GridIndex grid(pts, BBox::square(1000.0));
  mwc::Rng rng(seed ^ 0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const Point q{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const auto [ti, td] = tree.nearest_with_distance(q);
    const auto [gi, gd] = grid.nearest_with_distance(q);
    (void)ti;
    (void)gi;
    EXPECT_NEAR(td, gd, 1e-9);
  }
}

TEST_P(KdTreeProperty, RangeMatchesBruteForce) {
  const auto seed = GetParam();
  const auto pts = random_points(150, seed);
  const KdTree tree(pts);
  mwc::Rng rng(seed ^ 0xF00D);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const double radius = rng.uniform(10.0, 400.0);
    auto got = tree.within(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (distance2(pts[i], q) <= radius * radius) expected.push_back(i);
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 21u));

TEST(KdTree, CollinearPoints) {
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({25.4, 1.0}), 25u);
  EXPECT_EQ(tree.within({10.0, 0.0}, 2.0).size(), 5u);  // 8,9,10,11,12
}

TEST(KdTree, DuplicatePoints) {
  const std::vector<Point> pts{{1, 1}, {1, 1}, {5, 5}};
  const KdTree tree(pts);
  const auto i = tree.nearest({1.1, 1.0});
  EXPECT_TRUE(i == 0u || i == 1u);
}


/// Brute-force k-NN reference: (distance², index) pairs sorted ascending,
/// ties on the smaller index — the contract knearest() promises.
std::vector<std::pair<std::size_t, double>> brute_knearest(
    const std::vector<Point>& pts, const Point& q, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> all;
  all.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    all.emplace_back(distance2(pts[i], q), i);
  std::sort(all.begin(), all.end());
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t i = 0; i < std::min(k, all.size()); ++i)
    out.emplace_back(all[i].second, std::sqrt(all[i].first));
  return out;
}

TEST_P(KdTreeProperty, KNearestMatchesBruteForce) {
  const auto seed = GetParam();
  const auto pts = random_points(200, seed);
  const KdTree tree(pts);
  mwc::Rng rng(seed ^ 0xBEEF);
  for (int trial = 0; trial < 100; ++trial) {
    const Point q{rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0)};
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 16));
    const auto got = tree.knearest(q, k);
    const auto want = brute_knearest(pts, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "rank " << i;
      EXPECT_DOUBLE_EQ(got[i].second, want[i].second);
    }
  }
}

TEST(KdTree, KNearestClampsToSize) {
  const auto pts = random_points(5, 11);
  const KdTree tree(pts);
  EXPECT_EQ(tree.knearest({0, 0}, 50).size(), 5u);
  EXPECT_TRUE(tree.knearest({0, 0}, 0).empty());
}

}  // namespace
}  // namespace mwc::geom
