#include "geom/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mwc::geom {
namespace {

std::vector<Point> random_points(std::size_t n, std::uint64_t seed,
                                 double side = 1000.0) {
  mwc::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

std::size_t brute_nearest(const std::vector<Point>& pts, const Point& q) {
  std::size_t best = pts.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d2 = distance2(pts[i], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

TEST(GridIndex, EmptyIndex) {
  const GridIndex idx({}, BBox::square(10.0));
  EXPECT_TRUE(idx.empty());
  const auto [i, d] = idx.nearest_with_distance({1, 1});
  EXPECT_TRUE(std::isinf(d));
  (void)i;
}

TEST(GridIndex, SinglePoint) {
  const std::vector<Point> pts{{5, 5}};
  const GridIndex idx(pts, BBox::square(10.0));
  EXPECT_EQ(idx.nearest({0, 0}), 0u);
  const auto [i, d] = idx.nearest_with_distance({8, 9});
  EXPECT_EQ(i, 0u);
  EXPECT_DOUBLE_EQ(d, 5.0);
}

class GridIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexProperty, NearestMatchesBruteForce) {
  const auto seed = GetParam();
  const auto pts = random_points(200, seed);
  const GridIndex idx(pts, BBox::square(1000.0));
  mwc::Rng rng(seed ^ 0xDEAD);
  for (int trial = 0; trial < 200; ++trial) {
    const Point q{rng.uniform(-100.0, 1100.0), rng.uniform(-100.0, 1100.0)};
    const auto expected = brute_nearest(pts, q);
    const auto got = idx.nearest(q);
    // Ties in distance are acceptable; compare distances.
    EXPECT_DOUBLE_EQ(distance2(pts[got], q), distance2(pts[expected], q));
  }
}

TEST_P(GridIndexProperty, WithinMatchesBruteForce) {
  const auto seed = GetParam();
  const auto pts = random_points(150, seed);
  const GridIndex idx(pts, BBox::square(1000.0));
  mwc::Rng rng(seed ^ 0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const double radius = rng.uniform(10.0, 300.0);
    auto got = idx.within(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (distance2(pts[i], q) <= radius * radius) expected.push_back(i);
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u));

TEST(GridIndex, PointsOutsideNominalBounds) {
  // Bounds cover [0,10]^2, but a point sits outside; index must clamp it
  // in and still answer correctly.
  const std::vector<Point> pts{{5, 5}, {20, 20}};
  const GridIndex idx(pts, BBox::square(10.0));
  EXPECT_EQ(idx.nearest({19, 19}), 1u);
  EXPECT_EQ(idx.nearest({0, 0}), 0u);
}

TEST(GridIndex, DuplicatePoints) {
  const std::vector<Point> pts{{1, 1}, {1, 1}, {2, 2}};
  const GridIndex idx(pts, BBox::square(3.0));
  const auto got = idx.nearest({1, 1});
  EXPECT_TRUE(got == 0u || got == 1u);
  EXPECT_EQ(idx.within({1, 1}, 0.5).size(), 2u);
}

TEST(GridIndex, NegativeRadius) {
  const std::vector<Point> pts{{1, 1}};
  const GridIndex idx(pts, BBox::square(2.0));
  EXPECT_TRUE(idx.within({1, 1}, -1.0).empty());
}


TEST(GridIndex, KNearestMatchesBruteForce) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const auto pts = random_points(250, seed);
    BBox bounds{{0, 0}, {0, 0}};
    for (const auto& p : pts) bounds.expand(p);
    const GridIndex idx(pts, bounds);
    mwc::Rng rng(seed ^ 0xBEEF);
    for (int trial = 0; trial < 100; ++trial) {
      const Point q{rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0)};
      const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 16));
      const auto got = idx.knearest(q, k);
      // Brute-force reference, ties broken on the smaller index.
      std::vector<std::pair<double, std::size_t>> all;
      for (std::size_t i = 0; i < pts.size(); ++i)
        all.emplace_back(distance2(pts[i], q), i);
      std::sort(all.begin(), all.end());
      ASSERT_EQ(got.size(), std::min(k, pts.size()));
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, all[i].second) << "rank " << i;
        EXPECT_DOUBLE_EQ(got[i].second, std::sqrt(all[i].first));
      }
    }
  }
}

TEST(GridIndex, KNearestClampsToSize) {
  const auto pts = random_points(4, 3);
  BBox bounds{{0, 0}, {0, 0}};
  for (const auto& p : pts) bounds.expand(p);
  const GridIndex idx(pts, bounds);
  EXPECT_EQ(idx.knearest({500, 500}, 99).size(), 4u);
  EXPECT_TRUE(idx.knearest({500, 500}, 0).empty());
}

}  // namespace
}  // namespace mwc::geom
