// The SIMD exactness contract: every batch kernel in geom/simd.hpp is
// bit-identical to the scalar loops it replaces — same values whether the
// active backend is AVX-512F, AVX2, SSE2, NEON, or the scalar fallback,
// and the same values as per-pair geom::distance / geom::distance2.
#include "geom/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/point.hpp"
#include "geom/soa.hpp"
#include "util/rng.hpp"

namespace mwc::geom {
namespace {

/// Restores the runtime SIMD toggle on scope exit, so a failing
/// EXPECT_* cannot leak a disabled kernel into other tests.
struct SimdToggleGuard {
  ~SimdToggleGuard() { simd::set_enabled(true); }
};

std::vector<Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

TEST(Simd, BackendReporting) {
  SimdToggleGuard guard;
  EXPECT_GE(simd::lanes(), 1u);
  if (simd::enabled()) {
    EXPECT_TRUE(simd::compiled_in());
    EXPECT_GT(simd::lanes(), 1u);
    EXPECT_STRNE(simd::backend(), "scalar");
  }
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
  EXPECT_EQ(simd::lanes(), 1u);
  EXPECT_STREQ(simd::backend(), "scalar");
  simd::set_enabled(true);
}

// Sizes straddle every lane-width boundary so both the full-vector body
// and the scalar tail of each kernel are exercised.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63};

TEST(Simd, DistanceRowMatchesScalarBitForBit) {
  SimdToggleGuard guard;
  for (const std::size_t n : kSizes) {
    const auto pts = random_points(n + 1, 0x51AD + n);
    const PointsSoA soa(std::span<const Point>(pts).subspan(1));
    const Point q = pts[0];
    std::vector<double> vec(n), ref(n);
    simd::set_enabled(true);
    simd::distance_row(q.x, q.y, soa.xs().data(), soa.ys().data(), vec.data(),
                       n);
    simd::set_enabled(false);
    simd::distance_row(q.x, q.y, soa.xs().data(), soa.ys().data(), ref.data(),
                       n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(vec[j], ref[j]) << "n=" << n << " j=" << j;
      EXPECT_EQ(vec[j], distance(q, soa.point(j)));
    }
  }
}

TEST(Simd, Distance2RowMatchesScalarBitForBit) {
  SimdToggleGuard guard;
  for (const std::size_t n : kSizes) {
    const auto pts = random_points(n + 1, 0xD157 + n);
    const PointsSoA soa(std::span<const Point>(pts).subspan(1));
    const Point q = pts[0];
    std::vector<double> vec(n), ref(n);
    simd::set_enabled(true);
    simd::distance2_row(q.x, q.y, soa.xs().data(), soa.ys().data(), vec.data(),
                        n);
    simd::set_enabled(false);
    simd::distance2_row(q.x, q.y, soa.xs().data(), soa.ys().data(), ref.data(),
                        n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(vec[j], ref[j]) << "n=" << n << " j=" << j;
      EXPECT_EQ(vec[j], distance2(q, soa.point(j)));
    }
  }
}

TEST(Simd, DistancePairsMatchesScalarBitForBit) {
  SimdToggleGuard guard;
  for (const std::size_t n : kSizes) {
    const auto a = random_points(n, 0xAAAA + n);
    const auto b = random_points(n, 0xBBBB + n);
    const PointsSoA sa{std::span<const Point>(a)};
    const PointsSoA sb{std::span<const Point>(b)};
    std::vector<double> vec(n), ref(n);
    simd::set_enabled(true);
    simd::distance_pairs(sa.xs().data(), sa.ys().data(), sb.xs().data(),
                         sb.ys().data(), vec.data(), n);
    simd::set_enabled(false);
    simd::distance_pairs(sa.xs().data(), sa.ys().data(), sb.xs().data(),
                         sb.ys().data(), ref.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(vec[j], ref[j]) << "n=" << n << " j=" << j;
      EXPECT_EQ(vec[j], distance(a[j], b[j]));
    }
  }
}

TEST(Simd, KernelIsExactlySqrtOfSquaredNorm) {
  // The per-lane arithmetic promise the rest of the pipeline builds on:
  // no FMA, no hypot — sub, mul, add, sqrt in the squared_norm order.
  SimdToggleGuard guard;
  const auto pts = random_points(33, 0xE5AC7);
  const PointsSoA soa{std::span<const Point>(pts)};
  std::vector<double> row(pts.size());
  simd::set_enabled(true);
  simd::distance_row(pts[0].x, pts[0].y, soa.xs().data(), soa.ys().data(),
                     row.data(), pts.size());
  for (std::size_t j = 0; j < pts.size(); ++j) {
    EXPECT_EQ(row[j], std::sqrt(squared_norm(pts[0].x - pts[j].x,
                                             pts[0].y - pts[j].y)));
  }
}

TEST(Simd, ZeroAndDuplicatePointsExact) {
  SimdToggleGuard guard;
  // Coincident points must give exactly 0.0, and exact-duplicate
  // coordinates exactly equal distances (tie-break inputs downstream).
  const std::vector<Point> pts{{5.0, 5.0}, {5.0, 5.0}, {1.0, 2.0},
                               {1.0, 2.0}, {5.0, 5.0}};
  const PointsSoA soa{std::span<const Point>(pts)};
  std::vector<double> row(pts.size());
  simd::distance_row(5.0, 5.0, soa.xs().data(), soa.ys().data(), row.data(),
                     pts.size());
  EXPECT_EQ(row[0], 0.0);
  EXPECT_EQ(row[1], 0.0);
  EXPECT_EQ(row[4], 0.0);
  EXPECT_EQ(row[2], row[3]);
}

}  // namespace
}  // namespace mwc::geom
