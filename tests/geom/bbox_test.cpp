#include "geom/bbox.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mwc::geom {
namespace {

TEST(BBox, SquareField) {
  const auto b = BBox::square(1000.0);
  EXPECT_DOUBLE_EQ(b.width(), 1000.0);
  EXPECT_DOUBLE_EQ(b.height(), 1000.0);
  EXPECT_DOUBLE_EQ(b.area(), 1e6);
  EXPECT_EQ(b.center(), Point(500.0, 500.0));
}

TEST(BBox, Contains) {
  const auto b = BBox::square(10.0);
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_FALSE(b.contains({10.01, 5}));
  EXPECT_FALSE(b.contains({5, -0.01}));
}

TEST(BBox, Intersects) {
  const BBox a({0, 0}, {5, 5});
  const BBox b({4, 4}, {9, 9});
  const BBox c({6, 6}, {8, 8});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(b.intersects(c));
}

TEST(BBox, TouchingBoxesIntersect) {
  const BBox a({0, 0}, {1, 1});
  const BBox b({1, 0}, {2, 1});
  EXPECT_TRUE(a.intersects(b));
}

TEST(BBox, Expand) {
  BBox b({2, 2}, {3, 3});
  b.expand({0, 5});
  EXPECT_EQ(b.lo, Point(0, 2));
  EXPECT_EQ(b.hi, Point(3, 5));
}

TEST(BBox, DistanceToPoint) {
  const BBox b({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(b.distance2_to({1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(b.distance2_to({3, 1}), 1.0);   // right
  EXPECT_DOUBLE_EQ(b.distance2_to({-1, -1}), 2.0); // corner
  EXPECT_DOUBLE_EQ(b.distance2_to({1, 5}), 9.0);   // above
}

TEST(BBox, OfPoints) {
  const std::vector<Point> pts{{1, 4}, {-2, 0}, {3, 2}};
  const auto b = BBox::of(pts.begin(), pts.end());
  EXPECT_EQ(b.lo, Point(-2, 0));
  EXPECT_EQ(b.hi, Point(3, 4));
}

TEST(BBox, OfSinglePoint) {
  const std::vector<Point> pts{{7, 8}};
  const auto b = BBox::of(pts.begin(), pts.end());
  EXPECT_EQ(b.lo, b.hi);
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

}  // namespace
}  // namespace mwc::geom
