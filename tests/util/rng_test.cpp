#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace mwc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamIdenticalToItself) {
  Rng a(7, 99), b(7, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng());
  EXPECT_GE(values.size(), 99u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(2);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(4);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, JumpDecorrelates) {
  Rng a(10);
  Rng b(10);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(123, 456), mix64(123, 456));
}

TEST(Shuffle, ProducesPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Shuffle, UniformFirstPosition) {
  // Chi-square-ish check that element 0 lands uniformly.
  std::array<int, 5> counts{};
  const int n = 50000;
  Rng rng(12);
  for (int trial = 0; trial < n; ++trial) {
    std::array<int, 5> v{0, 1, 2, 3, 4};
    shuffle(v.begin(), v.end(), rng);
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 25);
}

}  // namespace
}  // namespace mwc
