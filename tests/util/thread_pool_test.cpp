#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mwc {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    (void)pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, MatchesSerialResult) {
  ThreadPool pool(8);
  std::vector<double> parallel_out(1000), serial_out(1000);
  const auto body = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 2.0;
  };
  parallel_for(pool, 0, 1000,
               [&](std::size_t i) { parallel_out[i] = body(i); }, 13);
  serial_for(0, 1000, [&](std::size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  auto pool = std::make_unique<ThreadPool>(1);
  pool->wait_idle();
  // Destruction then reuse is UB; instead verify the flag path via a pool
  // that is still alive: not directly reachable, so just ensure destruction
  // with queued work completes cleanly.
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) (void)pool->submit([&done] { ++done; });
  pool.reset();  // must drain, not deadlock
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace mwc
