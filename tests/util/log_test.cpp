#include "util/log.hpp"

#include <gtest/gtest.h>

#include "util/timer.hpp"

namespace mwc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Log, SuppressedLevelsEmitNothing) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MWC_LOG_DEBUG("should not appear %d", 1);
  MWC_LOG_INFO("nor this");
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
}

TEST(Log, EnabledLevelEmitsFormattedLine) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MWC_LOG_INFO("value=%d name=%s", 42, "x");
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=42 name=x"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST(Log, ErrorAlwaysEmits) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MWC_LOG_ERROR("bad thing %d", 7);
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("bad thing 7"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  const double t0 = timer.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double t1 = timer.elapsed_seconds();
  EXPECT_GE(t1, t0);
  EXPECT_NEAR(timer.elapsed_ms(), timer.elapsed_seconds() * 1e3,
              timer.elapsed_ms() * 0.5 + 1.0);
}

TEST(Timer, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double before = timer.elapsed_seconds();
  timer.reset();
  EXPECT_LE(timer.elapsed_seconds(), before + 1e-3);
}

}  // namespace
}  // namespace mwc
