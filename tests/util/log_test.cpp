#include "util/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "util/timer.hpp"

namespace mwc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

class LogFormatGuard {
 public:
  LogFormatGuard() : saved_(log_format()) {}
  ~LogFormatGuard() { set_log_format(saved_); }

 private:
  LogFormat saved_;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Log, UnknownLevelNameWarnsAtMostOncePerProcess) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  // The diagnostic is once-per-process, so another test (or this one's
  // first parse) may already have consumed it — assert the once-ness
  // rather than the exact firing test.
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("bogus-level"), LogLevel::kInfo);
  const auto first = ::testing::internal::GetCapturedStderr();
  EXPECT_LE(count_occurrences(first, "unrecognized log level"), 1u) << first;

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("another-bogus"), LogLevel::kInfo);
  const auto second = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(second, "unrecognized log level"), 0u)
      << second;
}

TEST(Log, FormatRoundTrip) {
  LogFormatGuard guard;
  LogFormat format;
  format.timestamps = true;
  format.thread_ids = false;
  set_log_format(format);
  EXPECT_TRUE(log_format().timestamps);
  EXPECT_FALSE(log_format().thread_ids);
  format.timestamps = false;
  format.thread_ids = true;
  set_log_format(format);
  EXPECT_FALSE(log_format().timestamps);
  EXPECT_TRUE(log_format().thread_ids);
  set_log_format(LogFormat{});
  EXPECT_FALSE(log_format().timestamps);
  EXPECT_FALSE(log_format().thread_ids);
}

TEST(Log, FormatDecoratesLines) {
  LogLevelGuard level_guard;
  LogFormatGuard format_guard;
  set_log_level(LogLevel::kInfo);
  LogFormat format;
  format.timestamps = true;
  format.thread_ids = true;
  set_log_format(format);
  ::testing::internal::CaptureStderr();
  MWC_LOG_INFO("decorated line");
  const auto out = ::testing::internal::GetCapturedStderr();
  // "[mwc INFO  12.345s T01] decorated line"
  const std::regex line_re(
      "\\[mwc INFO  [0-9]+\\.[0-9]+s T[0-9]+\\] decorated line");
  EXPECT_TRUE(std::regex_search(out, line_re)) << out;
}

TEST(Log, DefaultFormatHasNoDecorations) {
  LogLevelGuard level_guard;
  LogFormatGuard format_guard;
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat{});
  ::testing::internal::CaptureStderr();
  MWC_LOG_INFO("plain line");
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[mwc INFO ] plain line"), std::string::npos) << out;
}

TEST(Log, SuppressedLevelsEmitNothing) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MWC_LOG_DEBUG("should not appear %d", 1);
  MWC_LOG_INFO("nor this");
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
}

TEST(Log, EnabledLevelEmitsFormattedLine) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MWC_LOG_INFO("value=%d name=%s", 42, "x");
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=42 name=x"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST(Log, ErrorAlwaysEmits) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MWC_LOG_ERROR("bad thing %d", 7);
  const auto out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("bad thing 7"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  const double t0 = timer.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double t1 = timer.elapsed_seconds();
  EXPECT_GE(t1, t0);
  EXPECT_NEAR(timer.elapsed_ms(), timer.elapsed_seconds() * 1e3,
              timer.elapsed_ms() * 0.5 + 1.0);
}

TEST(Timer, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double before = timer.elapsed_seconds();
  timer.reset();
  EXPECT_LE(timer.elapsed_seconds(), before + 1e-3);
}

}  // namespace
}  // namespace mwc
