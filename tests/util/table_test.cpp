#include "util/table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mwc {
namespace {

TEST(FmtFixed, Precision) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "23456"});
  const std::string out = table.to_string();
  // Header line, separator, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // All lines share the same length (alignment).
  std::size_t prev_len = std::string::npos;
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    const auto len = nl - pos;
    if (lines > 0) {
      EXPECT_EQ(len, prev_len) << "line " << lines;
    }
    prev_len = len;
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(ConsoleTable, NumericRow) {
  ConsoleTable table({"a", "b"});
  table.add_row_numeric({1.25, 3.0}, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("3.00"), std::string::npos);
}

TEST(ConsoleTable, RowCount) {
  ConsoleTable table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(ConsoleTableDeath, MismatchedRowAborts) {
  ConsoleTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace mwc
