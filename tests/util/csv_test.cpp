#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mwc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ =
      ::testing::TempDir() + "/mwc_csv_test.csv";
};

TEST(CsvEscape, PlainPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"x", "y"});
    csv.field(1.5).field(std::string_view("abc"));
    csv.end_row();
    csv.row({"2", "def"});
    csv.flush();
  }
  EXPECT_EQ(read_file(path_), "x,y\n1.5,abc\n2,def\n");
}

TEST_F(CsvTest, NumericFormats) {
  {
    CsvWriter csv(path_);
    csv.field(static_cast<long long>(-42))
        .field(std::size_t{7})
        .field(0.125);
    csv.end_row();
    csv.flush();
  }
  EXPECT_EQ(read_file(path_), "-42,7,0.125\n");
}

TEST_F(CsvTest, FieldsWithCommasRoundTrip) {
  {
    CsvWriter csv(path_);
    csv.row({"a,b", "c"});
    csv.flush();
  }
  EXPECT_EQ(read_file(path_), "\"a,b\",c\n");
}

TEST(CsvWriterErrors, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mwc
