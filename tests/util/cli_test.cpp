#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace mwc {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, EqualsForm) {
  const auto args = parse({"prog", "--n=200", "--name=test"});
  EXPECT_EQ(args.get_int_or("n", 0), 200);
  EXPECT_EQ(args.get_or("name", ""), "test");
}

TEST(CliArgs, SpaceForm) {
  const auto args = parse({"prog", "--n", "300"});
  EXPECT_EQ(args.get_int_or("n", 0), 300);
}

TEST(CliArgs, BooleanFlag) {
  const auto args = parse({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool_or("verbose", false));
  EXPECT_FALSE(args.get_bool_or("quiet", false));
}

TEST(CliArgs, BoolExplicitValues) {
  const auto args = parse({"prog", "--a=true", "--b=0", "--c=yes"});
  EXPECT_TRUE(args.get_bool_or("a", false));
  EXPECT_FALSE(args.get_bool_or("b", true));
  EXPECT_TRUE(args.get_bool_or("c", false));
}

TEST(CliArgs, DoubleValues) {
  const auto args = parse({"prog", "--sigma=2.5"});
  EXPECT_DOUBLE_EQ(args.get_double_or("sigma", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 1.25), 1.25);
}

TEST(CliArgs, MalformedNumberFallsBack) {
  const auto args = parse({"prog", "--n=abc"});
  EXPECT_EQ(args.get_int_or("n", 17), 17);
}

TEST(CliArgs, Positional) {
  const auto args = parse({"prog", "input.txt", "--n=1", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean) {
  const auto args = parse({"prog", "--a", "--b", "5"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get_or("a", "x"), "");
  EXPECT_EQ(args.get_int_or("b", 0), 5);
}

TEST(CliArgs, Program) {
  const auto args = parse({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

TEST(EnvIntOr, ReadsAndFallsBack) {
  ::setenv("MWC_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(env_int_or("MWC_TEST_ENV_INT", 0), 123);
  ::setenv("MWC_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(env_int_or("MWC_TEST_ENV_INT", 7), 7);
  ::unsetenv("MWC_TEST_ENV_INT");
  EXPECT_EQ(env_int_or("MWC_TEST_ENV_INT", 9), 9);
}

}  // namespace
}  // namespace mwc
