#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mwc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, MergeEqualsSinglePassOverConcatenation) {
  // Chan et al. parallel combination must agree with feeding the
  // concatenated sample through one accumulator — including lopsided
  // splits where the delta term dominates.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.normal(100.0, 0.01));
  for (const std::size_t split : {std::size_t{1}, std::size_t{128},
                                  std::size_t{256}}) {
    RunningStats whole, left, right;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      whole.add(xs[i]);
      (i < split ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-6);
  }
}

TEST(RunningStats, MergeBothEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeSingleElements) {
  RunningStats a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  // Sample variance of {2, 6}: ((2-4)^2 + (6-4)^2) / 1 = 8.
  EXPECT_NEAR(a.variance(), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(RunningStats, MergeIntoEmptyAdoptsExtremes) {
  RunningStats a, b;
  b.add(-3.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(2);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(QuantileSorted, Endpoints) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 4.0);
}

TEST(QuantileSorted, MedianInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 2.5);
}

TEST(QuantileSorted, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.3), 7.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, Basic) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(MeanOf, Basic) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

}  // namespace
}  // namespace mwc
