#include "exp/config.hpp"

#include <gtest/gtest.h>

namespace mwc::exp {
namespace {

TEST(PaperDefaults, MatchSectionSevenA) {
  const auto config = paper_defaults();
  EXPECT_EQ(config.deployment.n, 200u);
  EXPECT_EQ(config.deployment.q, 5u);
  EXPECT_DOUBLE_EQ(config.deployment.field_side, 1000.0);
  EXPECT_TRUE(config.deployment.depot_at_base_station);
  EXPECT_EQ(config.cycles.distribution, wsn::CycleDistribution::kLinear);
  EXPECT_DOUBLE_EQ(config.cycles.tau_min, 1.0);
  EXPECT_DOUBLE_EQ(config.cycles.tau_max, 50.0);
  EXPECT_DOUBLE_EQ(config.cycles.sigma, 2.0);
  EXPECT_DOUBLE_EQ(config.sim.horizon, 1000.0);
  EXPECT_DOUBLE_EQ(config.sim.slot_length, 0.0);
  EXPECT_EQ(config.trials, 100u);
}

TEST(PaperDefaultsVariable, EnablesSlots) {
  const auto config = paper_defaults_variable();
  EXPECT_DOUBLE_EQ(config.sim.slot_length, 10.0);
  // Everything else inherits the fixed defaults.
  EXPECT_EQ(config.deployment.n, 200u);
  EXPECT_DOUBLE_EQ(config.sim.horizon, 1000.0);
}

}  // namespace
}  // namespace mwc::exp
