#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mwc::exp {
namespace {

AggregateOutcome fake_outcome(const std::string& name, double mean_cost,
                              std::size_t dead = 0) {
  AggregateOutcome o;
  o.name = name;
  o.cost.mean = mean_cost;
  o.cost.ci95 = mean_cost * 0.05;
  o.cost.min = mean_cost * 0.9;
  o.cost.max = mean_cost * 1.1;
  o.cost.stddev = mean_cost * 0.1;
  o.trials = 10;
  o.total_dead = dead;
  o.mean_dispatches = 42.0;
  o.mean_charges = 420.0;
  return o;
}

TEST(FigureReport, RatioComputation) {
  FigureReport report("Fig. T", "test", "n");
  report.add_point({100.0, {fake_outcome("A", 550.0),
                            fake_outcome("B", 1000.0)}});
  EXPECT_DOUBLE_EQ(report.ratio_at(0), 0.55);
}

TEST(FigureReport, PointAccumulation) {
  FigureReport report("Fig. T", "test", "n");
  EXPECT_TRUE(report.points().empty());
  report.add_point({1.0, {fake_outcome("A", 10.0)}});
  report.add_point({2.0, {fake_outcome("A", 20.0)}});
  EXPECT_EQ(report.points().size(), 2u);
  EXPECT_DOUBLE_EQ(report.points()[1].x, 2.0);
}

TEST(FigureReport, CsvOutput) {
  const std::string path = ::testing::TempDir() + "/mwc_report_test.csv";
  FigureReport report("Fig. 1(a)", "linear", "n", 1000.0);
  report.add_point({100.0, {fake_outcome("MinTotalDistance", 550000.0),
                            fake_outcome("Greedy", 1000000.0)}});
  report.write_csv(path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("figure"), std::string::npos);
  EXPECT_NE(line.find("policy"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("MinTotalDistance"), std::string::npos);
  EXPECT_NE(line.find("550"), std::string::npos);  // km after unit scale
  std::getline(in, line);
  EXPECT_NE(line.find("Greedy"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FigureReport, PrintDoesNotCrashWithDead) {
  FigureReport report("Fig. T", "test", "x");
  report.add_point({1.0, {fake_outcome("A", 10.0, 3)}});
  ::testing::internal::CaptureStdout();
  report.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Fig. T"), std::string::npos);
  EXPECT_NE(out.find("dead"), std::string::npos);
}

TEST(FigureReportDeath, MismatchedPolicyCountsAbort) {
  FigureReport report("Fig. T", "test", "x");
  report.add_point({1.0, {fake_outcome("A", 1.0)}});
  EXPECT_DEATH(report.add_point(
                   {2.0, {fake_outcome("A", 1.0), fake_outcome("B", 2.0)}}),
               "same policies");
}

}  // namespace
}  // namespace mwc::exp
