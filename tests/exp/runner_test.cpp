#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mwc::exp {
namespace {

ExperimentConfig tiny_config() {
  auto config = paper_defaults();
  config.deployment.n = 30;
  config.sim.horizon = 100.0;
  config.trials = 4;
  return config;
}

TEST(MakePolicy, AllKindsConstructible) {
  for (const char* kind :
       {"MinTotalDistance", "MinTotalDistance-var",
        "Greedy", "PeriodicAll",
        "PerSensorPeriodic"}) {
    auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(PolicyName, MatchesPaperLegends) {
  EXPECT_EQ(policy_name("MinTotalDistance"), "MinTotalDistance");
  EXPECT_EQ(policy_name("MinTotalDistance-var"),
            "MinTotalDistance-var");
  EXPECT_EQ(policy_name("Greedy"), "Greedy");
}

TEST(MakePolicy, UnknownNameListsRegisteredPolicies) {
  try {
    make_policy("NoSuchPolicy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    // The offending name is quoted and every registered name is listed,
    // so a typo on the command line is self-diagnosing.
    EXPECT_NE(message.find("\"NoSuchPolicy\""), std::string::npos)
        << message;
    for (const auto& name : PolicyRegistry::global().names())
      EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

TEST(PolicyName, UnknownNameThrowsSameDiagnostic) {
  try {
    policy_name("Bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("\"Bogus\""), std::string::npos);
    EXPECT_NE(message.find("MinTotalDistance"), std::string::npos);
    EXPECT_NE(message.find("Greedy"), std::string::npos);
  }
}

TEST(RunTrial, DeterministicPerIndex) {
  const auto config = tiny_config();
  const auto a = run_trial(config, "MinTotalDistance", 0);
  const auto b = run_trial(config, "MinTotalDistance", 0);
  EXPECT_DOUBLE_EQ(a.service_cost, b.service_cost);
  EXPECT_EQ(a.num_dispatches, b.num_dispatches);
}

TEST(RunTrial, DifferentTrialsDiffer) {
  const auto config = tiny_config();
  const auto a = run_trial(config, "Greedy", 0);
  const auto b = run_trial(config, "Greedy", 1);
  EXPECT_NE(a.service_cost, b.service_cost);
}

TEST(RunPolicy, SerialAndParallelAgree) {
  const auto config = tiny_config();
  const auto serial = run_policy(config, "Greedy", nullptr);
  ThreadPool pool(4);
  const auto parallel = run_policy(config, "Greedy", &pool);
  EXPECT_DOUBLE_EQ(serial.cost.mean, parallel.cost.mean);
  EXPECT_DOUBLE_EQ(serial.cost.stddev, parallel.cost.stddev);
  EXPECT_EQ(serial.total_dead, parallel.total_dead);
}

TEST(RunPolicy, AggregatesSane) {
  const auto config = tiny_config();
  const auto outcome = run_policy(config, "MinTotalDistance");
  EXPECT_EQ(outcome.trials, config.trials);
  EXPECT_GT(outcome.cost.mean, 0.0);
  EXPECT_GE(outcome.cost.max, outcome.cost.min);
  EXPECT_GT(outcome.mean_dispatches, 0.0);
  EXPECT_GT(outcome.mean_charges, 0.0);
  EXPECT_EQ(outcome.total_dead, 0u);  // feasible policy
  EXPECT_EQ(outcome.name, "MinTotalDistance");
}

TEST(RunPolicies, PairedComparisonSharesTopologies) {
  const auto config = tiny_config();
  const std::string kinds[] = {"MinTotalDistance",
                              "Greedy"};
  const auto outcomes = run_policies(config, kinds);
  ASSERT_EQ(outcomes.size(), 2u);
  // Same topologies: both ran the same trial count, and results are
  // reproducible individually.
  EXPECT_EQ(outcomes[0].trials, outcomes[1].trials);
  const auto again = run_policies(config, kinds);
  EXPECT_DOUBLE_EQ(outcomes[0].cost.mean, again[0].cost.mean);
  EXPECT_DOUBLE_EQ(outcomes[1].cost.mean, again[1].cost.mean);
}

TEST(RunPolicy, FeasibilityAcrossAllPolicies) {
  auto config = tiny_config();
  config.trials = 2;
  for (const char* kind :
       {"MinTotalDistance", "Greedy",
        "PeriodicAll", "PerSensorPeriodic"}) {
    const auto outcome = run_policy(config, kind);
    EXPECT_EQ(outcome.total_dead, 0u) << outcome.name;
  }
}

}  // namespace
}  // namespace mwc::exp
