#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tsp/qrooted.hpp"
#include "util/rng.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

namespace mwc::viz {
namespace {

TEST(SvgCanvas, EmptyDocumentIsValidSvg) {
  const SvgCanvas canvas(geom::BBox::square(100.0));
  const auto doc = canvas.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("xmlns"), std::string::npos);
}

TEST(SvgCanvas, ShapesAppearInOutput) {
  SvgCanvas canvas(geom::BBox::square(100.0));
  canvas.circle({50, 50}, 3.0, "#ff0000");
  canvas.line({0, 0}, {100, 100}, "#00ff00", 2.0);
  canvas.polyline({{0, 0}, {10, 10}, {20, 0}}, true, "#0000ff");
  canvas.square({25, 25}, 4.0, "#123456");
  canvas.text({60, 60}, "hello");
  const auto doc = canvas.str();
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("<rect x="), std::string::npos);
  EXPECT_NE(doc.find(">hello</text>"), std::string::npos);
}

TEST(SvgCanvas, YAxisFlipped) {
  SvgCanvas canvas(geom::BBox::square(100.0), 140.0, 20.0);
  // World (0,0) maps near the bottom-left: cy should be large.
  canvas.circle({0, 0}, 1.0, "#000");
  const auto doc = canvas.str();
  EXPECT_NE(doc.find("cy=\"120.0\""), std::string::npos) << doc;
}

TEST(SvgCanvas, SaveWritesFile) {
  const std::string path = ::testing::TempDir() + "/mwc_svg_test.svg";
  SvgCanvas canvas(geom::BBox::square(10.0));
  canvas.circle({5, 5}, 2.0, "#abc");
  canvas.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), canvas.str());
  std::remove(path.c_str());
}

TEST(SvgCanvas, SaveToBadPathThrows) {
  SvgCanvas canvas(geom::BBox::square(10.0));
  EXPECT_THROW(canvas.save("/nonexistent_zzz/x.svg"), std::runtime_error);
}

TEST(TourColor, CyclesPalette) {
  EXPECT_EQ(tour_color(0), tour_color(8));
  EXPECT_NE(tour_color(0), tour_color(1));
}

class RenderTest : public ::testing::Test {
 protected:
  RenderTest() {
    wsn::DeploymentConfig config;
    config.n = 40;
    config.q = 3;
    Rng rng(1);
    network_ = wsn::deploy_random(config, rng);
  }
  wsn::Network network_;
};

TEST_F(RenderTest, NetworkRenderContainsAllSensors) {
  const auto canvas = render_network(network_);
  const auto doc = canvas.str();
  std::size_t circles = 0, pos = 0;
  while ((pos = doc.find("<circle", pos)) != std::string::npos) {
    ++circles;
    pos += 7;
  }
  // 40 sensors + base station.
  EXPECT_EQ(circles, 41u);
  EXPECT_NE(doc.find("D0"), std::string::npos);  // depot labels
}

TEST_F(RenderTest, RoundRenderDrawsTours) {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < network_.n(); ++i) ids.push_back(i);
  tsp::QRootedInstance instance;
  instance.depots = network_.depots();
  instance.sensors = network_.sensor_points();
  const auto tours = tsp::q_rooted_tsp(instance);

  const auto canvas = render_round(network_, ids, tours);
  const auto doc = canvas.str();
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
}

TEST_F(RenderTest, RoutingTreeRenderDrawsEdges) {
  wsn::EnergyModelConfig config;
  config.comm_range = 250.0;
  const auto profile = wsn::compute_energy_profile(network_, config);
  const auto canvas = render_routing_tree(network_, profile);
  const auto doc = canvas.str();
  std::size_t lines = 0, pos = 0;
  while ((pos = doc.find("<line", pos)) != std::string::npos) {
    ++lines;
    pos += 5;
  }
  EXPECT_EQ(lines, network_.n());  // one uplink per sensor
}

}  // namespace
}  // namespace mwc::viz
