#include "viz/chart.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/report.hpp"

namespace mwc::viz {
namespace {

std::vector<Series> sample_series() {
  return {
      {"MinTotalDistance", {100, 200, 300}, {600, 900, 1150}},
      {"Greedy", {100, 200, 300}, {1100, 1700, 2180}},
  };
}

TEST(NiceTickStep, PicksOneTwoFive) {
  EXPECT_DOUBLE_EQ(nice_tick_step(10.0, 5), 2.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(100.0, 5), 20.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(7.0, 5), 2.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(0.5, 5), 0.1);
  EXPECT_DOUBLE_EQ(nice_tick_step(30.0, 6), 5.0);
}

TEST(NiceTickStep, StepCoversSpan) {
  for (double span : {0.3, 1.0, 7.7, 42.0, 999.0, 12345.0}) {
    for (std::size_t ticks : {3u, 5u, 8u}) {
      const double step = nice_tick_step(span, ticks);
      EXPECT_GE(step * static_cast<double>(ticks), span * 0.999);
    }
  }
}

TEST(LineChart, ContainsStructure) {
  ChartOptions options;
  options.title = "Fig. X";
  options.x_label = "n";
  options.y_label = "Service Cost (km)";
  const auto doc = render_line_chart(sample_series(), options);
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("Fig. X"), std::string::npos);
  EXPECT_NE(doc.find("Service Cost (km)"), std::string::npos);
  EXPECT_NE(doc.find("MinTotalDistance"), std::string::npos);
  EXPECT_NE(doc.find("Greedy"), std::string::npos);
  // Two polylines (one per series) and 6 data markers.
  std::size_t polylines = 0, circles = 0, pos = 0;
  while ((pos = doc.find("<polyline", pos)) != std::string::npos) {
    ++polylines;
    pos += 9;
  }
  pos = 0;
  while ((pos = doc.find("<circle", pos)) != std::string::npos) {
    ++circles;
    pos += 7;
  }
  EXPECT_EQ(polylines, 2u);
  EXPECT_EQ(circles, 6u);
}

TEST(LineChart, SaveRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mwc_chart_test.svg";
  ChartOptions options;
  save_line_chart(sample_series(), options, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), render_line_chart(sample_series(), options));
  std::remove(path.c_str());
}

TEST(LineChart, SingleFlatSeries) {
  const std::vector<Series> flat{{"only", {1, 2}, {5, 5}}};
  const auto doc = render_line_chart(flat, {});
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
}

TEST(LineChartDeath, RaggedSeriesAborts) {
  const std::vector<Series> bad{{"x", {1, 2}, {1}}};
  EXPECT_DEATH(render_line_chart(bad, {}), "ragged");
}

TEST(FigureReportSvg, WritesChartFromOutcomes) {
  exp::FigureReport report("Fig. T", "svg smoke", "n");
  exp::AggregateOutcome a, b;
  a.name = "A";
  a.cost.mean = 500000.0;
  b.name = "B";
  b.cost.mean = 900000.0;
  report.add_point({100.0, {a, b}});
  a.cost.mean = 700000.0;
  b.cost.mean = 1200000.0;
  report.add_point({200.0, {a, b}});

  const std::string path = ::testing::TempDir() + "/mwc_report_chart.svg";
  report.write_svg(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("svg smoke"), std::string::npos);
  EXPECT_NE(ss.str().find(">A</text>"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mwc::viz
