// Verifies the 2(K+2) approximation guarantee (Theorem 2) against a
// computable lower bound on the optimal service cost.
//
// Lemma 3: OPT >= m * 2^(K-k) * w(D*_k) for every class k, where D*_k is
// the optimal q-rooted TSP over R ∪ V_0 ∪ ... ∪ V_k and T = 2m τ'_n. Since
// any closed tour set weighs at least its q-rooted MSF,
//     LB := max_k  (T / 2^(k+1) τ_1) * msf_k   <=  OPT.
// The proof of Theorem 2 in fact bounds the algorithm's cost by
// 2(K+2) * LB directly (cost <= 4m(Σ 2^(K-1-k) msf_k + msf_K) and each
// m 2^(K-k) msf_k <= LB), so the ratio against LB must hold exactly — a
// stronger, fully computable form of the theorem.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "charging/min_total_distance.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::charging {
namespace {

struct Instance {
  wsn::Network network;
  std::vector<double> cycles;
  double T;
};

Instance power_of_two_instance(std::uint64_t seed, std::size_t n,
                               std::size_t levels, std::size_t m_periods) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = 3;
  config.field_side = 1000.0;
  mwc::Rng rng(seed);
  Instance inst{wsn::deploy_random(config, rng), {}, 0.0};
  // Cycles are exact powers of two so the rounding is lossless and
  // T = 2m τ'_n divides evenly (matching the theorem's assumption).
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<int>(rng.uniform_int(0, levels - 1));
    inst.cycles.push_back(std::ldexp(1.0, k));
  }
  // Make sure both extreme classes exist.
  inst.cycles[0] = 1.0;
  inst.cycles[1] = std::ldexp(1.0, static_cast<int>(levels - 1));
  inst.T = 2.0 * static_cast<double>(m_periods) *
           std::ldexp(1.0, static_cast<int>(levels - 1));
  return inst;
}

double msf_lower_bound(const Instance& inst,
                       const CyclePartition& partition) {
  double lb = 0.0;
  std::vector<std::size_t> cumulative;
  for (std::size_t k = 0; k <= partition.K; ++k) {
    cumulative.insert(cumulative.end(), partition.groups[k].begin(),
                      partition.groups[k].end());
    tsp::QRootedInstance qinst;
    qinst.depots = inst.network.depots();
    for (std::size_t id : cumulative)
      qinst.sensors.push_back(inst.network.sensor(id).position);
    const double msf_k = tsp::q_rooted_msf(qinst).total_weight;
    const double repeats =
        inst.T / (std::ldexp(partition.tau1, static_cast<int>(k + 1)));
    lb = std::max(lb, repeats * msf_k);
  }
  return lb;
}

class ApproximationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproximationProperty, WithinTwoKPlusTwoOfLowerBound) {
  const auto inst = power_of_two_instance(GetParam(), 40, 5, 4);
  const auto schedule =
      build_min_total_distance_schedule(inst.network, inst.cycles, inst.T);
  const double lb = msf_lower_bound(inst, schedule.partition);
  ASSERT_GT(lb, 0.0);
  const double bound =
      2.0 * (static_cast<double>(schedule.partition.K) + 2.0);
  EXPECT_LE(schedule.total_cost, bound * lb * (1.0 + 1e-9))
      << "K=" << schedule.partition.K << " cost=" << schedule.total_cost
      << " lb=" << lb;
}

TEST_P(ApproximationProperty, EmpiricalRatioIsMuchBetterThanWorstCase) {
  // Sanity on solution quality: in practice the ratio should be far below
  // the worst case (typically < K+2).
  const auto inst = power_of_two_instance(GetParam() ^ 0xAA, 60, 4, 2);
  const auto schedule =
      build_min_total_distance_schedule(inst.network, inst.cycles, inst.T);
  const double lb = msf_lower_bound(inst, schedule.partition);
  EXPECT_LE(schedule.total_cost,
            1.4 * (static_cast<double>(schedule.partition.K) + 2.0) * lb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ApproximationSingleClass, UniformCyclesRatioAtMostTwo) {
  // K = 0: every round charges everything; the bound collapses to 4 and
  // the per-round tours are 2-approximate, so cost <= 2 * LB exactly.
  wsn::DeploymentConfig config;
  config.n = 30;
  config.q = 3;
  mwc::Rng rng(99);
  const auto net = wsn::deploy_random(config, rng);
  const std::vector<double> cycles(30, 4.0);
  const double T = 32.0;
  const auto schedule = build_min_total_distance_schedule(net, cycles, T);

  tsp::QRootedInstance qinst;
  qinst.depots = net.depots();
  qinst.sensors = net.sensor_points();
  const double msf = tsp::q_rooted_msf(qinst).total_weight;
  // 7 rounds (t = 4..28); each optimal round >= msf.
  const double lb = 7.0 * msf;
  EXPECT_LE(schedule.total_cost, 2.0 * lb * (1 + 1e-9));
}

}  // namespace
}  // namespace mwc::charging
