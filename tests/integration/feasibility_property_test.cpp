// Property sweep: every policy keeps every sensor alive across random
// topologies, distributions, and both fixed and variable cycle regimes
// (Lemma 2 for MinTotalDistance; design intent for the others).
#include <gtest/gtest.h>

#include <tuple>

#include "exp/runner.hpp"

namespace mwc::exp {
namespace {

using Param = std::tuple<std::string, wsn::CycleDistribution, bool,
                         std::uint64_t>;

class FeasibilityProperty : public ::testing::TestWithParam<Param> {};

TEST_P(FeasibilityProperty, NoSensorEverDies) {
  const auto [kind, distribution, variable, seed] = GetParam();
  auto config = variable ? paper_defaults_variable() : paper_defaults();
  config.deployment.n = 50;
  config.sim.horizon = 200.0;
  config.cycles.distribution = distribution;
  config.trials = 1;
  config.seed = seed;

  const auto result = run_trial(config, kind, 0);
  EXPECT_EQ(result.dead_sensors, 0u)
      << policy_name(kind) << " seed=" << seed
      << " variable=" << variable;
  EXPECT_GT(result.service_cost, 0.0);
  // Slack was never negative at a charge instant.
  EXPECT_GE(result.min_residual_at_charge, -1e-9);
}

// Fixed-cycle regime: every policy must keep every sensor alive.
INSTANTIATE_TEST_SUITE_P(
    FixedCycles, FeasibilityProperty,
    ::testing::Combine(
        ::testing::Values("MinTotalDistance",
                          "MinTotalDistance-var",
                          "Greedy", "PeriodicAll",
                          "PerSensorPeriodic"),
        ::testing::Values(wsn::CycleDistribution::kLinear,
                          wsn::CycleDistribution::kRandom),
        ::testing::Values(false),
        ::testing::Values(11u, 22u, 33u)));

// Variable-cycle regime: the adaptive policies must survive redraws.
// MinTotalDistance (fixed) is deliberately absent — the paper's Sec. VI
// motivation is precisely that it fails when cycles shrink (see the
// FixedPolicyDiesUnderShrinkingCycles test below).
INSTANTIATE_TEST_SUITE_P(
    VariableCycles, FeasibilityProperty,
    ::testing::Combine(
        ::testing::Values("MinTotalDistance-var",
                          "Greedy", "PeriodicAll",
                          "PerSensorPeriodic"),
        ::testing::Values(wsn::CycleDistribution::kLinear,
                          wsn::CycleDistribution::kRandom),
        ::testing::Values(true),
        ::testing::Values(11u, 22u, 33u)));

TEST(FeasibilityContrast, FixedPolicyDiesUnderShrinkingCycles) {
  // Demonstrates the paper's motivation for the variable-cycle heuristic:
  // run the fixed-cycle schedule against aggressive per-slot redraws and
  // observe failures that MinTotalDistance-var avoids on the same draws.
  auto config = paper_defaults_variable();
  config.deployment.n = 50;
  config.sim.horizon = 200.0;
  config.sim.slot_length = 5.0;
  config.cycles.sigma = 20.0;
  config.trials = 3;

  std::size_t fixed_dead = 0, var_dead = 0;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    fixed_dead +=
        run_trial(config, "MinTotalDistance", trial).dead_sensors;
    var_dead += run_trial(config, "MinTotalDistance-var", trial)
                    .dead_sensors;
  }
  EXPECT_GT(fixed_dead, 0u);
  EXPECT_EQ(var_dead, 0u);
}

class HarshVariability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarshVariability, SurvivesLargeSigmaAndShortSlots) {
  // Fig. 5/6 stress regime: σ large, ΔT short.
  auto config = paper_defaults_variable();
  config.deployment.n = 40;
  config.sim.horizon = 150.0;
  config.sim.slot_length = 2.0;
  config.cycles.sigma = 25.0;
  config.trials = 1;
  config.seed = GetParam();

  for (const char* kind : {"MinTotalDistance-var",
                          "Greedy"}) {
    const auto result = run_trial(config, kind, 0);
    EXPECT_EQ(result.dead_sensors, 0u)
        << policy_name(kind) << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarshVariability,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mwc::exp
