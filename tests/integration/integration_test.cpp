// End-to-end experiments at reduced scale, asserting the *qualitative*
// findings of the paper's evaluation (Sec. VII) hold in this
// implementation.
#include <gtest/gtest.h>

#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace mwc::exp {
namespace {

ExperimentConfig small_config(wsn::CycleDistribution distribution,
                              bool variable) {
  auto config = variable ? paper_defaults_variable() : paper_defaults();
  config.deployment.n = 80;
  config.sim.horizon = 300.0;
  config.cycles.distribution = distribution;
  config.trials = 5;
  return config;
}

double cost_ratio(const ExperimentConfig& config, const std::string& a,
                  const std::string& b) {
  const std::string kinds[] = {a, b};
  const auto outcomes = run_policies(config, kinds);
  EXPECT_EQ(outcomes[0].total_dead, 0u) << outcomes[0].name;
  EXPECT_EQ(outcomes[1].total_dead, 0u) << outcomes[1].name;
  return outcomes[0].cost.mean / outcomes[1].cost.mean;
}

TEST(Integration, MinTotalDistanceBeatsGreedyOnLinear) {
  const auto config =
      small_config(wsn::CycleDistribution::kLinear, /*variable=*/false);
  const double ratio = cost_ratio(config, "MinTotalDistance",
                                  "Greedy");
  // Paper Fig. 1(a): 55-60%. Allow slack for the reduced scale.
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.2);
}

TEST(Integration, RandomDistributionGivesSmallerWin) {
  const auto linear =
      small_config(wsn::CycleDistribution::kLinear, false);
  const auto random =
      small_config(wsn::CycleDistribution::kRandom, false);
  const double ratio_linear = cost_ratio(
      linear, "MinTotalDistance", "Greedy");
  const double ratio_random = cost_ratio(
      random, "MinTotalDistance", "Greedy");
  // Fig. 1: the win under the random distribution is markedly smaller.
  EXPECT_LT(ratio_linear, ratio_random);
  EXPECT_LT(ratio_random, 1.1);
}

TEST(Integration, VarHeuristicCompetitiveUnderVariableCycles) {
  const auto config =
      small_config(wsn::CycleDistribution::kLinear, /*variable=*/true);
  const double ratio = cost_ratio(
      config, "MinTotalDistance-var", "Greedy");
  // Fig. 3: still clearly below greedy at ΔT = 10.
  EXPECT_LT(ratio, 1.0);
}

TEST(Integration, NaiveChargeAllIsWorst) {
  auto config = small_config(wsn::CycleDistribution::kLinear, false);
  config.trials = 3;
  const std::string kinds[] = {"MinTotalDistance",
                              "PeriodicAll"};
  const auto outcomes = run_policies(config, kinds);
  EXPECT_LT(outcomes[0].cost.mean, outcomes[1].cost.mean);
}

TEST(Integration, SmallTauMaxClosesTheGap) {
  // Fig. 2(a): at τ_max <= ~10 the two algorithms nearly coincide; at 50
  // MinTotalDistance wins big. Check the *trend*.
  auto config = small_config(wsn::CycleDistribution::kLinear, false);
  config.trials = 3;

  config.cycles.tau_max = 5.0;
  const double ratio_small = cost_ratio(
      config, "MinTotalDistance", "Greedy");
  config.cycles.tau_max = 50.0;
  const double ratio_large = cost_ratio(
      config, "MinTotalDistance", "Greedy");
  EXPECT_GT(ratio_small, ratio_large);
}

TEST(Integration, ReportPipelineEndToEnd) {
  auto config = small_config(wsn::CycleDistribution::kLinear, false);
  config.trials = 2;
  config.deployment.n = 40;
  FigureReport report("Fig. test", "integration smoke", "n");
  const std::string kinds[] = {"MinTotalDistance",
                              "Greedy"};
  for (std::size_t n : {30u, 50u}) {
    config.deployment.n = n;
    report.add_point({static_cast<double>(n),
                      run_policies(config, kinds)});
  }
  EXPECT_EQ(report.points().size(), 2u);
  EXPECT_GT(report.ratio_at(0), 0.0);
  const std::string path = ::testing::TempDir() + "/mwc_integration.csv";
  report.write_csv(path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mwc::exp
