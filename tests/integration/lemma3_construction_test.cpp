// The constructive step inside Lemma 3's proof: the union of several
// closed tours through the same depot is a connected Eulerian multigraph;
// its Eulerian circuit, shortcut to the target node set, is a feasible
// q-rooted tour no longer than the group's total weight. This is what
// lower-bounds OPT in Theorem 2 — exercised here directly on the euler
// module, as promised in graph/euler.hpp.
#include <gtest/gtest.h>

#include <set>

#include "graph/euler.hpp"
#include "graph/mst.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"

namespace mwc {
namespace {

// Builds the edge list of a closed tour over combined-index points.
std::vector<graph::Edge> tour_edges(const tsp::Tour& tour,
                                    const std::vector<geom::Point>& pts) {
  std::vector<graph::Edge> edges;
  const auto& order = tour.order();
  if (order.size() < 2) return edges;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    edges.push_back({order[i], order[i + 1],
                     geom::distance(pts[order[i]], pts[order[i + 1]])});
  }
  edges.push_back({order.back(), order.front(),
                   geom::distance(pts[order.back()], pts[order.front()])});
  return edges;
}

class Lemma3Construction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma3Construction, MergedToursShortcutToFeasibleCheaperTour) {
  const auto seed = GetParam();
  Rng rng(seed);

  // One depot (index 0) and two disjoint sensor groups; build one closed
  // tour per group through the depot — this plays the role of "all tours
  // of group G_j that contain depot r_l".
  tsp::QRootedInstance inst;
  inst.depots.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  const std::size_t m = 14;
  for (std::size_t k = 0; k < m; ++k)
    inst.sensors.push_back(
        {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  const auto pts = inst.points().materialize();

  tsp::QRootedInstance first_half, second_half;
  first_half.depots = inst.depots;
  second_half.depots = inst.depots;
  for (std::size_t k = 0; k < m; ++k) {
    (k % 2 == 0 ? first_half : second_half)
        .sensors.push_back(inst.sensors[k]);
  }
  const auto tours_a = tsp::q_rooted_tsp(first_half);
  const auto tours_b = tsp::q_rooted_tsp(second_half);

  // Map each half-instance tour back into combined indices of `inst`.
  const auto remap = [&](const tsp::Tour& tour, bool evens) {
    std::vector<std::size_t> order;
    for (std::size_t v : tour.order()) {
      if (v == 0) {
        order.push_back(0);
      } else {
        const std::size_t local = v - 1;  // sensor index within the half
        order.push_back(1 + (evens ? 2 * local : 2 * local + 1));
      }
    }
    return tsp::Tour(order);
  };
  const auto tour_a = remap(tours_a.tours[0], true);
  const auto tour_b = remap(tours_b.tours[0], false);

  // Union of the two closed tours: Eulerian (every vertex even degree,
  // connected through the shared depot).
  auto edges = tour_edges(tour_a, pts);
  const auto more = tour_edges(tour_b, pts);
  edges.insert(edges.end(), more.begin(), more.end());
  ASSERT_TRUE(graph::has_eulerian_circuit(edges));

  double group_weight = 0.0;
  for (const auto& e : edges) group_weight += e.w;

  // Eulerian circuit from the depot, shortcut: one closed tour covering
  // every sensor, no longer than the group's weight (triangle inequality).
  const auto walk = graph::eulerian_circuit(edges, 0);
  const auto merged = tsp::Tour(graph::shortcut_closed_walk(walk));
  EXPECT_EQ(merged.order().front(), 0u);
  EXPECT_TRUE(merged.is_simple());
  const std::set<std::size_t> visited(merged.order().begin(),
                                      merged.order().end());
  EXPECT_EQ(visited.size(), m + 1);  // depot + every sensor
  EXPECT_LE(merged.length(pts), group_weight + 1e-9);
}

TEST_P(Lemma3Construction, ShortcutDropsNodesOutsideTargetSet) {
  // Lemma 3 also removes nodes outside R ∪ V_0..V_k before shortcutting;
  // emulate by shortcutting a walk filtered to a subset and check the
  // result is a valid cheaper tour over that subset.
  const auto seed = GetParam() ^ 0x99;
  Rng rng(seed);
  std::vector<geom::Point> pts;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});

  const auto mst = graph::prim_mst(
      n, [&](std::size_t a, std::size_t b) {
        return geom::distance(pts[a], pts[b]);
      });
  const auto walk = graph::doubled_tree_circuit(mst.edges, 0);

  // Keep only even-indexed nodes (plus the root).
  std::vector<std::size_t> filtered;
  for (std::size_t v : walk) {
    if (v == 0 || v % 2 == 0) filtered.push_back(v);
  }
  const auto tour = tsp::Tour(graph::shortcut_closed_walk(filtered));
  EXPECT_TRUE(tour.is_simple());
  for (std::size_t v : tour.order()) EXPECT_EQ(v % 2, 0u);
  // Full doubled-tree walk length bounds the filtered shortcut tour.
  double walk_len = 0.0;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i)
    walk_len += geom::distance(pts[walk[i]], pts[walk[i + 1]]);
  EXPECT_LE(tour.length(pts), walk_len + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma3Construction,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mwc
