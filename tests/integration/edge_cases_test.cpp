// Boundary conditions across the whole pipeline — the configurations a
// downstream user will eventually feed in.
#include <gtest/gtest.h>

#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc {
namespace {

wsn::Network custom_network(std::vector<geom::Point> sensor_positions,
                            std::vector<geom::Point> depots,
                            double side = 1000.0) {
  std::vector<wsn::Sensor> sensors;
  for (std::size_t i = 0; i < sensor_positions.size(); ++i)
    sensors.push_back({i, sensor_positions[i], 1.0});
  const auto field = geom::BBox::square(side);
  return wsn::Network(std::move(sensors), field.center(), std::move(depots),
                      field);
}

sim::SimResult run_fixed(const wsn::Network& network,
                         const std::vector<double>& cycles, double T,
                         charging::Policy& policy) {
  wsn::CycleModelConfig config;
  config.tau_min = 0.5;
  config.tau_max = 1000.0;
  config.sigma = 0.0;
  const auto model = wsn::CycleModel::from_means(cycles, config, 1);
  sim::SimOptions options;
  options.horizon = T;
  sim::Simulator simulator(network, model, options);
  return simulator.run(policy);
}

TEST(EdgeCases, SingleSensorSingleDepot) {
  auto net = custom_network({{600, 500}}, {{500, 500}});
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, {3.0}, 12.0, mtd);
  EXPECT_TRUE(result.feasible());
  // Charged at t = 3, 6, 9 (t = 12 == T skipped): 3 round trips of 200 m.
  EXPECT_EQ(result.num_dispatches, 3u);
  EXPECT_NEAR(result.service_cost, 3 * 200.0, 1e-9);
}

TEST(EdgeCases, MoreDepotsThanSensors) {
  auto net = custom_network(
      {{100, 100}, {900, 900}},
      {{0, 0}, {1000, 1000}, {0, 1000}, {1000, 0}, {500, 500}});
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, {2.0, 2.0}, 8.0, mtd);
  EXPECT_TRUE(result.feasible());
  // Each sensor served by its corner depot: 2 * sqrt(2*100^2) per round.
  const double per_round = 2.0 * std::hypot(100.0, 100.0) * 2.0;
  EXPECT_NEAR(result.service_cost, 3 * per_round, 1e-6);
}

TEST(EdgeCases, UniformCyclesChargeEverythingEveryRound) {
  wsn::DeploymentConfig config;
  config.n = 25;
  config.q = 3;
  Rng rng(5);
  const auto net = wsn::deploy_random(config, rng);
  const std::vector<double> cycles(25, 5.0);
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, cycles, 50.0, mtd);
  EXPECT_TRUE(result.feasible());
  EXPECT_EQ(result.num_dispatches, 9u);  // t = 5..45
  EXPECT_EQ(result.num_sensor_charges, 9u * 25u);
}

TEST(EdgeCases, HorizonShorterThanEveryCycleNeedsNoCharging) {
  wsn::DeploymentConfig config;
  config.n = 10;
  Rng rng(6);
  const auto net = wsn::deploy_random(config, rng);
  const std::vector<double> cycles(10, 100.0);

  charging::MinTotalDistancePolicy mtd;
  const auto a = run_fixed(net, cycles, 50.0, mtd);
  EXPECT_TRUE(a.feasible());
  EXPECT_EQ(a.service_cost, 0.0);

  charging::GreedyPolicy greedy(charging::GreedyOptions{.threshold = 1.0});
  const auto b = run_fixed(net, cycles, 50.0, greedy);
  EXPECT_TRUE(b.feasible());
  EXPECT_EQ(b.service_cost, 0.0);
}

TEST(EdgeCases, SensorOnTopOfDepotCostsNothingExtra) {
  auto net = custom_network({{500, 500}}, {{500, 500}});
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, {2.0}, 10.0, mtd);
  EXPECT_TRUE(result.feasible());
  EXPECT_EQ(result.service_cost, 0.0);
  EXPECT_GT(result.num_dispatches, 0u);
}

TEST(EdgeCases, ExtremeCycleRatio) {
  // τ spread over three orders of magnitude: K = 10 classes.
  auto net = custom_network({{100, 500}, {900, 500}}, {{500, 500}});
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, {1.0, 1024.0}, 64.0, mtd);
  EXPECT_TRUE(result.feasible());
  // The long-cycle sensor is never due within T... except Algorithm 3
  // still charges it on its rounded cadence only when a round reaches
  // depth 10 (j = 1024), which never happens before T = 64 — so only the
  // short-cycle sensor is ever charged.
  EXPECT_EQ(result.num_sensor_charges, result.num_dispatches);
}

TEST(EdgeCases, VarHeuristicSingleSensor) {
  auto net = custom_network({{700, 500}}, {{500, 500}});
  wsn::CycleModelConfig config;
  config.tau_min = 2.0;
  config.tau_max = 8.0;
  config.sigma = 3.0;
  const wsn::CycleModel model(net, config, 9);
  sim::SimOptions options;
  options.horizon = 100.0;
  options.slot_length = 5.0;
  sim::Simulator simulator(net, model, options);
  charging::MinTotalDistanceVarPolicy policy;
  const auto result = simulator.run(policy);
  EXPECT_TRUE(result.feasible());
}

TEST(EdgeCases, FractionalCyclesWork) {
  // Nothing requires integer cycles outside the exact DP solver.
  wsn::DeploymentConfig config;
  config.n = 15;
  Rng rng(8);
  const auto net = wsn::deploy_random(config, rng);
  std::vector<double> cycles;
  for (int i = 0; i < 15; ++i) cycles.push_back(0.7 + 0.31 * i);
  charging::MinTotalDistancePolicy mtd;
  const auto result = run_fixed(net, cycles, 21.7, mtd);
  EXPECT_TRUE(result.feasible());
}

}  // namespace
}  // namespace mwc
