// Cross-validation: independent code paths that must agree.
#include <gtest/gtest.h>

#include "charging/min_total_distance.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "tsp/construct.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc {
namespace {

wsn::Network test_network(std::size_t n, std::size_t q,
                          std::uint64_t seed) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = q;
  Rng rng(seed);
  return wsn::deploy_random(config, rng);
}

// The offline schedule builder and the online policy driven through the
// simulator are separate implementations of Algorithm 3; their service
// costs must match exactly.
class BuilderPolicyAgreement
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuilderPolicyAgreement, OfflineCostEqualsSimulatedCost) {
  const auto seed = GetParam();
  const auto network = test_network(40, 3, seed);
  wsn::CycleModelConfig config;
  config.tau_min = 1.0;
  config.tau_max = 20.0;
  const wsn::CycleModel cycles(network, config, seed ^ 0xC1);
  const double T = 100.0;

  const auto offline = charging::build_min_total_distance_schedule(
      network, cycles.fixed_cycles(), T);

  sim::SimOptions options;
  options.horizon = T;
  sim::Simulator simulator(network, cycles, options);
  charging::MinTotalDistancePolicy policy;
  const auto online = simulator.run(policy);

  EXPECT_NEAR(online.service_cost, offline.total_cost,
              1e-6 * (1.0 + offline.total_cost));
  EXPECT_EQ(online.num_dispatches, offline.dispatches.size());
  EXPECT_TRUE(online.feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderPolicyAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

// With the cycles frozen (sigma = 0), the variable-cycle heuristic never
// recomputes and must produce exactly the fixed algorithm's cost.
class VarReducesToFixed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarReducesToFixed, IdenticalCostWhenCyclesNeverChange) {
  const auto seed = GetParam();
  auto config = exp::paper_defaults_variable();
  config.deployment.n = 50;
  config.sim.horizon = 150.0;
  config.cycles.sigma = 0.0;  // slots tick, cycles never move
  config.seed = seed;
  config.trials = 1;

  const auto fixed =
      exp::run_trial(config, "MinTotalDistance", 0);
  const auto var =
      exp::run_trial(config, "MinTotalDistance-var", 0);
  EXPECT_NEAR(fixed.service_cost, var.service_cost,
              1e-6 * (1.0 + fixed.service_cost));
  EXPECT_EQ(fixed.num_dispatches, var.num_dispatches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarReducesToFixed,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(QRootedVsDoubleTree, SingleDepotCostsAgree) {
  // With q = 1, Algorithm 2 degenerates to the classical double-tree
  // 2-approximation rooted at the depot.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    tsp::QRootedInstance inst;
    inst.depots.push_back({rng.uniform(0.0, 100.0),
                           rng.uniform(0.0, 100.0)});
    for (int i = 0; i < 35; ++i)
      inst.sensors.push_back({rng.uniform(0.0, 100.0),
                              rng.uniform(0.0, 100.0)});
    const auto tours = tsp::q_rooted_tsp(inst);
    const auto points = inst.points().materialize();
    const auto direct = tsp::double_tree_tour(points, 0);
    EXPECT_NEAR(tours.total_length, direct.length(points), 1e-9)
        << "seed " << seed;
  }
}

TEST(ImproveOption, SimulatedCostNeverWorse) {
  auto config = exp::paper_defaults();
  config.deployment.n = 60;
  config.sim.horizon = 100.0;
  config.trials = 1;
  const auto raw =
      exp::run_trial(config, "MinTotalDistance", 0);
  config.sim.tour_options.improve = true;
  const auto polished =
      exp::run_trial(config, "MinTotalDistance", 0);
  EXPECT_LE(polished.service_cost, raw.service_cost + 1e-6);
  EXPECT_EQ(polished.num_dispatches, raw.num_dispatches);
}

TEST(PairedDraws, PoliciesSeeIdenticalTopologiesAndCycles) {
  // Two different policies on trial k face the same world: their
  // dispatch counts differ but a shared deterministic fingerprint of the
  // world (first dispatch cost of the charge-everything baseline) is
  // identical across runs.
  auto config = exp::paper_defaults();
  config.deployment.n = 30;
  config.sim.horizon = 50.0;
  config.trials = 1;
  const auto a = exp::run_trial(config, "PeriodicAll", 0);
  const auto b = exp::run_trial(config, "PeriodicAll", 0);
  EXPECT_DOUBLE_EQ(a.service_cost, b.service_cost);
}

}  // namespace
}  // namespace mwc
