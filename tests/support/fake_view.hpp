// Shared test double: a StateView over explicit arrays, letting policy
// unit tests script residual lives and cycles without running a simulator.
#pragma once

#include <vector>

#include "charging/schedule.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"
#include "wsn/network.hpp"

namespace mwc::testing {

class FakeView final : public charging::StateView {
 public:
  FakeView(const wsn::Network& network, double horizon)
      : network_(network),
        horizon_(horizon),
        residual_(network.n(), 0.0),
        cycles_(network.n(), 0.0) {}

  const wsn::Network& network() const override { return network_; }
  double horizon() const override { return horizon_; }
  double now() const override { return now_; }
  double residual_life(std::size_t i) const override { return residual_[i]; }
  double cycle(std::size_t i) const override { return cycles_[i]; }

  void set_now(double t) { now_ = t; }
  void set_residual(std::size_t i, double v) { residual_[i] = v; }
  void set_cycle(std::size_t i, double v) { cycles_[i] = v; }
  void fill_full() { residual_ = cycles_; }
  void set_all_cycles(const std::vector<double>& cycles) {
    cycles_ = cycles;
  }

  /// Advances time, draining residual lives.
  void advance(double delta) {
    now_ += delta;
    for (auto& r : residual_) r -= delta;
  }

 private:
  const wsn::Network& network_;
  double horizon_;
  double now_ = 0.0;
  std::vector<double> residual_;
  std::vector<double> cycles_;
};

/// Small deterministic network for policy tests.
inline wsn::Network small_network(std::size_t n = 10, std::size_t q = 2,
                                  std::uint64_t seed = 1) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = q;
  config.field_side = 100.0;
  Rng rng(seed);
  return wsn::deploy_random(config, rng);
}

}  // namespace mwc::testing
