// Tests for Algorithms 1 and 2 — including the paper's Lemma 1 (MSF
// optimality) and Theorem 1 (2-approximation) verified against brute force.
#include "tsp/qrooted.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "tsp/exact.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

QRootedInstance random_instance(std::size_t q, std::size_t m,
                                std::uint64_t seed, double side = 100.0) {
  mwc::Rng rng(seed);
  QRootedInstance inst;
  for (std::size_t l = 0; l < q; ++l)
    inst.depots.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  for (std::size_t k = 0; k < m; ++k)
    inst.sensors.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return inst;
}

TEST(QRootedInstance, CombinedIndexing) {
  QRootedInstance inst;
  inst.depots = {{0, 0}, {1, 1}};
  inst.sensors = {{2, 2}};
  EXPECT_EQ(inst.q(), 2u);
  EXPECT_EQ(inst.m(), 1u);
  EXPECT_EQ(inst.total_nodes(), 3u);
  EXPECT_EQ(inst.point(0), geom::Point(0, 0));
  EXPECT_EQ(inst.point(2), geom::Point(2, 2));
  EXPECT_EQ(inst.points().size(), 3u);
}

TEST(QRootedMsf, NoSensors) {
  auto inst = random_instance(3, 0, 1);
  const auto forest = q_rooted_msf(inst);
  EXPECT_EQ(forest.trees.size(), 3u);
  EXPECT_EQ(forest.total_weight, 0.0);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(forest.trees[l].root(), l);
    EXPECT_EQ(forest.trees[l].num_nodes(), 1u);
  }
}

TEST(QRootedMsf, SingleDepotIsPlainMst) {
  auto inst = random_instance(1, 20, 2);
  const auto forest = q_rooted_msf(inst);
  ASSERT_EQ(forest.trees.size(), 1u);
  EXPECT_EQ(forest.trees[0].num_nodes(), 21u);
  EXPECT_TRUE(forest.trees[0].valid());
}

TEST(QRootedMsf, SensorGoesToNearestDepotWhenIsolated) {
  QRootedInstance inst;
  inst.depots = {{0, 0}, {100, 0}};
  inst.sensors = {{90, 0}};
  const auto forest = q_rooted_msf(inst);
  EXPECT_EQ(forest.trees[0].num_nodes(), 1u);   // depot 0 alone
  EXPECT_EQ(forest.trees[1].num_nodes(), 2u);   // depot 1 + sensor
  EXPECT_NEAR(forest.total_weight, 10.0, 1e-12);
}

TEST(QRootedMsf, TreesPartitionSensors) {
  auto inst = random_instance(4, 30, 3);
  const auto forest = q_rooted_msf(inst);
  std::set<std::size_t> seen;
  for (std::size_t l = 0; l < forest.trees.size(); ++l) {
    EXPECT_TRUE(forest.trees[l].valid());
    EXPECT_EQ(forest.trees[l].root(), l);
    for (std::size_t v : forest.trees[l].nodes()) {
      if (v >= inst.q()) {
        EXPECT_TRUE(seen.insert(v).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), inst.m());
}

// Lemma 1: the contraction algorithm is exact.
class Lemma1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, MsfMatchesBruteForce) {
  const auto seed = GetParam();
  mwc::Rng meta(seed);
  const auto q = static_cast<std::size_t>(meta.uniform_int(2, 3));
  const auto m = static_cast<std::size_t>(meta.uniform_int(1, 7));
  const auto inst = random_instance(q, m, seed ^ 0xAB);
  const double algo = q_rooted_msf(inst).total_weight;
  const double brute = brute_force_q_rooted_msf(inst);
  EXPECT_NEAR(algo, brute, 1e-9) << "q=" << q << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(QRootedTsp, NoSensorsMeansEveryoneStaysHome) {
  auto inst = random_instance(3, 0, 4);
  const auto tours = q_rooted_tsp(inst);
  EXPECT_EQ(tours.total_length, 0.0);
  for (std::size_t l = 0; l < 3; ++l)
    EXPECT_EQ(tours.tours[l].order(), std::vector<std::size_t>{l});
}

TEST(QRootedTsp, CoversAllSensors) {
  auto inst = random_instance(5, 40, 5);
  const auto tours = q_rooted_tsp(inst);
  EXPECT_TRUE(covers_all_sensors(inst, tours));
}

TEST(QRootedTsp, WithinTwiceMsfWeight) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = random_instance(4, 50, seed);
    const double forest = q_rooted_msf(inst).total_weight;
    const auto tours = q_rooted_tsp(inst);
    EXPECT_LE(tours.total_length, 2.0 * forest + 1e-9);
  }
}

// Theorem 1: within twice the optimal q-rooted tour cost.
class Theorem1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Property, WithinTwiceOptimal) {
  const auto seed = GetParam();
  mwc::Rng meta(seed ^ 0x77);
  const auto q = static_cast<std::size_t>(meta.uniform_int(2, 3));
  const auto m = static_cast<std::size_t>(meta.uniform_int(2, 7));
  const auto inst = random_instance(q, m, seed ^ 0xCD);
  const auto approx = q_rooted_tsp(inst);
  const double optimal = brute_force_q_rooted_tsp(inst);
  EXPECT_LE(approx.total_length, 2.0 * optimal + 1e-9)
      << "q=" << q << " m=" << m;
  EXPECT_GE(approx.total_length, optimal - 1e-9);
  EXPECT_TRUE(covers_all_sensors(inst, approx));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(QRootedTsp, ImproveNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = random_instance(3, 60, seed);
    QRootedOptions with_improve;
    with_improve.improve = true;
    const auto raw = q_rooted_tsp(inst);
    const auto polished = q_rooted_tsp(inst, with_improve);
    EXPECT_LE(polished.total_length, raw.total_length + 1e-9);
    EXPECT_TRUE(covers_all_sensors(inst, polished));
  }
}

TEST(QRootedTsp, ChristofidesConstructionCoversAndUsuallyWins) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = random_instance(3, 60, seed);
    const auto double_tree = q_rooted_tsp(inst);
    QRootedOptions options;
    options.construction = TourConstruction::kChristofides;
    const auto christofides = q_rooted_tsp(inst, options);
    EXPECT_TRUE(covers_all_sensors(inst, christofides));
    EXPECT_LE(christofides.total_length, double_tree.total_length * 1.05)
        << "seed " << seed;
  }
}

TEST(QRootedTsp, CoincidentDepotAndSensor) {
  QRootedInstance inst;
  inst.depots = {{5, 5}};
  inst.sensors = {{5, 5}, {6, 5}};
  const auto tours = q_rooted_tsp(inst);
  EXPECT_TRUE(covers_all_sensors(inst, tours));
  EXPECT_NEAR(tours.total_length, 2.0, 1e-12);
}

TEST(QRootedMsfAssign, EachSensorAssignedOnce) {
  const auto inst = random_instance(3, 25, 6);
  const auto root_dist = [&](std::size_t r, std::size_t s) {
    return geom::distance(inst.depots[r], inst.sensors[s]);
  };
  const auto assignment =
      q_rooted_msf_assign(inst.q(), root_dist, inst.sensors);
  std::set<std::size_t> seen;
  for (const auto& group : assignment.groups)
    for (std::size_t s : group) EXPECT_TRUE(seen.insert(s).second);
  EXPECT_EQ(seen.size(), inst.m());
}

TEST(QRootedMsfAssign, MatchesDepotBasedMsfWeight) {
  // When roots are exactly the depots, the generalized assignment must
  // reproduce the q-rooted MSF weight.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = random_instance(3, 20, seed);
    const auto root_dist = [&](std::size_t r, std::size_t s) {
      return geom::distance(inst.depots[r], inst.sensors[s]);
    };
    const auto assignment =
        q_rooted_msf_assign(inst.q(), root_dist, inst.sensors);
    const auto forest = q_rooted_msf(inst);
    EXPECT_NEAR(assignment.total_weight, forest.total_weight, 1e-9);
  }
}

TEST(QRootedMsfAssign, EmptySensors) {
  const auto assignment = q_rooted_msf_assign(
      2, [](std::size_t, std::size_t) { return 1.0; }, {});
  EXPECT_EQ(assignment.groups.size(), 2u);
  EXPECT_EQ(assignment.total_weight, 0.0);
}

}  // namespace
}  // namespace mwc::tsp
