// Golden-equivalence suite for the shared distance oracle: every tsp
// routine must produce *bit-identical* output whether distances come from
// the oracle's cache or from direct geometry. The simulator's costing
// correctness rests on this equivalence.
#include "tsp/oracle.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "geom/distance.hpp"
#include "tsp/construct.hpp"
#include "tsp/improve.hpp"
#include "tsp/qrooted.hpp"
#include "tsp/split.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

QRootedInstance random_instance(std::size_t n, std::size_t q,
                                std::uint64_t seed) {
  Rng rng(seed);
  QRootedInstance instance;
  instance.depots.reserve(q);
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  instance.sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return instance;
}

DistanceOracle oracle_for(const QRootedInstance& instance) {
  return DistanceOracle(instance.depots, instance.sensors);
}

void expect_same_tours(const QRootedTours& a, const QRootedTours& b) {
  ASSERT_EQ(a.tours.size(), b.tours.size());
  for (std::size_t l = 0; l < a.tours.size(); ++l)
    EXPECT_EQ(a.tours[l].order(), b.tours[l].order()) << "tour " << l;
  EXPECT_EQ(a.total_length, b.total_length);  // bit-exact, not approximate
}

TEST(DistanceView, DirectMatchesGeometry) {
  const auto instance = random_instance(20, 3, 1);
  const auto view = instance.distances();
  ASSERT_EQ(view.size(), instance.total_nodes());
  EXPECT_FALSE(view.cached());
  for (std::size_t i = 0; i < view.size(); ++i)
    for (std::size_t j = 0; j < view.size(); ++j)
      EXPECT_EQ(view(i, j),
                geom::distance(instance.point(i), instance.point(j)));
}

TEST(DistanceOracle, MatchesDirectGeometryBitExact) {
  const auto instance = random_instance(50, 4, 2);
  const auto oracle = oracle_for(instance);
  const auto cached = oracle.view();
  const auto direct = instance.distances();
  ASSERT_EQ(cached.size(), direct.size());
  EXPECT_TRUE(cached.cached());
  for (std::size_t i = 0; i < cached.size(); ++i)
    for (std::size_t j = 0; j < cached.size(); ++j)
      EXPECT_EQ(cached(i, j), direct(i, j));
}

TEST(DistanceOracle, SubviewAndDispatchViewRelabel) {
  const auto instance = random_instance(30, 2, 3);
  const auto oracle = oracle_for(instance);
  const std::size_t q = instance.q();

  // dispatch_view({ids}) node k >= q must be sensor ids[k - q].
  const std::vector<std::size_t> ids = {4, 9, 17, 29};
  const auto view = oracle.dispatch_view(ids);
  ASSERT_EQ(view.size(), q + ids.size());
  for (std::size_t a = 0; a < view.size(); ++a) {
    const geom::Point& pa = a < q ? instance.depots[a]
                                  : instance.sensors[ids[a - q]];
    for (std::size_t b = 0; b < view.size(); ++b) {
      const geom::Point& pb = b < q ? instance.depots[b]
                                    : instance.sensors[ids[b - q]];
      EXPECT_EQ(view(a, b), geom::distance(pa, pb));
    }
  }

  // sub() composes maps: taking every other node of the dispatch view
  // still reads the same backing entries.
  std::vector<std::size_t> locals;
  for (std::size_t k = 0; k < view.size(); k += 2) locals.push_back(k);
  const auto sub = view.sub(locals);
  ASSERT_EQ(sub.size(), locals.size());
  for (std::size_t a = 0; a < sub.size(); ++a)
    for (std::size_t b = 0; b < sub.size(); ++b)
      EXPECT_EQ(sub(a, b), view(locals[a], locals[b]));
}

TEST(LazyDistanceMatrix, MaterializesRowsOnDemand) {
  const auto instance = random_instance(16, 1, 4);
  const auto oracle = oracle_for(instance);
  EXPECT_EQ(oracle.rows_materialized(), 0u);
  (void)oracle(3, 5);
  EXPECT_EQ(oracle.rows_materialized(), 1u);
  (void)oracle(3, 7);  // same row: no new materialization
  EXPECT_EQ(oracle.rows_materialized(), 1u);
  oracle.materialize_all();
  EXPECT_EQ(oracle.rows_materialized(), oracle.size());
}

TEST(LazyDistanceMatrix, ConcurrentFirstTouchesAgree) {
  const auto instance = random_instance(64, 2, 5);
  const auto oracle = oracle_for(instance);
  const auto direct = instance.distances();
  std::vector<std::thread> threads;
  std::vector<int> ok(8, 0);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      int good = 1;
      for (std::size_t i = 0; i < oracle.size(); ++i)
        for (std::size_t j = 0; j < oracle.size(); ++j)
          if (oracle(i, j) != direct(i, j)) good = 0;
      ok[t] = good;
    });
  }
  for (auto& th : threads) th.join();
  for (int good : ok) EXPECT_EQ(good, 1);
}

// The tentpole guarantee: the oracle-backed pipeline produces the exact
// tours of the direct-geometry pipeline on randomized instances across
// the full size/depot grid.
using GoldenParam = std::tuple<std::size_t, std::size_t>;  // (n, q)

class GoldenEquivalence : public ::testing::TestWithParam<GoldenParam> {};

TEST_P(GoldenEquivalence, MsfIdentical) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 100 + n + q);
  const auto oracle = oracle_for(instance);

  const auto direct = q_rooted_msf(instance);
  const auto cached = q_rooted_msf(oracle.view(), q);
  ASSERT_EQ(direct.trees.size(), cached.trees.size());
  EXPECT_EQ(direct.total_weight, cached.total_weight);
  for (std::size_t l = 0; l < direct.trees.size(); ++l) {
    ASSERT_EQ(direct.trees[l].edges().size(), cached.trees[l].edges().size());
    for (std::size_t e = 0; e < direct.trees[l].edges().size(); ++e) {
      EXPECT_EQ(direct.trees[l].edges()[e].u, cached.trees[l].edges()[e].u);
      EXPECT_EQ(direct.trees[l].edges()[e].v, cached.trees[l].edges()[e].v);
      EXPECT_EQ(direct.trees[l].edges()[e].w, cached.trees[l].edges()[e].w);
    }
  }
}

TEST_P(GoldenEquivalence, DoubleTreeToursIdentical) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 200 + n + q);
  const auto oracle = oracle_for(instance);
  expect_same_tours(q_rooted_tsp(instance),
                    q_rooted_tsp(oracle.view(), q));
}

TEST_P(GoldenEquivalence, ImprovedToursIdentical) {
  const auto [n, q] = GetParam();
  if (n > 100) GTEST_SKIP() << "2-opt at n=800 is slow; covered at n<=100";
  const auto instance = random_instance(n, q, 300 + n + q);
  const auto oracle = oracle_for(instance);
  QRootedOptions options;
  options.improve = true;
  expect_same_tours(q_rooted_tsp(instance, options),
                    q_rooted_tsp(oracle.view(), q, options));
}

TEST_P(GoldenEquivalence, ChristofidesToursIdentical) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 400 + n + q);
  const auto oracle = oracle_for(instance);
  QRootedOptions options;
  options.construction = TourConstruction::kChristofides;
  expect_same_tours(q_rooted_tsp(instance, options),
                    q_rooted_tsp(oracle.view(), q, options));
}

TEST_P(GoldenEquivalence, SplitsIdentical) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 500 + n + q);
  const auto oracle = oracle_for(instance);
  const auto points = instance.points().materialize();
  const auto cached = oracle.view();
  const auto tours = q_rooted_tsp(instance);
  for (std::size_t l = 0; l < tours.tours.size(); ++l) {
    const auto& tour = tours.tours[l];
    if (tour.size() < 2) continue;
    const auto direct_split = split_tour_minmax(points, tour, l, 3);
    const auto cached_split = split_tour_minmax(cached, tour, l, 3);
    ASSERT_EQ(direct_split.tours.size(), cached_split.tours.size());
    for (std::size_t t = 0; t < direct_split.tours.size(); ++t)
      EXPECT_EQ(direct_split.tours[t].order(), cached_split.tours[t].order());
    EXPECT_EQ(direct_split.total_length, cached_split.total_length);
    EXPECT_EQ(direct_split.max_length, cached_split.max_length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeGrid, GoldenEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{10}, std::size_t{100},
                                         std::size_t{800}),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{10})));

TEST(CombinedPointsView, MatchesMaterializedCopy) {
  const auto instance = random_instance(12, 3, 6);
  const auto view = instance.points();
  const auto copy = instance.points().materialize();
  ASSERT_EQ(view.size(), copy.size());
  std::size_t i = 0;
  for (const auto& p : view) {  // iterator path
    EXPECT_EQ(p.x, copy[i].x);
    EXPECT_EQ(p.y, copy[i].y);
    ++i;
  }
  EXPECT_EQ(i, copy.size());
  EXPECT_EQ(view.materialize().size(), copy.size());
}

}  // namespace
}  // namespace mwc::tsp
