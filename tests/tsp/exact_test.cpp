#include "tsp/exact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  return pts;
}

double brute_force_tsp(const std::vector<geom::Point>& pts) {
  std::vector<std::size_t> perm(pts.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    double len = 0.0;
    for (std::size_t i = 0; i + 1 < perm.size(); ++i)
      len += geom::distance(pts[perm[i]], pts[perm[i + 1]]);
    len += geom::distance(pts[perm.back()], pts[perm.front()]);
    best = std::min(best, len);
  } while (std::next_permutation(perm.begin() + 1, perm.end()));
  return best;
}

TEST(HeldKarp, Degenerate) {
  EXPECT_TRUE(held_karp_tsp({}).empty());
  const std::vector<geom::Point> one{{1, 1}};
  EXPECT_EQ(held_karp_tsp(one).size(), 1u);
  const std::vector<geom::Point> two{{0, 0}, {3, 4}};
  const auto t = held_karp_tsp(two);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.length(two), 10.0);
}

TEST(HeldKarp, UnitSquare) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto tour = held_karp_tsp(pts);
  EXPECT_DOUBLE_EQ(tour.length(pts), 4.0);
  EXPECT_TRUE(tour.is_simple());
  EXPECT_EQ(tour.size(), 4u);
}

class HeldKarpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeldKarpProperty, MatchesPermutationBruteForce) {
  const auto pts = random_points(8, GetParam());
  const auto hk = held_karp_tsp(pts);
  EXPECT_NEAR(hk.length(pts), brute_force_tsp(pts), 1e-9);
  EXPECT_TRUE(hk.is_simple());
  EXPECT_EQ(hk.size(), pts.size());
  EXPECT_EQ(hk.order().front(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeldKarpProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(HeldKarpAnchored, EmptySubset) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}};
  EXPECT_EQ(held_karp_anchored_length(pts, 0, {}), 0.0);
}

TEST(HeldKarpAnchored, SingleSensorRoundTrip) {
  const std::vector<geom::Point> pts{{0, 0}, {3, 4}};
  const std::vector<std::size_t> subset{1};
  EXPECT_DOUBLE_EQ(held_karp_anchored_length(pts, 0, subset), 10.0);
}

TEST(BruteForceQRooted, SingleDepotMatchesHeldKarp) {
  QRootedInstance inst;
  mwc::Rng rng(9);
  inst.depots.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  for (int i = 0; i < 6; ++i)
    inst.sensors.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  auto pts = inst.points().materialize();
  const double via_brute = brute_force_q_rooted_tsp(inst);
  const double via_hk = held_karp_tsp(pts).length(pts);
  EXPECT_NEAR(via_brute, via_hk, 1e-9);
}

TEST(BruteForceQRooted, TwoDepotsObviousSplit) {
  QRootedInstance inst;
  inst.depots = {{0, 0}, {100, 0}};
  inst.sensors = {{1, 0}, {99, 0}};
  // Optimal: each depot serves its adjacent sensor: 2 + 2 = 4.
  EXPECT_NEAR(brute_force_q_rooted_tsp(inst), 4.0, 1e-9);
}

TEST(BruteForceQRootedMsf, TwoDepotsObviousSplit) {
  QRootedInstance inst;
  inst.depots = {{0, 0}, {100, 0}};
  inst.sensors = {{1, 0}, {99, 0}};
  EXPECT_NEAR(brute_force_q_rooted_msf(inst), 2.0, 1e-9);
}

TEST(BruteForceQRooted, UnusedDepotIsFree) {
  QRootedInstance inst;
  inst.depots = {{0, 0}, {500, 500}};
  inst.sensors = {{1, 0}, {2, 0}};
  // Both sensors served by depot 0: tour 0 ->1 ->2 ->0 = 4. Depot 1 idle.
  EXPECT_NEAR(brute_force_q_rooted_tsp(inst), 4.0, 1e-9);
}

}  // namespace
}  // namespace mwc::tsp
