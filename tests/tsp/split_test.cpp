#include "tsp/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "tsp/construct.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return pts;
}

// All non-root nodes of `tour`, as a set.
std::set<std::size_t> node_set(const Tour& tour, std::size_t root) {
  std::set<std::size_t> s(tour.order().begin(), tour.order().end());
  s.erase(root);
  return s;
}

void expect_partition(const SplitResult& split, const Tour& original,
                      std::size_t root) {
  std::set<std::size_t> covered;
  for (const auto& sub : split.tours) {
    ASSERT_FALSE(sub.empty());
    EXPECT_EQ(sub.order().front(), root);
    for (std::size_t v : node_set(sub, root)) {
      EXPECT_TRUE(covered.insert(v).second) << "node " << v << " duplicated";
    }
  }
  EXPECT_EQ(covered, node_set(original, root));
}

TEST(SplitCapacity, SingleNodeTour) {
  const std::vector<geom::Point> pts{{0, 0}};
  const auto split = split_tour_capacity(pts, Tour({0}), 0, 10.0);
  ASSERT_EQ(split.tours.size(), 1u);
  EXPECT_EQ(split.total_length, 0.0);
}

TEST(SplitCapacity, GenerousCapacityKeepsOneTour) {
  const auto pts = random_points(30, 1);
  const auto tour = double_tree_tour(pts, 0);
  const double full = tour.length(pts);
  const auto split = split_tour_capacity(pts, tour, 0, full * 2.0);
  EXPECT_EQ(split.tours.size(), 1u);
  EXPECT_NEAR(split.total_length, full, 1e-9);
}

TEST(SplitCapacity, EveryTripRespectsBudget) {
  const auto pts = random_points(60, 2);
  const auto tour = double_tree_tour(pts, 0);
  // Budget: just above the largest round trip.
  double max_rt = 0.0;
  for (std::size_t v = 1; v < pts.size(); ++v)
    max_rt = std::max(max_rt, 2.0 * geom::distance(pts[0], pts[v]));
  const double capacity = max_rt * 1.2;
  const auto split = split_tour_capacity(pts, tour, 0, capacity);
  for (const auto& sub : split.tours)
    EXPECT_LE(sub.length(pts), capacity + 1e-6);
  expect_partition(split, tour, 0);
  EXPECT_GT(split.tours.size(), 1u);
}

TEST(SplitCapacity, TighterBudgetMoreTrips) {
  const auto pts = random_points(50, 3);
  const auto tour = double_tree_tour(pts, 0);
  double max_rt = 0.0;
  for (std::size_t v = 1; v < pts.size(); ++v)
    max_rt = std::max(max_rt, 2.0 * geom::distance(pts[0], pts[v]));
  const auto loose = split_tour_capacity(pts, tour, 0, max_rt * 4.0);
  const auto tight = split_tour_capacity(pts, tour, 0, max_rt * 1.05);
  EXPECT_GE(tight.tours.size(), loose.tours.size());
}

TEST(SplitCapacityDeath, InfeasibleBudgetAborts) {
  const std::vector<geom::Point> pts{{0, 0}, {100, 0}};
  EXPECT_DEATH(split_tour_capacity(pts, Tour({0, 1}), 0, 50.0),
               "round trip");
}

TEST(SplitMinMax, KOneIsIdentityCover) {
  const auto pts = random_points(25, 4);
  const auto tour = double_tree_tour(pts, 0);
  const auto split = split_tour_minmax(pts, tour, 0, 1);
  ASSERT_EQ(split.tours.size(), 1u);
  expect_partition(split, tour, 0);
}

TEST(SplitMinMax, ProducesExactlyKTours) {
  const auto pts = random_points(40, 5);
  const auto tour = double_tree_tour(pts, 0);
  for (std::size_t k : {2u, 3u, 5u, 8u}) {
    const auto split = split_tour_minmax(pts, tour, 0, k);
    EXPECT_EQ(split.tours.size(), k);
    expect_partition(split, tour, 0);
  }
}

TEST(SplitMinMax, FrederiksonBoundHolds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pts = random_points(50, seed);
    const auto tour = double_tree_tour(pts, 0);
    const double total = tour.length(pts);
    double max_dist = 0.0;
    for (std::size_t v = 1; v < pts.size(); ++v)
      max_dist = std::max(max_dist, geom::distance(pts[0], pts[v]));
    for (std::size_t k : {2u, 4u, 6u}) {
      const auto split = split_tour_minmax(pts, tour, 0, k);
      EXPECT_LE(split.max_length,
                total / static_cast<double>(k) + 2.0 * max_dist + 1e-6)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(SplitMinMax, MoreChargersReduceMakespanOverall) {
  // The j/k splitting rule is not strictly monotone in k (cut positions
  // shift), but every split beats the single tour and the trend is a
  // clear reduction by k = 8.
  const auto pts = random_points(60, 9);
  const auto tour = double_tree_tour(pts, 0);
  const double single = split_tour_minmax(pts, tour, 0, 1).max_length;
  for (std::size_t k = 2; k <= 8; ++k) {
    const double cur = split_tour_minmax(pts, tour, 0, k).max_length;
    EXPECT_LE(cur, single + 1e-9) << "k=" << k;
  }
  EXPECT_LT(split_tour_minmax(pts, tour, 0, 8).max_length, 0.6 * single);
}

TEST(SplitMinMax, MakespanAboveLowerBound) {
  const auto pts = random_points(45, 10);
  const auto tour = double_tree_tour(pts, 0);
  for (std::size_t k : {1u, 2u, 4u}) {
    const auto split = split_tour_minmax(pts, tour, 0, k);
    EXPECT_GE(split.max_length + 1e-9,
              minmax_split_lower_bound(pts, tour, 0, k));
  }
}

TEST(SplitMinMax, EmptyTourGivesKRootOnlyTours) {
  const std::vector<geom::Point> pts{{5, 5}};
  const auto split = split_tour_minmax(pts, Tour({0}), 0, 3);
  EXPECT_EQ(split.tours.size(), 3u);
  EXPECT_EQ(split.max_length, 0.0);
}

}  // namespace
}  // namespace mwc::tsp
