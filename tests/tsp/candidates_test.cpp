// CandidateGraph unit tests plus the candidate-vs-exhaustive golden
// suite: candidate-mode local search must stay within 1% of the
// exhaustive sweep's tour length, be bit-identical when k >= n (complete
// graph), and the candidate-pruned q-rooted MSF must match the dense
// Prim's forest weight exactly on Euclidean instances.
#include "tsp/candidates.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "geom/distance.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed,
                                       double side = 1000.0) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

QRootedInstance random_instance(std::size_t n, std::size_t q,
                                std::uint64_t seed) {
  Rng rng(seed);
  QRootedInstance instance;
  instance.depots.reserve(q);
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  instance.sensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return instance;
}

TEST(CandidateGraph, EmptyAndSingleton) {
  const CandidateGraph empty = CandidateGraph::build({});
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.complete());
  EXPECT_EQ(empty.k(), 0u);

  const std::vector<geom::Point> one{{1, 2}};
  const CandidateGraph single = CandidateGraph::build(one);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.k(), 0u);
  EXPECT_TRUE(single.complete());
}

TEST(CandidateGraph, ClampsKAndReportsComplete) {
  const auto pts = random_points(6, 3);
  CandidateOptions options;
  options.k = 10;  // > n-1: clamps to 5, degenerate complete graph
  const auto graph = CandidateGraph::build(pts, options);
  EXPECT_EQ(graph.size(), 6u);
  EXPECT_EQ(graph.k(), 5u);
  EXPECT_TRUE(graph.complete());

  options.k = 3;
  const auto sparse = CandidateGraph::build(pts, options);
  EXPECT_EQ(sparse.k(), 3u);
  EXPECT_FALSE(sparse.complete());
}

TEST(CandidateGraph, RowsAreNearestNeighborsSortedByDistance) {
  const auto pts = random_points(80, 5);
  CandidateOptions options;
  options.k = 7;
  const auto graph = CandidateGraph::build(pts, options);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto row = graph.neighbors(i);
    ASSERT_EQ(row.size(), 7u);
    // Brute-force reference row.
    std::vector<std::pair<double, std::size_t>> all;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      all.emplace_back(geom::distance2(pts[i], pts[j]), j);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t r = 0; r < row.size(); ++r) {
      EXPECT_NE(row[r], i) << "self in candidate row";
      EXPECT_EQ(row[r], all[r].second) << "node " << i << " rank " << r;
    }
  }
}

TEST(CandidateGraph, BackendsProduceIdenticalRows) {
  const auto pts = random_points(120, 9);
  CandidateOptions kd;
  kd.backend = CandidateOptions::Backend::kKdTree;
  CandidateOptions grid;
  grid.backend = CandidateOptions::Backend::kGrid;
  const auto a = CandidateGraph::build(pts, kd);
  const auto b = CandidateGraph::build(pts, grid);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.k(), b.k());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.neighbors(i);
    const auto rb = b.neighbors(i);
    for (std::size_t r = 0; r < ra.size(); ++r)
      EXPECT_EQ(ra[r], rb[r]) << "node " << i << " rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Golden suite: candidate mode vs exhaustive sweep across the size grid.

class CandidateGolden
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CandidateGolden, ImprovedToursWithinOnePercent) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 700 + n + q);
  const DistanceOracle oracle(instance.depots, instance.sensors);
  const auto combined = instance.points().materialize();
  const auto graph = CandidateGraph::build(combined);

  QRootedOptions exhaustive;
  exhaustive.improve = true;
  exhaustive.improve_options.exhaustive = true;

  QRootedOptions candidate;
  candidate.improve = true;
  candidate.candidates = &graph;
  candidate.candidate_msf = true;
  candidate.verify_candidate_msf = true;

  // Exhaustive polish at n=800 costs O(n²) per pass; one reference run
  // per grid point keeps the suite fast enough for CI.
  const auto reference = q_rooted_tsp(oracle.view(), q, exhaustive);
  const auto accelerated = q_rooted_tsp(oracle.view(), q, candidate);

  ASSERT_EQ(accelerated.tours.size(), reference.tours.size());
  EXPECT_TRUE(covers_all_sensors(instance, accelerated));
  EXPECT_LE(accelerated.total_length, reference.total_length * 1.01)
      << "candidate tours more than 1% longer than exhaustive";
}

TEST_P(CandidateGolden, CompleteGraphBitIdenticalToExhaustive) {
  const auto [n, q] = GetParam();
  if (n > 100) GTEST_SKIP() << "exhaustive at n=800 is slow; covered below";
  const auto instance = random_instance(n, q, 900 + n + q);
  const DistanceOracle oracle(instance.depots, instance.sensors);
  const auto combined = instance.points().materialize();

  CandidateOptions options;
  options.k = combined.size();  // >= n-1: degenerate complete graph
  const auto graph = CandidateGraph::build(combined, options);
  ASSERT_TRUE(graph.complete());

  QRootedOptions exhaustive;
  exhaustive.improve = true;
  exhaustive.improve_options.exhaustive = true;

  QRootedOptions candidate;
  candidate.improve = true;
  candidate.candidates = &graph;
  candidate.candidate_msf = true;

  const auto a = q_rooted_tsp(oracle.view(), q, exhaustive);
  const auto b = q_rooted_tsp(oracle.view(), q, candidate);
  ASSERT_EQ(a.tours.size(), b.tours.size());
  for (std::size_t l = 0; l < a.tours.size(); ++l)
    EXPECT_EQ(a.tours[l].order(), b.tours[l].order()) << "tour " << l;
  EXPECT_EQ(a.total_length, b.total_length);  // bit-exact
}

TEST_P(CandidateGolden, PrunedMsfWeightEqualsDensePrim) {
  const auto [n, q] = GetParam();
  const auto instance = random_instance(n, q, 1100 + n + q);
  const DistanceOracle oracle(instance.depots, instance.sensors);
  const auto combined = instance.points().materialize();
  const auto graph = CandidateGraph::build(combined);

  const auto dense = q_rooted_msf(oracle.view(), q);
  const auto pruned = q_rooted_msf(oracle.view(), q, &graph);
  ASSERT_EQ(pruned.trees.size(), dense.trees.size());
  // The escape hatch is *verification*, not approximation: on Euclidean
  // instances at k = 10 the candidate graph contains every MSF edge, so
  // the forests weigh exactly the same.
  EXPECT_DOUBLE_EQ(pruned.total_weight, dense.total_weight);

  // And with the verify escape hatch on, equality holds by construction.
  const auto verified = q_rooted_msf(oracle.view(), q, &graph, true);
  EXPECT_DOUBLE_EQ(verified.total_weight, dense.total_weight);
}

INSTANTIATE_TEST_SUITE_P(
    SizeGrid, CandidateGolden,
    ::testing::Combine(::testing::Values(std::size_t{10}, std::size_t{100},
                                         std::size_t{800}),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{10})));

TEST(ParallelPolish, PoolMatchesSerialBitExact) {
  const auto instance = random_instance(200, 4, 42);
  const DistanceOracle oracle(instance.depots, instance.sensors);
  const auto combined = instance.points().materialize();
  const auto graph = CandidateGraph::build(combined);

  QRootedOptions options;
  options.improve = true;
  options.candidates = &graph;
  options.candidate_msf = true;

  const auto serial = q_rooted_tsp(oracle.view(), instance.q(), options);
  ThreadPool pool(4);
  const auto parallel =
      q_rooted_tsp(oracle.view(), instance.q(), options, &pool);
  ASSERT_EQ(serial.tours.size(), parallel.tours.size());
  for (std::size_t l = 0; l < serial.tours.size(); ++l)
    EXPECT_EQ(serial.tours[l].order(), parallel.tours[l].order());
  EXPECT_EQ(serial.total_length, parallel.total_length);
}

}  // namespace
}  // namespace mwc::tsp
