// Tests for the incremental layers behind the v2 delta path:
// CandidateGraph::repair must equal a from-scratch build on the patched
// points (both spatial backends), repair_q_rooted_msf must degenerate to
// the exact forest when every tree is dirty and stay a valid spanning
// forest under local patches, and seed_nodes must localize candidate-mode
// re-polish while leaving the exhaustive sweep untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "tsp/candidates.hpp"
#include "tsp/construct.hpp"
#include "tsp/improve.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed,
                                       double side = 1000.0) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

QRootedInstance random_instance(std::size_t m, std::size_t q,
                                std::uint64_t seed) {
  Rng rng(seed);
  QRootedInstance instance;
  for (std::size_t l = 0; l < q; ++l)
    instance.depots.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  for (std::size_t i = 0; i < m; ++i)
    instance.sensors.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  return instance;
}

/// Applies a deterministic remove/move/add patch to `base` points and
/// returns the patched set plus the CandidateRemap describing it.
struct PatchedPoints {
  std::vector<geom::Point> points;
  CandidateRemap remap;
};

PatchedPoints make_patch(const std::vector<geom::Point>& base,
                         std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = base.size();
  std::vector<char> removed(n, 0);
  removed[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] = 1;
  removed[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] = 1;

  PatchedPoints out;
  out.remap.old_to_new.assign(n, CandidateRemap::kRemoved);
  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i]) continue;
    out.remap.old_to_new[i] = out.points.size();
    out.points.push_back(base[i]);
  }
  // Move two survivors.
  for (int moves = 0; moves < 2;) {
    const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (removed[i]) continue;
    const std::size_t id = out.remap.old_to_new[i];
    out.points[id] = {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    out.remap.fresh.push_back(id);
    ++moves;
  }
  // Append two additions.
  for (int adds = 0; adds < 2; ++adds) {
    out.remap.fresh.push_back(out.points.size());
    out.points.push_back(
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  out.remap.new_size = out.points.size();
  return out;
}

TEST(CandidateRepair, MatchesFreshBuildOnRandomPatches) {
  for (const auto backend : {CandidateOptions::Backend::kKdTree,
                             CandidateOptions::Backend::kGrid}) {
    for (const std::size_t k : {4u, 12u}) {
      CandidateOptions options;
      options.k = k;
      options.backend = backend;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const std::vector<geom::Point> base_points = random_points(120, seed);
        const CandidateGraph base = CandidateGraph::build(base_points,
                                                          options);
        const PatchedPoints patch = make_patch(base_points, seed + 100);
        const CandidateGraph repaired =
            CandidateGraph::repair(base, patch.points, patch.remap, options);
        const CandidateGraph fresh =
            CandidateGraph::build(patch.points, options);
        ASSERT_EQ(repaired.size(), fresh.size());
        ASSERT_EQ(repaired.k(), fresh.k());
        for (std::size_t i = 0; i < fresh.size(); ++i) {
          const auto a = repaired.neighbors(i);
          const auto b = fresh.neighbors(i);
          ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
              << "row " << i << " k=" << k << " seed=" << seed;
        }
      }
    }
  }
}

/// Sensors spanned by the forest, as one sorted list of combined ids.
std::vector<std::size_t> spanned_sensors(const QRootedForest& forest,
                                         std::size_t q) {
  std::vector<std::size_t> out;
  for (const graph::RootedTree& tree : forest.trees)
    for (std::size_t node : tree.nodes())
      if (node >= q) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MsfRepair, AllDirtyEqualsDenseRebuild) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const QRootedInstance instance = random_instance(80, 3, seed);
    const QRootedForest base = q_rooted_msf(instance);

    MsfRepairPlan plan;
    plan.tree_dirty.assign(instance.q(), 1);
    MsfRepairStats stats;
    const QRootedForest repaired = repair_q_rooted_msf(
        instance.distances(), instance.q(), base, plan, nullptr, &stats);
    EXPECT_NEAR(repaired.total_weight, base.total_weight, 1e-9);
    EXPECT_EQ(stats.rebuilt_trees + stats.reused_trees, instance.q());
    EXPECT_EQ(stats.reused_trees, 0u);
    ASSERT_EQ(stats.tree_changed.size(), instance.q());
  }
}

TEST(MsfRepair, LocalPatchSpansEverySensorAndKeepsCleanTrees) {
  const QRootedInstance base_instance = random_instance(100, 4, 9);
  const QRootedForest base = q_rooted_msf(base_instance);

  // Move one sensor far away; dirty only the tree that owned it.
  QRootedInstance patched = base_instance;
  const std::size_t moved = base_instance.q() + 17;
  patched.sensors[17] = {1500.0, 1500.0};
  std::size_t owner = patched.q();
  for (std::size_t l = 0; l < base.trees.size(); ++l)
    for (std::size_t node : base.trees[l].nodes())
      if (node == moved) owner = l;
  ASSERT_LT(owner, patched.q());

  MsfRepairPlan plan;
  plan.tree_dirty.assign(patched.q(), 0);
  plan.tree_dirty[owner] = 1;
  MsfRepairStats stats;
  const QRootedForest repaired =
      repair_q_rooted_msf(patched.distances(), patched.q(), base, plan,
                          nullptr, &stats);

  // Valid spanning forest: every sensor in exactly one tree.
  std::vector<std::size_t> expected(patched.m());
  std::iota(expected.begin(), expected.end(), patched.q());
  EXPECT_EQ(spanned_sensors(repaired, patched.q()), expected);
  // Lower-bounded by the optimal forest of the patched instance.
  const QRootedForest optimal = q_rooted_msf(patched);
  EXPECT_GE(repaired.total_weight, optimal.total_weight - 1e-9);
  // Clean trees that gained no graft come back verbatim.
  EXPECT_GE(stats.reused_trees, 1u);
  for (std::size_t l = 0; l < patched.q(); ++l)
    if (!stats.tree_changed[l])
      EXPECT_EQ(repaired.trees[l].nodes(), base.trees[l].nodes());
}

TEST(MsfRepair, InactiveRootAttractsNoSensors) {
  const QRootedInstance instance = random_instance(60, 3, 5);
  const QRootedForest base = q_rooted_msf(instance);

  MsfRepairPlan plan;
  plan.tree_dirty.assign(instance.q(), 1);
  plan.root_active.assign(instance.q(), 1);
  plan.root_active[1] = 0;
  const QRootedForest repaired = repair_q_rooted_msf(
      instance.distances(), instance.q(), base, plan);

  EXPECT_EQ(repaired.trees[1].num_nodes(), 1u);  // just the root
  std::vector<std::size_t> expected(instance.m());
  std::iota(expected.begin(), expected.end(), instance.q());
  EXPECT_EQ(spanned_sensors(repaired, instance.q()), expected);
}

TEST(MsfRepair, ExtraSensorsJoinTheForest) {
  QRootedInstance instance = random_instance(50, 2, 13);
  const QRootedForest base = q_rooted_msf(instance);

  // Two appended sensors, no other change: every base tree stays clean.
  instance.sensors.push_back({250.0, 250.0});
  instance.sensors.push_back({800.0, 120.0});
  MsfRepairPlan plan;
  plan.tree_dirty.assign(instance.q(), 0);
  plan.extra_sensors = {instance.q() + 50, instance.q() + 51};
  MsfRepairStats stats;
  const QRootedForest repaired = repair_q_rooted_msf(
      instance.distances(), instance.q(), base, plan, nullptr, &stats);

  std::vector<std::size_t> expected(instance.m());
  std::iota(expected.begin(), expected.end(), instance.q());
  EXPECT_EQ(spanned_sensors(repaired, instance.q()), expected);
  EXPECT_EQ(stats.dirty_sensors, 2u);
  EXPECT_GE(repaired.total_weight, base.total_weight);
}

TEST(SeededPolish, LocalizedRepairImprovesPerturbedTour) {
  const std::vector<geom::Point> points = random_points(200, 21);
  const DistanceView view = DistanceView::direct(points);
  const CandidateGraph candidates = CandidateGraph::build(points);

  ImproveOptions full;
  full.candidates = &candidates;
  Tour polished = nearest_neighbor_tour(points, 0);
  improve_tour(polished, view, full);
  const double polished_length = polished.length(points);

  // Perturb: swap two far-apart nodes of the polished order.
  Tour perturbed = polished;
  std::swap(perturbed.order()[10], perturbed.order()[120]);
  const double perturbed_length = perturbed.length(points);
  ASSERT_GT(perturbed_length, polished_length);

  // Seeded candidate-mode re-polish around the two touched nodes
  // recovers most of the damage without a full sweep.
  const std::vector<std::size_t> seeds{perturbed.order()[10],
                                       perturbed.order()[120]};
  ImproveOptions seeded = full;
  seeded.seed_nodes = &seeds;
  Tour repaired = perturbed;
  const double gain = improve_tour(repaired, view, seeded);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(repaired.length(points), perturbed_length);
}

TEST(SeededPolish, ExhaustiveSweepIgnoresSeeds) {
  const std::vector<geom::Point> points = random_points(80, 33);
  const DistanceView view = DistanceView::direct(points);

  Tour a = nearest_neighbor_tour(points, 0);
  Tour b = a;
  const std::vector<std::size_t> seeds{3};
  ImproveOptions with_seeds;
  with_seeds.seed_nodes = &seeds;  // no candidates: exhaustive mode
  improve_tour(a, view, with_seeds);
  improve_tour(b, view, ImproveOptions{});
  EXPECT_EQ(a.order(), b.order());
}

}  // namespace
}  // namespace mwc::tsp
