#include "tsp/tour.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mwc::tsp {
namespace {

const std::vector<geom::Point> kSquare{{0, 0}, {1, 0}, {1, 1}, {0, 1}};

TEST(Tour, EmptyAndSingleHaveZeroLength) {
  EXPECT_EQ(Tour{}.length(kSquare), 0.0);
  EXPECT_EQ(Tour({2}).length(kSquare), 0.0);
}

TEST(Tour, PairIsThereAndBack) {
  const Tour t({0, 1});
  EXPECT_DOUBLE_EQ(t.length(kSquare), 2.0);
}

TEST(Tour, SquarePerimeter) {
  const Tour t({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(t.length(kSquare), 4.0);
}

TEST(Tour, CrossingOrderIsLonger) {
  const Tour crossing({0, 2, 1, 3});
  EXPECT_GT(crossing.length(kSquare), 4.0);
}

TEST(Tour, LengthWithCustomMetric) {
  const Tour t({0, 1, 2});
  const double len = t.length_with([](std::size_t, std::size_t) {
    return 10.0;
  });
  EXPECT_DOUBLE_EQ(len, 30.0);
}

TEST(Tour, IsSimple) {
  EXPECT_TRUE(Tour({0, 1, 2}).is_simple());
  EXPECT_FALSE(Tour({0, 1, 0}).is_simple());
  EXPECT_TRUE(Tour{}.is_simple());
}

TEST(Tour, Visits) {
  const Tour t({3, 1});
  EXPECT_TRUE(t.visits(3));
  EXPECT_TRUE(t.visits(1));
  EXPECT_FALSE(t.visits(0));
}

TEST(Tour, RotatePreservesLength) {
  Tour t({0, 1, 2, 3});
  const double before = t.length(kSquare);
  t.rotate_to_front(2);
  EXPECT_EQ(t.order().front(), 2u);
  EXPECT_DOUBLE_EQ(t.length(kSquare), before);
  EXPECT_EQ(t.order(), (std::vector<std::size_t>{2, 3, 0, 1}));
}

TEST(TourDeath, RotateToMissingNodeAborts) {
  Tour t({0, 1});
  EXPECT_DEATH(t.rotate_to_front(9), "not on tour");
}

TEST(TotalLength, SumsTours) {
  const std::vector<Tour> tours{Tour({0, 1}), Tour({2, 3})};
  EXPECT_DOUBLE_EQ(total_length(tours, kSquare), 2.0 + 2.0);
}

}  // namespace
}  // namespace mwc::tsp
