#include "tsp/construct.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/mst.hpp"
#include "tsp/exact.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  return pts;
}

void expect_hamiltonian(const Tour& tour, std::size_t n) {
  ASSERT_EQ(tour.size(), n);
  EXPECT_TRUE(tour.is_simple());
  auto sorted = tour.order();
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(sorted, expected);
}

TEST(DoubleTree, Degenerate) {
  EXPECT_TRUE(double_tree_tour(DistanceView{}).empty());
  const std::vector<geom::Point> one{{1, 1}};
  EXPECT_EQ(double_tree_tour(one).size(), 1u);
}

TEST(DoubleTree, VisitsAllNodes) {
  const auto pts = random_points(40, 1);
  expect_hamiltonian(double_tree_tour(pts), pts.size());
}

TEST(DoubleTree, StartsAtRequestedNode) {
  const auto pts = random_points(20, 2);
  const auto tour = double_tree_tour(pts, 7);
  EXPECT_EQ(tour.order().front(), 7u);
}

class ConstructProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstructProperty, DoubleTreeWithinTwiceMst) {
  const auto pts = random_points(60, GetParam());
  const auto mst = graph::prim_mst(
      pts.size(), [&](std::size_t a, std::size_t b) {
        return geom::distance(pts[a], pts[b]);
      });
  const auto tour = double_tree_tour(pts);
  // MST weight is a lower bound on the optimum; the double-tree tour is at
  // most twice the MST.
  EXPECT_LE(tour.length(pts), 2.0 * mst.total_weight + 1e-9);
  EXPECT_GE(tour.length(pts), mst.total_weight - 1e-9);
}

TEST_P(ConstructProperty, DoubleTreeWithinTwiceOptimal) {
  const auto pts = random_points(9, GetParam() + 100);
  const auto optimal = held_karp_tsp(pts);
  const auto approx = double_tree_tour(pts);
  EXPECT_LE(approx.length(pts), 2.0 * optimal.length(pts) + 1e-9);
  EXPECT_GE(approx.length(pts), optimal.length(pts) - 1e-9);
}

TEST_P(ConstructProperty, ChristofidesHamiltonian) {
  const auto pts = random_points(50, GetParam() + 400);
  expect_hamiltonian(christofides_tour(pts), pts.size());
}

TEST_P(ConstructProperty, ChristofidesWithinTwiceOptimal) {
  const auto pts = random_points(9, GetParam() + 500);
  const auto optimal = held_karp_tsp(pts);
  const auto tour = christofides_tour(pts);
  EXPECT_LE(tour.length(pts), 2.0 * optimal.length(pts) + 1e-9);
  EXPECT_GE(tour.length(pts), optimal.length(pts) - 1e-9);
}

TEST_P(ConstructProperty, ChristofidesUsuallyBeatsDoubleTree) {
  // Not a guarantee per instance, but on 80 random points the matching
  // construction reliably lands below the doubled MST.
  const auto pts = random_points(80, GetParam() + 600);
  const double christofides = christofides_tour(pts).length(pts);
  const double doubled = double_tree_tour(pts).length(pts);
  EXPECT_LE(christofides, doubled * 1.02);
}

TEST_P(ConstructProperty, NearestNeighborHamiltonian) {
  const auto pts = random_points(50, GetParam() + 200);
  expect_hamiltonian(nearest_neighbor_tour(pts), pts.size());
}

TEST_P(ConstructProperty, GreedyEdgeHamiltonian) {
  const auto pts = random_points(50, GetParam() + 300);
  expect_hamiltonian(greedy_edge_tour(pts), pts.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstructProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Christofides, Degenerate) {
  EXPECT_TRUE(christofides_tour(DistanceView{}).empty());
  const std::vector<geom::Point> one{{1, 1}};
  EXPECT_EQ(christofides_tour(one).size(), 1u);
  const std::vector<geom::Point> two{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(christofides_tour(two).length(two), 10.0);
}

TEST(Christofides, StartsAtRequestedNode) {
  const auto pts = random_points(30, 77);
  EXPECT_EQ(christofides_tour(pts, 7).order().front(), 7u);
}

TEST(NearestNeighbor, FollowsNearestChain) {
  // Points on a line: NN from 0 visits them in order.
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {2, 0}, {4, 0}};
  const auto tour = nearest_neighbor_tour(pts, 0);
  EXPECT_EQ(tour.order(), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(GreedyEdge, SmallCases) {
  const std::vector<geom::Point> two{{0, 0}, {1, 0}};
  EXPECT_EQ(greedy_edge_tour(two).size(), 2u);
  const std::vector<geom::Point> three{{0, 0}, {1, 0}, {0, 1}};
  expect_hamiltonian(greedy_edge_tour(three), 3);
}

TEST(TreeToTour, PathTreeShortcut) {
  // Tree 0-1-2 rooted at 0: doubled walk 0,1,2,1,0 -> shortcut 0,1,2.
  const std::vector<graph::Edge> tree{{0, 1, 1.0}, {1, 2, 1.0}};
  const auto tour = tree_to_tour(tree, 0);
  EXPECT_EQ(tour.order(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TreeToTour, EmptyTree) {
  const auto tour = tree_to_tour({}, 5);
  EXPECT_EQ(tour.order(), std::vector<std::size_t>{5});
}

}  // namespace
}  // namespace mwc::tsp
