#include "tsp/improve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tsp/construct.hpp"
#include "tsp/exact.hpp"
#include "util/rng.hpp"

namespace mwc::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  return pts;
}

TEST(TwoOpt, FixesCrossing) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Tour tour({0, 2, 1, 3});  // crossing diagonals
  const double gain = two_opt(tour, pts);
  EXPECT_GT(gain, 0.0);
  EXPECT_DOUBLE_EQ(tour.length(pts), 4.0);
}

TEST(TwoOpt, OptimalTourUnchanged) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Tour tour({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(two_opt(tour, pts), 0.0);
  EXPECT_EQ(tour.order(), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(TwoOpt, TinyToursNoop) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {0, 1}};
  Tour tour({0, 1, 2});
  EXPECT_EQ(two_opt(tour, pts), 0.0);
}

class ImproveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImproveProperty, NeverIncreasesLengthAndStaysPermutation) {
  const auto pts = random_points(40, GetParam());
  Tour tour = nearest_neighbor_tour(pts);
  const double before = tour.length(pts);
  const double gain = improve_tour(tour, pts);
  const double after = tour.length(pts);
  EXPECT_GE(gain, 0.0);
  EXPECT_NEAR(before - after, gain, 1e-6);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_TRUE(tour.is_simple());
  EXPECT_EQ(tour.size(), pts.size());
}

TEST_P(ImproveProperty, ImprovedDoubleTreeBeatsRaw) {
  const auto pts = random_points(50, GetParam() + 50);
  Tour raw = double_tree_tour(pts);
  Tour polished = raw;
  improve_tour(polished, pts);
  EXPECT_LE(polished.length(pts), raw.length(pts) + 1e-9);
}

TEST_P(ImproveProperty, NearOptimalOnTinyInstances) {
  const auto pts = random_points(9, GetParam() + 500);
  const double optimal = held_karp_tsp(pts).length(pts);
  Tour tour = nearest_neighbor_tour(pts);
  improve_tour(tour, pts);
  // 2-opt + Or-opt is not exact, but on 9 random points it lands within
  // 10% essentially always.
  EXPECT_LE(tour.length(pts), optimal * 1.10 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImproveProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(OrOpt, RelocatesStrandedNode) {
  // 0-1-2 colinear plus node 3 placed so visiting it between 0 and 1 is
  // bad but after 2 is good.
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  Tour tour({0, 3, 1, 2});
  const double before = tour.length(pts);
  or_opt(tour, pts);
  EXPECT_LT(tour.length(pts), before);
  EXPECT_TRUE(tour.is_simple());
  EXPECT_EQ(tour.size(), 4u);
}

TEST(ImproveOptions, MinGainBlocksTinyImprovements) {
  const auto pts = random_points(30, 99);
  Tour tour = nearest_neighbor_tour(pts);
  ImproveOptions opts;
  opts.min_gain = 1e12;  // nothing counts as an improvement
  EXPECT_EQ(improve_tour(tour, pts, opts), 0.0);
}

TEST(OrOpt, TinyToursAreNoops) {
  // n in {2, 3, 4}: with fewer than three nodes outside every candidate
  // segment, Or-opt has no genuine relocation — only disguised 2-opt
  // flips, which belong to two_opt. The tour must come back untouched in
  // both modes.
  for (std::size_t n : {2u, 3u, 4u}) {
    const auto pts = random_points(n, 17 + n);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    const auto graph = CandidateGraph::build(pts);

    Tour exhaustive_tour(order);
    ImproveOptions exhaustive;
    exhaustive.exhaustive = true;
    EXPECT_EQ(or_opt(exhaustive_tour, pts, exhaustive), 0.0) << "n=" << n;
    EXPECT_EQ(exhaustive_tour.order(), order) << "n=" << n;

    Tour candidate_tour(order);
    ImproveOptions candidate;
    candidate.candidates = &graph;
    EXPECT_EQ(or_opt(candidate_tour, pts, candidate), 0.0) << "n=" << n;
    EXPECT_EQ(candidate_tour.order(), order) << "n=" << n;
  }
}

TEST(OrOpt, FiveNodeTourSkipsDegenerateSegmentLengths) {
  // n = 5 allows seg_len 1 and 2 (n >= seg_len + 3) but not 3; a
  // genuinely misplaced node must still be relocated.
  const std::vector<geom::Point> pts{{0, 0}, {4, 0}, {1, 0}, {2, 0}, {3, 0}};
  Tour tour({0, 1, 2, 3, 4});  // 4 visited far too early
  const double before = tour.length(pts);
  or_opt(tour, pts);
  EXPECT_LT(tour.length(pts), before);
  EXPECT_TRUE(tour.is_simple());
}

TEST(CandidateImprove, MatchesExhaustiveWithinOnePercent) {
  for (std::uint64_t seed : {11u, 23u, 31u}) {
    const auto pts = random_points(150, seed);
    const auto graph = CandidateGraph::build(pts);
    const Tour base = nearest_neighbor_tour(pts);

    Tour exhaustive_tour = base;
    ImproveOptions exhaustive;
    exhaustive.exhaustive = true;
    improve_tour(exhaustive_tour, pts, exhaustive);

    Tour candidate_tour = base;
    ImproveOptions candidate;
    candidate.candidates = &graph;
    improve_tour(candidate_tour, pts, candidate);

    EXPECT_TRUE(candidate_tour.is_simple());
    EXPECT_LE(candidate_tour.length(pts),
              exhaustive_tour.length(pts) * 1.01)
        << "seed " << seed;
  }
}

TEST(CandidateImprove, NeverIncreasesLengthAndStaysPermutation) {
  for (std::uint64_t seed : {2u, 8u, 44u}) {
    const auto pts = random_points(120, seed);
    const auto graph = CandidateGraph::build(pts);
    Tour tour = nearest_neighbor_tour(pts);
    const double before = tour.length(pts);
    ImproveOptions opts;
    opts.candidates = &graph;
    const double gain = improve_tour(tour, pts, opts);
    EXPECT_GE(gain, 0.0);
    EXPECT_NEAR(tour.length(pts), before - gain, 1e-6);
    EXPECT_TRUE(tour.is_simple());
    EXPECT_EQ(tour.size(), pts.size());
  }
}

TEST(CandidateImprove, CompleteGraphDispatchesToExhaustive) {
  const auto pts = random_points(40, 77);
  CandidateOptions options;
  options.k = pts.size();  // clamps to n-1: complete
  const auto graph = CandidateGraph::build(pts, options);
  ASSERT_TRUE(graph.complete());

  Tour with_graph = nearest_neighbor_tour(pts);
  Tour without = with_graph;
  ImproveOptions opts;
  opts.candidates = &graph;
  const double g1 = improve_tour(with_graph, pts, opts);
  const double g2 = improve_tour(without, pts, {});
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(with_graph.order(), without.order());  // bit-identical
}

}  // namespace
}  // namespace mwc::tsp
