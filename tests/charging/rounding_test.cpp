#include "charging/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mwc::charging {
namespace {

TEST(Partition, Empty) {
  const auto p = partition_by_cycles({});
  EXPECT_TRUE(p.groups.empty());
  EXPECT_TRUE(p.assigned.empty());
}

TEST(Partition, UniformCyclesSingleClass) {
  const auto p = partition_by_cycles({3.0, 3.0, 3.0});
  EXPECT_EQ(p.K, 0u);
  EXPECT_DOUBLE_EQ(p.tau1, 3.0);
  ASSERT_EQ(p.groups.size(), 1u);
  EXPECT_EQ(p.groups[0].size(), 3u);
  for (double a : p.assigned) EXPECT_DOUBLE_EQ(a, 3.0);
}

TEST(Partition, PaperExample) {
  // τ = {1, 1.5, 2, 3.9, 4, 50}: K = floor(log2 50) = 5.
  const std::vector<double> cycles{1.0, 1.5, 2.0, 3.9, 4.0, 50.0};
  const auto p = partition_by_cycles(cycles);
  EXPECT_DOUBLE_EQ(p.tau1, 1.0);
  EXPECT_EQ(p.K, 5u);
  EXPECT_EQ(p.level[0], 0u);  // [1,2)
  EXPECT_EQ(p.level[1], 0u);
  EXPECT_EQ(p.level[2], 1u);  // [2,4)
  EXPECT_EQ(p.level[3], 1u);
  EXPECT_EQ(p.level[4], 2u);  // [4,8)
  EXPECT_EQ(p.level[5], 5u);  // [32,64)
  EXPECT_DOUBLE_EQ(p.assigned[3], 2.0);
  EXPECT_DOUBLE_EQ(p.assigned[5], 32.0);
}

TEST(Partition, ClassCycles) {
  const auto p = partition_by_cycles({1.0, 8.0});
  EXPECT_DOUBLE_EQ(p.class_cycle(0), 1.0);
  EXPECT_DOUBLE_EQ(p.class_cycle(3), 8.0);
}

// Eq. (1): τ_i/2 < τ'_i <= τ_i for random cycle sets.
class RoundingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingProperty, EqOneBoundsHold) {
  mwc::Rng rng(GetParam());
  std::vector<double> cycles;
  for (int i = 0; i < 200; ++i) cycles.push_back(rng.uniform(1.0, 50.0));
  const auto p = partition_by_cycles(cycles);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    EXPECT_LE(p.assigned[i], cycles[i] * (1 + 1e-12));
    EXPECT_GT(p.assigned[i], cycles[i] / 2.0 * (1 - 1e-12));
    // And the assignment is exactly 2^level * tau1.
    EXPECT_DOUBLE_EQ(p.assigned[i], p.class_cycle(p.level[i]));
  }
}

TEST_P(RoundingProperty, GroupsPartitionSensors) {
  mwc::Rng rng(GetParam() ^ 0xF0);
  std::vector<double> cycles;
  for (int i = 0; i < 150; ++i) cycles.push_back(rng.uniform(0.5, 80.0));
  const auto p = partition_by_cycles(cycles);
  std::vector<int> seen(cycles.size(), 0);
  for (std::size_t k = 0; k < p.groups.size(); ++k) {
    for (std::size_t i : p.groups[k]) {
      EXPECT_EQ(p.level[i], k);
      ++seen[i];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Partition, ExactPowerBoundaries) {
  // τ_i exactly at 2^k boundaries: must land in class k, not k-1.
  const std::vector<double> cycles{1.0, 2.0, 4.0, 8.0, 16.0};
  const auto p = partition_by_cycles(cycles);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    EXPECT_EQ(p.level[i], i);
    EXPECT_DOUBLE_EQ(p.assigned[i], cycles[i]);
  }
}

TEST(RoundDepth, TrailingZerosCapped) {
  const auto p = partition_by_cycles({1.0, 10.0});  // K = 3
  EXPECT_EQ(p.K, 3u);
  EXPECT_EQ(round_depth(p, 1), 0u);
  EXPECT_EQ(round_depth(p, 2), 1u);
  EXPECT_EQ(round_depth(p, 4), 2u);
  EXPECT_EQ(round_depth(p, 8), 3u);
  EXPECT_EQ(round_depth(p, 16), 3u);  // capped at K
  EXPECT_EQ(round_depth(p, 6), 1u);
  EXPECT_EQ(round_depth(p, 12), 2u);
}

TEST(RoundSensorSet, UnionStructureMatchesPaper) {
  // Classes: sensor 0 -> V0, sensor 1 -> V1, sensor 2 -> V2.
  const std::vector<double> cycles{1.0, 2.0, 4.0};
  const auto p = partition_by_cycles(cycles);
  EXPECT_EQ(round_sensor_set(p, 1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(round_sensor_set(p, 2), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(round_sensor_set(p, 3), (std::vector<std::size_t>{0}));
  EXPECT_EQ(round_sensor_set(p, 4), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(round_sensor_set(p, 6), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(round_sensor_set(p, 8), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RoundSensorSet, EverySensorChargedAtItsAssignedPeriod) {
  mwc::Rng rng(42);
  std::vector<double> cycles;
  for (int i = 0; i < 60; ++i) cycles.push_back(rng.uniform(1.0, 50.0));
  const auto p = partition_by_cycles(cycles);
  const std::size_t horizon_rounds = std::size_t{1} << (p.K + 2);
  std::vector<std::size_t> last_round(cycles.size(), 0);
  for (std::size_t j = 1; j <= horizon_rounds; ++j) {
    for (std::size_t i : round_sensor_set(p, j)) {
      const std::size_t gap_rounds = j - last_round[i];
      const double gap = static_cast<double>(gap_rounds) * p.tau1;
      EXPECT_NEAR(gap, p.assigned[i], 1e-9)
          << "sensor " << i << " at round " << j;
      last_round[i] = j;
    }
  }
}

TEST(PartitionDeath, NonPositiveCycleAborts) {
  EXPECT_DEATH(partition_by_cycles({1.0, -2.0}), "positive");
}

}  // namespace
}  // namespace mwc::charging
