#include "charging/greedy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../support/fake_view.hpp"

namespace mwc::charging {
namespace {

using mwc::testing::FakeView;
using mwc::testing::small_network;

TEST(Greedy, DefaultThresholdIsTauMin) {
  const auto net = small_network(3, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 5.0, 9.0});
  view.fill_full();
  GreedyPolicy policy;
  policy.reset(view);
  EXPECT_DOUBLE_EQ(policy.threshold(), 2.0);
}

TEST(Greedy, ExplicitThreshold) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({4.0, 4.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.5});
  policy.reset(view);
  EXPECT_DOUBLE_EQ(policy.threshold(), 1.5);
}

TEST(Greedy, DispatchWhenFirstSensorHitsThreshold) {
  const auto net = small_network(3, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({4.0, 6.0, 10.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);

  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  // Sensor 0 (τ=4) hits residual=1 at t=3.
  EXPECT_DOUBLE_EQ(d->time, 3.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0}));
}

TEST(Greedy, BatchesCrossingsWithinOneCheckWindow) {
  // δ = Δl = 1: sensors crossing at 2.7 and 3.0 share the boundary t=3.
  const auto net = small_network(3, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({3.7, 4.0, 30.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);
  EXPECT_DOUBLE_EQ(policy.check_interval(), 1.0);

  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 3.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0, 1}));
}

TEST(Greedy, CoarseIntervalClampedToThreshold) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({5.0, 5.0});
  view.fill_full();
  GreedyPolicy policy(
      GreedyOptions{.threshold = 2.0, .check_interval = 10.0});
  policy.reset(view);
  EXPECT_DOUBLE_EQ(policy.check_interval(), 2.0);
}

TEST(Greedy, BatchesSensorsBelowThresholdAtDispatchTime) {
  const auto net = small_network(3, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({4.0, 4.0, 20.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);

  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 3.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0, 1}));
}

TEST(Greedy, ImmediateDispatchWhenAlreadyBelowThreshold) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({10.0, 10.0});
  view.set_residual(0, 0.5);
  view.set_residual(1, 10.0);
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);
  view.set_now(5.0);

  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 5.0);  // now
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0}));
}

TEST(Greedy, NoDispatchBeyondHorizon) {
  const auto net = small_network(1, 1);
  FakeView view(net, 5.0);
  view.set_all_cycles({10.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);
  // Trigger would be at t=9 >= T=5.
  EXPECT_FALSE(policy.next_dispatch(view).has_value());
}

TEST(Greedy, TinyCycleSensorDoesNotRetriggerInstantly) {
  // τ == Δl: after a charge, the next request must be at least Δl later.
  const auto net = small_network(1, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({1.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);

  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 0.0);  // immediately below threshold
  policy.on_dispatch_executed(view, *d);
  view.fill_full();  // simulator recharges

  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_GE(d->time, 0.5);  // clamped forward by half the cycle
}

TEST(GreedyPrediction, ExactKnowledgeWhenGammaZero) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({4.0, 8.0});
  view.fill_full();
  GreedyPolicy exact(GreedyOptions{.threshold = 1.0});
  GreedyPolicy predicted(
      GreedyOptions{.threshold = 1.0, .prediction_gamma = 0.5});
  exact.reset(view);
  predicted.reset(view);
  // Before any cycle change, the predictor is initialized to the truth,
  // so both policies agree.
  const auto de = exact.next_dispatch(view);
  const auto dp = predicted.next_dispatch(view);
  ASSERT_TRUE(de && dp);
  EXPECT_DOUBLE_EQ(de->time, dp->time);
  EXPECT_EQ(de->sensors, dp->sensors);
}

TEST(GreedyPrediction, LaggingPredictorDelaysRequestAfterShrink) {
  const auto net = small_network(1, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({16.0});
  view.fill_full();
  GreedyPolicy predicted(
      GreedyOptions{.threshold = 1.0, .prediction_gamma = 0.5});
  predicted.reset(view);

  // Cycle halves; the EWMA only partially tracks it, so the estimated
  // residual exceeds the true one and the request comes later than an
  // exact-knowledge policy's would.
  view.set_cycle(0, 8.0);
  view.set_residual(0, 8.0);
  predicted.on_cycles_updated(view);

  GreedyPolicy exact(GreedyOptions{.threshold = 1.0});
  exact.reset(view);

  const auto dp = predicted.next_dispatch(view);
  const auto de = exact.next_dispatch(view);
  ASSERT_TRUE(dp && de);
  // τ̂ = 1/(0.5/8 + 0.5/16) ≈ 10.67 > 8, so est residual ≈ 10.67 > 8.
  EXPECT_GT(dp->time, de->time);
}

TEST(GreedyPrediction, PredictorConvergesUnderStableCycles) {
  const auto net = small_network(1, 1);
  FakeView view(net, 1000.0);
  view.set_all_cycles({16.0});
  view.fill_full();
  GreedyPolicy predicted(
      GreedyOptions{.threshold = 1.0, .prediction_gamma = 0.5});
  predicted.reset(view);

  // Residual chosen so the threshold crossing is strictly inside a check
  // window: the EWMA converges to the truth from above, and an exactly
  // on-boundary crossing would let the +epsilon flip the ceil().
  view.set_cycle(0, 8.0);
  view.set_residual(0, 8.5);
  for (int slot = 0; slot < 20; ++slot) predicted.on_cycles_updated(view);

  GreedyPolicy exact(GreedyOptions{.threshold = 1.0});
  exact.reset(view);
  const auto dp = predicted.next_dispatch(view);
  const auto de = exact.next_dispatch(view);
  ASSERT_TRUE(dp && de);
  EXPECT_NEAR(dp->time, de->time, 1e-6);
}

TEST(Greedy, CycleShrinkRelaxesClamp) {
  const auto net = small_network(1, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({20.0});
  view.fill_full();
  GreedyPolicy policy(GreedyOptions{.threshold = 1.0});
  policy.reset(view);

  // Charge at t=19 (trigger), clamp pushes next to t=19+19=38.
  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 19.0);
  view.advance(19.0);
  view.fill_full();
  policy.on_dispatch_executed(view, *d);

  // Cycle collapses to 2 => residual rescales to 2; sensor dies at t=21
  // unless the clamp is relaxed.
  view.set_cycle(0, 2.0);
  view.set_residual(0, 2.0);
  policy.on_cycles_updated(view);
  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_LE(d->time, 20.0 + 1e-9);  // rescue at/before residual==threshold
}

}  // namespace
}  // namespace mwc::charging
