#include "charging/exact_schedule.hpp"

#include <gtest/gtest.h>

#include "charging/min_total_distance.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::charging {
namespace {

wsn::Network tiny_network(std::size_t n, std::size_t q,
                          std::uint64_t seed) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = q;
  config.field_side = 100.0;
  mwc::Rng rng(seed);
  return wsn::deploy_random(config, rng);
}

void expect_feasible(const ExactScheduleResult& result,
                     const std::vector<double>& cycles, double T) {
  std::vector<double> last(cycles.size(), 0.0);
  for (const auto& d : result.dispatches) {
    for (std::size_t i : d.sensors) {
      EXPECT_LE(d.time - last[i], cycles[i] + 1e-9);
      last[i] = d.time;
    }
  }
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_LE(T - last[i], cycles[i] + 1e-9) << "sensor " << i;
}

TEST(ExactSchedule, NoChargeNeededWhenHorizonFitsCycle) {
  const auto net = tiny_network(2, 1, 1);
  const auto result = solve_exact_schedule(net, {4.0, 4.0}, 4.0);
  EXPECT_EQ(result.cost, 0.0);
  EXPECT_TRUE(result.dispatches.empty());
}

TEST(ExactSchedule, SingleSensorSingleCharge) {
  const auto net = tiny_network(1, 1, 2);
  // tau = 2, T = 4: exactly one charge at t = 2 suffices.
  const auto result = solve_exact_schedule(net, {2.0}, 4.0);
  const double round_trip =
      2.0 * geom::distance(net.depots()[0], net.sensor(0).position);
  EXPECT_NEAR(result.cost, round_trip, 1e-9);
  ASSERT_EQ(result.dispatches.size(), 1u);
  EXPECT_DOUBLE_EQ(result.dispatches[0].time, 2.0);
  expect_feasible(result, {2.0}, 4.0);
}

TEST(ExactSchedule, BatchingBeatsSeparateTrips) {
  // Two co-located sensors with equal cycles: the optimum charges both in
  // one tour, never separately.
  const auto net = tiny_network(2, 1, 3);
  const auto result = solve_exact_schedule(net, {2.0, 2.0}, 6.0);
  expect_feasible(result, {2.0, 2.0}, 6.0);
  for (const auto& d : result.dispatches)
    EXPECT_EQ(d.sensors.size(), 2u);  // always batched
}

class ExactVsAlgorithm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsAlgorithm, OptimumNeverAboveMinTotalDistance) {
  const auto seed = GetParam();
  mwc::Rng meta(seed);
  const auto n = static_cast<std::size_t>(meta.uniform_int(2, 4));
  const auto q = static_cast<std::size_t>(meta.uniform_int(1, 2));
  const auto net = tiny_network(n, q, seed ^ 0x7);
  std::vector<double> cycles;
  for (std::size_t i = 0; i < n; ++i)
    cycles.push_back(static_cast<double>(meta.uniform_int(1, 4)));
  const double T = 8.0;

  const auto exact = solve_exact_schedule(net, cycles, T);
  expect_feasible(exact, cycles, T);
  const auto alg = build_min_total_distance_schedule(net, cycles, T);

  EXPECT_LE(exact.cost, alg.total_cost + 1e-9) << "n=" << n << " q=" << q;
  // Theorem 2 (a fortiori against the grid optimum).
  const double bound =
      2.0 * (static_cast<double>(alg.partition.K) + 2.0);
  EXPECT_LE(alg.total_cost, bound * exact.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsAlgorithm,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ExactScheduleDeath, RejectsNonIntegerInputs) {
  const auto net = tiny_network(1, 1, 9);
  EXPECT_DEATH(solve_exact_schedule(net, {1.5}, 4.0), "integers");
  EXPECT_DEATH(solve_exact_schedule(net, {2.0}, 4.5), "integer");
}

}  // namespace
}  // namespace mwc::charging
