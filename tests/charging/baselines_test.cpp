#include "charging/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../support/fake_view.hpp"

namespace mwc::charging {
namespace {

using mwc::testing::FakeView;
using mwc::testing::small_network;

TEST(PeriodicAll, ChargesEveryoneEveryTauMin) {
  const auto net = small_network(4, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({3.0, 6.0, 9.0, 12.0});
  view.fill_full();

  PeriodicAllPolicy policy;
  policy.reset(view);

  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 3.0);
  EXPECT_EQ(d->sensors.size(), 4u);
  policy.on_dispatch_executed(view, *d);

  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 6.0);
}

TEST(PeriodicAll, StopsAtHorizon) {
  const auto net = small_network(2, 1);
  FakeView view(net, 10.0);
  view.set_all_cycles({4.0, 8.0});
  view.fill_full();
  PeriodicAllPolicy policy;
  policy.reset(view);
  int dispatches = 0;
  while (auto d = policy.next_dispatch(view)) {
    EXPECT_LT(d->time, 10.0);
    policy.on_dispatch_executed(view, *d);
    ++dispatches;
  }
  EXPECT_EQ(dispatches, 2);  // t = 4, 8
}

TEST(PeriodicAll, ShrinkingCycleTightensPeriod) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({5.0, 10.0});
  view.fill_full();
  PeriodicAllPolicy policy;
  policy.reset(view);

  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 5.0);
  policy.on_dispatch_executed(view, *d);
  view.set_now(5.0);
  view.fill_full();

  view.set_cycle(0, 2.0);
  view.set_residual(0, 2.0);
  policy.on_cycles_updated(view);
  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  // Pulled in to 90% of the earliest depletion: 5 + 0.9 * 2.
  EXPECT_DOUBLE_EQ(d->time, 6.8);
}

TEST(PerSensorPeriodic, ChargesEachAtOwnCadence) {
  const auto net = small_network(2, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({10.0, 20.0});
  view.fill_full();
  PerSensorPeriodicPolicy policy;
  policy.reset(view);

  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 9.0);  // margin 0.9 * 10
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0}));
  policy.on_dispatch_executed(view, *d);

  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  // Sensor 1's first deadline and sensor 0's second coincide at 18.
  EXPECT_DOUBLE_EQ(d->time, 18.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0, 1}));
}

TEST(PerSensorPeriodic, BatchesCoincidentDeadlines) {
  const auto net = small_network(3, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({10.0, 10.0, 30.0});
  view.fill_full();
  PerSensorPeriodicPolicy policy;
  policy.reset(view);
  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0, 1}));
}

TEST(PerSensorPeriodic, CycleUpdateClampsDeadlines) {
  const auto net = small_network(1, 1);
  FakeView view(net, 100.0);
  view.set_all_cycles({20.0});
  view.fill_full();
  PerSensorPeriodicPolicy policy;
  policy.reset(view);
  // At t=0 the deadline is 18. Cycle collapses: residual now 2.
  view.set_cycle(0, 2.0);
  view.set_residual(0, 2.0);
  policy.on_cycles_updated(view);
  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_LE(d->time, 1.8 + 1e-9);
}

}  // namespace
}  // namespace mwc::charging
