#include "charging/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::charging {
namespace {

wsn::Network test_network(std::size_t n = 60, std::size_t q = 3,
                          std::uint64_t seed = 1) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = q;
  config.field_side = 1000.0;
  mwc::Rng rng(seed);
  return wsn::deploy_random(config, rng);
}

std::vector<std::size_t> all_ids(const wsn::Network& net) {
  std::vector<std::size_t> ids(net.n());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  return ids;
}

// Sensors covered by a plan, in combined indexing (>= q).
std::set<std::size_t> covered_nodes(const FleetPlan& plan, std::size_t q) {
  std::set<std::size_t> covered;
  for (const auto& depot_trips : plan.trips)
    for (const auto& trip : depot_trips)
      for (std::size_t v : trip.tour.order())
        if (v >= q) covered.insert(v);
  return covered;
}

TEST(CapacitatedRound, CoversEverySensorWithinBudget) {
  const auto net = test_network();
  const auto ids = all_ids(net);
  const double capacity = 1500.0;  // comfortably above any round trip
  const auto plan = plan_capacitated_round(net, ids, capacity);

  EXPECT_EQ(covered_nodes(plan, net.q()).size(), net.n());
  EXPECT_LE(plan.max_trip_length, capacity + 1e-6);
  EXPECT_GT(plan.num_trips, 0u);
  EXPECT_EQ(plan.vehicles_per_depot, 1u);
}

TEST(CapacitatedRound, GenerousBudgetMatchesPlainRound) {
  const auto net = test_network(40, 4, 2);
  const auto ids = all_ids(net);
  const auto plan = plan_capacitated_round(net, ids, 1e9);

  tsp::QRootedInstance instance;
  instance.depots = net.depots();
  instance.sensors = net.sensor_points();
  const auto plain = tsp::q_rooted_tsp(instance);
  EXPECT_NEAR(plan.total_length, plain.total_length, 1e-6);
}

TEST(CapacitatedRound, TighterBudgetCostsMoreTrips) {
  const auto net = test_network(80, 2, 3);
  const auto ids = all_ids(net);
  const auto loose = plan_capacitated_round(net, ids, 5000.0);
  const auto tight = plan_capacitated_round(net, ids, 1800.0);
  EXPECT_GE(tight.num_trips, loose.num_trips);
  EXPECT_GE(tight.total_length, loose.total_length - 1e-9);
  EXPECT_LE(tight.max_trip_length, 1800.0 + 1e-6);
}

TEST(MinMaxRound, OneChargerPerDepotIsPlainRound) {
  const auto net = test_network(50, 3, 4);
  const auto ids = all_ids(net);
  const auto plan = plan_minmax_round(net, ids, 1);

  tsp::QRootedInstance instance;
  instance.depots = net.depots();
  instance.sensors = net.sensor_points();
  const auto plain = tsp::q_rooted_tsp(instance);
  EXPECT_NEAR(plan.total_length, plain.total_length, 1e-6);
}

TEST(MinMaxRound, MoreChargersShrinkMakespan) {
  const auto net = test_network(100, 2, 5);
  const auto ids = all_ids(net);
  double prev = plan_minmax_round(net, ids, 1).max_trip_length;
  for (std::size_t k : {2u, 4u}) {
    const auto plan = plan_minmax_round(net, ids, k);
    EXPECT_LE(plan.max_trip_length, prev + 1e-9) << "k=" << k;
    EXPECT_EQ(covered_nodes(plan, net.q()).size(), net.n());
    prev = plan.max_trip_length;
  }
}

TEST(MinMaxRound, EmptySensorSet) {
  const auto net = test_network(10, 3, 6);
  const auto plan = plan_minmax_round(net, {}, 2);
  EXPECT_EQ(plan.num_trips, 0u);
  EXPECT_EQ(plan.total_length, 0.0);
}

TEST(RoundDuration, SequentialVsParallelTrips) {
  const auto net = test_network(60, 2, 7);
  const auto ids = all_ids(net);
  DurationModel model;
  model.travel_speed = 5.0;
  model.charge_seconds = 30.0;

  const auto single = plan_minmax_round(net, ids, 1);
  const auto fleet = plan_minmax_round(net, ids, 4);
  const double t_single = round_duration_seconds(single, model);
  const double t_fleet = round_duration_seconds(fleet, model);
  EXPECT_LT(t_fleet, t_single);
  EXPECT_GT(t_fleet, 0.0);
}

TEST(RoundDuration, CapacitatedTripsAreSequential) {
  const auto net = test_network(60, 2, 8);
  const auto ids = all_ids(net);
  DurationModel model;

  const auto one_trip = plan_capacitated_round(net, ids, 1e9);
  const auto many_trips = plan_capacitated_round(net, ids, 1800.0);
  // Splitting adds return legs, so the sequential duration grows.
  EXPECT_GE(round_duration_seconds(many_trips, model),
            round_duration_seconds(one_trip, model) - 1e-9);
}

TEST(RoundDuration, ScalesWithChargingTime) {
  const auto net = test_network(30, 2, 9);
  const auto ids = all_ids(net);
  const auto plan = plan_minmax_round(net, ids, 1);
  DurationModel fast{5.0, 0.0};
  DurationModel slow{5.0, 120.0};
  EXPECT_GT(round_duration_seconds(plan, slow),
            round_duration_seconds(plan, fast));
}

TEST(RoundDuration, PaperAssumptionHoldsAtDefaults) {
  // Sec. III-A argues a charging round is orders of magnitude shorter
  // than a fully-charged sensor's lifetime (weeks). Check the default
  // duration model keeps a full-network round under a few hours.
  const auto net = test_network(200, 5, 10);
  const auto ids = all_ids(net);
  const auto plan = plan_minmax_round(net, ids, 1);
  DurationModel model;  // 5 m/s, 60 s per sensor
  const double seconds = round_duration_seconds(plan, model);
  EXPECT_LT(seconds, 6.0 * 3600.0);
}

}  // namespace
}  // namespace mwc::charging
