#include "charging/schedule.hpp"

#include <gtest/gtest.h>

namespace mwc::charging {
namespace {

TEST(Normalize, SortsAndDeduplicates) {
  Dispatch d;
  d.sensors = {5, 1, 3, 1, 5};
  normalize(d);
  EXPECT_EQ(d.sensors, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Normalize, EmptyOk) {
  Dispatch d;
  normalize(d);
  EXPECT_TRUE(d.sensors.empty());
}

TEST(Normalize, AlreadySortedUnchanged) {
  Dispatch d;
  d.sensors = {0, 2, 9};
  normalize(d);
  EXPECT_EQ(d.sensors, (std::vector<std::size_t>{0, 2, 9}));
}

}  // namespace
}  // namespace mwc::charging
