#include "charging/var_heuristic.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "../support/fake_view.hpp"

namespace mwc::charging {
namespace {

using mwc::testing::FakeView;
using mwc::testing::small_network;

TEST(VarHeuristic, InitialPlanMatchesAlgorithmThree) {
  const auto net = small_network(3, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({1.0, 2.0, 4.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);
  EXPECT_EQ(policy.recompute_count(), 0u);

  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 1.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0}));
  policy.on_dispatch_executed(view, *d);

  d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 2.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0, 1}));
}

TEST(VarHeuristic, SmallCycleDriftKeepsPlan) {
  const auto net = small_network(4, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 4.0, 8.0, 8.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  // Drift within [τ', 2τ') for every sensor: assigned are {2,4,8,8}.
  view.set_all_cycles({2.5, 5.0, 9.0, 8.5});
  policy.on_cycles_updated(view);
  EXPECT_EQ(policy.recompute_count(), 0u);
}

TEST(VarHeuristic, CycleShrinkForcesRecompute) {
  const auto net = small_network(4, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 4.0, 8.0, 8.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  view.set_cycle(2, 3.0);  // below its assigned 8 -> infeasible plan
  policy.on_cycles_updated(view);
  EXPECT_EQ(policy.recompute_count(), 1u);
}

TEST(VarHeuristic, CycleGrowthBeyondTwiceForcesRecompute) {
  const auto net = small_network(3, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 4.0, 8.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  view.set_cycle(0, 4.5);  // >= 2 * assigned(2.0) -> wasteful plan
  policy.on_cycles_updated(view);
  EXPECT_EQ(policy.recompute_count(), 1u);
}

TEST(VarHeuristic, RescueChargesDyingSensorImmediately) {
  const auto net = small_network(3, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({4.0, 8.0, 8.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  // Advance to t=10; sensor 2's cycle collapses and its residual life is
  // below the new τ̂_1 — it must be charged at once (C'_0).
  view.set_now(10.0);
  view.set_cycle(2, 2.0);
  view.set_residual(2, 0.5);
  view.set_residual(0, 4.0);
  view.set_residual(1, 8.0);
  policy.on_cycles_updated(view);
  EXPECT_GE(policy.recompute_count(), 1u);

  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 10.0);
  EXPECT_TRUE(std::count(d->sensors.begin(), d->sensors.end(), 2u));
}

TEST(VarHeuristic, RescueInsertsIntoEarlyScheduling) {
  const auto net = small_network(4, 2);
  FakeView view(net, 1000.0);
  view.set_all_cycles({2.0, 4.0, 16.0, 16.0});
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  // Sensor 3 reports a shrink: new τ = 12 (assigned was 16 -> infeasible);
  // its residual 5 lies in [2*2, 2*4) => class k=1, so it must appear in
  // one of the schedulings at t, t+2 or t+4.
  view.set_now(0.0);
  view.set_cycle(3, 12.0);
  view.set_residual(3, 5.0);
  policy.on_cycles_updated(view);
  ASSERT_GE(policy.recompute_count(), 1u);

  double charged_at = -1.0;
  for (int step = 0; step < 4 && charged_at < 0.0; ++step) {
    auto d = policy.next_dispatch(view);
    ASSERT_TRUE(d);
    if (std::count(d->sensors.begin(), d->sensors.end(), 3u))
      charged_at = d->time;
    policy.on_dispatch_executed(view, *d);
  }
  ASSERT_GE(charged_at, 0.0) << "rescued sensor never scheduled early";
  EXPECT_LE(charged_at, 5.0);  // before its residual life expires
}

TEST(VarHeuristic, PlanCoversAllSensorsWithinAssignedCycles) {
  const auto net = small_network(12, 3, 5);
  FakeView view(net, 64.0);
  std::vector<double> cycles{1.0, 1.5, 2.0, 3.0, 4.0, 6.0,
                             8.0, 12.0, 16.0, 16.0, 5.0, 7.0};
  view.set_all_cycles(cycles);
  view.fill_full();

  MinTotalDistanceVarPolicy policy;
  policy.reset(view);

  std::vector<double> last(cycles.size(), 0.0);
  while (true) {
    auto d = policy.next_dispatch(view);
    if (!d) break;
    for (std::size_t i : d->sensors) {
      EXPECT_LE(d->time - last[i], cycles[i] + 1e-9);
      last[i] = d->time;
    }
    view.set_now(d->time);
    policy.on_dispatch_executed(view, *d);
  }
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_LE(64.0 - last[i], cycles[i] + 1e-9) << "sensor " << i;
}

TEST(VarHeuristic, ReportThresholdSuppressesRecomputes) {
  const auto net = small_network(3, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 4.0, 8.0});
  view.fill_full();

  MinTotalDistanceVarPolicy lenient(
      VarHeuristicOptions{.report_threshold = 0.9});
  lenient.reset(view);
  // 50% shrink on sensor 2 stays under the 90% reporting bar.
  view.set_cycle(2, 4.0);
  lenient.on_cycles_updated(view);
  EXPECT_EQ(lenient.recompute_count(), 0u);
}

}  // namespace
}  // namespace mwc::charging
