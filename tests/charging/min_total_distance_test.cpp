#include "charging/min_total_distance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "../support/fake_view.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"

namespace mwc::charging {
namespace {

using mwc::testing::FakeView;
using mwc::testing::small_network;

TEST(MinTotalDistancePolicy, FirstDispatchAtTau1) {
  const auto net = small_network(4, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({2.0, 4.0, 8.0, 8.0});
  view.fill_full();

  MinTotalDistancePolicy policy;
  policy.reset(view);
  const auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(d->time, 2.0);
  EXPECT_EQ(d->sensors, (std::vector<std::size_t>{0}));
}

TEST(MinTotalDistancePolicy, RoundStructure) {
  const auto net = small_network(3, 2);
  FakeView view(net, 100.0);
  view.set_all_cycles({1.0, 2.0, 4.0});
  view.fill_full();

  MinTotalDistancePolicy policy;
  policy.reset(view);

  std::vector<std::vector<std::size_t>> sets;
  for (int round = 0; round < 4; ++round) {
    auto d = policy.next_dispatch(view);
    ASSERT_TRUE(d);
    EXPECT_DOUBLE_EQ(d->time, round + 1.0);
    sets.push_back(d->sensors);
    policy.on_dispatch_executed(view, *d);
  }
  EXPECT_EQ(sets[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(sets[1], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sets[2], (std::vector<std::size_t>{0}));
  EXPECT_EQ(sets[3], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(MinTotalDistancePolicy, StopsBeforeHorizon) {
  const auto net = small_network(2, 1);
  FakeView view(net, 10.0);
  view.set_all_cycles({4.0, 4.0});
  view.fill_full();

  MinTotalDistancePolicy policy;
  policy.reset(view);
  // Dispatches at 4, 8; 12 >= T.
  for (double expected : {4.0, 8.0}) {
    auto d = policy.next_dispatch(view);
    ASSERT_TRUE(d);
    EXPECT_DOUBLE_EQ(d->time, expected);
    policy.on_dispatch_executed(view, *d);
  }
  EXPECT_FALSE(policy.next_dispatch(view).has_value());
}

TEST(MinTotalDistancePolicy, NoDispatchAtExactlyT) {
  // Paper: no charging scheduling is performed at time T itself.
  const auto net = small_network(1, 1);
  FakeView view(net, 8.0);
  view.set_all_cycles({4.0});
  view.fill_full();
  MinTotalDistancePolicy policy;
  policy.reset(view);
  auto d = policy.next_dispatch(view);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(d->time, 4.0);
  policy.on_dispatch_executed(view, *d);
  EXPECT_FALSE(policy.next_dispatch(view).has_value());  // t=8 == T skipped
}

TEST(BuildSchedule, DispatchTimesAndCosts) {
  const auto net = small_network(6, 2, 3);
  std::vector<double> cycles{1.0, 1.5, 2.0, 3.0, 4.0, 7.9};
  const auto schedule =
      build_min_total_distance_schedule(net, cycles, 16.0);

  EXPECT_EQ(schedule.partition.K, 2u);
  ASSERT_EQ(schedule.tours_by_depth.size(), 3u);
  // Rounds at times 1..15 (15 dispatches; t=16 == T excluded).
  ASSERT_EQ(schedule.dispatches.size(), 15u);
  for (std::size_t j = 0; j < schedule.dispatches.size(); ++j)
    EXPECT_DOUBLE_EQ(schedule.dispatches[j].time, double(j + 1));

  // Total cost equals the sum of per-round class costs.
  double manual = 0.0;
  for (std::size_t j = 1; j <= 15; ++j) {
    const auto depth = round_depth(schedule.partition, j);
    manual += schedule.tours_by_depth[depth].total_length;
  }
  EXPECT_NEAR(schedule.total_cost, manual, 1e-9);
}

TEST(BuildSchedule, DeeperRoundsCostMore) {
  const auto net = small_network(30, 3, 4);
  mwc::Rng rng(5);
  std::vector<double> cycles;
  for (int i = 0; i < 30; ++i) cycles.push_back(rng.uniform(1.0, 30.0));
  const auto schedule = build_min_total_distance_schedule(net, cycles, 64.0);
  // tours_by_depth[k] covers a superset of tours_by_depth[k-1]'s sensors;
  // MSF-based cost is monotone in the covered set.
  for (std::size_t k = 1; k < schedule.tours_by_depth.size(); ++k) {
    EXPECT_GE(schedule.tours_by_depth[k].total_length,
              schedule.tours_by_depth[k - 1].total_length - 1e-9);
  }
}

TEST(BuildSchedule, GapsNeverExceedMaxCycle) {
  // Structural feasibility: for every sensor, consecutive charges in the
  // dispatch stream are at most τ_i apart, and the first/last gaps fit.
  const auto net = small_network(25, 2, 6);
  mwc::Rng rng(7);
  std::vector<double> cycles;
  for (int i = 0; i < 25; ++i) cycles.push_back(rng.uniform(1.0, 20.0));
  const double T = 100.0;
  const auto schedule = build_min_total_distance_schedule(net, cycles, T);

  std::vector<double> last_charge(cycles.size(), 0.0);
  for (const auto& d : schedule.dispatches) {
    for (std::size_t i : d.sensors) {
      EXPECT_LE(d.time - last_charge[i], cycles[i] + 1e-9);
      last_charge[i] = d.time;
    }
  }
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_LE(T - last_charge[i], cycles[i] + 1e-9);
}

TEST(BuildSchedule, EmptyNetwork) {
  wsn::Network net;
  const auto schedule = build_min_total_distance_schedule(net, {}, 10.0);
  EXPECT_TRUE(schedule.dispatches.empty());
  EXPECT_EQ(schedule.total_cost, 0.0);
}

TEST(BuildSchedule, ImproveOptionNeverCostsMore) {
  const auto net = small_network(40, 3, 8);
  mwc::Rng rng(9);
  std::vector<double> cycles;
  for (int i = 0; i < 40; ++i) cycles.push_back(rng.uniform(1.0, 16.0));
  const auto raw = build_min_total_distance_schedule(net, cycles, 32.0);
  tsp::QRootedOptions with_improve;
  with_improve.improve = true;
  const auto polished =
      build_min_total_distance_schedule(net, cycles, 32.0, with_improve);
  EXPECT_LE(polished.total_cost, raw.total_cost + 1e-9);
}

}  // namespace
}  // namespace mwc::charging
