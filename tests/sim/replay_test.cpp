// Property tests: the simulator's residual-lifetime bookkeeping agrees
// with an independent battery-level replay of its own dispatch log.
#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::sim {
namespace {

struct World {
  wsn::Network network;
  wsn::CycleModel cycles;
  SimOptions options;
};

World make_world(std::uint64_t seed, double slot_length) {
  wsn::DeploymentConfig deployment;
  deployment.n = 40;
  deployment.q = 3;
  Rng rng(seed);
  auto network = wsn::deploy_random(deployment, rng);
  wsn::CycleModelConfig config;
  config.tau_min = 1.0;
  config.tau_max = 30.0;
  config.sigma = slot_length > 0.0 ? 3.0 : 0.0;
  wsn::CycleModel cycles(network, config, seed ^ 0xAB);
  SimOptions options;
  options.horizon = 120.0;
  options.slot_length = slot_length;
  options.record_dispatches = true;
  return World{std::move(network), std::move(cycles), options};
}

using Param = std::tuple<std::uint64_t, double>;

class ReplayAgreement : public ::testing::TestWithParam<Param> {};

TEST_P(ReplayAgreement, BatteryReplayMatchesSimulator) {
  const auto [seed, slot] = GetParam();
  const auto world = make_world(seed, slot);
  Simulator simulator(world.network, world.cycles, world.options);

  charging::MinTotalDistancePolicy mtd;
  charging::GreedyPolicy greedy;
  charging::MinTotalDistanceVarPolicy var;
  std::vector<charging::Policy*> policies{&mtd, &greedy};
  if (slot > 0.0) policies = {&var, &greedy};

  for (auto* policy : policies) {
    const auto sim_result = simulator.run(*policy);
    ASSERT_FALSE(sim_result.dispatch_log.empty());
    const auto replay = replay_with_batteries(
        world.network, world.cycles, world.options.horizon,
        world.options.slot_length, sim_result.dispatch_log);

    EXPECT_EQ(replay.dead_sensors, sim_result.dead_sensors)
        << policy->name() << " seed=" << seed << " slot=" << slot;
    EXPECT_EQ(replay.deaths.size(), sim_result.deaths.size());
    EXPECT_GE(replay.min_fraction_at_charge, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayAgreement,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.0, 10.0)));

TEST(Replay, DetectsLateCharges) {
  // Hand-build a log that charges too late: the battery replay must
  // report the death the simulator would.
  const auto world = make_world(9, 0.0);
  const auto taus = world.cycles.cycles_at_slot(0);
  // Sensor 0 dies at taus[0]; charge it well after.
  std::vector<DispatchRecord> log{
      {taus[0] * 1.5, {0}, 100.0},
  };
  const auto replay = replay_with_batteries(
      world.network, world.cycles, taus[0] * 2.0, 0.0, log);
  EXPECT_GE(replay.dead_sensors, 1u);
}

TEST(Replay, EmptyLogKillsEveryone) {
  const auto world = make_world(10, 0.0);
  const auto replay = replay_with_batteries(world.network, world.cycles,
                                            world.options.horizon, 0.0, {});
  EXPECT_EQ(replay.dead_sensors, world.network.n());
}

TEST(Replay, EmptyLogEdgeCases) {
  // Variable-cycle world, empty log: every sensor still dies (nobody
  // charges), deaths are recorded once per discharge interval, and the
  // charge-margin stays at its starts-full default of 1.
  const auto world = make_world(12, 10.0);
  const auto replay =
      replay_with_batteries(world.network, world.cycles,
                            world.options.horizon, 10.0, {});
  EXPECT_EQ(replay.dead_sensors, world.network.n());
  EXPECT_GE(replay.deaths.size(), replay.dead_sensors);
  EXPECT_DOUBLE_EQ(replay.min_fraction_at_charge, 1.0);

  // A horizon shorter than the smallest cycle: nobody can die.
  const auto short_replay =
      replay_with_batteries(world.network, world.cycles, 0.5, 10.0, {});
  EXPECT_EQ(short_replay.dead_sensors, 0u);
  EXPECT_TRUE(short_replay.deaths.empty());
}

TEST(Replay, NonPositiveSlotLengthFreezesCycles) {
  // With sigma > 0 the per-slot draws differ, so frozen (slot_length
  // <= 0) and redrawn replays of the same log disagree in general —
  // while 0 and a negative slot_length must mean the same thing.
  const auto world = make_world(13, 10.0);
  Simulator simulator(world.network, world.cycles, world.options);
  charging::GreedyPolicy greedy;
  const auto sim_result = simulator.run(greedy);
  ASSERT_FALSE(sim_result.dispatch_log.empty());

  const auto frozen_zero = replay_with_batteries(
      world.network, world.cycles, world.options.horizon, 0.0,
      sim_result.dispatch_log);
  const auto frozen_negative = replay_with_batteries(
      world.network, world.cycles, world.options.horizon, -5.0,
      sim_result.dispatch_log);
  EXPECT_EQ(frozen_zero.dead_sensors, frozen_negative.dead_sensors);
  EXPECT_EQ(frozen_zero.deaths.size(), frozen_negative.deaths.size());
  EXPECT_DOUBLE_EQ(frozen_zero.min_fraction_at_charge,
                   frozen_negative.min_fraction_at_charge);
}

TEST(Replay, MinFractionMatchesSlack) {
  // One sensor, cycle tau: charging at 0.75 tau leaves fraction 0.25.
  wsn::DeploymentConfig deployment;
  deployment.n = 1;
  deployment.q = 1;
  Rng rng(11);
  const auto network = wsn::deploy_random(deployment, rng);
  wsn::CycleModelConfig config;
  config.tau_min = 8.0;
  config.tau_max = 8.0;
  config.sigma = 0.0;
  const wsn::CycleModel cycles(network, config, 1);
  std::vector<DispatchRecord> log{{6.0, {0}, 1.0}};
  const auto replay =
      replay_with_batteries(network, cycles, 8.0, 0.0, log);
  EXPECT_EQ(replay.dead_sensors, 0u);
  EXPECT_NEAR(replay.min_fraction_at_charge, 0.25, 1e-9);
}

}  // namespace
}  // namespace mwc::sim
