#include "sim/solve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "charging/min_total_distance.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc::sim {
namespace {

wsn::Network small_network(std::uint64_t seed = 3) {
  wsn::DeploymentConfig config;
  config.n = 30;
  config.q = 3;
  config.field_side = 400.0;
  Rng rng(seed, 0);
  return wsn::deploy_random(config, rng);
}

TEST(SolveNetwork, FirstRoundMatchesDispatchLog) {
  const wsn::Network network = small_network();
  const wsn::CycleModel cycles(network, wsn::CycleModelConfig{}, 11);
  SimOptions options;
  options.horizon = 300.0;

  charging::MinTotalDistancePolicy policy;
  const SolveOutcome outcome =
      solve_network(network, cycles, options, policy);

  ASSERT_FALSE(outcome.result.dispatch_log.empty());
  const auto& first = outcome.result.dispatch_log.front();
  const RoundPlan& round = outcome.first_round;
  EXPECT_EQ(round.sensors, first.sensors);
  EXPECT_EQ(round.tours.size(), network.q());
  ASSERT_EQ(round.tour_lengths.size(), round.tours.size());

  // The rebuilt tours cost exactly what the simulator charged the round.
  EXPECT_DOUBLE_EQ(round.total_length, first.cost);
  double sum = 0.0;
  for (double len : round.tour_lengths) sum += len;
  EXPECT_NEAR(sum, round.total_length, 1e-9);

  // Tours are in combined labels and partition the dispatch set: every
  // listed sensor appears in exactly one tour.
  std::vector<std::size_t> covered;
  for (const auto& tour : round.tours) {
    for (std::size_t node : tour.order()) {
      if (node >= network.q()) covered.push_back(node - network.q());
    }
  }
  std::vector<std::size_t> expected = first.sensors;
  std::sort(covered.begin(), covered.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(covered, expected);
}

TEST(SolveNetwork, DeterministicAcrossCalls) {
  const wsn::Network network = small_network(7);
  const wsn::CycleModel cycles(network, wsn::CycleModelConfig{}, 5);
  SimOptions options;
  options.horizon = 200.0;

  charging::MinTotalDistancePolicy p1, p2;
  const SolveOutcome a = solve_network(network, cycles, options, p1);
  const SolveOutcome b = solve_network(network, cycles, options, p2);
  EXPECT_DOUBLE_EQ(a.result.service_cost, b.result.service_cost);
  ASSERT_EQ(a.first_round.tours.size(), b.first_round.tours.size());
  for (std::size_t t = 0; t < a.first_round.tours.size(); ++t)
    EXPECT_EQ(a.first_round.tours[t].order(),
              b.first_round.tours[t].order());
}

TEST(SolveNetwork, EmptyRoundPlanWhenPolicyNeverDispatches) {
  const wsn::Network network = small_network();
  const wsn::CycleModel cycles(network, wsn::CycleModelConfig{}, 11);
  SimOptions options;
  options.horizon = 300.0;

  // A policy that never schedules anything.
  class Idle final : public charging::Policy {
   public:
    std::string name() const override { return "Idle"; }
    void reset(const charging::StateView&) override {}
    std::optional<charging::Dispatch> next_dispatch(
        const charging::StateView&) override {
      return std::nullopt;
    }
    void on_dispatch_executed(const charging::StateView&,
                              const charging::Dispatch&) override {}
  };
  Idle idle;
  const SolveOutcome outcome =
      solve_network(network, cycles, options, idle);
  EXPECT_TRUE(outcome.result.dispatch_log.empty());
  EXPECT_TRUE(outcome.first_round.tours.empty());
  EXPECT_DOUBLE_EQ(outcome.first_round.total_length, 0.0);
}

}  // namespace
}  // namespace mwc::sim
