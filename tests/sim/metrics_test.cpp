#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace mwc::sim {
namespace {

SimResult make_result(double service_cost, std::vector<double> per_charger,
                      std::size_t dispatches, std::size_t charges,
                      std::size_t dead, double wall) {
  SimResult r;
  r.service_cost = service_cost;
  r.per_charger_cost = std::move(per_charger);
  r.num_dispatches = dispatches;
  r.num_sensor_charges = charges;
  r.dead_sensors = dead;
  r.wall_seconds = wall;
  return r;
}

TEST(Average, EmptyInputIsDefault) {
  const SimResult avg = average({});
  EXPECT_EQ(avg.service_cost, 0.0);
  EXPECT_TRUE(avg.per_charger_cost.empty());
  EXPECT_EQ(avg.num_dispatches, 0u);
  EXPECT_EQ(avg.wall_seconds, 0.0);
  EXPECT_EQ(avg.min_residual_at_charge,
            std::numeric_limits<double>::infinity());
}

TEST(Average, SingleResultIsIdentity) {
  auto r = make_result(12.0, {4.0, 8.0}, 3, 9, 1, 0.25);
  r.min_residual_at_charge = 1.5;
  const SimResult avg = average({r});
  EXPECT_DOUBLE_EQ(avg.service_cost, 12.0);
  ASSERT_EQ(avg.per_charger_cost.size(), 2u);
  EXPECT_DOUBLE_EQ(avg.per_charger_cost[0], 4.0);
  EXPECT_DOUBLE_EQ(avg.per_charger_cost[1], 8.0);
  EXPECT_EQ(avg.num_dispatches, 3u);
  EXPECT_EQ(avg.num_sensor_charges, 9u);
  EXPECT_EQ(avg.dead_sensors, 1u);
  EXPECT_DOUBLE_EQ(avg.wall_seconds, 0.25);
  EXPECT_DOUBLE_EQ(avg.min_residual_at_charge, 1.5);
}

TEST(Average, MeansScalarFields) {
  const std::vector<SimResult> results = {
      make_result(10.0, {10.0}, 2, 4, 0, 0.1),
      make_result(30.0, {30.0}, 4, 8, 2, 0.3),
  };
  const SimResult avg = average(results);
  EXPECT_DOUBLE_EQ(avg.service_cost, 20.0);
  EXPECT_EQ(avg.num_dispatches, 3u);
  EXPECT_EQ(avg.num_sensor_charges, 6u);
  EXPECT_EQ(avg.dead_sensors, 1u);
  EXPECT_NEAR(avg.wall_seconds, 0.2, 1e-12);
}

// Runs from different fleet sizes (q differs across configs) produce
// per_charger_cost vectors of different lengths; the average must span
// the longest and treat missing chargers as zero cost.
TEST(Average, HeterogeneousPerChargerLengths) {
  const std::vector<SimResult> results = {
      make_result(6.0, {6.0}, 1, 1, 0, 0.0),
      make_result(12.0, {4.0, 8.0}, 1, 1, 0, 0.0),
      make_result(9.0, {3.0, 3.0, 3.0}, 1, 1, 0, 0.0),
  };
  const SimResult avg = average(results);
  ASSERT_EQ(avg.per_charger_cost.size(), 3u);
  EXPECT_NEAR(avg.per_charger_cost[0], (6.0 + 4.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(avg.per_charger_cost[1], (0.0 + 8.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(avg.per_charger_cost[2], (0.0 + 0.0 + 3.0) / 3.0, 1e-12);
  // Per-charger averages still sum to the mean service cost.
  double sum = 0.0;
  for (double c : avg.per_charger_cost) sum += c;
  EXPECT_NEAR(sum, avg.service_cost, 1e-12);
}

TEST(Average, EmptyPerChargerAmongNonEmpty) {
  const std::vector<SimResult> results = {
      make_result(0.0, {}, 0, 0, 0, 0.0),
      make_result(8.0, {8.0}, 1, 2, 0, 0.0),
  };
  const SimResult avg = average(results);
  ASSERT_EQ(avg.per_charger_cost.size(), 1u);
  EXPECT_NEAR(avg.per_charger_cost[0], 4.0, 1e-12);
}

TEST(Average, MinResidualTakesWorstCase) {
  auto a = make_result(1.0, {1.0}, 1, 1, 0, 0.0);
  auto b = make_result(1.0, {1.0}, 1, 1, 0, 0.0);
  a.min_residual_at_charge = 2.5;
  b.min_residual_at_charge = 0.75;
  const SimResult avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.min_residual_at_charge, 0.75);
}

TEST(Average, CountsRoundToNearest) {
  // Mean dispatches 1.5 rounds up to 2; mean dead 0.5 rounds to 1.
  const std::vector<SimResult> results = {
      make_result(0.0, {}, 1, 1, 0, 0.0),
      make_result(0.0, {}, 2, 2, 1, 0.0),
  };
  const SimResult avg = average(results);
  EXPECT_EQ(avg.num_dispatches, 2u);
  EXPECT_EQ(avg.dead_sensors, 1u);
}

}  // namespace
}  // namespace mwc::sim
