#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"

namespace mwc::sim {
namespace {

wsn::Network test_network(std::size_t n, std::size_t q, std::uint64_t seed) {
  wsn::DeploymentConfig config;
  config.n = n;
  config.q = q;
  config.field_side = 1000.0;
  Rng rng(seed);
  return wsn::deploy_random(config, rng);
}

wsn::CycleModel fixed_cycles(const wsn::Network& net, double tau_min,
                             double tau_max, std::uint64_t seed,
                             double sigma = 0.0) {
  wsn::CycleModelConfig config;
  config.tau_min = tau_min;
  config.tau_max = tau_max;
  config.sigma = sigma;
  return wsn::CycleModel(net, config, seed);
}

/// Policy that never dispatches: every sensor dies exactly once.
class DoNothingPolicy final : public charging::Policy {
 public:
  std::string name() const override { return "DoNothing"; }
  void reset(const charging::StateView&) override {}
  std::optional<charging::Dispatch> next_dispatch(
      const charging::StateView&) override {
    return std::nullopt;
  }
  void on_dispatch_executed(const charging::StateView&,
                            const charging::Dispatch&) override {}
};

/// Policy that dispatches a scripted list.
class ScriptedPolicy final : public charging::Policy {
 public:
  explicit ScriptedPolicy(std::vector<charging::Dispatch> script)
      : script_(std::move(script)) {}
  std::string name() const override { return "Scripted"; }
  void reset(const charging::StateView&) override { next_ = 0; }
  std::optional<charging::Dispatch> next_dispatch(
      const charging::StateView&) override {
    if (next_ >= script_.size()) return std::nullopt;
    return script_[next_];
  }
  void on_dispatch_executed(const charging::StateView&,
                            const charging::Dispatch&) override {
    ++next_;
  }

 private:
  std::vector<charging::Dispatch> script_;
  std::size_t next_ = 0;
};

TEST(Simulator, DoNothingKillsEverySensor) {
  const auto net = test_network(20, 2, 1);
  const auto cycles = fixed_cycles(net, 1.0, 50.0, 1);
  SimOptions options;
  options.horizon = 100.0;
  Simulator simulator(net, cycles, options);
  DoNothingPolicy policy;
  const auto result = simulator.run(policy);
  EXPECT_EQ(result.dead_sensors, 20u);
  EXPECT_EQ(result.deaths.size(), 20u);
  EXPECT_EQ(result.service_cost, 0.0);
  EXPECT_FALSE(result.feasible());
}

TEST(Simulator, DeathTimesMatchCycles) {
  const auto net = test_network(10, 1, 2);
  const auto cycles = fixed_cycles(net, 2.0, 30.0, 2);
  SimOptions options;
  options.horizon = 100.0;
  Simulator simulator(net, cycles, options);
  DoNothingPolicy policy;
  const auto result = simulator.run(policy);
  // Sensor i dies exactly at its cycle (fully charged at t=0).
  const auto taus = cycles.cycles_at_slot(0);
  ASSERT_EQ(result.deaths.size(), 10u);
  for (const auto& death : result.deaths)
    EXPECT_NEAR(death.time, taus[death.sensor], 1e-6);
}

TEST(Simulator, ScriptedChargeKeepsSensorAlive) {
  const auto net = test_network(1, 1, 3);
  const auto cycles = fixed_cycles(net, 10.0, 10.0, 3);
  SimOptions options;
  options.horizon = 35.0;
  Simulator simulator(net, cycles, options);
  // Charges at 9, 18, 27 — always within the 10-unit cycle.
  ScriptedPolicy policy({{9.0, {0}}, {18.0, {0}}, {27.0, {0}}});
  const auto result = simulator.run(policy);
  EXPECT_TRUE(result.feasible());
  EXPECT_EQ(result.num_dispatches, 3u);
  EXPECT_EQ(result.num_sensor_charges, 3u);
}

TEST(Simulator, LateChargeRecordsDeath) {
  const auto net = test_network(1, 1, 4);
  const auto cycles = fixed_cycles(net, 10.0, 10.0, 4);
  SimOptions options;
  options.horizon = 30.0;
  Simulator simulator(net, cycles, options);
  ScriptedPolicy policy({{15.0, {0}}, {24.0, {0}}});  // first charge too late
  const auto result = simulator.run(policy);
  EXPECT_EQ(result.dead_sensors, 1u);
  ASSERT_EQ(result.deaths.size(), 1u);
  EXPECT_NEAR(result.deaths[0].time, 10.0, 1e-9);
}

TEST(Simulator, ServiceCostMatchesQRootedTours) {
  const auto net = test_network(15, 3, 5);
  const auto cycles = fixed_cycles(net, 20.0, 20.0, 5);
  SimOptions options;
  options.horizon = 15.0;
  Simulator simulator(net, cycles, options);

  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < net.n(); ++i) all.push_back(i);
  ScriptedPolicy policy({{5.0, all}});
  const auto result = simulator.run(policy);

  tsp::QRootedInstance instance;
  instance.depots = net.depots();
  instance.sensors = net.sensor_points();
  const auto tours = tsp::q_rooted_tsp(instance);
  EXPECT_NEAR(result.service_cost, tours.total_length, 1e-9);
  ASSERT_EQ(result.per_charger_cost.size(), net.q());
  double per_sum = 0.0;
  for (double c : result.per_charger_cost) per_sum += c;
  EXPECT_NEAR(per_sum, result.service_cost, 1e-9);
}

TEST(Simulator, CostCacheDoesNotChangeTotals) {
  const auto net = test_network(30, 3, 6);
  const auto cycles = fixed_cycles(net, 1.0, 20.0, 6);
  SimOptions cached;
  cached.horizon = 100.0;
  cached.cache_tour_costs = true;
  SimOptions uncached = cached;
  uncached.cache_tour_costs = false;

  charging::MinTotalDistancePolicy p1, p2;
  const auto r1 = Simulator(net, cycles, cached).run(p1);
  const auto r2 = Simulator(net, cycles, uncached).run(p2);
  EXPECT_NEAR(r1.service_cost, r2.service_cost, 1e-6);
  EXPECT_EQ(r1.num_dispatches, r2.num_dispatches);
}

TEST(Simulator, SlotRedrawRescalesResidualLife) {
  // One sensor, cycle switches between 10 (even slots) and 5 (odd slots)
  // via sigma... instead use a custom CycleModel: sigma>0 makes this
  // nondeterministic, so test the rescale indirectly: with slots on and a
  // DoNothing policy, the sensor must still die before max(tau) elapses.
  const auto net = test_network(5, 1, 7);
  wsn::CycleModelConfig config;
  config.tau_min = 4.0;
  config.tau_max = 8.0;
  config.sigma = 2.0;
  const wsn::CycleModel cycles(net, config, 7);
  SimOptions options;
  options.horizon = 50.0;
  options.slot_length = 2.0;
  Simulator simulator(net, cycles, options);
  DoNothingPolicy policy;
  const auto result = simulator.run(policy);
  EXPECT_EQ(result.dead_sensors, 5u);
  for (const auto& death : result.deaths) {
    EXPECT_GT(death.time, config.tau_min - 1e-9);
    EXPECT_LT(death.time, config.tau_max + 1e-9);
  }
}

TEST(Simulator, GreedyFeasibleOnFixedCycles) {
  const auto net = test_network(40, 5, 8);
  const auto cycles = fixed_cycles(net, 1.0, 50.0, 8);
  SimOptions options;
  options.horizon = 200.0;
  Simulator simulator(net, cycles, options);
  charging::GreedyPolicy policy;
  const auto result = simulator.run(policy);
  EXPECT_TRUE(result.feasible()) << result.dead_sensors << " deaths";
  EXPECT_GT(result.service_cost, 0.0);
  EXPECT_GT(result.num_dispatches, 0u);
}

TEST(Simulator, TripCapacityAddsReturnLegs) {
  const auto net = test_network(60, 3, 12);
  const auto cycles = fixed_cycles(net, 1.0, 20.0, 12);
  SimOptions unlimited;
  unlimited.horizon = 60.0;
  SimOptions limited = unlimited;
  limited.trip_capacity = 2000.0;  // metres per trip

  charging::MinTotalDistancePolicy p1, p2;
  const auto free_range = Simulator(net, cycles, unlimited).run(p1);
  const auto ranged = Simulator(net, cycles, limited).run(p2);
  EXPECT_GE(ranged.service_cost, free_range.service_cost - 1e-6);
  EXPECT_TRUE(ranged.feasible());
  EXPECT_EQ(ranged.num_dispatches, free_range.num_dispatches);
  ASSERT_EQ(ranged.per_charger_cost.size(), net.q());
  double per_sum = 0.0;
  for (double c : ranged.per_charger_cost) per_sum += c;
  EXPECT_NEAR(per_sum, ranged.service_cost, 1e-6 * (1 + per_sum));
}

TEST(Simulator, GenerousTripCapacityMatchesUnlimited) {
  const auto net = test_network(40, 2, 13);
  const auto cycles = fixed_cycles(net, 1.0, 15.0, 13);
  SimOptions unlimited;
  unlimited.horizon = 40.0;
  SimOptions generous = unlimited;
  generous.trip_capacity = 1e9;

  charging::MinTotalDistancePolicy p1, p2;
  const auto a = Simulator(net, cycles, unlimited).run(p1);
  const auto b = Simulator(net, cycles, generous).run(p2);
  EXPECT_NEAR(a.service_cost, b.service_cost, 1e-6 * (1 + a.service_cost));
}

TEST(Simulator, MinResidualTracksSlack) {
  const auto net = test_network(1, 1, 9);
  const auto cycles = fixed_cycles(net, 10.0, 10.0, 9);
  SimOptions options;
  options.horizon = 20.0;
  Simulator simulator(net, cycles, options);
  std::vector<charging::Dispatch> script{{7.0, {0}}};
  ScriptedPolicy policy(std::move(script));  // charge with 3 units left
  const auto result = simulator.run(policy);
  EXPECT_NEAR(result.min_residual_at_charge, 3.0, 1e-9);
}

TEST(Simulator, CacheHitsMatchRoundClasses) {
  // MinTotalDistance only ever dispatches K+1 distinct sensor sets (the
  // cumulative round classes), so a cold cache misses exactly K+1 times
  // and hits on every other dispatch.
  const auto net = test_network(30, 3, 14);
  const auto cycles = fixed_cycles(net, 1.0, 20.0, 14);
  SimOptions options;
  options.horizon = 100.0;
  Simulator simulator(net, cycles, options);
  charging::MinTotalDistancePolicy policy;
  const auto result = simulator.run(policy);

  const std::size_t classes = policy.partition().K + 1;
  EXPECT_EQ(result.tour_cache_misses, classes);
  EXPECT_EQ(result.tour_cache_hits, result.num_dispatches - classes);
}

TEST(Simulator, ResultCountersMatchMetricsRegistry) {
  // PR regression pin: SimResult's cache counters and wall time are now
  // sourced from the per-instance obs registry. The semantics must be
  // bit-identical to the old hand-threaded members — per-run deltas, a
  // second run over a warm cache hits everywhere, and the registry view
  // agrees with the struct fields.
  const auto net = test_network(30, 3, 14);
  const auto cycles = fixed_cycles(net, 1.0, 20.0, 14);
  SimOptions options;
  options.horizon = 100.0;
  Simulator simulator(net, cycles, options);
  charging::MinTotalDistancePolicy policy;
  const auto first = simulator.run(policy);

  const std::size_t classes = policy.partition().K + 1;
  EXPECT_EQ(first.tour_cache_misses, classes);
  EXPECT_EQ(first.tour_cache_hits, first.num_dispatches - classes);
  EXPECT_EQ(simulator.tour_cache_hits(), first.tour_cache_hits);
  EXPECT_EQ(simulator.tour_cache_misses(), first.tour_cache_misses);

  const obs::Registry& metrics = simulator.metrics();
  EXPECT_TRUE(metrics.contains("sim.tour_cache_hits"));
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("sim.tour_cache_hits"),
            first.tour_cache_hits);
  EXPECT_EQ(snap.counters.at("sim.tour_cache_misses"),
            first.tour_cache_misses);
  // wall_seconds round-trips through the registry gauge bit-exactly.
  EXPECT_EQ(first.wall_seconds, snap.gauges.at("sim.run_wall_seconds"));
  EXPECT_GE(first.wall_seconds, 0.0);

  // Second run on the same instance: warm cache, all hits; the struct
  // fields stay per-run deltas while the instrument totals accumulate.
  charging::MinTotalDistancePolicy policy2;
  const auto second = simulator.run(policy2);
  EXPECT_EQ(second.tour_cache_misses, 0u);
  EXPECT_EQ(second.tour_cache_hits, second.num_dispatches);
  EXPECT_EQ(simulator.tour_cache_hits(),
            first.tour_cache_hits + second.tour_cache_hits);
  EXPECT_EQ(simulator.tour_cache_misses(), first.tour_cache_misses);
}

TEST(Simulator, PrecostPolicyWarmsCache) {
  const auto net = test_network(30, 3, 15);
  const auto cycles = fixed_cycles(net, 1.0, 20.0, 15);
  SimOptions options;
  options.horizon = 100.0;
  Simulator simulator(net, cycles, options);
  charging::MinTotalDistancePolicy policy;

  ThreadPool pool(4);
  const std::size_t computed = simulator.precost_policy(policy, &pool);
  EXPECT_EQ(computed, policy.partition().K + 1);
  // Re-precosting finds everything cached.
  EXPECT_EQ(simulator.precost_policy(policy, &pool), 0u);

  const auto result = simulator.run(policy);
  EXPECT_EQ(result.tour_cache_misses, 0u);
  EXPECT_EQ(result.tour_cache_hits, result.num_dispatches);

  // Pre-warming must not change any outcome versus a cold simulator.
  charging::MinTotalDistancePolicy cold_policy;
  const auto cold = Simulator(net, cycles, options).run(cold_policy);
  EXPECT_EQ(result.service_cost, cold.service_cost);
  EXPECT_EQ(result.num_dispatches, cold.num_dispatches);
}

TEST(Simulator, PrecostDispatchesDeduplicates) {
  const auto net = test_network(12, 2, 16);
  const auto cycles = fixed_cycles(net, 5.0, 10.0, 16);
  SimOptions options;
  options.horizon = 50.0;
  Simulator simulator(net, cycles, options);
  const std::vector<std::vector<std::size_t>> sets = {
      {0, 1, 2}, {3, 4}, {0, 1, 2}, {}};
  EXPECT_EQ(simulator.precost_dispatches(sets), 2u);
  EXPECT_EQ(simulator.precost_dispatches(sets), 0u);
}

TEST(Simulator, CandidateAccelerationStaysNearExhaustive) {
  // One full dispatch (exercises the shared full-space candidate graph)
  // plus one proper subset (exercises the per-dispatch subspace graph);
  // candidate-mode costs must stay within 1% of the exhaustive-polish
  // reference, and the verified pruned MSF keeps tours covering.
  const auto net = test_network(40, 2, 7);
  const auto cycles = fixed_cycles(net, 50.0, 50.0, 7);
  std::vector<std::size_t> all(40);
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < all.size(); i += 3) subset.push_back(i);
  const std::vector<charging::Dispatch> script{{5.0, all}, {15.0, subset}};

  SimOptions exhaustive;
  exhaustive.horizon = 30.0;
  exhaustive.tour_options.improve = true;
  exhaustive.tour_options.improve_options.exhaustive = true;

  SimOptions candidate = exhaustive;
  candidate.tour_options.improve_options.exhaustive = false;
  candidate.tour_options.candidate_msf = true;
  candidate.tour_options.verify_candidate_msf = true;

  Simulator sim_exhaustive(net, cycles, exhaustive);
  Simulator sim_candidate(net, cycles, candidate);
  ScriptedPolicy policy_exhaustive(script);
  ScriptedPolicy policy_candidate(script);
  const auto reference = sim_exhaustive.run(policy_exhaustive);
  const auto accelerated = sim_candidate.run(policy_candidate);
  EXPECT_GT(accelerated.service_cost, 0.0);
  EXPECT_LE(accelerated.service_cost, reference.service_cost * 1.01);
}

TEST(SimulatorDeath, PastDispatchAborts) {
  const auto net = test_network(2, 1, 10);
  const auto cycles = fixed_cycles(net, 50.0, 50.0, 10);
  SimOptions options;
  options.horizon = 30.0;
  Simulator simulator(net, cycles, options);
  // Second dispatch goes backwards in time.
  std::vector<charging::Dispatch> script{{20.0, {0}}, {10.0, {1}}};
  ScriptedPolicy policy(std::move(script));
  EXPECT_DEATH(simulator.run(policy), "past");
}

TEST(SimulatorDeath, EmptyDispatchAborts) {
  const auto net = test_network(2, 1, 11);
  const auto cycles = fixed_cycles(net, 50.0, 50.0, 11);
  SimOptions options;
  options.horizon = 30.0;
  Simulator simulator(net, cycles, options);
  std::vector<charging::Dispatch> script{{5.0, {}}};
  ScriptedPolicy policy(std::move(script));
  EXPECT_DEATH(simulator.run(policy), "empty");
}

}  // namespace
}  // namespace mwc::sim
