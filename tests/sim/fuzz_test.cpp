// Fuzz-style contract tests: a randomized (but legal) policy hammers the
// simulator; accounting invariants must hold for any behaviour within the
// Policy contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc::sim {
namespace {

// Dispatches random sensor subsets at random future times.
class RandomPolicy final : public charging::Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Random"; }

  void reset(const charging::StateView& view) override {
    n_ = view.network().n();
    planned_.reset();
  }

  std::optional<charging::Dispatch> next_dispatch(
      const charging::StateView& view) override {
    if (!planned_) {
      charging::Dispatch d;
      d.time = view.now() + rng_.uniform(0.0, 3.0);
      const auto count =
          static_cast<std::size_t>(rng_.uniform_int(1, std::max<std::int64_t>(
                                                           1, n_ / 4)));
      for (std::size_t k = 0; k < count; ++k) {
        d.sensors.push_back(
            static_cast<std::size_t>(rng_.uniform_int(0, n_ - 1)));
      }
      charging::normalize(d);
      planned_ = std::move(d);
    }
    // The plan must stay valid relative to "now" (a slot boundary may
    // have passed since it was made).
    if (planned_->time < view.now()) planned_->time = view.now();
    return planned_;
  }

  void on_dispatch_executed(const charging::StateView&,
                            const charging::Dispatch&) override {
    planned_.reset();
  }

 private:
  Rng rng_;
  std::size_t n_ = 0;
  std::optional<charging::Dispatch> planned_;
};

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, AccountingInvariantsHoldUnderRandomPolicies) {
  const auto seed = GetParam();
  wsn::DeploymentConfig deployment;
  deployment.n = 30;
  deployment.q = 3;
  Rng rng(seed);
  const auto network = wsn::deploy_random(deployment, rng);
  wsn::CycleModelConfig config;
  config.tau_min = 2.0;
  config.tau_max = 20.0;
  config.sigma = 4.0;
  const wsn::CycleModel cycles(network, config, seed ^ 0xF);

  SimOptions options;
  options.horizon = 80.0;
  options.slot_length = 7.0;
  options.record_dispatches = true;
  Simulator simulator(network, cycles, options);
  RandomPolicy policy(seed ^ 0xAA);
  const auto result = simulator.run(policy);

  // Invariant: per-charger breakdown sums to the total cost.
  double per_sum = 0.0;
  for (double c : result.per_charger_cost) per_sum += c;
  EXPECT_NEAR(per_sum, result.service_cost,
              1e-6 * (1.0 + result.service_cost));

  // Invariant: log agrees with counters.
  EXPECT_EQ(result.dispatch_log.size(), result.num_dispatches);
  std::size_t charges = 0;
  double logged_cost = 0.0;
  double prev_time = 0.0;
  for (const auto& record : result.dispatch_log) {
    EXPECT_GE(record.time, prev_time - 1e-9);  // monotone times
    EXPECT_LT(record.time, options.horizon);
    prev_time = record.time;
    charges += record.sensors.size();
    logged_cost += record.cost;
  }
  EXPECT_EQ(charges, result.num_sensor_charges);
  EXPECT_NEAR(logged_cost, result.service_cost,
              1e-6 * (1.0 + result.service_cost));

  // Invariant: deaths agree with the independent battery replay.
  const auto replay =
      replay_with_batteries(network, cycles, options.horizon,
                            options.slot_length, result.dispatch_log);
  EXPECT_EQ(replay.dead_sensors, result.dead_sensors);

  // Invariant: dead_sensors counts distinct sensors only.
  EXPECT_LE(result.dead_sensors, network.n());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mwc::sim
