#include "svc/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {
namespace {

std::shared_ptr<const Plan> sample_plan(std::uint64_t fingerprint) {
  auto p = std::make_shared<Plan>();
  p->fingerprint = fingerprint;
  // Deliberately awkward doubles: the round trip must be bit-exact, not
  // merely close.
  p->first_round_length = 123.456789012345678;
  p->total_distance = 0.1 + static_cast<double>(fingerprint) * (1.0 / 3.0);
  p->num_dispatches = 3;
  p->num_sensor_charges = 17;
  p->dead_sensors = 1;
  PlanTour a;
  a.depot = 2;
  a.length = 987.654321 / 7.0;
  a.sensors = {5, 3, 8, 13};
  PlanTour b;
  b.depot = 0;
  b.length = 0.0;  // empty tour still round-trips
  p->first_round_tours = {a, b};
  return p;
}

/// The wire bytes a cache hit for this plan would produce (latency
/// zeroed, as in the golden tests).
std::string wire_bytes(const std::shared_ptr<const Plan>& plan) {
  Response r;
  r.id = "snap";
  r.ok = true;
  r.cached = true;
  r.latency_ms = 0.0;
  r.plan = plan;
  return to_jsonl(r);
}

std::uint64_t rejected_count() {
  return obs::Registry::global().counter("svc.cache.snapshot_rejected")
      .value();
}

class SnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void write_file(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_ = ::testing::TempDir() + "mwc_snapshot_test.bin";
};

TEST_F(SnapshotTest, RoundTripRestoresIdenticalWireBytes) {
  PlanCache cache(8);
  const auto p1 = sample_plan(0x1111aaaa2222bbbbULL);
  const auto p2 = sample_plan(0x3333cccc4444ddddULL);
  cache.put(p1->fingerprint, p1);
  cache.put(p2->fingerprint, p2);

  EXPECT_EQ(save_cache_snapshot(cache, path_), 2);

  PlanCache restored(8);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 2u);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(restored.size(), 2u);

  const auto r1 = restored.get(p1->fingerprint);
  const auto r2 = restored.get(p2->fingerprint);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  // A restarted daemon must answer with byte-identical responses.
  EXPECT_EQ(wire_bytes(r1), wire_bytes(p1));
  EXPECT_EQ(wire_bytes(r2), wire_bytes(p2));
}

TEST_F(SnapshotTest, RestorePreservesRecencyOrder) {
  PlanCache cache(2);
  const auto p1 = sample_plan(1);
  const auto p2 = sample_plan(2);
  cache.put(1, p1);
  cache.put(2, p2);
  ASSERT_NE(cache.get(1), nullptr);  // 1 is MRU, 2 is LRU

  ASSERT_EQ(save_cache_snapshot(cache, path_), 2);
  PlanCache restored(2);
  ASSERT_EQ(load_cache_snapshot(restored, path_), 2u);

  // Inserting a third plan must evict 2 (the snapshotted LRU), not 1.
  restored.put(3, sample_plan(3));
  EXPECT_NE(restored.get(1), nullptr);
  EXPECT_EQ(restored.get(2), nullptr);
}

TEST_F(SnapshotTest, EmptyCacheWritesLoadableFile) {
  PlanCache cache(4);
  EXPECT_EQ(save_cache_snapshot(cache, path_), 0);
  PlanCache restored(4);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 0u);
  EXPECT_TRUE(error.empty()) << error;
}

TEST_F(SnapshotTest, MissingFileIsSilentColdStart) {
  const std::uint64_t rejected_before = rejected_count();
  PlanCache cache(4);
  std::string error = "sentinel";
  EXPECT_EQ(load_cache_snapshot(cache, path_ + ".does-not-exist", &error),
            0u);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(rejected_count(), rejected_before);
}

TEST_F(SnapshotTest, CorruptedPayloadIsRejectedWhole) {
  PlanCache cache(4);
  cache.put(7, sample_plan(7));
  ASSERT_EQ(save_cache_snapshot(cache, path_), 1);

  std::string bytes = read_file();
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-payload
  write_file(bytes);

  const std::uint64_t rejected_before = rejected_count();
  PlanCache restored(4);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(restored.size(), 0u);  // nothing half-loaded
  if (MWC_OBS_ENABLED != 0) EXPECT_EQ(rejected_count(), rejected_before + 1);
}

TEST_F(SnapshotTest, TruncatedFileIsRejected) {
  PlanCache cache(4);
  cache.put(7, sample_plan(7));
  ASSERT_EQ(save_cache_snapshot(cache, path_), 1);

  std::string bytes = read_file();
  write_file(bytes.substr(0, bytes.size() - 9));

  PlanCache restored(4);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(restored.size(), 0u);
}

TEST_F(SnapshotTest, WrongMagicIsRejected) {
  write_file("NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxx");
  PlanCache restored(4);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 0u);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(SnapshotTest, KeyFingerprintMismatchRejectsWholeFile) {
  PlanCache cache(4);
  cache.put(100, sample_plan(100));  // valid entry first (LRU)
  cache.put(999, sample_plan(1));    // stale: key != plan fingerprint
  ASSERT_EQ(save_cache_snapshot(cache, path_), 2);

  PlanCache restored(4);
  std::string error;
  EXPECT_EQ(load_cache_snapshot(restored, path_, &error), 0u);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  // All-or-nothing: the valid entry must not have been kept.
  EXPECT_EQ(restored.size(), 0u);
}

TEST_F(SnapshotTest, SavedAndLoadedCountersAdvance) {
  if (MWC_OBS_ENABLED == 0) GTEST_SKIP() << "obs compiled out";
  auto& reg = obs::Registry::global();
  const std::uint64_t saved_before =
      reg.counter("svc.cache.snapshot_saved").value();
  const std::uint64_t loaded_before =
      reg.counter("svc.cache.snapshot_loaded").value();

  PlanCache cache(4);
  cache.put(1, sample_plan(1));
  cache.put(2, sample_plan(2));
  ASSERT_EQ(save_cache_snapshot(cache, path_), 2);
  PlanCache restored(4);
  ASSERT_EQ(load_cache_snapshot(restored, path_), 2u);

  EXPECT_EQ(reg.counter("svc.cache.snapshot_saved").value(),
            saved_before + 1);
  EXPECT_EQ(reg.counter("svc.cache.snapshot_loaded").value(),
            loaded_before + 2);
}

}  // namespace
}  // namespace mwc::svc
