#include "svc/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/admin.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {
namespace {

std::string request_line(const std::string& id) {
  return R"({"v":"mwc.svc.v1","id":")" + id +
         R"(","network":{"preset":{"n":5,"q":1}},)"
         R"("cycles":{"values":[1,1,1,1,1]}})"
         "\n";
}

Response ok_response(const std::string& id) {
  Response response;
  response.id = id;
  response.ok = true;
  return response;
}

/// A NetServer over an injectable Server, with its loop on a thread.
struct Loop {
  Server server;
  AdminHandler admin;
  NetServer net;
  std::thread thread;

  explicit Loop(ServerOptions server_options,
                NetServerOptions net_options = {},
                StreamHub* sessions = nullptr)
      : server(std::move(server_options)),
        admin(server, AdminInfo{}),
        net(server, &admin, std::move(net_options), sessions) {
    EXPECT_TRUE(net.start());
    thread = std::thread([this] { net.run(); });
  }

  ~Loop() { stop(); }

  void stop() {
    net.request_stop();
    if (thread.joinable()) thread.join();
  }
};

/// Blocking test client with a 10 s receive timeout so a regression
/// fails instead of hanging the suite.
struct Client {
  int fd = -1;

  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connect (tiny TCP window, so
  /// an unread peer backs the server's writes up quickly).
  explicit Client(int port, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    if (rcvbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  void send_all(const std::string& data) const {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t put =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(put, 0);
      off += static_cast<std::size_t>(put);
    }
  }

  void half_close() const { ::shutdown(fd, SHUT_WR); }

  /// Reads until `n` full lines arrived (EOF or timeout end the read
  /// early — the caller's size assertion then fails loudly).
  std::vector<std::string> read_lines(std::size_t n) const {
    std::string buf;
    char chunk[65536];
    std::size_t newlines = 0;
    while (newlines < n) {
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      for (ssize_t i = 0; i < got; ++i)
        if (chunk[i] == '\n') ++newlines;
      buf.append(chunk, static_cast<std::size_t>(got));
    }
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(buf.substr(start, nl - start));
      start = nl + 1;
    }
    return lines;
  }

  /// True when the server closed the connection (read returns 0).
  bool read_eof() const {
    char chunk[256];
    for (;;) {
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got == 0) return true;
      if (got < 0) return false;  // timeout
    }
  }
};

std::string id_of(const std::string& line) {
  return Json::parse(line).at("id").as_string();
}

std::string stream_frame(const std::string& id) {
  return R"({"v":"mwc.svc.stream.v1","op":"open","id":")" + id + "\"}\n";
}

/// Minimal StreamHub: acks every frame, marks the connection streaming,
/// and hands the captured PushFn to the test thread so it can inject
/// server-initiated lines at chosen moments.
struct FakeHub final : StreamHub {
  std::mutex mutex;
  std::map<std::uint64_t, PushFn> push_fns;
  std::vector<std::uint64_t> dropped;

  std::string handle_frame(std::uint64_t conn_token, const std::string& line,
                           PushFn push, bool* streaming) override {
    {
      std::lock_guard<std::mutex> lock(mutex);
      push_fns[conn_token] = std::move(push);
    }
    *streaming = true;
    return R"({"v":"mwc.svc.stream.v1","id":")" +
           Json::parse(line).at("id").as_string() + R"(","ok":true})" "\n";
  }

  void drop_connection(std::uint64_t conn_token) override {
    std::lock_guard<std::mutex> lock(mutex);
    dropped.push_back(conn_token);
  }

  /// PushFn of the first (only) registered connection; waits for the
  /// loop thread to process the registering frame first.
  PushFn wait_push_fn() {
    for (int i = 0; i < 2000; ++i) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!push_fns.empty()) return push_fns.begin()->second;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return {};
  }

  bool was_dropped() {
    std::lock_guard<std::mutex> lock(mutex);
    return !dropped.empty();
  }
};

std::string push_line(const std::string& tag) {
  return R"({"v":"mwc.svc.stream.v1","op":"plan","push":true,"tag":")" + tag +
         "\"}\n";
}

TEST(NetServer, PipelinedOutOfOrderCompletionsFlushInRequestOrder) {
  ServerOptions options;
  options.threads = 4;
  // Later requests finish first: r0 sleeps longest. The transport must
  // still flush responses in request order.
  options.handler = [](const Request& request) {
    const int k = request.id.back() - '0';
    std::this_thread::sleep_for(std::chrono::milliseconds((5 - k) * 20));
    return ok_response(request.id);
  };
  Loop loop(options);

  Client client(loop.net.port());
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += request_line("r" + std::to_string(i));
  client.send_all(burst);

  const auto lines = client.read_lines(5);
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(id_of(lines[static_cast<std::size_t>(i)]),
              "r" + std::to_string(i));

  const NetStats stats = loop.net.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.responses, 5u);
  EXPECT_EQ(stats.accepted, 1u);
}

TEST(NetServer, BadRequestMidPipelineDoesNotDesyncTheStream) {
  ServerOptions options;
  options.threads = 2;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Loop loop(options);

  Client client(loop.net.port());
  client.send_all(request_line("r0") + "{this is not json\n" +
                  request_line("r1"));

  const auto lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  const Json bad = Json::parse(lines[1]);
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "bad_request");
  EXPECT_EQ(id_of(lines[2]), "r1");
}

TEST(NetServer, AdminResponsesJoinTheSequenceStream) {
  ServerOptions options;
  options.threads = 2;
  options.handler = [](const Request& request) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return ok_response(request.id);
  };
  Loop loop(options);

  Client client(loop.net.port());
  // The admin answer is ready instantly but owes its place in line
  // behind the slow r0.
  client.send_all(request_line("r0") +
                  R"({"admin":"statusz","id":"a1"})" "\n" +
                  request_line("r1"));

  const auto lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  EXPECT_EQ(id_of(lines[1]), "a1");
  EXPECT_NE(lines[1].find("statusz"), std::string::npos);
  EXPECT_EQ(id_of(lines[2]), "r1");
}

TEST(NetServer, HalfCloseFlushesEveryOwedResponse) {
  ServerOptions options;
  options.threads = 2;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Loop loop(options);

  Client client(loop.net.port());
  // Final line deliberately unterminated: EOF must end it, matching the
  // stdio transport.
  std::string burst = request_line("r0") + request_line("r1");
  burst += request_line("r2");
  burst.pop_back();  // strip the trailing newline
  client.send_all(burst);
  client.half_close();

  const auto lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  EXPECT_EQ(id_of(lines[1]), "r1");
  EXPECT_EQ(id_of(lines[2]), "r2");
  EXPECT_TRUE(client.read_eof());
}

TEST(NetServer, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  NetServerOptions net_options;
  net_options.idle_timeout_ms = 50.0;
  Loop loop(options, net_options);

  Client client(loop.net.port());
  EXPECT_TRUE(client.read_eof());  // server closes us, we sent nothing
  // The loop thread updates stats before/at close; poll briefly.
  for (int i = 0; i < 100 && loop.net.stats().idle_closed == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(loop.net.stats().idle_closed, 1u);
}

TEST(NetServer, StopFlushesInFlightWorkAndClosesIdleConnections) {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;
  ServerOptions options;
  options.threads = 1;
  options.handler = [&](const Request& request) {
    std::unique_lock<std::mutex> lock(mutex);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
    return ok_response(request.id);
  };
  Loop loop(options);

  Client busy(loop.net.port());
  Client idle(loop.net.port());  // never sends — the old transport's
                                 // per-connection read() would block on
                                 // this socket past SIGTERM
  busy.send_all(request_line("r0"));
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }

  loop.net.request_stop();
  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }

  // The loop must exit on its own: owed response flushed, idle
  // connection closed, run() returned.
  auto joined = std::async(std::launch::async, [&] { loop.stop(); });
  ASSERT_EQ(joined.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);

  const auto lines = busy.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  EXPECT_TRUE(busy.read_eof());
  EXPECT_TRUE(idle.read_eof());
}

TEST(NetServer, BufferedPartialRequestLineIsNotReapedAsIdle) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  NetServerOptions net_options;
  net_options.idle_timeout_ms = 50.0;
  Loop loop(options, net_options);

  // Send half a request line, go quiet past the idle timeout, then
  // finish it: the half-sent request must still be answered, not
  // silently dropped by the idle sweep.
  Client client(loop.net.port());
  const std::string line = request_line("r0");
  client.send_all(line.substr(0, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  client.send_all(line.substr(10));

  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  EXPECT_EQ(loop.net.stats().idle_closed, 0u);
}

TEST(NetServer, StopForceClosesConnectionsThatCannotFlush) {
  ServerOptions options;
  options.threads = 1;
  // An 8 MiB response cannot fit the kernel socket buffers, so a peer
  // that never reads leaves it unflushable forever.
  options.handler = [](const Request&) {
    Response response;
    response.id = std::string(8u << 20, 'x');
    response.ok = true;
    return response;
  };
  NetServerOptions net_options;
  net_options.drain_timeout_ms = 300.0;
  Loop loop(options, net_options);

  Client client(loop.net.port(), /*rcvbuf=*/1);
  client.send_all(request_line("r0"));
  // Wait until the response is queued on the connection's output buffer
  // (flushed as far as the socket accepts) before asking for the stop.
  for (int i = 0; i < 2000 && loop.net.stats().responses == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(loop.net.stats().responses, 1u);

  // run() must return anyway: the drain deadline force-closes the
  // connection the peer refuses to drain.
  loop.net.request_stop();
  auto joined = std::async(std::launch::async, [&] { loop.stop(); });
  ASSERT_EQ(joined.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(loop.net.stats().drain_dropped, 1u);
}

TEST(NetServer, WireBytesMatchInProcessServerModuloLatency) {
  // Same request through the epoll transport and through submit_line on
  // an identical server must serialize identically (latency aside).
  const std::string line = request_line("gold");

  ServerOptions options;
  options.threads = 1;
  Loop loop(options);
  Client client(loop.net.port());
  client.send_all(line);
  const auto wire = client.read_lines(1);
  ASSERT_EQ(wire.size(), 1u);

  Server reference(options);
  std::promise<std::string> answered;
  ASSERT_TRUE(reference.submit_line(
      line.substr(0, line.size() - 1),
      [&](const Response& r) { answered.set_value(to_jsonl(r)); }));
  std::string local = answered.get_future().get();
  ASSERT_EQ(local.back(), '\n');
  local.pop_back();

  Json from_wire = Json::parse(wire[0]);
  Json from_local = Json::parse(local);
  from_wire.set("latency_ms", Json(0.0));
  from_local.set("latency_ms", Json(0.0));
  EXPECT_EQ(from_wire.dump(), from_local.dump());
  reference.shutdown();
}

TEST(NetServer, StreamFramesRejectedWithoutHub) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Loop loop(options);  // no StreamHub attached

  Client client(loop.net.port());
  client.send_all(stream_frame("s0"));
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  const Json doc = Json::parse(lines[0]);
  EXPECT_EQ(doc.at("id").as_string(), "s0");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").as_string(), "sessions_disabled");
}

TEST(NetServer, PushesInterleaveWithoutDesyncingThePipeline) {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  ServerOptions options;
  options.threads = 2;
  // r0 parks the head of the response queue until the test releases it;
  // pushes injected meanwhile must flush without waiting for it.
  options.handler = [&](const Request& request) {
    if (request.id == "r0") {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return released; });
    }
    return ok_response(request.id);
  };
  FakeHub hub;
  Loop loop(options, {}, &hub);

  Client client(loop.net.port());
  client.send_all(request_line("r0") + stream_frame("s0") +
                  request_line("r1"));
  StreamHub::PushFn push = hub.wait_push_fn();
  ASSERT_TRUE(static_cast<bool>(push));
  EXPECT_TRUE(push(push_line("p0")));
  EXPECT_TRUE(push(push_line("p1")));

  // Both pushes must reach the client while r0 still blocks the
  // sequence stream — a push carries no sequence number.
  const auto early = client.read_lines(2);
  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(Json::parse(early[0]).at("tag").as_string(), "p0");
  EXPECT_EQ(Json::parse(early[1]).at("tag").as_string(), "p1");

  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
  // The owed responses then flush in request order: r0, s0's ack, r1.
  const auto lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(id_of(lines[0]), "r0");
  EXPECT_EQ(id_of(lines[1]), "s0");
  EXPECT_EQ(id_of(lines[2]), "r1");

  const NetStats stats = loop.net.stats();
  EXPECT_EQ(stats.pushes, 2u);
  EXPECT_EQ(stats.pushes_dropped, 0u);
}

TEST(NetServer, PushesCoexistWithMidPipelineRejections) {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  ServerOptions options;
  options.threads = 2;
  options.handler = [&](const Request& request) {
    if (request.id == "r0") {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return released; });
    }
    return ok_response(request.id);
  };
  FakeHub hub;
  Loop loop(options, {}, &hub);

  Client client(loop.net.port());
  // A malformed line parks its bad_request rejection mid-pipeline while
  // r0 blocks; a push injected on top must not disturb the order.
  client.send_all(request_line("r0") + "{not json\n" + stream_frame("s0") +
                  request_line("r1"));
  StreamHub::PushFn push = hub.wait_push_fn();
  ASSERT_TRUE(static_cast<bool>(push));
  EXPECT_TRUE(push(push_line("p0")));
  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }

  const auto lines = client.read_lines(5);
  ASSERT_EQ(lines.size(), 5u);
  // The push interleaves at an arbitrary point; everything else keeps
  // request order: r0, the rejection, s0's ack, r1.
  std::vector<std::string> ordered;
  std::size_t pushes_seen = 0;
  for (const auto& line : lines) {
    const Json doc = Json::parse(line);
    if (doc.find("tag") != nullptr) {
      ++pushes_seen;
      continue;
    }
    ordered.push_back(line);
  }
  EXPECT_EQ(pushes_seen, 1u);
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(id_of(ordered[0]), "r0");
  const Json bad = Json::parse(ordered[1]);
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "bad_request");
  EXPECT_EQ(id_of(ordered[2]), "s0");
  EXPECT_EQ(id_of(ordered[3]), "r1");
}

TEST(NetServer, PushToClosedConnectionReportsDropped) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  FakeHub hub;
  Loop loop(options, {}, &hub);

  {
    Client client(loop.net.port());
    client.send_all(stream_frame("s0"));
    ASSERT_EQ(client.read_lines(1).size(), 1u);
  }  // client disconnects
  StreamHub::PushFn push = hub.wait_push_fn();
  ASSERT_TRUE(static_cast<bool>(push));
  // The loop notices the EOF and tears the streaming connection down,
  // telling the hub; a late push must fail cleanly, not write to a
  // dead socket.
  for (int i = 0; i < 2000 && !hub.was_dropped(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(hub.was_dropped());
  EXPECT_FALSE(push(push_line("late")));
  EXPECT_EQ(loop.net.stats().pushes_dropped, 1u);
}

TEST(NetServer, StreamingConnectionsAreNotReapedAsIdle) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  NetServerOptions net_options;
  net_options.idle_timeout_ms = 50.0;
  FakeHub hub;
  Loop loop(options, net_options, &hub);

  Client client(loop.net.port());
  client.send_all(stream_frame("s0"));
  ASSERT_EQ(client.read_lines(1).size(), 1u);
  // Quiet for several idle periods: a live session holds the line open.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(loop.net.stats().idle_closed, 0u);
  client.send_all(request_line("r0"));
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(id_of(lines[0]), "r0");
}

}  // namespace
}  // namespace mwc::svc
