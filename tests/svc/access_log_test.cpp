#include "svc/access_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "svc/json.hpp"
#include "svc/server.hpp"

namespace mwc::svc {
namespace {

RequestRecord sample_record(double latency_ms) {
  RequestRecord record;
  record.trace_id = "lg-0007";
  record.id = "r7";
  record.peer = "tcp";
  record.policy = "MinTotalDistance";
  record.version = WireVersion::kV1;
  record.is_delta = false;
  record.ok = true;
  record.cached = true;
  record.latency_ms = latency_ms;
  record.stages.parse_ms = 0.01;
  record.stages.queue_ms = 0.02;
  record.stages.cache_ms = 0.03;
  record.stages.solve_ms = 0.0;
  record.stages.serialize_ms = 0.04;
  record.ts_ms = 1723111845123;
  return record;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AccessLog, RecordSerializesAllKeys) {
  const std::string line = to_access_jsonl(sample_record(0.08));
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const Json doc = Json::parse(line);
  EXPECT_EQ(doc.at("ts_ms").as_int(), 1723111845123);
  EXPECT_EQ(doc.at("trace_id").as_string(), "lg-0007");
  EXPECT_EQ(doc.at("id").as_string(), "r7");
  EXPECT_EQ(doc.at("peer").as_string(), "tcp");
  EXPECT_EQ(doc.at("v").as_string(), "mwc.svc.v1");
  EXPECT_EQ(doc.at("kind").as_string(), "full");
  EXPECT_EQ(doc.at("policy").as_string(), "MinTotalDistance");
  EXPECT_EQ(doc.at("outcome").as_string(), "ok");
  EXPECT_TRUE(doc.at("cached").as_bool());
  EXPECT_FALSE(doc.at("derived").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("latency_ms").as_double(), 0.08);
  const Json& t = doc.at("t");
  EXPECT_DOUBLE_EQ(t.at("parse_ms").as_double(), 0.01);
  EXPECT_DOUBLE_EQ(t.at("queue_ms").as_double(), 0.02);
  EXPECT_DOUBLE_EQ(t.at("cache_ms").as_double(), 0.03);
  EXPECT_DOUBLE_EQ(t.at("solve_ms").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(t.at("serialize_ms").as_double(), 0.04);
}

TEST(AccessLog, ErrorRecordsCarryStructuredOutcome) {
  RequestRecord record = sample_record(5.0);
  record.ok = false;
  record.error = ErrorCode::kQueueFull;
  const Json doc = Json::parse(to_access_jsonl(record));
  EXPECT_EQ(doc.at("outcome").as_string(), "queue_full");
}

TEST(AccessLog, DirectSerializerMatchesJsonTreeForm) {
  // to_access_jsonl appends straight into the line for speed; it must
  // stay byte-identical to the Json-tree form tracez serves, including
  // string escaping and %.17g number rendering.
  RequestRecord record = sample_record(0.123456789012345);
  record.trace_id = "quote\"backslash\\ctrl\x01";
  record.id = "";
  record.is_delta = true;
  record.derived = true;
  record.stages.solve_ms = 17.25;
  for (const RequestRecord& r :
       {record, sample_record(0.08), sample_record(1e-9)}) {
    EXPECT_EQ(to_access_jsonl(r), to_json(r).dump() + "\n");
  }
}

TEST(AccessLog, WritesOneLinePerRecordAndCounts) {
  const std::string path = ::testing::TempDir() + "/mwc_access_log_test.jsonl";
  std::remove(path.c_str());
  {
    AccessLog log(path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.path(), path);
    EXPECT_DOUBLE_EQ(log.slow_ms(), 0.0);
    for (int i = 0; i < 3; ++i)
      EXPECT_TRUE(log.write(sample_record(0.1 * (i + 1))));
    // Logging is asynchronous; flush() drains the logger thread and
    // puts every accepted line on disk while the log is still open.
    log.flush();
    EXPECT_EQ(log.lines_written(), 3u);
    ASSERT_EQ(read_lines(path).size(), 3u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    const Json doc = Json::parse(line);  // every line parses standalone
    EXPECT_EQ(doc.at("id").as_string(), "r7");
  }
  std::remove(path.c_str());
}

TEST(AccessLog, SlowThresholdFiltersFastRequests) {
  const std::string path =
      ::testing::TempDir() + "/mwc_access_log_slow_test.jsonl";
  std::remove(path.c_str());
  {
    AccessLog log(path, 10.0);
    ASSERT_TRUE(log.ok());
    EXPECT_DOUBLE_EQ(log.slow_ms(), 10.0);
    EXPECT_FALSE(log.write(sample_record(0.5)));   // fast: dropped
    EXPECT_FALSE(log.write(sample_record(9.99)));  // still under
    EXPECT_TRUE(log.write(sample_record(10.0)));   // at threshold: kept
    EXPECT_TRUE(log.write(sample_record(250.0)));
    log.flush();
    EXPECT_EQ(log.lines_written(), 2u);
  }
  EXPECT_EQ(read_lines(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(AccessLog, UnopenablePathNeverThrows) {
  AccessLog log("/nonexistent-dir/access.jsonl");
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.write(sample_record(1.0)));
  EXPECT_EQ(log.lines_written(), 0u);
}

TEST(AccessLog, ServerWritesRecordsForCompletedRequests) {
  const std::string path =
      ::testing::TempDir() + "/mwc_access_log_server_test.jsonl";
  std::remove(path.c_str());
  AccessLog log(path);
  ASSERT_TRUE(log.ok());

  ServerOptions options;
  options.threads = 1;
  options.access_log = &log;
  Server server(options);
  Request request;
  request.id = "al1";
  request.trace_id = "al-trace-1";
  request.network.deployment.n = 12;
  request.network.deployment.q = 2;
  request.network.deployment.field_side = 100.0;
  request.network.seed = 5;
  request.horizon = 50.0;
  std::promise<Response> answered;
  ASSERT_TRUE(server.submit(
      std::move(request), [&](const Response& r) { answered.set_value(r); },
      "unit"));
  ASSERT_TRUE(answered.get_future().get().ok);
  server.shutdown();
  log.flush();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const Json doc = Json::parse(lines.front());
  EXPECT_EQ(doc.at("id").as_string(), "al1");
  EXPECT_EQ(doc.at("trace_id").as_string(), "al-trace-1");
  EXPECT_EQ(doc.at("peer").as_string(), "unit");
  EXPECT_EQ(doc.at("outcome").as_string(), "ok");
  EXPECT_GT(doc.at("ts_ms").as_int(), 0);
  EXPECT_GE(doc.at("latency_ms").as_double(), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mwc::svc
