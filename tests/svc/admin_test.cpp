#include "svc/admin.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>

#include "obs/obs.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {
namespace {

Request tiny_request(const std::string& id) {
  Request request;
  request.id = id;
  request.network.deployment.n = 12;
  request.network.deployment.q = 2;
  request.network.deployment.field_side = 100.0;
  request.network.seed = 5;
  request.horizon = 50.0;
  return request;
}

/// Serves `count` identical tiny instances through the default engine
/// handler so the server has live queue/cache/ring state to introspect.
void serve_some(Server& server, int count) {
  for (int i = 0; i < count; ++i) {
    std::promise<Response> answered;
    Request request = tiny_request("a" + std::to_string(i));
    request.trace_id = "admin-test-" + std::to_string(i);
    ASSERT_TRUE(server.submit(std::move(request), [&](const Response& r) {
      answered.set_value(r);
    }));
    ASSERT_TRUE(answered.get_future().get().ok);
  }
}

AdminInfo test_info() {
  AdminInfo info;
  info.build = "test-build";
  info.transport = "test";
  info.start_us = obs::now_us();
  info.metrics_out = "/tmp/met.json";
  return info;
}

Json handle(const AdminHandler& admin, const std::string& line) {
  std::string response;
  EXPECT_TRUE(admin.try_handle(line, &response));
  EXPECT_FALSE(response.empty());
  EXPECT_EQ(response.back(), '\n');
  return Json::parse(response);
}

TEST(Admin, NonAdminLinesFallThrough) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  const AdminHandler admin(server, test_info());

  std::string out = "untouched";
  // A scheduling request is not admin traffic.
  EXPECT_FALSE(admin.try_handle(
      R"({"id":"r1","network":{"preset":{"n":2,"q":1}},)"
      R"("cycles":{"values":[1,2]}})",
      &out));
  // "admin" as a VALUE is not an admin request either.
  EXPECT_FALSE(admin.try_handle(R"({"id":"x","policy":"admin"})", &out));
  // Malformed JSON mentioning admin falls through to the scheduling
  // parser, which owns the bad_request answer.
  EXPECT_FALSE(admin.try_handle(R"({"admin": oops)", &out));
  // Non-object documents too.
  EXPECT_FALSE(admin.try_handle(R"(["admin"])", &out));
  EXPECT_EQ(out, "untouched");
  server.shutdown();
}

TEST(Admin, StatuszReportsServerState) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 7;
  options.cache_capacity = 4;
  Server server(options);
  serve_some(server, 3);
  const AdminHandler admin(server, test_info());

  const Json doc = handle(admin, R"({"admin":"statusz","id":"s1"})");
  EXPECT_EQ(doc.at("v").as_string(), kAdminVersion);
  EXPECT_EQ(doc.at("id").as_string(), "s1");
  EXPECT_TRUE(doc.at("ok").as_bool());
  const Json& s = doc.at("statusz");
  EXPECT_EQ(s.at("build").as_string(), "test-build");
  EXPECT_EQ(s.at("transport").as_string(), "test");
  EXPECT_GE(s.at("uptime_s").as_double(), 0.0);
  EXPECT_EQ(s.at("queue").at("capacity").as_int(), 7);
  // The worker decrements in_flight after the response callback runs,
  // so the last request may still be winding down here.
  EXPECT_LE(s.at("queue").at("in_flight").as_int(), 1);
  EXPECT_GE(s.at("queue").at("in_flight").as_int(), 0);
  // Three identical requests: one miss, two hits.
  EXPECT_EQ(s.at("cache").at("size").as_int(), 1);
  EXPECT_EQ(s.at("cache").at("capacity").as_int(), 4);
  EXPECT_EQ(s.at("cache").at("hits").as_int(), 2);
  EXPECT_EQ(s.at("cache").at("misses").as_int(), 1);
  EXPECT_NEAR(s.at("cache").at("hit_rate").as_double(), 2.0 / 3.0, 1e-9);
  server.shutdown();
}

TEST(Admin, MetricsServesJsonAndOpenMetricsForms) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  serve_some(server, 1);
  const AdminHandler admin(server, test_info());

  const Json plain = handle(admin, R"({"admin":"metrics","id":"m1"})");
  ASSERT_TRUE(plain.at("ok").as_bool());
  // The embedded document is the global registry's mwc.metrics.v1 form.
  const Json& metrics = plain.at("metrics");
#if MWC_OBS_ENABLED
  EXPECT_NE(metrics.find("counters"), nullptr);
#else
  // Kill switch: the admin surface stays up, the snapshot is empty.
  EXPECT_TRUE(metrics.is_object());
#endif

  const Json om = handle(
      admin, R"({"admin":"metrics","id":"m2","format":"openmetrics"})");
  ASSERT_TRUE(om.at("ok").as_bool());
  const std::string& text = om.at("openmetrics").as_string();
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);

  const Json bad = handle(
      admin, R"({"admin":"metrics","id":"m3","format":"xml"})");
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "bad_request");
  server.shutdown();
}

TEST(Admin, TracezReturnsSlowestRequestsWithStageBreakdown) {
  ServerOptions options;
  options.threads = 1;
  options.recent_capacity = 8;
  Server server(options);
  serve_some(server, 5);
  const AdminHandler admin(server, test_info());

  const Json doc = handle(admin, R"({"admin":"tracez","id":"t1","limit":3})");
  ASSERT_TRUE(doc.at("ok").as_bool());
  const Json& t = doc.at("tracez");
  EXPECT_EQ(t.at("ring_capacity").as_int(), 8);
  EXPECT_EQ(t.at("count").as_int(), 3);
  const auto& slowest = t.at("slowest").items();
  ASSERT_EQ(slowest.size(), 3u);
  double previous = slowest.front().at("latency_ms").as_double();
  for (const Json& r : slowest) {
    const double latency = r.at("latency_ms").as_double();
    EXPECT_LE(latency, previous);  // sorted slowest-first
    previous = latency;
    EXPECT_EQ(r.at("trace_id").as_string().rfind("admin-test-", 0), 0u);
    EXPECT_EQ(r.at("kind").as_string(), "full");
    EXPECT_EQ(r.at("outcome").as_string(), "ok");
    // The full stage breakdown, serialize included, is visible here.
    EXPECT_NE(r.at("t").find("serialize_ms"), nullptr);
  }

  const Json bad = handle(admin, R"({"admin":"tracez","id":"t2","limit":0})");
  EXPECT_FALSE(bad.at("ok").as_bool());
  server.shutdown();
}

TEST(Admin, ConfigEchoesOptionsAndDaemonInfo) {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 5;
  options.cache_capacity = 3;
  options.recent_capacity = 11;
  Server server(options);
  const AdminHandler admin(server, test_info());

  const Json doc = handle(admin, R"({"admin":"config","id":"c1"})");
  ASSERT_TRUE(doc.at("ok").as_bool());
  const Json& c = doc.at("config");
  EXPECT_EQ(c.at("queue_capacity").as_int(), 5);
  EXPECT_EQ(c.at("threads").as_int(), 2);
  EXPECT_EQ(c.at("cache_capacity").as_int(), 3);
  EXPECT_EQ(c.at("recent_capacity").as_int(), 11);
  EXPECT_EQ(c.at("metrics_out").as_string(), "/tmp/met.json");
  EXPECT_EQ(c.at("access_log").as_string(), "");
  server.shutdown();
}

TEST(Admin, UnknownCommandIsStructuredError) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  const AdminHandler admin(server, test_info());

  const Json doc = handle(admin, R"({"admin":"reboot","id":"u1"})");
  EXPECT_EQ(doc.at("v").as_string(), kAdminVersion);
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").as_string(), "bad_request");
  EXPECT_NE(doc.at("message").as_string().find("statusz"),
            std::string::npos);

  // Non-string command values are also structured errors, not crashes.
  const Json numeric = handle(admin, R"({"admin":42,"id":"u2"})");
  EXPECT_FALSE(numeric.at("ok").as_bool());
  server.shutdown();
}

}  // namespace
}  // namespace mwc::svc
