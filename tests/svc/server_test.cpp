#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mwc::svc {
namespace {

Request tiny_request(const std::string& id) {
  Request request;
  request.id = id;
  request.network.deployment.n = 12;
  request.network.deployment.q = 2;
  request.network.deployment.field_side = 100.0;
  request.network.seed = 5;
  request.horizon = 50.0;
  return request;
}

Response ok_response(const std::string& id) {
  Response response;
  response.id = id;
  response.ok = true;
  return response;
}

/// Handler whose requests block until release() — lets tests hold the
/// queue at a known occupancy.
class Gate {
 public:
  Handler handler() {
    return [this](const Request& request) {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
      return ok_response(request.id);
    };
  }

  void wait_entered(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  std::size_t entered_ = 0;
  bool released_ = false;
};

TEST(Server, FullQueueRejectsSynchronouslyWithStructuredError) {
  Gate gate;
  ServerOptions options;
  options.queue_capacity = 2;
  options.threads = 1;
  options.handler = gate.handler();
  Server server(options);

  std::mutex mutex;
  std::vector<Response> accepted_responses;
  const auto collect = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mutex);
    accepted_responses.push_back(r);
  };

  // Fill the queue: one solving (blocked in the gate), one waiting.
  ASSERT_TRUE(server.submit(tiny_request("a"), collect));
  ASSERT_TRUE(server.submit(tiny_request("b"), collect));
  gate.wait_entered(1);
  EXPECT_EQ(server.in_flight(), 2u);

  // Third submit must be rejected immediately — structured error, no
  // blocking, no crash.
  Response rejection;
  bool callback_ran = false;
  const bool admitted =
      server.submit(tiny_request("c"), [&](const Response& r) {
        rejection = r;
        callback_ran = true;
      });
  EXPECT_FALSE(admitted);
  ASSERT_TRUE(callback_ran);  // synchronous
  EXPECT_FALSE(rejection.ok);
  EXPECT_EQ(rejection.error, ErrorCode::kQueueFull);
  EXPECT_EQ(rejection.id, "c");
  EXPECT_NE(rejection.message.find("capacity 2"), std::string::npos);
  EXPECT_EQ(server.metrics().snapshot().counters.at(
                "svc.rejected.queue_full"),
            1u);

  gate.release();
  server.shutdown();
  EXPECT_EQ(accepted_responses.size(), 2u);
  for (const auto& r : accepted_responses) EXPECT_TRUE(r.ok);
}

TEST(Server, ShutdownDrainsAcceptedWorkThenRejects) {
  Gate gate;
  ServerOptions options;
  options.queue_capacity = 8;
  options.threads = 1;
  options.handler = gate.handler();
  Server server(options);

  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.submit(tiny_request("d" + std::to_string(i)),
                              [&](const Response& r) {
                                EXPECT_TRUE(r.ok);
                                ++answered;
                              }));
  }
  gate.wait_entered(1);

  // Shut down from another thread while work is still gated; it must
  // block until all four accepted requests are answered.
  auto drained = std::async(std::launch::async, [&] { server.shutdown(); });
  EXPECT_EQ(drained.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  gate.release();
  drained.get();
  EXPECT_EQ(answered.load(), 4);
  EXPECT_EQ(server.in_flight(), 0u);

  // Post-shutdown submits are rejected synchronously.
  Response rejection;
  EXPECT_FALSE(server.submit(tiny_request("late"),
                             [&](const Response& r) { rejection = r; }));
  EXPECT_EQ(rejection.error, ErrorCode::kShuttingDown);
  const auto counters = server.metrics().snapshot().counters;
  EXPECT_EQ(counters.at("svc.requests_accepted"), 4u);
  EXPECT_EQ(counters.at("svc.completed"), 4u);
  EXPECT_EQ(counters.at("svc.rejected.shutdown"), 1u);
}

TEST(Server, ExpiredDeadlineSkipsSolving) {
  Gate gate;
  ServerOptions options;
  options.queue_capacity = 4;
  options.threads = 1;
  options.handler = gate.handler();
  Server server(options);

  // First request occupies the only worker...
  server.submit(tiny_request("blocker"), [](const Response&) {});
  gate.wait_entered(1);

  // ...so this one waits in the queue past its 1 ms deadline.
  Request hurried = tiny_request("hurried");
  hurried.deadline_ms = 1.0;
  std::promise<Response> answered;
  ASSERT_TRUE(server.submit(hurried, [&](const Response& r) {
    answered.set_value(r);
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();
  const Response response = answered.get_future().get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kDeadlineExceeded);
  EXPECT_GE(response.latency_ms, 1.0);
  server.shutdown();
  EXPECT_EQ(server.metrics().snapshot().counters.at("svc.deadline_expired"),
            1u);
}

TEST(Server, SubmitLineParsesAndReportsBadLines) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Server server(options);

  Response bad;
  EXPECT_FALSE(server.submit_line("{not json", [&](const Response& r) {
    bad = r;
  }));
  EXPECT_EQ(bad.error, ErrorCode::kBadRequest);

  std::promise<Response> answered;
  EXPECT_TRUE(server.submit_line(
      R"({"v":"mwc.svc.v1","id":"L1","network":{"preset":{"n":5,"q":1}},)"
      R"("cycles":{"values":[1,1,1,1,1]}})",
      [&](const Response& r) { answered.set_value(r); }));
  EXPECT_TRUE(answered.get_future().get().ok);
  server.shutdown();
}

TEST(Server, UnknownVersionLineGetsStructuredError) {
  ServerOptions options;
  options.threads = 1;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Server server(options);

  Response rejected;
  EXPECT_FALSE(server.submit_line(
      R"({"v":"mwc.svc.v99","id":"x","network":{"preset":{"n":1,"q":1}},)"
      R"("cycles":{"values":[1]}})",
      [&](const Response& r) { rejected = r; }));
  EXPECT_EQ(rejected.error, ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(rejected.id, "");
  server.shutdown();
}

TEST(Server, DeltaRequestsFlowThroughSubmitAndSubmitLine) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 8;
  options.cache_capacity = 8;
  Server server(options);

  std::promise<Response> solved;
  ASSERT_TRUE(server.submit(tiny_request("base"), [&](const Response& r) {
    solved.set_value(r);
  }));
  const Response base = solved.get_future().get();
  ASSERT_TRUE(base.ok) << base.message;

  // Typed delta submit.
  std::promise<Response> derived;
  ASSERT_TRUE(server.submit(DeltaBuilder("d1", base.plan->fingerprint)
                                .move_sensor(2, {10.0, 10.0})
                                .build(),
                            [&](const Response& r) {
                              derived.set_value(r);
                            }));
  const Response typed = derived.get_future().get();
  ASSERT_TRUE(typed.ok) << typed.message;
  EXPECT_TRUE(typed.derived);
  EXPECT_EQ(typed.base_fingerprint, base.plan->fingerprint);
  EXPECT_EQ(typed.version, WireVersion::kV2);

  // Same patch over the wire form: a derived-plan cache hit.
  std::promise<Response> again;
  ASSERT_TRUE(server.submit_line(DeltaBuilder("d2", base.plan->fingerprint)
                                     .move_sensor(2, {10.0, 10.0})
                                     .to_json_line(),
                                 [&](const Response& r) {
                                   again.set_value(r);
                                 }));
  const Response wire = again.get_future().get();
  ASSERT_TRUE(wire.ok) << wire.message;
  EXPECT_TRUE(wire.cached);
  EXPECT_EQ(wire.plan->fingerprint, typed.plan->fingerprint);

  // Unknown base comes back structured, with the fingerprint echoed.
  std::promise<Response> orphan;
  ASSERT_TRUE(server.submit(
      DeltaBuilder("d3", 0x1234).remove_sensor(0).build(),
      [&](const Response& r) { orphan.set_value(r); }));
  const Response unknown = orphan.get_future().get();
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error, ErrorCode::kUnknownBase);
  EXPECT_EQ(unknown.base_fingerprint, 0x1234u);
  server.shutdown();
}

TEST(Server, LatencyHistogramObservesEveryCompletion) {
  ServerOptions options;
  options.threads = 2;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Server server(options);
  std::atomic<int> answered{0};
  for (int i = 0; i < 10; ++i)
    server.submit(tiny_request("h" + std::to_string(i)),
                  [&](const Response&) { ++answered; });
  server.shutdown();
  EXPECT_EQ(answered.load(), 10);
  const auto snapshot = server.metrics().snapshot();
  const auto& hist = snapshot.histograms.at("svc.request_latency_ms");
  EXPECT_EQ(hist.count, 10u);
  EXPECT_GE(hist.quantile(0.99), hist.quantile(0.5));
}

TEST(Server, V1EchoesSuppliedTraceIdAndTimings) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);

  // Client-supplied trace id: echoed verbatim with stage timings.
  std::promise<Response> traced;
  Request with_trace = tiny_request("t1");
  with_trace.trace_id = "client-abc";
  ASSERT_TRUE(server.submit(std::move(with_trace), [&](const Response& r) {
    traced.set_value(r);
  }));
  const Response echoed = traced.get_future().get();
  ASSERT_TRUE(echoed.ok) << echoed.message;
  EXPECT_EQ(echoed.trace_id, "client-abc");
  EXPECT_TRUE(echoed.has_timings);
  EXPECT_GT(echoed.stages.solve_ms, 0.0);

  // No client trace id on v1: the response omits it (byte-stability).
  std::promise<Response> plain;
  ASSERT_TRUE(server.submit(tiny_request("t2"), [&](const Response& r) {
    plain.set_value(r);
  }));
  const Response untraced = plain.get_future().get();
  ASSERT_TRUE(untraced.ok);
  EXPECT_TRUE(untraced.trace_id.empty());
  EXPECT_FALSE(untraced.has_timings);
  server.shutdown();
}

TEST(Server, V2ResponsesAlwaysCarryAGeneratedTraceId) {
  ServerOptions options;
  options.threads = 1;
  options.cache_capacity = 4;
  Server server(options);

  std::promise<Response> solved;
  ASSERT_TRUE(server.submit(tiny_request("base"), [&](const Response& r) {
    solved.set_value(r);
  }));
  const Response base = solved.get_future().get();
  ASSERT_TRUE(base.ok) << base.message;

  // v2 delta without a client trace id: the server generates a 16-hex
  // id and echoes it.
  std::promise<Response> derived;
  ASSERT_TRUE(server.submit(DeltaBuilder("d1", base.plan->fingerprint)
                                .move_sensor(1, {5.0, 5.0})
                                .build(),
                            [&](const Response& r) {
                              derived.set_value(r);
                            }));
  const Response v2 = derived.get_future().get();
  ASSERT_TRUE(v2.ok) << v2.message;
  ASSERT_EQ(v2.trace_id.size(), 16u);
  EXPECT_EQ(v2.trace_id.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_TRUE(v2.has_timings);
  server.shutdown();
}

TEST(Server, RecentRequestRingKeepsNewestUpToCapacity) {
  ServerOptions options;
  options.threads = 1;
  options.recent_capacity = 4;
  options.handler = [](const Request& request) {
    return ok_response(request.id);
  };
  Server server(options);
  for (int i = 0; i < 7; ++i) {
    std::promise<Response> answered;
    ASSERT_TRUE(server.submit(tiny_request("r" + std::to_string(i)),
                              [&](const Response& r) {
                                answered.set_value(r);
                              }));
    answered.get_future().get();
  }
  server.shutdown();
  const auto recent = server.recent_requests();
  ASSERT_EQ(recent.size(), 4u);
  // The four newest ids survive, the first three were overwritten.
  std::size_t newest = 0;
  for (const auto& record : recent) {
    EXPECT_NE(record.id, "r0");
    EXPECT_NE(record.id, "r1");
    EXPECT_NE(record.id, "r2");
    if (record.id == "r6") ++newest;
  }
  EXPECT_EQ(newest, 1u);
}

TEST(Server, EndToEndSolvesThroughDefaultEngineHandler) {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 16;
  options.cache_capacity = 8;
  Server server(options);

  std::vector<Response> responses;
  for (int i = 0; i < 3; ++i) {
    // Identical instances, submitted one at a time so the first solve
    // has deterministically populated the cache before the next probe.
    std::promise<Response> answered;
    ASSERT_TRUE(server.submit(tiny_request("e" + std::to_string(i)),
                              [&](const Response& r) {
                                answered.set_value(r);
                              }));
    responses.push_back(answered.get_future().get());
  }
  server.shutdown();
  ASSERT_EQ(responses.size(), 3u);
  std::size_t cached = 0;
  const Plan* plan = nullptr;
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok) << r.message;
    ASSERT_NE(r.plan, nullptr);
    if (plan == nullptr) plan = r.plan.get();
    EXPECT_DOUBLE_EQ(r.plan->total_distance, plan->total_distance);
    if (r.cached) ++cached;
  }
  EXPECT_EQ(server.cache().misses(), 1u);
  EXPECT_EQ(cached, 2u);
  EXPECT_EQ(server.cache().hits(), 2u);
}

}  // namespace
}  // namespace mwc::svc
