#include "svc/wire.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "svc/json.hpp"

namespace mwc::svc {
namespace {

constexpr const char* kPresetRequest =
    R"({"v":"mwc.svc.v1","id":"r1","policy":"Greedy",)"
    R"("network":{"preset":{"n":40,"q":3,"field":500,"seed":9}},)"
    R"("cycles":{"model":{"dist":"random","tau_min":2,"tau_max":20,)"
    R"("sigma":1,"seed":4}},"horizon":250,"slot_length":10,)"
    R"("improve":true,"deadline_ms":750})";

TEST(Wire, ParsesPresetRequest) {
  const Request r = parse_request(kPresetRequest);
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.policy, "Greedy");
  EXPECT_FALSE(r.network.inline_points);
  EXPECT_EQ(r.network.deployment.n, 40u);
  EXPECT_EQ(r.network.deployment.q, 3u);
  EXPECT_DOUBLE_EQ(r.network.deployment.field_side, 500.0);
  EXPECT_EQ(r.network.seed, 9u);
  EXPECT_FALSE(r.cycles.inline_values);
  EXPECT_EQ(r.cycles.model.distribution, wsn::CycleDistribution::kRandom);
  EXPECT_DOUBLE_EQ(r.cycles.model.tau_min, 2.0);
  EXPECT_DOUBLE_EQ(r.cycles.model.tau_max, 20.0);
  EXPECT_EQ(r.cycles.seed, 4u);
  EXPECT_DOUBLE_EQ(r.horizon, 250.0);
  EXPECT_DOUBLE_EQ(r.slot_length, 10.0);
  EXPECT_TRUE(r.improve);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 750.0);
}

TEST(Wire, ParsesInlineRequestAndDefaults) {
  const Request r = parse_request(
      R"({"v":"mwc.svc.v1","id":"i1",)"
      R"("network":{"sensors":[[0,0],[10,0],[0,10]],)"
      R"("depots":[[5,5]],"base":[1,1]},)"
      R"("cycles":{"values":[3,4,5]}})");
  EXPECT_EQ(r.policy, "MinTotalDistance");  // default
  ASSERT_TRUE(r.network.inline_points);
  ASSERT_EQ(r.network.sensors.size(), 3u);
  EXPECT_DOUBLE_EQ(r.network.sensors[1].x, 10.0);
  ASSERT_EQ(r.network.depots.size(), 1u);
  EXPECT_DOUBLE_EQ(r.network.base_station.y, 1.0);
  ASSERT_TRUE(r.cycles.inline_values);
  EXPECT_EQ(r.cycles.values, (std::vector<double>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(r.horizon, 1000.0);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 0.0);
  EXPECT_FALSE(r.improve);
}

TEST(Wire, RequestRoundTripsThroughToJson) {
  const Request a = parse_request(kPresetRequest);
  const Request b = parse_request(to_json(a));
  EXPECT_EQ(to_json(a), to_json(b));
}

TEST(Wire, RejectsBadRequests) {
  // Version missing / wrong.
  EXPECT_THROW(parse_request(R"({"id":"x"})"), WireError);
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v2","id":"x","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[1]}})"),
      WireError);
  // Malformed JSON.
  EXPECT_THROW(parse_request("{"), WireError);
  // Empty id.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[1]}})"),
      WireError);
  // Inline cycle count mismatching the preset sensor count.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":3,"q":1}},)"
          R"("cycles":{"values":[1,2]}})"),
      WireError);
  // Non-positive cycles.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[0]}})"),
      WireError);
  // Missing network form.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{},"cycles":{"values":[1]}})"),
      WireError);
  // Negative deadline.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[1]},"deadline_ms":-1})"),
      WireError);
}

TEST(Wire, ErrorResponseSerializesStructuredError) {
  const Response r =
      error_response("r9", ErrorCode::kQueueFull, "queue full (capacity 2)");
  const Json doc = Json::parse(to_jsonl(r));
  EXPECT_EQ(doc.at("v").as_string(), kWireVersion);
  EXPECT_EQ(doc.at("id").as_string(), "r9");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").as_string(), "queue_full");
  EXPECT_EQ(doc.at("message").as_string(), "queue full (capacity 2)");
  EXPECT_EQ(doc.find("plan"), nullptr);
}

TEST(Wire, OkResponseCarriesPlan) {
  auto plan = std::make_shared<Plan>();
  plan->first_round_tours.push_back(PlanTour{1, {4, 2, 7}, 123.5});
  plan->first_round_length = 123.5;
  plan->total_distance = 4567.0;
  plan->num_dispatches = 9;
  plan->fingerprint = 0xdeadbeefULL;
  Response r;
  r.id = "ok1";
  r.ok = true;
  r.cached = true;
  r.plan = plan;

  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.back(), '\n');
  const Json doc = Json::parse(line);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("cached").as_bool());
  const Json& pj = doc.at("plan");
  ASSERT_EQ(pj.at("first_round_tours").size(), 1u);
  const Json& tour = pj.at("first_round_tours").items()[0];
  EXPECT_EQ(tour.at("depot").as_int(), 1);
  ASSERT_EQ(tour.at("sensors").size(), 3u);
  EXPECT_EQ(tour.at("sensors").items()[2].as_int(), 7);
  EXPECT_DOUBLE_EQ(pj.at("total_distance").as_double(), 4567.0);
  EXPECT_EQ(pj.at("fingerprint").as_string(), "00000000deadbeef");
}

TEST(Wire, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownPolicy),
               "unknown_policy");
  EXPECT_STREQ(error_code_name(ErrorCode::kQueueFull), "queue_full");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

}  // namespace
}  // namespace mwc::svc
