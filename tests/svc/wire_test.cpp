#include "svc/wire.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "svc/json.hpp"

namespace mwc::svc {
namespace {

constexpr const char* kPresetRequest =
    R"({"v":"mwc.svc.v1","id":"r1","policy":"Greedy",)"
    R"("network":{"preset":{"n":40,"q":3,"field":500,"seed":9}},)"
    R"("cycles":{"model":{"dist":"random","tau_min":2,"tau_max":20,)"
    R"("sigma":1,"seed":4}},"horizon":250,"slot_length":10,)"
    R"("improve":true,"deadline_ms":750})";

TEST(Wire, ParsesPresetRequest) {
  const Request r = parse_request(kPresetRequest);
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.policy, "Greedy");
  EXPECT_FALSE(r.network.inline_points);
  EXPECT_EQ(r.network.deployment.n, 40u);
  EXPECT_EQ(r.network.deployment.q, 3u);
  EXPECT_DOUBLE_EQ(r.network.deployment.field_side, 500.0);
  EXPECT_EQ(r.network.seed, 9u);
  EXPECT_FALSE(r.cycles.inline_values);
  EXPECT_EQ(r.cycles.model.distribution, wsn::CycleDistribution::kRandom);
  EXPECT_DOUBLE_EQ(r.cycles.model.tau_min, 2.0);
  EXPECT_DOUBLE_EQ(r.cycles.model.tau_max, 20.0);
  EXPECT_EQ(r.cycles.seed, 4u);
  EXPECT_DOUBLE_EQ(r.horizon, 250.0);
  EXPECT_DOUBLE_EQ(r.slot_length, 10.0);
  EXPECT_TRUE(r.improve);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 750.0);
}

TEST(Wire, ParsesInlineRequestAndDefaults) {
  const Request r = parse_request(
      R"({"v":"mwc.svc.v1","id":"i1",)"
      R"("network":{"sensors":[[0,0],[10,0],[0,10]],)"
      R"("depots":[[5,5]],"base":[1,1]},)"
      R"("cycles":{"values":[3,4,5]}})");
  EXPECT_EQ(r.policy, "MinTotalDistance");  // default
  ASSERT_TRUE(r.network.inline_points);
  ASSERT_EQ(r.network.sensors.size(), 3u);
  EXPECT_DOUBLE_EQ(r.network.sensors[1].x, 10.0);
  ASSERT_EQ(r.network.depots.size(), 1u);
  EXPECT_DOUBLE_EQ(r.network.base_station.y, 1.0);
  ASSERT_TRUE(r.cycles.inline_values);
  EXPECT_EQ(r.cycles.values, (std::vector<double>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(r.horizon, 1000.0);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 0.0);
  EXPECT_FALSE(r.improve);
}

TEST(Wire, RequestRoundTripsThroughToJson) {
  const Request a = parse_request(kPresetRequest);
  const Request b = parse_request(to_json(a));
  EXPECT_EQ(to_json(a), to_json(b));
}

TEST(Wire, MissingVersionDefaultsToV1) {
  // Pre-versioning clients send no "v"; they must keep working.
  const Request r = parse_request(
      R"({"id":"x","network":{"preset":{"n":1,"q":1}},)"
      R"("cycles":{"values":[1]}})");
  EXPECT_EQ(r.version, WireVersion::kV1);
  // ... and the canonical serialization spells the default explicitly.
  EXPECT_NE(to_json(r).find("\"v\":\"mwc.svc.v1\""), std::string::npos);
}

TEST(Wire, V2FullRequestsParse) {
  const Request r = parse_request(
      R"({"v":"mwc.svc.v2","id":"x","network":{"preset":{"n":1,"q":1}},)"
      R"("cycles":{"values":[1]}})");
  EXPECT_EQ(r.version, WireVersion::kV2);
  EXPECT_NE(to_json(r).find("\"v\":\"mwc.svc.v2\""), std::string::npos);
}

TEST(Wire, UnknownVersionIsStructured) {
  const char* line =
      R"({"v":"mwc.svc.v99","id":"x","network":{"preset":{"n":1,"q":1}},)"
      R"("cycles":{"values":[1]}})";
  EXPECT_THROW(parse_request(line), UnsupportedVersionError);
  EXPECT_THROW(parse_any_request(line), UnsupportedVersionError);
}

TEST(Wire, RejectsBadRequests) {
  // Missing network/cycles.
  EXPECT_THROW(parse_request(R"({"id":"x"})"), WireError);
  // Malformed JSON.
  EXPECT_THROW(parse_request("{"), WireError);
  // Empty id.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[1]}})"),
      WireError);
  // Inline cycle count mismatching the preset sensor count.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":3,"q":1}},)"
          R"("cycles":{"values":[1,2]}})"),
      WireError);
  // Non-positive cycles.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[0]}})"),
      WireError);
  // Missing network form.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{},"cycles":{"values":[1]}})"),
      WireError);
  // Negative deadline.
  EXPECT_THROW(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"x","network":{"preset":{"n":1,"q":1}},)"
          R"("cycles":{"values":[1]},"deadline_ms":-1})"),
      WireError);
}

TEST(Wire, ErrorResponseSerializesStructuredError) {
  const Response r =
      error_response("r9", ErrorCode::kQueueFull, "queue full (capacity 2)");
  const Json doc = Json::parse(to_jsonl(r));
  EXPECT_EQ(doc.at("v").as_string(), kWireVersion);
  EXPECT_EQ(doc.at("id").as_string(), "r9");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").as_string(), "queue_full");
  EXPECT_EQ(doc.at("message").as_string(), "queue full (capacity 2)");
  EXPECT_EQ(doc.find("plan"), nullptr);
}

TEST(Wire, OkResponseCarriesPlan) {
  auto plan = std::make_shared<Plan>();
  plan->first_round_tours.push_back(PlanTour{1, {4, 2, 7}, 123.5});
  plan->first_round_length = 123.5;
  plan->total_distance = 4567.0;
  plan->num_dispatches = 9;
  plan->fingerprint = 0xdeadbeefULL;
  Response r;
  r.id = "ok1";
  r.ok = true;
  r.cached = true;
  r.plan = plan;

  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.back(), '\n');
  const Json doc = Json::parse(line);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("cached").as_bool());
  const Json& pj = doc.at("plan");
  ASSERT_EQ(pj.at("first_round_tours").size(), 1u);
  const Json& tour = pj.at("first_round_tours").items()[0];
  EXPECT_EQ(tour.at("depot").as_int(), 1);
  ASSERT_EQ(tour.at("sensors").size(), 3u);
  EXPECT_EQ(tour.at("sensors").items()[2].as_int(), 7);
  EXPECT_DOUBLE_EQ(pj.at("total_distance").as_double(), 4567.0);
  EXPECT_EQ(pj.at("fingerprint").as_string(), "00000000deadbeef");
}

TEST(Wire, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownPolicy),
               "unknown_policy");
  EXPECT_STREQ(error_code_name(ErrorCode::kQueueFull), "queue_full");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnsupportedVersion),
               "unsupported_version");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownBase), "unknown_base");
}

// v1 responses must stay byte-identical across the v2 redesign; this pins
// the exact serialization of a structured error (see also the pipeline
// goldens in golden_v1_test.cpp).
TEST(Wire, V1ErrorResponseBytesArePinned) {
  const Response r = error_response(
      "", ErrorCode::kBadRequest, "json: unterminated string at offset 10");
  EXPECT_EQ(to_jsonl(r),
            R"({"v":"mwc.svc.v1","id":"","ok":false,"error":"bad_request",)"
            R"("message":"json: unterminated string at offset 10",)"
            R"("cached":false,"latency_ms":0})"
            "\n");
}

TEST(Wire, TraceIdParsesOnFullAndDeltaRequests) {
  const Request full = parse_request(
      R"({"id":"r1","trace_id":"abc-123","network":{"preset":{"n":2,"q":1}},)"
      R"("cycles":{"values":[1,2]}})");
  EXPECT_EQ(full.trace_id, "abc-123");

  const ParsedRequest delta = parse_any_request(
      R"({"v":"mwc.svc.v2","id":"d1","trace_id":"abc-124",)"
      R"("base":"0c0f1095d4693a41",)"
      R"("patch":[{"op":"charger_down","charger":0}]})");
  ASSERT_TRUE(delta.is_delta);
  EXPECT_EQ(delta.delta.trace_id, "abc-124");

  // Absent trace_id stays empty (server generates one).
  const Request plain = parse_request(
      R"({"id":"r2","network":{"preset":{"n":2,"q":1}},)"
      R"("cycles":{"values":[1,2]}})");
  EXPECT_TRUE(plain.trace_id.empty());
}

TEST(Wire, TraceIdRoundTripsThroughBuilders) {
  RequestBuilder builder("r1");
  builder.policy("Greedy").preset(4, 1, 100.0, 3).cycle_values({1, 2, 3, 4});
  builder.trace_id("lg-0007");
  const Request parsed = parse_request(builder.to_json_line());
  EXPECT_EQ(parsed.trace_id, "lg-0007");

  DeltaBuilder delta("d1", 0x0c0f1095d4693a41ull);
  delta.move_sensor(0, {1.0, 2.0}).trace_id("lg-0008");
  const ParsedRequest dparsed = parse_any_request(delta.to_json_line());
  ASSERT_TRUE(dparsed.is_delta);
  EXPECT_EQ(dparsed.delta.trace_id, "lg-0008");
}

TEST(Wire, OversizedTraceIdIsRejected) {
  const std::string long_id(kMaxTraceIdLength + 1, 'x');
  EXPECT_THROW(parse_request(R"({"id":"r1","trace_id":")" + long_id +
                             R"(","network":{"preset":{"n":2,"q":1}},)" +
                             R"("cycles":{"values":[1,2]}})"),
               WireError);
  const std::string max_id(kMaxTraceIdLength, 'x');
  EXPECT_EQ(parse_request(R"({"id":"r1","trace_id":")" + max_id +
                          R"(","network":{"preset":{"n":2,"q":1}},)" +
                          R"("cycles":{"values":[1,2]}})")
                .trace_id,
            max_id);
}

TEST(Wire, ResponseEchoesTraceIdAndStageTimingsWhenSet) {
  Response r = error_response("r9", ErrorCode::kQueueFull, "queue full");
  r.trace_id = "abc-999";
  r.stages.parse_ms = 0.25;
  r.stages.queue_ms = 1.5;
  r.stages.cache_ms = 0.0;
  r.stages.solve_ms = 3.0;
  r.has_timings = true;
  const std::string line = to_jsonl(r);
  const Json doc = Json::parse(line);
  EXPECT_EQ(doc.at("trace_id").as_string(), "abc-999");
  const Json& t = doc.at("t");
  EXPECT_DOUBLE_EQ(t.at("parse_ms").as_double(), 0.25);
  EXPECT_DOUBLE_EQ(t.at("queue_ms").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(t.at("cache_ms").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(t.at("solve_ms").as_double(), 3.0);
  // serialize_ms is not part of the wire echo (it is measured around the
  // write itself); it lives in the access log and tracez instead.
  EXPECT_EQ(t.find("serialize_ms"), nullptr);
}

TEST(Wire, ResponseWithoutTraceIdOmitsTraceAndTimingKeys) {
  const Response r = error_response("r9", ErrorCode::kQueueFull, "full");
  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.find("trace_id"), std::string::npos);
  EXPECT_EQ(line.find("\"t\":"), std::string::npos);
}

TEST(Wire, ParseAnyRequestDispatchesOnBaseKey) {
  // A v2 line WITHOUT "base" is still a full request.
  const ParsedRequest full = parse_any_request(
      R"({"v":"mwc.svc.v2","id":"f1","network":{"preset":{"n":2,"q":1}},)"
      R"("cycles":{"values":[1,2]}})");
  EXPECT_FALSE(full.is_delta);
  EXPECT_EQ(full.full.version, WireVersion::kV2);

  const ParsedRequest delta = parse_any_request(
      R"({"v":"mwc.svc.v2","id":"d1","base":"0c0f1095d4693a41",)"
      R"("patch":[{"op":"move_sensor","sensor":3,"pos":[120.5,80]},)"
      R"({"op":"add_sensor","pos":[40,60],"tau":5},)"
      R"({"op":"remove_sensor","sensor":7},)"
      R"({"op":"update_cycles","sensor":1,"tau":9.5},)"
      R"({"op":"charger_down","charger":2},)"
      R"({"op":"charger_up","charger":2}],"deadline_ms":250})");
  ASSERT_TRUE(delta.is_delta);
  const DeltaRequest& d = delta.delta;
  EXPECT_EQ(d.id, "d1");
  EXPECT_EQ(d.base_fingerprint, 0x0c0f1095d4693a41ULL);
  ASSERT_EQ(d.patch.size(), 6u);
  EXPECT_EQ(d.patch[0].kind, PatchOpKind::kMoveSensor);
  EXPECT_EQ(d.patch[0].target, 3u);
  EXPECT_DOUBLE_EQ(d.patch[0].pos.x, 120.5);
  EXPECT_EQ(d.patch[1].kind, PatchOpKind::kAddSensor);
  EXPECT_DOUBLE_EQ(d.patch[1].tau, 5.0);
  EXPECT_EQ(d.patch[2].kind, PatchOpKind::kRemoveSensor);
  EXPECT_EQ(d.patch[2].target, 7u);
  EXPECT_EQ(d.patch[3].kind, PatchOpKind::kUpdateCycles);
  EXPECT_DOUBLE_EQ(d.patch[3].tau, 9.5);
  EXPECT_EQ(d.patch[4].kind, PatchOpKind::kChargerDown);
  EXPECT_EQ(d.patch[5].kind, PatchOpKind::kChargerUp);
  EXPECT_DOUBLE_EQ(d.deadline_ms, 250.0);
}

TEST(Wire, DeltaRequestRoundTripsThroughToJson) {
  const DeltaRequest a = DeltaBuilder("d2", 0xdeadbeef01020304ULL)
                             .move_sensor(3, {120.5, 80.0})
                             .add_sensor({40.0, 60.0}, 5.0)
                             .remove_sensor(9)
                             .update_cycles(1, 2.25)
                             .charger_down(0)
                             .deadline_ms(125.0)
                             .build();
  const ParsedRequest parsed = parse_any_request(to_json(a));
  ASSERT_TRUE(parsed.is_delta);
  EXPECT_EQ(to_json(parsed.delta), to_json(a));
  EXPECT_EQ(parsed.delta.base_fingerprint, a.base_fingerprint);
  ASSERT_EQ(parsed.delta.patch.size(), 5u);
  EXPECT_EQ(parsed.delta.patch[2].kind, PatchOpKind::kRemoveSensor);
}

TEST(Wire, RejectsBadDeltaRequests) {
  // Empty patch.
  EXPECT_THROW(
      parse_any_request(
          R"({"v":"mwc.svc.v2","id":"d","base":"ab","patch":[]})"),
      WireError);
  // Bad fingerprint spelling.
  EXPECT_THROW(parse_any_request(
                   R"({"v":"mwc.svc.v2","id":"d","base":"xyz",)"
                   R"("patch":[{"op":"remove_sensor","sensor":0}]})"),
               WireError);
  // Unknown op.
  EXPECT_THROW(parse_any_request(
                   R"({"v":"mwc.svc.v2","id":"d","base":"ab",)"
                   R"("patch":[{"op":"teleport_sensor","sensor":0}]})"),
               WireError);
  // The delta form is v2-only: a v1 line with "base" is a full request
  // missing its network.
  EXPECT_THROW(parse_any_request(
                   R"({"v":"mwc.svc.v1","id":"d","base":"ab",)"
                   R"("patch":[{"op":"remove_sensor","sensor":0}]})"),
               WireError);
}

TEST(Wire, RequestBuilderMatchesHandRolledJson) {
  const Request built = RequestBuilder("r1")
                            .policy("Greedy")
                            .preset(40, 3, 500.0, /*seed=*/9)
                            .cycle_model(
                                [] {
                                  wsn::CycleModelConfig model;
                                  model.distribution =
                                      wsn::CycleDistribution::kRandom;
                                  model.tau_min = 2.0;
                                  model.tau_max = 20.0;
                                  model.sigma = 1.0;
                                  return model;
                                }(),
                                4)
                            .horizon(250)
                            .slot_length(10)
                            .improve(true)
                            .deadline_ms(750)
                            .build();
  EXPECT_EQ(to_json(built), to_json(parse_request(kPresetRequest)));
}

TEST(Wire, DerivedResponseCarriesBaseFingerprint) {
  auto plan = std::make_shared<Plan>();
  plan->fingerprint = 0x22ULL;
  Response r;
  r.id = "d1";
  r.version = WireVersion::kV2;
  r.ok = true;
  r.plan = plan;
  r.derived = true;
  r.base_fingerprint = 0x0c0f1095d4693a41ULL;

  const Json doc = Json::parse(to_jsonl(r));
  EXPECT_EQ(doc.at("v").as_string(), kWireVersionV2);
  EXPECT_TRUE(doc.at("derived").as_bool());
  EXPECT_EQ(doc.at("base").as_string(), "0c0f1095d4693a41");

  // Non-derived responses must not sprout the new keys (v1 byte layout).
  r.derived = false;
  r.base_fingerprint = 0;
  r.version = WireVersion::kV1;
  const Json v1doc = Json::parse(to_jsonl(r));
  EXPECT_EQ(v1doc.find("derived"), nullptr);
  EXPECT_EQ(v1doc.find("base"), nullptr);
}

TEST(Wire, IsStreamFrameMatchesVersionMemberNotSubstring) {
  // Genuine stream frames match regardless of key order or whitespace
  // around the colon.
  EXPECT_TRUE(is_stream_frame(
      R"({"v":"mwc.svc.stream.v1","op":"open","id":"x","base":"1"})"));
  EXPECT_TRUE(is_stream_frame(
      R"({"op":"observe","session":1,"v":"mwc.svc.stream.v1"})"));
  EXPECT_TRUE(is_stream_frame("{\"v\" : \"mwc.svc.stream.v1\"}"));

  // A v1/v2 request whose id (or any other string) merely contains the
  // stream version string is NOT a stream frame — it must reach the
  // solver instead of being misrouted to the session hub.
  EXPECT_FALSE(is_stream_frame(
      R"({"v":"mwc.svc.v1","id":"mwc.svc.stream.v1-canary",)"
      R"("network":{"preset":{"n":2,"q":1}}})"));
  EXPECT_FALSE(is_stream_frame(
      R"({"v":"mwc.svc.v2","id":"ask about mwc.svc.stream.v1"})"));
  EXPECT_FALSE(is_stream_frame(R"({"v":"mwc.svc.v1","id":"r1"})"));
  // A "v" key whose value is something else, plus a decoy string value
  // equal to "v", must not match either.
  EXPECT_FALSE(is_stream_frame(
      R"({"x":"v","id":"v","v":"mwc.svc.v2"})"));
}

}  // namespace
}  // namespace mwc::svc
