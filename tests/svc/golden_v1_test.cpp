// Byte-identity goldens for the v1 wire protocol, captured from the
// pre-v2 service binary. The api_redesign contract: a v1 client sees
// responses byte-for-byte identical to what the seed served — same key
// order, same number formatting, same error text. Latency is the one
// nondeterministic field, so each test zeroes it before comparing.
#include <gtest/gtest.h>

#include <string>

#include "svc/engine.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {
namespace {

std::string serve(const std::string& line) {
  Response response = handle_request(parse_request(line), nullptr);
  response.latency_ms = 0.0;
  return to_jsonl(response);
}

TEST(GoldenV1, SolvedPresetResponseIsByteIdentical) {
  const std::string got = serve(
      R"({"v":"mwc.svc.v1","id":"g1",)"
      R"("network":{"preset":{"n":25,"q":2,"field":400,"seed":11}},)"
      R"("cycles":{"values":[5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,)"
      R"(5,5,5,5,5]},"horizon":120})");
  EXPECT_EQ(
      got,
      R"({"v":"mwc.svc.v1","id":"g1","ok":true,"cached":false,)"
      R"("latency_ms":0,"plan":{"first_round_tours":[{"depot":0,)"
      R"("sensors":[17,3,11,14,20,9,2,7,23,10,24,8,18,21,12,5,13,22,0],)"
      R"("length":1481.0445615993488},{"depot":1,)"
      R"("sensors":[19,1,6,15,16,4],"length":410.28973032833323}],)"
      R"("first_round_length":1891.334291927682,)"
      R"("total_distance":43500.688714336713,"num_dispatches":23,)"
      R"("num_sensor_charges":575,"dead_sensors":0,)"
      R"("fingerprint":"0c0f1095d4693a41"}})"
      "\n");
}

TEST(GoldenV1, ImprovedModelResponseIsByteIdentical) {
  const std::string got = serve(
      R"({"v":"mwc.svc.v1","id":"g3",)"
      R"("network":{"preset":{"n":10,"q":2,"field":300,"seed":3}},)"
      R"("cycles":{"model":{"dist":"random","tau_min":2,"tau_max":9,)"
      R"("seed":5}},"horizon":80,"improve":true})");
  EXPECT_EQ(
      got,
      R"({"v":"mwc.svc.v1","id":"g3","ok":true,"cached":false,)"
      R"("latency_ms":0,"plan":{"first_round_tours":[{"depot":0,)"
      R"("sensors":[7],"length":284.20359518357196},{"depot":1,)"
      R"("sensors":[2,5],"length":233.62568953977978}],)"
      R"("first_round_length":517.82928472335175,)"
      R"("total_distance":25077.433545319916,"num_dispatches":39,)"
      R"("num_sensor_charges":220,"dead_sensors":0,)"
      R"("fingerprint":"6eca9dd5584eace1"}})"
      "\n");
}

TEST(GoldenV1, UnknownPolicyErrorIsByteIdentical) {
  const std::string got = serve(
      R"({"v":"mwc.svc.v1","id":"g2","policy":"NoSuchPolicy",)"
      R"("network":{"preset":{"n":5,"q":1}},"cycles":{"values":[1,1,1,1,1]}})");
  EXPECT_EQ(
      got,
      R"({"v":"mwc.svc.v1","id":"g2","ok":false,"error":"unknown_policy",)"
      R"("message":"unknown policy \"NoSuchPolicy\"; registered: Greedy, )"
      R"(MinTotalDistance, MinTotalDistance-var, PerSensorPeriodic, )"
      R"(PeriodicAll","cached":false,"latency_ms":0})"
      "\n");
}

TEST(GoldenV1, ClientTraceIdResponseIsByteIdentical) {
  // The one additive change on the v1 surface: a client that OPTS IN by
  // supplying trace_id gets it echoed (right after "id") plus the stage
  // breakdown "t" (after latency_ms). Stage timings are nondeterministic
  // like latency, so the serve() helper here zeroes them too.
  Response response = handle_request(
      parse_request(
          R"({"v":"mwc.svc.v1","id":"g1","trace_id":"golden-1",)"
          R"("network":{"preset":{"n":25,"q":2,"field":400,"seed":11}},)"
          R"("cycles":{"values":[5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,)"
          R"(5,5,5,5,5]},"horizon":120})"),
      nullptr);
  response.latency_ms = 0.0;
  response.stages = StageTimings{};
  response.has_timings = true;
  EXPECT_EQ(
      to_jsonl(response),
      R"({"v":"mwc.svc.v1","id":"g1","trace_id":"golden-1","ok":true,)"
      R"("cached":false,"latency_ms":0,"t":{"parse_ms":0,"queue_ms":0,)"
      R"("cache_ms":0,"solve_ms":0},"plan":{"first_round_tours":[{"depot":0,)"
      R"("sensors":[17,3,11,14,20,9,2,7,23,10,24,8,18,21,12,5,13,22,0],)"
      R"("length":1481.0445615993488},{"depot":1,)"
      R"("sensors":[19,1,6,15,16,4],"length":410.28973032833323}],)"
      R"("first_round_length":1891.334291927682,)"
      R"("total_distance":43500.688714336713,"num_dispatches":23,)"
      R"("num_sensor_charges":575,"dead_sensors":0,)"
      R"("fingerprint":"0c0f1095d4693a41"}})"
      "\n");
}

TEST(GoldenV1, NoClientTraceIdLeavesResponseUntouched) {
  // Without the opt-in, the solved-preset golden above must hold exactly:
  // no trace_id key, no "t" key, same bytes the seed served. (The
  // SolvedPresetResponseIsByteIdentical test pins the full bytes; this
  // one makes the invariant explicit against accidental echo.)
  const std::string got = serve(
      R"({"v":"mwc.svc.v1","id":"g1",)"
      R"("network":{"preset":{"n":25,"q":2,"field":400,"seed":11}},)"
      R"("cycles":{"values":[5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,)"
      R"(5,5,5,5,5]},"horizon":120})");
  EXPECT_EQ(got.find("trace_id"), std::string::npos);
  EXPECT_EQ(got.find("\"t\":"), std::string::npos);
}

TEST(GoldenV1, ParseErrorIsByteIdentical) {
  std::string message;
  try {
    parse_request(R"({"bad json)");
    FAIL() << "malformed line must throw";
  } catch (const WireError& e) {
    message = e.what();
  }
  Response response = error_response("", ErrorCode::kBadRequest, message);
  EXPECT_EQ(to_jsonl(response),
            R"({"v":"mwc.svc.v1","id":"","ok":false,"error":"bad_request",)"
            R"("message":"json: unterminated string at offset 10",)"
            R"("cached":false,"latency_ms":0})"
            "\n");
}

}  // namespace
}  // namespace mwc::svc
