#include "svc/json.hpp"

#include <gtest/gtest.h>

namespace mwc::svc {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_double(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const Json doc = Json::parse(
      R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(doc.is_object());
  const Json& a = doc.at("a");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.items()[1].as_double(), 2.0);
  EXPECT_TRUE(a.items()[2].at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("line\n\t\"q\" \\ A")");
  EXPECT_EQ(doc.as_string(), "line\n\t\"q\" \\ A");
  // Control characters and quotes must re-escape on dump (controls use
  // the uniform \uXXXX form).
  Json s("a\"b\n\x01");
  EXPECT_EQ(s.dump(), "\"a\\\"b\\u000a\\u0001\"");
  EXPECT_EQ(Json::parse(s.dump()).as_string(), "a\"b\n\x01");
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text =
      R"({"name":"x","vals":[1,2.5,-3],"flag":false,"nested":{"k":"v"}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);  // objects preserve insertion order
  EXPECT_EQ(Json::parse(doc.dump()).dump(), text);
}

TEST(Json, IntegralNumbersPrintWithoutExponent) {
  Json j = Json::object();
  j.set("big", Json(static_cast<std::int64_t>(1234567890123LL)));
  j.set("zero", Json(0.0));
  EXPECT_EQ(j.dump(), R"({"big":1234567890123,"zero":0})");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Json::parse("NaN"), JsonError);
  EXPECT_THROW(Json::parse("nan"), JsonError);
  EXPECT_THROW(Json::parse("Infinity"), JsonError);
  EXPECT_THROW(Json::parse("-Infinity"), JsonError);
  EXPECT_THROW(Json::parse(R"({"x":NaN})"), JsonError);
  EXPECT_THROW(Json::parse(R"([1,Infinity])"), JsonError);
  // Overflow to infinity during conversion is also rejected.
  EXPECT_THROW(Json::parse("1e999"), JsonError);
}

TEST(Json, RejectsDuplicateObjectKeys) {
  EXPECT_THROW(Json::parse(R"({"a":1,"a":2})"), JsonError);
  EXPECT_THROW(Json::parse(R"({"a":{"b":1,"b":2}})"), JsonError);
  // Same key at different depths is fine.
  EXPECT_NO_THROW(Json::parse(R"({"a":{"a":1}})"));
}

TEST(Json, CapsNestingDepth) {
  const auto nested = [](std::size_t depth) {
    std::string text;
    for (std::size_t i = 0; i < depth; ++i) text += "[";
    text += "1";
    for (std::size_t i = 0; i < depth; ++i) text += "]";
    return text;
  };
  EXPECT_NO_THROW(Json::parse(nested(64)));
  EXPECT_THROW(Json::parse(nested(65)), JsonError);
  // Mixed object/array nesting counts both container kinds.
  std::string mixed;
  for (std::size_t i = 0; i < 33; ++i) mixed += R"({"k":[)";
  mixed += "1";
  for (std::size_t i = 0; i < 33; ++i) mixed += "]}";
  EXPECT_THROW(Json::parse(mixed), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Json doc = Json::parse("{\"a\":1}");
  EXPECT_THROW(doc.at("a").as_string(), JsonError);
  EXPECT_THROW(doc.at("b"), JsonError);
  EXPECT_THROW(doc.as_double(), JsonError);
}

}  // namespace
}  // namespace mwc::svc
