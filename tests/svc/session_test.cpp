// svc::SessionManager — mwc.svc.stream.v1 unit tests. Drives
// handle_frame directly (no transport) against an in-process Server
// running the real engine, so opens resolve genuine cached base plans
// and deadline-triggered replans exercise the full submit ->
// handle_delta -> push pipeline.
#include "svc/session.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "geom/bbox.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "wsn/network.hpp"

namespace mwc::svc {
namespace {

constexpr std::size_t kN = 16;
constexpr std::size_t kQ = 2;

/// Base cycles tau_i in {10, 20, 30, 40}: slow enough that a calm
/// observation never trips the deadline trigger.
std::vector<double> base_cycles() {
  std::vector<double> tau(kN);
  for (std::size_t i = 0; i < kN; ++i)
    tau[i] = 10.0 + double(i % 4) * 10.0;
  return tau;
}

/// Solves the shared base instance and returns its fingerprint.
std::uint64_t solve_base(Server& server) {
  const Request request = RequestBuilder("base")
                              .preset(kN, kQ, /*field_side=*/400.0,
                                      /*seed=*/3)
                              .cycle_values(base_cycles())
                              .horizon(100.0)
                              .build();
  std::promise<Response> promise;
  EXPECT_TRUE(server.submit(
      request, [&](const Response& r) { promise.set_value(r); }));
  const Response response = promise.get_future().get();
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_NE(response.plan, nullptr);
  return response.plan->fingerprint;
}

/// Thread-safe sink for unsolicited plan pushes (replans complete on
/// solver workers).
class PushCapture {
 public:
  StreamHub::PushFn fn() {
    return [this](std::string line) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(std::move(line));
      }
      cv_.notify_all();
      return true;
    };
  }

  std::string wait_line(std::size_t index = 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::seconds(10),
                 [&] { return lines_.size() > index; });
    if (lines_.size() <= index) return {};
    return lines_[index];
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

std::string open_frame(const std::string& id, std::uint64_t fp) {
  return "{\"v\":\"mwc.svc.stream.v1\",\"op\":\"open\",\"id\":\"" + id +
         "\",\"base\":\"" + fingerprint_hex(fp) + "\"}";
}

std::string observe_frame(const std::string& id, std::uint64_t sid,
                          double t, const std::vector<double>& rates) {
  std::string out = "{\"v\":\"mwc.svc.stream.v1\",\"op\":\"observe\"";
  out += ",\"id\":\"" + id + "\",\"session\":";
  out += std::to_string(sid);
  out += ",\"t\":";
  append_json_number(out, t);
  out += ",\"rates\":[";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i > 0) out += ',';
    append_json_number(out, rates[i]);
  }
  out += "]}";
  return out;
}

std::string close_frame(const std::string& id, std::uint64_t sid) {
  return "{\"v\":\"mwc.svc.stream.v1\",\"op\":\"close\",\"id\":\"" + id +
         "\",\"session\":" + std::to_string(sid) + "}";
}

/// Planned steady-state rates: one battery per cycle.
std::vector<double> calm_rates() {
  std::vector<double> rates(kN);
  const auto tau = base_cycles();
  for (std::size_t i = 0; i < kN; ++i) rates[i] = 1.0 / tau[i];
  return rates;
}

Json reply_of(const std::string& line) { return Json::parse(line); }

/// Fixture: real engine server + one solved base plan.
class SessionManagerTest : public ::testing::Test {
 protected:
  SessionManagerTest() : server_(server_options()), fp_(solve_base(server_)) {}

  static ServerOptions server_options() {
    ServerOptions options;
    options.threads = 2;
    return options;
  }

  /// Opens a session; returns its id and asserts the ack shape.
  std::uint64_t open_session(SessionManager& manager,
                             std::uint64_t conn = 1,
                             PushCapture* pushes = nullptr) {
    static PushCapture ignored;
    bool streaming = false;
    const Json ack = reply_of(manager.handle_frame(
        conn, open_frame("o", fp_), (pushes ? *pushes : ignored).fn(),
        &streaming));
    EXPECT_TRUE(ack.at("ok").as_bool()) << ack.dump();
    EXPECT_TRUE(streaming);
    return static_cast<std::uint64_t>(ack.at("session").as_int());
  }

  Server server_;
  std::uint64_t fp_;
};

TEST_F(SessionManagerTest, OpenUnknownBaseRejected) {
  SessionManager manager(server_);
  bool streaming = false;
  PushCapture pushes;
  const Json reply = reply_of(manager.handle_frame(
      1, open_frame("o1", fp_ ^ 0xDEADu), pushes.fn(), &streaming));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").as_string(), "unknown_base");
  EXPECT_FALSE(streaming);
  EXPECT_EQ(manager.stats().opened, 0u);
  EXPECT_EQ(manager.stats().rejected, 1u);
}

TEST_F(SessionManagerTest, OpenAckDescribesBasePlan) {
  SessionManager manager(server_);
  bool streaming = false;
  PushCapture pushes;
  const Json ack = reply_of(
      manager.handle_frame(1, open_frame("o1", fp_), pushes.fn(),
                           &streaming));
  ASSERT_TRUE(ack.at("ok").as_bool()) << ack.dump();
  EXPECT_EQ(ack.at("op").as_string(), "open");
  EXPECT_EQ(ack.at("id").as_string(), "o1");
  EXPECT_EQ(ack.at("v").as_string(), kWireVersionStream);
  EXPECT_GE(ack.at("session").as_int(), 1);
  EXPECT_EQ(ack.at("n").as_int(), std::int64_t(kN));
  // MinTotalDistance's first round serves V_0 (tau in [tau1, 2*tau1]) —
  // a strict, non-empty subset of our {10,20,30,40} grid.
  EXPECT_GT(ack.at("round_sensors").as_int(), 0);
  EXPECT_LT(ack.at("round_sensors").as_int(), std::int64_t(kN));
  EXPECT_EQ(ack.at("base").as_string(), fingerprint_hex(fp_));
  EXPECT_TRUE(streaming);

  const StreamStats stats = manager.stats();
  EXPECT_EQ(stats.opened, 1u);
  EXPECT_EQ(stats.active, 1u);
}

TEST_F(SessionManagerTest, CalmObserveDoesNotTrigger) {
  SessionManager manager(server_);
  const std::uint64_t sid = open_session(manager);
  bool streaming = true;
  PushCapture pushes;
  // Draining exactly one battery per cycle is the plan's own steady
  // state: predicted lifetime matches the recharge deadline, so the
  // margin-scaled trigger must stay quiet.
  for (double t : {1.0, 2.0, 3.0}) {
    const Json ack = reply_of(manager.handle_frame(
        1, observe_frame("c", sid, t, calm_rates()), pushes.fn(),
        &streaming));
    ASSERT_TRUE(ack.at("ok").as_bool()) << ack.dump();
    EXPECT_EQ(ack.at("op").as_string(), "observe");
    EXPECT_EQ(ack.at("at_risk").as_int(), 0) << "t=" << t;
    EXPECT_EQ(ack.at("dead").as_int(), 0);
    EXPECT_FALSE(ack.at("replan").as_bool());
  }
  const StreamStats stats = manager.stats();
  EXPECT_EQ(stats.observes, 3u);
  EXPECT_EQ(stats.replans, 0u);
  EXPECT_EQ(stats.pushes, 0u);
  EXPECT_EQ(stats.at_risk, 0u);
}

TEST_F(SessionManagerTest, DeadlineTriggerReplansAndPushesPlan) {
  SessionManager manager(server_);
  PushCapture pushes;
  const std::uint64_t sid = open_session(manager, 1, &pushes);
  bool streaming = true;

  // Surge: sensors 4..7 suddenly drain 8x faster than planned,
  // observed early (t=0.25) so nobody is dead yet. The EWMA blend
  // (gamma 0.3) already cuts their predicted lifetime well below the
  // next recharge deadline for the slow-cycle sensors.
  std::vector<double> rates = calm_rates();
  for (std::size_t i = 4; i < 8; ++i) rates[i] *= 8.0;
  const Json ack = reply_of(manager.handle_frame(
      1, observe_frame("s1", sid, 0.25, rates), pushes.fn(), &streaming));
  ASSERT_TRUE(ack.at("ok").as_bool()) << ack.dump();
  EXPECT_GE(ack.at("at_risk").as_int(), 1);
  EXPECT_TRUE(ack.at("replan").as_bool());

  const std::string line = pushes.wait_line();
  ASSERT_FALSE(line.empty()) << "no plan push within 10s";
  const Json push = reply_of(line);
  EXPECT_EQ(push.at("v").as_string(), kWireVersionStream);
  EXPECT_EQ(push.at("op").as_string(), "plan");
  EXPECT_TRUE(push.at("push").as_bool());
  EXPECT_EQ(static_cast<std::uint64_t>(push.at("session").as_int()), sid);
  EXPECT_EQ(push.at("seq").as_int(), 1);
  EXPECT_EQ(push.at("reason").as_string(), "deadline");
  EXPECT_DOUBLE_EQ(push.at("t").as_double(), 0.25);
  EXPECT_GE(push.at("at_risk").items().size(), 1u);
  EXPECT_GE(push.at("replan_ms").as_double(), 0.0);
  // The push names the fingerprint it supersedes and carries the full
  // derived plan.
  EXPECT_EQ(push.at("base").as_string(), fingerprint_hex(fp_));
  const Json& plan = push.at("plan");
  EXPECT_FALSE(plan.at("first_round_tours").items().empty());
  EXPECT_GT(plan.at("first_round_length").as_double(), 0.0);

  // The pushes counter increments after the push callback returns, so
  // settle briefly before reading stats.
  StreamStats stats = manager.stats();
  for (int i = 0; i < 500 && stats.pushes < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = manager.stats();
  }
  EXPECT_EQ(stats.replans, 1u);
  EXPECT_EQ(stats.pushes, 1u);
  EXPECT_GE(stats.at_risk, 1u);
  EXPECT_EQ(stats.replan_failures, 0u);
  EXPECT_GT(stats.last_replan_ms, 0.0);

  // The session now rides the derived plan: a follow-up calm observe is
  // accepted against the swapped base without another trigger firing
  // for the already-replanned sensors' old deadlines.
  const Json after = reply_of(manager.handle_frame(
      1, observe_frame("s2", sid, 0.5, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_TRUE(after.at("ok").as_bool()) << after.dump();
}

TEST_F(SessionManagerTest, SessionLimitAndCloseFreesSlot) {
  SessionOptions options;
  options.max_sessions = 1;
  SessionManager manager(server_, options);
  const std::uint64_t sid = open_session(manager);

  bool streaming = true;
  PushCapture pushes;
  const Json full = reply_of(manager.handle_frame(
      1, open_frame("o2", fp_), pushes.fn(), &streaming));
  EXPECT_FALSE(full.at("ok").as_bool());
  EXPECT_EQ(full.at("error").as_string(), "session_limit");

  const Json closed = reply_of(manager.handle_frame(
      1, close_frame("c1", sid), pushes.fn(), &streaming));
  ASSERT_TRUE(closed.at("ok").as_bool());
  EXPECT_EQ(closed.at("op").as_string(), "close");
  EXPECT_FALSE(streaming) << "no live session left on the connection";

  // The slot is free again.
  const std::uint64_t sid2 = open_session(manager);
  EXPECT_NE(sid2, sid);
  const StreamStats stats = manager.stats();
  EXPECT_EQ(stats.opened, 2u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.active, 1u);
}

TEST_F(SessionManagerTest, SessionsAreConnectionScoped) {
  SessionManager manager(server_);
  const std::uint64_t sid = open_session(manager, /*conn=*/1);
  bool streaming = true;
  PushCapture pushes;

  // Unknown id, and a live id observed from a different connection,
  // both answer unknown_session (sessions are not guessable handles).
  const Json unknown = reply_of(manager.handle_frame(
      1, observe_frame("x", 999, 1.0, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").as_string(), "unknown_session");

  const Json foreign = reply_of(manager.handle_frame(
      2, observe_frame("x", sid, 1.0, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_FALSE(foreign.at("ok").as_bool());
  EXPECT_EQ(foreign.at("error").as_string(), "unknown_session");

  const Json foreign_close = reply_of(manager.handle_frame(
      2, close_frame("x", sid), pushes.fn(), &streaming));
  EXPECT_FALSE(foreign_close.at("ok").as_bool());
  EXPECT_EQ(foreign_close.at("error").as_string(), "unknown_session");
}

TEST_F(SessionManagerTest, MalformedFramesAnswerBadRequest) {
  SessionManager manager(server_);
  const std::uint64_t sid = open_session(manager);
  bool streaming = true;
  PushCapture pushes;
  const auto expect_bad = [&](const std::string& frame) {
    const Json reply = reply_of(
        manager.handle_frame(1, frame, pushes.fn(), &streaming));
    EXPECT_FALSE(reply.at("ok").as_bool()) << frame;
    EXPECT_EQ(reply.at("error").as_string(), "bad_request") << frame;
  };
  expect_bad("{not json");
  expect_bad("[1,2,3]");
  expect_bad("{\"id\":\"x\"}");  // no op
  expect_bad("{\"op\":\"subscribe\",\"id\":\"x\"}");
  // Wrong rates length surfaces FleetPredictor's invalid_argument as a
  // structured rejection, not a crash.
  expect_bad(observe_frame("x", sid, 1.0, {1.0, 2.0}));
  // Time must be non-decreasing within a session.
  Json ok = reply_of(manager.handle_frame(
      1, observe_frame("t1", sid, 5.0, calm_rates()), pushes.fn(),
      &streaming));
  ASSERT_TRUE(ok.at("ok").as_bool());
  expect_bad(observe_frame("t2", sid, 4.0, calm_rates()));
  EXPECT_EQ(manager.stats().rejected, 6u);
}

TEST_F(SessionManagerTest, NonFiniteOrHugeTimesRejected) {
  SessionManager manager(server_);
  const std::uint64_t sid = open_session(manager);
  bool streaming = true;
  PushCapture pushes;
  const auto expect_bad = [&](const std::string& frame) {
    const Json reply = reply_of(
        manager.handle_frame(1, frame, pushes.fn(), &streaming));
    EXPECT_FALSE(reply.at("ok").as_bool()) << frame;
    EXPECT_EQ(reply.at("error").as_string(), "bad_request") << frame;
  };
  // A huge observation time used to spin the deadline roll-forward loop
  // forever on the transport thread (1e300 makes `deadline += tau` a
  // double-precision no-op) — it must be a structured rejection instead.
  expect_bad(observe_frame("huge", sid, 1e300, calm_rates()));
  expect_bad(observe_frame("neg", sid, -1.0, calm_rates()));
  // Same bound applies to the open epoch.
  expect_bad("{\"v\":\"mwc.svc.stream.v1\",\"op\":\"open\",\"id\":\"o\","
             "\"base\":\"" +
             fingerprint_hex(fp_) + "\",\"t\":1e300}");

  // The session is still healthy: a sane observation is accepted.
  const Json ok = reply_of(manager.handle_frame(
      1, observe_frame("fine", sid, 1.0, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_TRUE(ok.at("ok").as_bool()) << ok.dump();
  EXPECT_EQ(manager.stats().rejected, 3u);
}

TEST_F(SessionManagerTest, FarFutureObserveIsBoundedWork) {
  SessionManager manager(server_);
  const std::uint64_t sid = open_session(manager);
  bool streaming = true;
  PushCapture pushes;
  // A jump spanning ~1e7 cycles stays within the validated time bound;
  // the closed-form deadline roll must absorb it instantly (the old
  // loop iterated once per missed cycle per sensor). Everybody drains
  // to zero over such a gap — the frame still answers.
  const Json far = reply_of(manager.handle_frame(
      1, observe_frame("far", sid, 1e8, calm_rates()), pushes.fn(),
      &streaming));
  ASSERT_TRUE(far.at("ok").as_bool()) << far.dump();
  EXPECT_EQ(far.at("dead").as_int(), std::int64_t(kN));
  // And time keeps advancing from there.
  const Json later = reply_of(manager.handle_frame(
      1, observe_frame("later", sid, 2e8, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_TRUE(later.at("ok").as_bool()) << later.dump();
}

TEST_F(SessionManagerTest, DropConnectionReapsItsSessions) {
  SessionManager manager(server_);
  const std::uint64_t mine = open_session(manager, /*conn=*/7);
  const std::uint64_t other = open_session(manager, /*conn=*/8);
  manager.drop_connection(7);

  bool streaming = true;
  PushCapture pushes;
  const Json gone = reply_of(manager.handle_frame(
      7, observe_frame("x", mine, 1.0, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_FALSE(gone.at("ok").as_bool());
  EXPECT_EQ(gone.at("error").as_string(), "unknown_session");

  // The other connection's session is untouched.
  const Json alive = reply_of(manager.handle_frame(
      8, observe_frame("y", other, 1.0, calm_rates()), pushes.fn(),
      &streaming));
  EXPECT_TRUE(alive.at("ok").as_bool());

  const StreamStats stats = manager.stats();
  EXPECT_EQ(stats.opened, 2u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.active, 1u);

  // Dropping a connection with no sessions is a no-op.
  manager.drop_connection(99);
  EXPECT_EQ(manager.stats().closed, 1u);
}

TEST(PlanVisitTimes, WalksToursAtTravelSpeed) {
  // Hand-built geometry: depot at origin, two sensors along +x.
  const wsn::Network network(
      {wsn::Sensor{0, {10.0, 0.0}, 1.0}, wsn::Sensor{1, {30.0, 0.0}, 1.0},
       wsn::Sensor{2, {50.0, 50.0}, 1.0}},  // sensor 2 not in the round
      /*base_station=*/{0.0, 0.0}, /*depots=*/{{0.0, 0.0}},
      geom::BBox::square(100.0));

  Plan plan;
  plan.first_round_tours.push_back(PlanTour{0, {0, 1}, 60.0});
  const auto times =
      plan_visit_times(plan, network, /*travel_speed=*/10.0,
                       /*charge_time=*/2.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);        // 10 / 10
  EXPECT_DOUBLE_EQ(times[1], 1.0 + 2.0 + 2.0);  // + charge + 20/10
  EXPECT_TRUE(std::isinf(times[2]));
}

}  // namespace
}  // namespace mwc::svc
