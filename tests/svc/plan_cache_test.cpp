#include "svc/plan_cache.hpp"

#include <gtest/gtest.h>

#include "svc/delta.hpp"

#include <memory>

namespace mwc::svc {
namespace {

std::shared_ptr<const Plan> plan_with(double total) {
  auto p = std::make_shared<Plan>();
  p->total_distance = total;
  return p;
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // FNV-1a 64-bit test vectors (offset basis, then "a").
  Fnv1a empty;
  EXPECT_EQ(empty.value(), 0xcbf29ce484222325ULL);
  Fnv1a a;
  a.bytes("a", 1);
  EXPECT_EQ(a.value(), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, QuantizationCollapsesNoiseAndSignedZero) {
  Fnv1a x, y;
  x.quantized(0.0, 1e-6);
  y.quantized(-0.0, 1e-6);
  EXPECT_EQ(x.value(), y.value());

  Fnv1a p, q;
  p.quantized(123.4567891, 1e-6);
  q.quantized(123.45678911, 1e-6);  // sub-quantum difference
  EXPECT_EQ(p.value(), q.value());

  Fnv1a r, s;
  r.quantized(1.0, 1e-6);
  s.quantized(1.0 + 1e-5, 1e-6);  // super-quantum difference
  EXPECT_NE(r.value(), s.value());
}

TEST(Fnv1a, StrIsLengthPrefixed) {
  // ("ab", "c") must not collide with ("a", "bc").
  Fnv1a x, y;
  x.str("ab");
  x.str("c");
  y.str("a");
  y.str("bc");
  EXPECT_NE(x.value(), y.value());
}

TEST(PlanCache, HitReturnsSamePointerAndCounts) {
  PlanCache cache(4);
  const auto plan = plan_with(1.0);
  cache.put(42, plan);
  EXPECT_EQ(cache.get(1), nullptr);
  const auto hit = cache.get(42);
  EXPECT_EQ(hit.get(), plan.get());  // shared instance, not a copy
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.put(1, plan_with(1));
  cache.put(2, plan_with(2));
  ASSERT_NE(cache.get(1), nullptr);  // 1 is now MRU
  cache.put(3, plan_with(3));        // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, PutRefreshesExistingKey) {
  PlanCache cache(2);
  cache.put(1, plan_with(1));
  cache.put(1, plan_with(10));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.get(1)->total_distance, 10.0);
}

TEST(PlanCache, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.put(1, plan_with(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, CarriesBaseStateBesidePlan) {
  PlanCache cache(2);
  auto state = std::make_shared<const BaseState>();
  cache.put(1, plan_with(1), state);
  cache.put(2, plan_with(2));  // plan without solver state
  EXPECT_EQ(cache.get_state(1).get(), state.get());  // 1 is now MRU
  EXPECT_EQ(cache.get_state(2), nullptr);            // ... then 2
  // Eviction drops the state with the plan: 1 is LRU, put(3) evicts it.
  cache.put(3, plan_with(3));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.get_state(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(PlanCache, PutWithoutStateKeepsExistingState) {
  PlanCache cache(2);
  auto state = std::make_shared<const BaseState>();
  cache.put(1, plan_with(1), state);
  cache.put(1, plan_with(10));  // refresh plan only
  EXPECT_DOUBLE_EQ(cache.get(1)->total_distance, 10.0);
  EXPECT_EQ(cache.get_state(1).get(), state.get());
}

TEST(PlanCache, ShardedCacheServesAllKeysAndAggregatesCounters) {
  // Room for 8 plans per shard: even if all 8 keys hash to one shard,
  // nothing is evicted, so every key must be retrievable.
  PlanCache cache(32, 4);
  EXPECT_EQ(cache.shards(), 4u);
  EXPECT_EQ(cache.capacity(), 32u);
  for (std::uint64_t k = 1; k <= 8; ++k) cache.put(k, plan_with(double(k)));
  EXPECT_EQ(cache.size(), 8u);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    const auto hit = cache.get(k);
    ASSERT_NE(hit, nullptr) << "key " << k;
    EXPECT_DOUBLE_EQ(hit->total_distance, double(k));
  }
  EXPECT_EQ(cache.get(99), nullptr);
  // hits/misses aggregate across shards.
  EXPECT_EQ(cache.hits(), 8u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, ShardedEvictionIsPerShardLru) {
  PlanCache cache(4, 4);  // one plan per shard
  // Find two keys landing in the same shard: insert until an eviction.
  std::uint64_t k = 1;
  while (cache.evictions() == 0) {
    cache.put(k, plan_with(double(k)));
    ++k;
  }
  // Total held never exceeds capacity, and the newest key survived its
  // shard's eviction.
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_NE(cache.get(k - 1), nullptr);
}

TEST(PlanCache, ShardCountIsClampedToCapacity) {
  PlanCache cache(2, 64);
  EXPECT_EQ(cache.shards(), 2u);  // every shard holds >= 1 plan
  PlanCache disabled(0, 8);
  EXPECT_EQ(disabled.shards(), 1u);
  disabled.put(1, plan_with(1));
  EXPECT_EQ(disabled.get(1), nullptr);
}

TEST(PlanCache, SpecMemoRemembersAndForgetsFifo) {
  PlanCache cache(2);  // per-shard memo bound = 4 * capacity share
  EXPECT_EQ(cache.spec_lookup(111), 0u);  // unknown
  cache.spec_remember(111, 42);
  EXPECT_EQ(cache.spec_lookup(111), 42u);
  // Memo probes are not cache hits/misses.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Remembering 0 is a no-op (0 means "unknown").
  cache.spec_remember(222, 0);
  EXPECT_EQ(cache.spec_lookup(222), 0u);
  // The memo is bounded: flooding it evicts the oldest mapping.
  for (std::uint64_t s = 1000; s < 1100; ++s) cache.spec_remember(s, s);
  EXPECT_EQ(cache.spec_lookup(111), 0u);
  EXPECT_EQ(cache.spec_lookup(1099), 1099u);
}

TEST(PlanCache, SpecMemoDisabledWithCaching) {
  PlanCache cache(0);
  cache.spec_remember(1, 2);
  EXPECT_EQ(cache.spec_lookup(1), 0u);
}

TEST(PlanCache, ExportEntriesWalksLruFirst) {
  PlanCache cache(4);
  cache.put(1, plan_with(1));
  cache.put(2, plan_with(2));
  cache.put(3, plan_with(3));
  ASSERT_NE(cache.get(1), nullptr);  // order (LRU->MRU): 2, 3, 1
  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 2u);
  EXPECT_EQ(entries[1].key, 3u);
  EXPECT_EQ(entries[2].key, 1u);
  // Replaying through put() reproduces recency: 2 is evicted first.
  PlanCache replay(3);
  for (const auto& e : entries) replay.put(e.key, e.plan);
  replay.put(4, plan_with(4));
  EXPECT_EQ(replay.get(2), nullptr);
  EXPECT_NE(replay.get(1), nullptr);
}

TEST(PlanCache, ClearEmptiesButKeepsCounters) {
  PlanCache cache(4);
  cache.put(1, plan_with(1));
  ASSERT_NE(cache.get(1), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace mwc::svc
