// Tests for the mwc.svc.v2 delta engine: patch canonicalization
// (commuting op lists share a derived fingerprint), the handle_delta
// service path (repair, derived-plan caching, chaining, structured
// errors), and the golden equivalence grid — a delta-repaired plan's
// first round is never worse than re-solving the patched instance from
// scratch, across n x patch-size combinations.
#include "svc/delta.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "svc/engine.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {
namespace {

constexpr std::size_t kN = 20;
constexpr std::size_t kQ = 3;
const std::vector<char> kAllActive;  // empty = every charger up

std::uint64_t fold_fp(const std::vector<PatchOp>& patch) {
  return patch_fingerprint(fold_patch(patch, kN, kQ, kAllActive));
}

/// Shorthand: build a patch list through the wire builder.
std::vector<PatchOp> patch_of(const DeltaRequest& request) {
  return request.patch;
}

TEST(FoldPatch, CommutingOpsShareFingerprint) {
  const auto a = patch_of(DeltaBuilder("x", 0)
                              .move_sensor(3, {10.0, 10.0})
                              .remove_sensor(7)
                              .update_cycles(1, 5.0)
                              .charger_down(0)
                              .build());
  const auto b = patch_of(DeltaBuilder("x", 0)
                              .charger_down(0)
                              .update_cycles(1, 5.0)
                              .remove_sensor(7)
                              .move_sensor(3, {10.0, 10.0})
                              .build());
  const auto c = patch_of(DeltaBuilder("x", 0)
                              .remove_sensor(7)
                              .move_sensor(3, {10.0, 10.0})
                              .charger_down(0)
                              .update_cycles(1, 5.0)
                              .build());
  EXPECT_EQ(fold_fp(a), fold_fp(b));
  EXPECT_EQ(fold_fp(a), fold_fp(c));
}

TEST(FoldPatch, LastWriterWinsOnRepeatedMoves) {
  const auto twice = patch_of(DeltaBuilder("x", 0)
                                  .move_sensor(3, {1.0, 1.0})
                                  .move_sensor(3, {2.0, 2.0})
                                  .build());
  const auto direct =
      patch_of(DeltaBuilder("x", 0).move_sensor(3, {2.0, 2.0}).build());
  const auto other =
      patch_of(DeltaBuilder("x", 0).move_sensor(3, {1.0, 1.0}).build());
  EXPECT_EQ(fold_fp(twice), fold_fp(direct));
  EXPECT_NE(fold_fp(twice), fold_fp(other));
}

TEST(FoldPatch, MoveThenRemoveFoldsToRemove) {
  const auto move_remove = patch_of(DeltaBuilder("x", 0)
                                        .move_sensor(5, {9.0, 9.0})
                                        .remove_sensor(5)
                                        .build());
  const auto remove_only =
      patch_of(DeltaBuilder("x", 0).remove_sensor(5).build());
  EXPECT_EQ(fold_fp(move_remove), fold_fp(remove_only));
}

TEST(FoldPatch, ChargerDownUpFoldsOut) {
  const auto with_flip = patch_of(DeltaBuilder("x", 0)
                                      .remove_sensor(1)
                                      .charger_down(2)
                                      .charger_up(2)
                                      .build());
  const auto without =
      patch_of(DeltaBuilder("x", 0).remove_sensor(1).build());
  EXPECT_EQ(fold_fp(with_flip), fold_fp(without));
  EXPECT_TRUE(
      fold_patch(with_flip, kN, kQ, kAllActive).charger.empty());
}

TEST(FoldPatch, AdditionOrderIsSignificant) {
  // Arrival order assigns the new sensor ids, so it must hash as-is.
  const auto ab = patch_of(DeltaBuilder("x", 0)
                               .add_sensor({1.0, 0.0}, 4.0)
                               .add_sensor({2.0, 0.0}, 6.0)
                               .build());
  const auto ba = patch_of(DeltaBuilder("x", 0)
                               .add_sensor({2.0, 0.0}, 6.0)
                               .add_sensor({1.0, 0.0}, 4.0)
                               .build());
  EXPECT_NE(fold_fp(ab), fold_fp(ba));
}

TEST(FoldPatch, ValidatesReferences) {
  const auto fold = [](const std::vector<PatchOp>& patch, std::size_t n = kN,
                       std::size_t q = kQ) {
    return fold_patch(patch, n, q, kAllActive);
  };
  // Out-of-range ids.
  EXPECT_THROW(
      fold(patch_of(DeltaBuilder("x", 0).remove_sensor(kN).build())),
      WireError);
  EXPECT_THROW(
      fold(patch_of(DeltaBuilder("x", 0).charger_down(kQ).build())),
      WireError);
  // References to a sensor this patch already removed.
  EXPECT_THROW(fold(patch_of(DeltaBuilder("x", 0)
                                 .remove_sensor(3)
                                 .move_sensor(3, {1.0, 1.0})
                                 .build())),
               WireError);
  EXPECT_THROW(fold(patch_of(
                   DeltaBuilder("x", 0).remove_sensor(3).remove_sensor(3)
                       .build())),
               WireError);
  // Non-positive cycles.
  EXPECT_THROW(
      fold(patch_of(DeltaBuilder("x", 0).add_sensor({1.0, 1.0}, 0.0)
                        .build())),
      WireError);
  EXPECT_THROW(
      fold(patch_of(DeltaBuilder("x", 0).update_cycles(2, -1.0).build())),
      WireError);
  // Emptying the network.
  EXPECT_THROW(fold(patch_of(DeltaBuilder("x", 0)
                                 .remove_sensor(0)
                                 .remove_sensor(1)
                                 .build()),
                    /*n=*/2),
               WireError);
  // Downing every charger.
  EXPECT_THROW(fold(patch_of(DeltaBuilder("x", 0)
                                 .charger_down(0)
                                 .charger_down(1)
                                 .build()),
                    kN, /*q=*/2),
               WireError);
}

TEST(DerivedFingerprint, MixesBaseAndPatch) {
  const PatchState state = fold_patch(
      patch_of(DeltaBuilder("x", 0).remove_sensor(2).build()), kN, kQ,
      kAllActive);
  const PatchState other = fold_patch(
      patch_of(DeltaBuilder("x", 0).remove_sensor(3).build()), kN, kQ,
      kAllActive);
  EXPECT_NE(derived_fingerprint(1, state), derived_fingerprint(2, state));
  EXPECT_NE(derived_fingerprint(1, state), derived_fingerprint(1, other));
  // And the derived key never collides with its own base.
  EXPECT_NE(derived_fingerprint(1, state), 1u);
}

/// Solves a uniform-τ preset instance into `cache`, returning the base
/// plan fingerprint.
std::uint64_t solve_base(PlanCache& cache, std::size_t n, std::size_t q,
                         double field, std::uint64_t seed, double horizon,
                         bool improve = false) {
  const Request request =
      RequestBuilder("base")
          .preset(n, q, field, seed)
          .cycle_values(std::vector<double>(n, 5.0))
          .horizon(horizon)
          .improve(improve)
          .build();
  const Response response = handle_request(request, &cache);
  EXPECT_TRUE(response.ok) << response.message;
  return response.plan->fingerprint;
}

TEST(HandleDelta, RepairsAndCachesDerivedPlans) {
  PlanCache cache(16);
  const std::uint64_t base = solve_base(cache, 30, 2, 400.0, 11, 60.0);
  const std::shared_ptr<const Plan> base_plan = cache.get(base);
  ASSERT_NE(base_plan, nullptr);

  const DeltaRequest delta = DeltaBuilder("d1", base)
                                 .move_sensor(3, {120.5, 80.0})
                                 .remove_sensor(17)
                                 .build();
  const Response first = handle_delta(delta, &cache);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.version, WireVersion::kV2);
  EXPECT_TRUE(first.derived);
  EXPECT_EQ(first.base_fingerprint, base);
  EXPECT_FALSE(first.cached);
  ASSERT_NE(first.plan, nullptr);
  EXPECT_NE(first.plan->fingerprint, base);
  // Horizon aggregates are inherited from the base plan.
  EXPECT_DOUBLE_EQ(first.plan->total_distance, base_plan->total_distance);
  EXPECT_EQ(first.plan->num_dispatches, base_plan->num_dispatches);
  // One sensor left the round, and ids were compacted to the derived
  // instance (0..28 after removing one of 30); the moved sensor keeps
  // id 3 (below the removed id) and is still served.
  std::size_t served = 0, served_moves = 0;
  for (const PlanTour& tour : first.plan->first_round_tours)
    for (std::size_t s : tour.sensors) {
      EXPECT_LT(s, 29u);
      ++served;
      if (s == 3u) ++served_moves;
    }
  EXPECT_EQ(served, 29u);
  EXPECT_EQ(served_moves, 1u);

  // Same patch again: derived-plan cache hit.
  const Response repeat = handle_delta(delta, &cache);
  ASSERT_TRUE(repeat.ok);
  EXPECT_TRUE(repeat.cached);
  EXPECT_EQ(repeat.plan->fingerprint, first.plan->fingerprint);

  // A commuted spelling of the same patch folds to the same derived key.
  const DeltaRequest commuted = DeltaBuilder("d2", base)
                                    .remove_sensor(17)
                                    .move_sensor(3, {120.5, 80.0})
                                    .build();
  const Response equivalent = handle_delta(commuted, &cache);
  ASSERT_TRUE(equivalent.ok);
  EXPECT_TRUE(equivalent.cached);
  EXPECT_EQ(equivalent.plan->fingerprint, first.plan->fingerprint);
}

TEST(HandleDelta, DerivedPlansChain) {
  PlanCache cache(16);
  const std::uint64_t base = solve_base(cache, 30, 2, 400.0, 11, 60.0);
  const Response first = handle_delta(
      DeltaBuilder("d1", base).move_sensor(4, {30.0, 30.0}).build(),
      &cache);
  ASSERT_TRUE(first.ok) << first.message;
  // The derived plan is itself a valid delta base.
  const Response second = handle_delta(
      DeltaBuilder("d2", first.plan->fingerprint)
          .add_sensor({210.0, 210.0}, 5.0)
          .build(),
      &cache);
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.derived);
  EXPECT_EQ(second.base_fingerprint, first.plan->fingerprint);
  // The addition took the next free sensor id (base n=30, one add).
  bool serves_new = false;
  for (const PlanTour& tour : second.plan->first_round_tours)
    for (std::size_t s : tour.sensors)
      if (s == 30u) serves_new = true;
  EXPECT_TRUE(serves_new);
}

TEST(HandleDelta, StructuredErrors) {
  PlanCache cache(16);
  const DeltaRequest orphan =
      DeltaBuilder("d", 0x123).remove_sensor(0).build();
  // Base fingerprint not cached.
  const Response unknown = handle_delta(orphan, &cache);
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error, ErrorCode::kUnknownBase);
  EXPECT_EQ(unknown.version, WireVersion::kV2);
  EXPECT_EQ(unknown.base_fingerprint, 0x123u);
  // No cache at all: the delta path cannot resolve any base.
  EXPECT_EQ(handle_delta(orphan, nullptr).error, ErrorCode::kUnknownBase);

  // Invalid patch against a real base.
  const std::uint64_t base = solve_base(cache, 30, 2, 400.0, 11, 60.0);
  const Response bad = handle_delta(
      DeltaBuilder("d", base).remove_sensor(999).build(), &cache);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, ErrorCode::kBadRequest);
  EXPECT_EQ(bad.version, WireVersion::kV2);
}

/// Deadline-driven round admission must only fire for cycles that were
/// genuinely *shortened* below the round's urgency bar. A τ that grew
/// (or stayed put) — even one sitting below the bar — must leave the
/// dispatched round untouched.
TEST(HandleDelta, DeadlineAdmissionRequiresShortenedCycle) {
  PlanCache cache(16);
  constexpr std::size_t n = 24;
  // Mixed cycles: the τ=5 sensors form the first dispatch round
  // (V_0 = [τ_min, 2 τ_min]); the τ=30 sensors sit outside it.
  std::vector<double> tau(n);
  for (std::size_t i = 0; i < n; ++i) tau[i] = (i % 2 == 0) ? 5.0 : 30.0;
  const Request request = RequestBuilder("base")
                              .preset(n, 2, 400.0, /*seed=*/5)
                              .cycle_values(tau)
                              .horizon(60.0)
                              .build();
  const Response base = handle_request(request, &cache);
  ASSERT_TRUE(base.ok) << base.message;

  const auto in_round = [](const Response& r, std::size_t s) {
    for (const PlanTour& tour : r.plan->first_round_tours)
      for (const std::size_t id : tour.sensors)
        if (id == s) return true;
    return false;
  };
  std::size_t a = n, b = n;  // a: in the round; b: outside it
  for (std::size_t i = 0; i < n; ++i) {
    if (in_round(base, i)) {
      if (a == n) a = i;
    } else if (b == n) {
      b = i;
    }
  }
  ASSERT_LT(a, n);
  ASSERT_LT(b, n);
  ASSERT_DOUBLE_EQ(tau[b], 30.0);

  // Raise the round's urgency bar: lengthen in-round sensor a's τ to 40
  // (membership is inherited by the repair, so a stays dispatched and
  // round_tau_max becomes 40 in the derived state).
  const Response lifted =
      handle_delta(DeltaBuilder("lift", base.plan->fingerprint)
                       .update_cycles(a, 40.0)
                       .build(),
                   &cache);
  ASSERT_TRUE(lifted.ok) << lifted.message;
  EXPECT_TRUE(in_round(lifted, a));
  EXPECT_FALSE(in_round(lifted, b));

  // b's τ grows 30 -> 35: below the bar, but NOT shortened — it must
  // not be force-inserted into the round.
  const Response longer =
      handle_delta(DeltaBuilder("longer", lifted.plan->fingerprint)
                       .update_cycles(b, 35.0)
                       .build(),
                   &cache);
  ASSERT_TRUE(longer.ok) << longer.message;
  EXPECT_FALSE(in_round(longer, b));

  // b's τ restated at exactly 30 (unchanged within the value quantum):
  // same story.
  const Response same =
      handle_delta(DeltaBuilder("same", lifted.plan->fingerprint)
                       .update_cycles(b, 30.0)
                       .build(),
                   &cache);
  ASSERT_TRUE(same.ok) << same.message;
  EXPECT_FALSE(in_round(same, b));

  // Genuinely shortened below the bar: b joins the dispatch.
  const Response shortened =
      handle_delta(DeltaBuilder("short", lifted.plan->fingerprint)
                       .update_cycles(b, 6.0)
                       .build(),
                   &cache);
  ASSERT_TRUE(shortened.ok) << shortened.message;
  EXPECT_TRUE(in_round(shortened, b));
}

/// The equivalence grid: repairing the base plan must never serve the
/// patched round with a longer tour set than re-solving the patched
/// instance from scratch. Uniform τ keeps the first dispatch set equal
/// on both paths (all live sensors), so first-round lengths compare
/// like for like.
TEST(HandleDelta, DeltaNeverWorseThanFullResolve) {
  const double kField = 1000.0;
  const double kHorizon = 15.0;
  for (std::size_t n : {std::size_t{100}, std::size_t{800},
                        std::size_t{2000}}) {
    const Request base_request =
        RequestBuilder("base")
            .preset(n, 3, kField, /*seed=*/7)
            .cycle_values(std::vector<double>(n, 5.0))
            .horizon(kHorizon)
            .improve(true)
            .build();
    PlanCache cache(8);
    const Response base = handle_request(base_request, &cache);
    ASSERT_TRUE(base.ok) << base.message;
    const ResolvedInstance instance = resolve(base_request);
    const std::vector<geom::Point>& points =
        instance.network.sensor_points();

    for (std::size_t patch_size : {1u, 4u, 16u}) {
      // Deterministic mixed patch: mostly moves, an add and a removal in
      // the larger sizes. Additions reuse τ=5 so they join the round on
      // the full path too.
      DeltaBuilder builder("d", base.plan->fingerprint);
      std::vector<geom::Point> patched = points;
      std::vector<char> dropped(n, 0);
      for (std::size_t k = 0; k < patch_size; ++k) {
        const std::size_t s = (k * 37 + 11) % n;
        if (patch_size >= 4 && k == 1) {
          builder.remove_sensor(s);
          dropped[s] = 1;
        } else if (patch_size >= 4 && k == 2) {
          const geom::Point p{kField * 0.15 + 3.0 * k, kField * 0.85};
          builder.add_sensor(p, 5.0);
          patched.push_back(p);
        } else {
          const double dx = (k % 2 == 0) ? 18.5 : -12.0;
          const double dy = (k % 3 == 0) ? -9.0 : 14.0;
          const geom::Point p{points[s].x + dx, points[s].y + dy};
          builder.move_sensor(s, p);
          patched[s] = p;
        }
      }
      const Response delta = handle_delta(builder.build(), &cache);
      ASSERT_TRUE(delta.ok) << delta.message;

      std::vector<geom::Point> survivors;
      for (std::size_t i = 0; i < patched.size(); ++i)
        if (i >= n || !dropped[i]) survivors.push_back(patched[i]);
      const Request full_request =
          RequestBuilder("full")
              .inline_network(survivors, instance.network.depots(),
                              instance.network.base_station())
              .cycle_values(std::vector<double>(survivors.size(), 5.0))
              .horizon(kHorizon)
              .improve(true)
              .build();
      const Response full = handle_request(full_request, nullptr);
      ASSERT_TRUE(full.ok) << full.message;

      EXPECT_LE(delta.plan->first_round_length,
                full.plan->first_round_length + 1e-9)
          << "n=" << n << " patch=" << patch_size;
    }
  }
}

}  // namespace
}  // namespace mwc::svc
