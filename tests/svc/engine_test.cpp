#include "svc/engine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mwc::svc {
namespace {

Request preset_request(std::uint64_t seed = 7) {
  Request request;
  request.id = "t1";
  request.policy = "MinTotalDistance";
  request.network.inline_points = false;
  request.network.deployment.n = 40;
  request.network.deployment.q = 3;
  request.network.deployment.field_side = 500.0;
  request.network.seed = seed;
  request.cycles.inline_values = false;
  request.cycles.seed = 13;
  request.horizon = 250.0;
  return request;
}

TEST(Engine, ResolvesPresetDeterministically) {
  const Request request = preset_request();
  const ResolvedInstance a = resolve(request);
  const ResolvedInstance b = resolve(request);
  ASSERT_EQ(a.network.n(), 40u);
  ASSERT_EQ(a.network.q(), 3u);
  EXPECT_EQ(a.network.sensor_points(), b.network.sensor_points());
  EXPECT_EQ(a.network.depots(), b.network.depots());
  for (std::size_t i = 0; i < a.network.n(); ++i)
    EXPECT_DOUBLE_EQ(a.cycles->cycle_at_slot(i, 0),
                     b.cycles->cycle_at_slot(i, 0));
  EXPECT_EQ(fingerprint(request, a), fingerprint(request, b));
}

TEST(Engine, FingerprintSeparatesInstances) {
  const Request base = preset_request();
  const auto key = fingerprint(base, resolve(base));

  Request other_seed = preset_request(8);
  EXPECT_NE(fingerprint(other_seed, resolve(other_seed)), key);

  Request other_policy = preset_request();
  other_policy.policy = "Greedy";
  EXPECT_NE(fingerprint(other_policy, resolve(other_policy)), key);

  Request other_horizon = preset_request();
  other_horizon.horizon = 300.0;
  EXPECT_NE(fingerprint(other_horizon, resolve(other_horizon)), key);

  Request improved = preset_request();
  improved.improve = true;
  EXPECT_NE(fingerprint(improved, resolve(improved)), key);
}

TEST(Engine, PresetAndEquivalentInlineShareFingerprint) {
  const Request preset = preset_request();
  const ResolvedInstance instance = resolve(preset);

  // Re-describe the resolved instance inline: same geometry, slot-0
  // cycles pinned as explicit values.
  Request inline_request = preset;
  inline_request.network.inline_points = true;
  inline_request.network.sensors = instance.network.sensor_points();
  inline_request.network.depots = instance.network.depots();
  inline_request.network.base_station = instance.network.base_station();
  inline_request.cycles.inline_values = true;
  for (std::size_t i = 0; i < instance.network.n(); ++i)
    inline_request.cycles.values.push_back(
        instance.cycles->cycle_at_slot(i, 0));

  const ResolvedInstance inline_instance = resolve(inline_request);
  EXPECT_EQ(fingerprint(inline_request, inline_instance),
            fingerprint(preset, instance));
}

TEST(Engine, HandleRequestSolvesAndCaches) {
  PlanCache cache(8);
  const Request request = preset_request();

  const Response first = handle_request(request, &cache);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cached);
  ASSERT_NE(first.plan, nullptr);
  EXPECT_GT(first.plan->total_distance, 0.0);
  EXPECT_GT(first.plan->num_dispatches, 0u);
  EXPECT_EQ(first.plan->dead_sensors, 0u);
  EXPECT_FALSE(first.plan->first_round_tours.empty());

  const Response second = handle_request(request, &cache);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cached);
  // Golden: the cached response shares the identical Plan instance, so
  // tours and totals are bit-identical by construction.
  EXPECT_EQ(second.plan.get(), first.plan.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Engine, GoldenRepeatedSolveIsBitIdenticalEvenWithoutCache) {
  const Request request = preset_request();
  const Response a = handle_request(request, nullptr);
  const Response b = handle_request(request, nullptr);
  ASSERT_TRUE(a.ok && b.ok);
  ASSERT_NE(a.plan, b.plan);  // distinct solves
  EXPECT_EQ(a.plan->total_distance, b.plan->total_distance);  // bitwise
  EXPECT_EQ(a.plan->first_round_length, b.plan->first_round_length);
  ASSERT_EQ(a.plan->first_round_tours.size(),
            b.plan->first_round_tours.size());
  for (std::size_t t = 0; t < a.plan->first_round_tours.size(); ++t) {
    EXPECT_EQ(a.plan->first_round_tours[t].sensors,
              b.plan->first_round_tours[t].sensors);
    EXPECT_EQ(a.plan->first_round_tours[t].length,
              b.plan->first_round_tours[t].length);  // bitwise
  }
}

TEST(Engine, UnknownPolicyIsStructuredError) {
  Request request = preset_request();
  request.policy = "NoSuchPolicy";
  const Response response = handle_request(request, nullptr);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kUnknownPolicy);
  EXPECT_NE(response.message.find("NoSuchPolicy"), std::string::npos);
  EXPECT_NE(response.message.find("MinTotalDistance"), std::string::npos);
}

TEST(Engine, UnresolvableRequestIsBadRequest) {
  Request request = preset_request();
  request.network.inline_points = true;  // but no points supplied
  request.network.sensors.clear();
  request.cycles.inline_values = true;
  request.cycles.values = {1.0, 2.0};
  const Response response = handle_request(request, nullptr);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kBadRequest);
}

TEST(Engine, InlineCyclesDriveGreedyThreshold) {
  Request request = preset_request();
  request.policy = "Greedy";
  request.cycles.inline_values = true;
  request.cycles.values.assign(request.network.deployment.n, 10.0);
  const Response response = handle_request(request, nullptr);
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_GT(response.plan->num_dispatches, 0u);
}

}  // namespace
}  // namespace mwc::svc
