#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace mwc::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAndStats) {
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.num_buckets(), 3u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (boundary counts in the lower bucket)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(100.0); // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Registry, InstrumentAddressesAreStable) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("g");
  Gauge& g2 = reg.gauge("g");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, ContainsAnyKind) {
  Registry reg;
  EXPECT_FALSE(reg.contains("c"));
  reg.counter("c");
  reg.gauge("g");
  reg.histogram("h", {1.0});
  EXPECT_TRUE(reg.contains("c"));
  EXPECT_TRUE(reg.contains("g"));
  EXPECT_TRUE(reg.contains("h"));
  EXPECT_FALSE(reg.contains("missing"));
}

TEST(Registry, SnapshotCopiesValues) {
  Registry reg;
  reg.counter("events").add(3);
  reg.gauge("ratio").set(0.5);
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(1.5);

  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("events"), 1u);
  EXPECT_EQ(snap.counters.at("events"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("ratio"), 0.5);
  const HistogramSnapshot& hs = snap.histograms.at("lat");
  ASSERT_EQ(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.count, 1u);
  EXPECT_DOUBLE_EQ(hs.sum, 1.5);

  // Snapshot is a copy: later updates do not retroactively change it.
  reg.counter("events").add(1);
  EXPECT_EQ(snap.counters.at("events"), 3u);
}

TEST(HistogramSnapshot, QuantileEdgeCases) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0});

  // Empty histogram: every quantile is 0.
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("lat").quantile(0.5), 0.0);

  // A single observation pins all quantiles to that value.
  h.observe(5.0);
  const auto single = reg.snapshot().histograms.at("lat");
  EXPECT_DOUBLE_EQ(single.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 5.0);
}

TEST(HistogramSnapshot, QuantileInterpolatesWithinObservedRange) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {0.0, 10.0});
  h.observe(2.0);
  h.observe(8.0);
  const auto snap = reg.snapshot().histograms.at("lat");
  // Both land in the (0, 10] bucket, whose edges clamp to the observed
  // [2, 8]: rank 1 of 2 interpolates to the midpoint, rank 2 to the max.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 8.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(snap.quantile(2.0), 8.0);
  EXPECT_GE(snap.quantile(-1.0), 2.0);
}

TEST(HistogramSnapshot, QuantileClampsOverflowBucketToObservedMax) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0});
  h.observe(3.0);
  h.observe(7.0);  // both in the open-ended overflow bucket
  const auto snap = reg.snapshot().histograms.at("lat");
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_LE(snap.quantile(0.99), 7.0);
}

TEST(HistogramSnapshot, QuantileOnSingleBucketHistogram) {
  Registry reg;
  // One finite bucket (plus overflow) is the degenerate configuration:
  // empty stays 0, and observations inside the finite bucket interpolate
  // between the observed min and max, never outside.
  Histogram& h = reg.histogram("lat", {10.0});
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("lat").quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("lat").quantile(1.0), 0.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(6.0);
  const auto snap = reg.snapshot().histograms.at("lat");
  EXPECT_GE(snap.quantile(0.0), 2.0);
  EXPECT_LE(snap.quantile(1.0), 6.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 6.0);
  EXPECT_GE(snap.quantile(0.5), 2.0);
  EXPECT_LE(snap.quantile(0.5), 6.0);
}

TEST(RegistrySnapshot, OpenMetricsRendersCountersGaugesHistograms) {
  Registry reg;
  reg.counter("svc.requests.accepted").add(3);
  reg.gauge("svc.queue.depth").set(2.0);
  Histogram& h = reg.histogram("svc.latency_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  const std::string text = reg.snapshot().to_openmetrics();
  // Counters: sanitized name, TYPE line, _total suffix.
  EXPECT_NE(text.find("# TYPE svc_requests_accepted counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_requests_accepted_total 3\n"), std::string::npos);
  // Gauges export under the plain name.
  EXPECT_NE(text.find("# TYPE svc_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("svc_queue_depth 2\n"), std::string::npos);
  // Histogram buckets are cumulative, with +Inf == count.
  EXPECT_NE(text.find("# TYPE svc_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_count 3\n"), std::string::npos);
  // The document terminates with the OpenMetrics EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(RegistrySnapshot, OpenMetricsOnEmptyRegistryIsJustEof) {
  Registry reg;
  EXPECT_EQ(reg.snapshot().to_openmetrics(), "# EOF\n");
}

TEST(Registry, WriteOpenMetricsRoundTrip) {
  Registry reg;
  reg.counter("a.b").add(1);
  const std::string path =
      ::testing::TempDir() + "/mwc_registry_test_openmetrics.txt";
  ASSERT_TRUE(reg.write_openmetrics(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_EQ(buf.str(), reg.snapshot().to_openmetrics());
  EXPECT_FALSE(reg.write_openmetrics("/nonexistent-dir/metrics.txt"));
}

TEST(HistogramSnapshot, QuantileIsMonotoneInQ) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {0.5, 1.0, 2.0, 4.0, 8.0});
  for (int i = 1; i <= 100; ++i) h.observe(0.1 * i);
  const auto snap = reg.snapshot().histograms.at("lat");
  double previous = snap.quantile(0.0);
  for (double q = 0.05; q <= 1.0 + 1e-12; q += 0.05) {
    const double value = snap.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 10.0);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("n");
  c.add(7);
  reg.reset();
  EXPECT_TRUE(reg.contains("n"));
  EXPECT_EQ(c.value(), 0u);           // cached reference still valid
  EXPECT_EQ(&reg.counter("n"), &c);   // and still the same object
}

TEST(Registry, JsonHasSchemaAndValues) {
  Registry reg;
  reg.counter("a.count").add(2);
  reg.gauge("b.value").set(1.25);
  reg.histogram("c.hist", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"mwc.metrics.v1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.value\": 1.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos) << json;
}

TEST(Registry, JsonEscapesStrings) {
  Registry reg;
  reg.counter("weird\"name\\with\ncontrol").add(1);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\u000acontrol"),
            std::string::npos)
      << json;
}

TEST(Registry, WriteJsonRoundTrip) {
  Registry reg;
  reg.counter("k").add(5);
  const std::string path =
      ::testing::TempDir() + "/mwc_registry_test_metrics.json";
  ASSERT_TRUE(reg.write_json(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.to_json());
  std::remove(path.c_str());
}

TEST(Registry, WriteJsonFailsOnBadPath) {
  Registry reg;
  EXPECT_FALSE(reg.write_json("/nonexistent-dir/metrics.json"));
}

TEST(Registry, ConcurrentCountingIsExact) {
  Registry reg;
  Counter& c = reg.counter("hot");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

#if MWC_OBS_ENABLED
TEST(ObsMacros, WriteToGlobalRegistry) {
  Registry& global = Registry::global();
  const std::uint64_t before =
      global.counter("test.macro_count").value();
  MWC_OBS_COUNT("test.macro_count");
  MWC_OBS_COUNT_N("test.macro_count", 4);
  EXPECT_EQ(global.counter("test.macro_count").value(), before + 5);

  MWC_OBS_GAUGE_SET("test.macro_gauge", 2.0);
  MWC_OBS_GAUGE_ADD("test.macro_gauge", 0.5);
  EXPECT_DOUBLE_EQ(global.gauge("test.macro_gauge").value(), 2.5);

  const std::uint64_t hist_before =
      global.contains("test.macro_hist")
          ? global.histogram("test.macro_hist", {1.0, 2.0}).count()
          : 0;
  MWC_OBS_HISTOGRAM("test.macro_hist", 1.5, 1.0, 2.0);
  EXPECT_EQ(global.histogram("test.macro_hist", {1.0, 2.0}).count(),
            hist_before + 1);
}
#else
TEST(ObsMacros, CompileToNoOpsWhenDisabled) {
  // The macros must not evaluate arguments or touch the registry.
  MWC_OBS_COUNT("test.disabled_count");
  MWC_OBS_COUNT_N("test.disabled_count", 4);
  MWC_OBS_GAUGE_SET("test.disabled_gauge", 1.0);
  MWC_OBS_HISTOGRAM("test.disabled_hist", 1.5, 1.0, 2.0);
  EXPECT_FALSE(Registry::global().contains("test.disabled_count"));
  EXPECT_FALSE(Registry::global().contains("test.disabled_gauge"));
  EXPECT_FALSE(Registry::global().contains("test.disabled_hist"));
}
#endif

}  // namespace
}  // namespace mwc::obs
