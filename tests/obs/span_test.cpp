#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "svc/json.hpp"

namespace mwc::obs {
namespace {

/// Restores the trace global state (enabled flag + buffers) after each
/// test, so tests compose in one process.
class TraceGuard {
 public:
  TraceGuard() {
    set_trace_enabled(false);
    reset_trace();
  }
  ~TraceGuard() {
    set_trace_enabled(false);
    reset_trace();
  }
};

bool has_event_named(const std::vector<TraceEvent>& events,
                     std::string_view name) {
  return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name != nullptr && name == e.name;
  });
}

TEST(Trace, NowIsMonotone) {
  const double a = now_us();
  const double b = now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  TraceGuard guard;
  ASSERT_FALSE(trace_enabled());
  { Span span("trace_test.disabled"); }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Trace, SpanRecordsCompleteEvent) {
  TraceGuard guard;
  set_trace_enabled(true);
  { Span span("trace_test.one"); }
  ASSERT_EQ(trace_event_count(), 1u);
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "trace_test.one");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  EXPECT_NE(events[0].tid, 0u);
}

TEST(Trace, NestedSpansSortedByStart) {
  TraceGuard guard;
  set_trace_enabled(true);
  {
    Span outer("trace_test.outer");
    { Span inner("trace_test.inner"); }
  }
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const TraceEvent& a, const TraceEvent& b) {
        return a.ts_us < b.ts_us;
      }));
  // The outer span starts first and fully contains the inner one.
  EXPECT_STREQ(events[0].name, "trace_test.outer");
  EXPECT_STREQ(events[1].name, "trace_test.inner");
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST(Trace, SpanStartedBeforeDisableStillRecordsItsNameDecision) {
  TraceGuard guard;
  // Enabled at construction, disabled before destruction: the span
  // checks the flag at construction time.
  set_trace_enabled(true);
  {
    Span span("trace_test.straddle");
    set_trace_enabled(false);
  }
  EXPECT_EQ(trace_event_count(), 1u);
}

TEST(Trace, ResetDropsEvents) {
  TraceGuard guard;
  set_trace_enabled(true);
  { Span span("trace_test.dropme"); }
  ASSERT_GE(trace_event_count(), 1u);
  reset_trace();
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  TraceGuard guard;
  set_trace_enabled(true);
  const std::size_t total = kTraceRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    Span span("trace_test.flood");
  }
  // This thread may have recorded a few extra spans via fixtures; at
  // minimum the flood alone overflows by 100.
  EXPECT_EQ(trace_event_count(), kTraceRingCapacity);
  EXPECT_GE(trace_dropped_count(), 100u);
}

TEST(Trace, TraceContextStampsEventsAndRestores) {
  TraceGuard guard;
  set_trace_enabled(true);
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceContext outer(42);
    EXPECT_EQ(current_trace_id(), 42u);
    { Span span("trace_test.ctx_outer"); }
    {
      TraceContext inner(7);
      EXPECT_EQ(current_trace_id(), 7u);
      { Span span("trace_test.ctx_inner"); }
    }
    EXPECT_EQ(current_trace_id(), 42u);
  }
  EXPECT_EQ(current_trace_id(), 0u);
  { Span span("trace_test.ctx_none"); }
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trace, 42u);
  EXPECT_EQ(events[1].trace, 7u);
  EXPECT_EQ(events[2].trace, 0u);
}

TEST(Trace, RingWraparoundKeepsNewestEvents) {
  TraceGuard guard;
  set_trace_enabled(true);
  // Flood well past the ring capacity, stamping each span with a
  // strictly increasing trace id so survivors are identifiable.
  const std::size_t total = kTraceRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    TraceContext ctx(i + 1);
    Span span("trace_test.wrap");
  }
  ASSERT_EQ(trace_event_count(), kTraceRingCapacity);
  EXPECT_GE(trace_dropped_count(), 100u);
  const auto events = trace_events();
  ASSERT_EQ(events.size(), kTraceRingCapacity);
  // Only the newest kTraceRingCapacity events survive: ids (101..total]
  // for a clean run (fixtures may shift the window, never backwards).
  std::uint64_t min_trace = ~0ull;
  std::uint64_t max_trace = 0;
  for (const TraceEvent& e : events) {
    min_trace = std::min(min_trace, e.trace);
    max_trace = std::max(max_trace, e.trace);
  }
  EXPECT_EQ(max_trace, static_cast<std::uint64_t>(total));
  EXPECT_GE(min_trace, static_cast<std::uint64_t>(total) -
                           kTraceRingCapacity + 1);
}

TEST(Trace, ChromeTraceAfterWraparoundIsValidJsonWithTraceArgs) {
  TraceGuard guard;
  set_trace_enabled(true);
  for (std::size_t i = 0; i < kTraceRingCapacity + 10; ++i) {
    TraceContext ctx(i + 1);
    Span span("trace_test.wrapjson");
  }
  const std::string path =
      ::testing::TempDir() + "/mwc_span_test_wrap_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());
  // The whole document must stay parseable after the ring wrapped.
  const svc::Json doc = svc::Json::parse(json);
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), kTraceRingCapacity);
  // Every event carries its trace id as a 16-hex-digit args entry.
  const auto& first = events.front();
  const std::string& trace_hex = first.at("args").at("trace").as_string();
  EXPECT_EQ(trace_hex.size(), 16u);
  EXPECT_EQ(trace_hex.find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

TEST(Trace, ThreadsGetDistinctTids) {
  TraceGuard guard;
  set_trace_enabled(true);
  { Span span("trace_test.main"); }
  std::thread worker([] { Span span("trace_test.worker"); });
  worker.join();
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_TRUE(has_event_named(events, "trace_test.main"));
  EXPECT_TRUE(has_event_named(events, "trace_test.worker"));
}

TEST(Trace, WriteChromeTraceProducesLoadableJson) {
  TraceGuard guard;
  set_trace_enabled(true);
  { Span span("trace_test.export"); }
  const std::string path = ::testing::TempDir() + "/mwc_span_test_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_test.export\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos) << json;
  std::remove(path.c_str());
}

TEST(Trace, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/trace.json"));
}

TEST(Trace, ScopeMacroHonoursKillSwitch) {
  TraceGuard guard;
  set_trace_enabled(true);
  {
    MWC_OBS_SCOPE("trace_test.macro");
  }
#if MWC_OBS_ENABLED
  EXPECT_EQ(trace_event_count(), 1u);
  EXPECT_TRUE(has_event_named(trace_events(), "trace_test.macro"));
#else
  // Kill switch: the macro compiles away even with tracing enabled...
  EXPECT_EQ(trace_event_count(), 0u);
  // ...but the Span class itself keeps working (library stays compiled).
  { Span span("trace_test.direct"); }
  EXPECT_EQ(trace_event_count(), 1u);
#endif
}

}  // namespace
}  // namespace mwc::obs
