#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/distance.hpp"
#include "graph/dsu.hpp"
#include "util/rng.hpp"

namespace mwc::graph {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  mwc::Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  return pts;
}

bool is_spanning_tree(std::size_t n, const std::vector<Edge>& edges) {
  if (n == 0) return edges.empty();
  if (edges.size() != n - 1) return false;
  Dsu dsu(n);
  for (const auto& e : edges) {
    if (!dsu.unite(e.u, e.v)) return false;  // cycle
  }
  return dsu.num_sets() == 1;
}

TEST(PrimMst, EmptyAndSingle) {
  const auto dist = [](std::size_t, std::size_t) { return 1.0; };
  EXPECT_EQ(prim_mst(0, dist).edges.size(), 0u);
  const auto single = prim_mst(1, dist);
  EXPECT_EQ(single.edges.size(), 0u);
  EXPECT_EQ(single.total_weight, 0.0);
}

TEST(PrimMst, KnownTriangle) {
  // Triangle with weights 1, 2, 3 -> MST weight 3.
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {0, 2}};
  const geom::DistanceMatrix d(pts);
  const auto mst = prim_mst(d);
  EXPECT_EQ(mst.edges.size(), 2u);
  EXPECT_NEAR(mst.total_weight, 3.0, 1e-12);
}

TEST(PrimMst, ProducesSpanningTree) {
  const auto pts = random_points(50, 1);
  const geom::DistanceMatrix d(pts);
  const auto mst = prim_mst(d);
  EXPECT_TRUE(is_spanning_tree(pts.size(), mst.edges));
}

TEST(PrimMst, RootChoiceDoesNotChangeWeight) {
  const auto pts = random_points(30, 2);
  const geom::DistanceMatrix d(pts);
  const auto w0 = prim_mst(d, 0).total_weight;
  const auto w7 = prim_mst(d, 7).total_weight;
  const auto w29 = prim_mst(d, 29).total_weight;
  EXPECT_NEAR(w0, w7, 1e-9);
  EXPECT_NEAR(w0, w29, 1e-9);
}

TEST(KruskalMst, KnownGraph) {
  // 4-node graph.
  std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 1.5},
                          {0, 3, 4.0}, {0, 2, 2.5}};
  const auto mst = kruskal_mst(4, edges);
  EXPECT_EQ(mst.edges.size(), 3u);
  EXPECT_NEAR(mst.total_weight, 4.5, 1e-12);
}

TEST(KruskalMst, DisconnectedYieldsForest) {
  std::vector<Edge> edges{{0, 1, 1.0}, {2, 3, 2.0}};
  const auto msf = kruskal_mst(4, edges);
  EXPECT_EQ(msf.edges.size(), 2u);
  EXPECT_NEAR(msf.total_weight, 3.0, 1e-12);
}

// Property: Prim and Kruskal agree on complete Euclidean graphs.
class MstAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstAgreement, PrimEqualsKruskal) {
  const auto pts = random_points(40, GetParam());
  const geom::DistanceMatrix d(pts);
  const auto prim = prim_mst(d);

  std::vector<Edge> all_edges;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      all_edges.push_back({i, j, d(i, j)});
  const auto kruskal = kruskal_mst(pts.size(), all_edges);

  EXPECT_NEAR(prim.total_weight, kruskal.total_weight, 1e-9);
  EXPECT_TRUE(is_spanning_tree(pts.size(), prim.edges));
  EXPECT_TRUE(is_spanning_tree(pts.size(), kruskal.edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(MstParents, RootIsItsOwnParent) {
  const auto pts = random_points(20, 9);
  const geom::DistanceMatrix d(pts);
  const auto mst = prim_mst(d);
  const auto parent = mst_parents(pts.size(), mst.edges, 5);
  EXPECT_EQ(parent[5], 5u);
  // Every node reaches the root.
  for (std::size_t v = 0; v < pts.size(); ++v) {
    std::size_t u = v;
    std::size_t steps = 0;
    while (u != 5 && steps <= pts.size()) {
      u = parent[u];
      ++steps;
    }
    EXPECT_EQ(u, 5u) << "node " << v << " does not reach the root";
  }
}

TEST(PrimMst, FunctionOracleMatchesMatrix) {
  const auto pts = random_points(25, 10);
  const geom::DistanceMatrix d(pts);
  const auto via_matrix = prim_mst(d);
  const auto via_fn = prim_mst(
      pts.size(),
      [&](std::size_t i, std::size_t j) { return d(i, j); });
  EXPECT_NEAR(via_matrix.total_weight, via_fn.total_weight, 1e-12);
}

}  // namespace
}  // namespace mwc::graph
