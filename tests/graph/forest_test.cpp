#include "graph/forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mwc::graph {
namespace {

TEST(RootedTree, EmptyTreeIsJustRoot) {
  const RootedTree tree(7, std::vector<Edge>{});
  EXPECT_EQ(tree.root(), 7u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.total_weight(), 0.0);
  EXPECT_TRUE(tree.valid());
  EXPECT_EQ(tree.preorder(), std::vector<std::size_t>{7});
}

TEST(RootedTree, PathTree) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
  const RootedTree tree(0, edges);
  EXPECT_EQ(tree.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(tree.total_weight(), 6.0);
  EXPECT_TRUE(tree.valid());
  const auto pre = tree.preorder();
  EXPECT_EQ(pre, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(RootedTree, StarTreePreorderVisitsAll) {
  const std::vector<Edge> edges{{5, 1, 1.0}, {5, 2, 1.0}, {5, 3, 1.0}};
  const RootedTree tree(5, edges);
  const auto pre = tree.preorder();
  ASSERT_EQ(pre.size(), 4u);
  EXPECT_EQ(pre[0], 5u);
  const std::set<std::size_t> rest(pre.begin() + 1, pre.end());
  EXPECT_EQ(rest, (std::set<std::size_t>{1, 2, 3}));
}

TEST(RootedTree, NonContiguousNodeIds) {
  const std::vector<Edge> edges{{100, 7, 1.0}, {7, 42, 2.0}};
  const RootedTree tree(100, edges);
  EXPECT_TRUE(tree.valid());
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.preorder().front(), 100u);
}

TEST(RootedTree, CycleIsInvalid) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  const RootedTree tree(0, edges);
  EXPECT_FALSE(tree.valid());
}

TEST(RootedTree, DisconnectedEdgesAreInvalid) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {5, 6, 1.0}};
  const RootedTree tree(0, edges);
  EXPECT_FALSE(tree.valid());  // 5-6 unreachable from root 0
}

TEST(RootedTree, PreorderIsDeterministic) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0},
                                {1, 4, 1.0}};
  const RootedTree tree(0, edges);
  const auto a = tree.preorder();
  const auto b = tree.preorder();
  EXPECT_EQ(a, b);
  // Children visited in edge insertion order: 1 before 2, 3 before 4.
  EXPECT_EQ(a, (std::vector<std::size_t>{0, 1, 3, 4, 2}));
}

TEST(RootedForest, Totals) {
  RootedForest forest;
  forest.trees.emplace_back(0, std::vector<Edge>{{0, 1, 2.0}});
  forest.trees.emplace_back(5, std::vector<Edge>{{5, 6, 3.0}, {6, 7, 1.0}});
  forest.trees.emplace_back(9, std::vector<Edge>{});
  EXPECT_DOUBLE_EQ(forest.total_weight(), 6.0);
  EXPECT_EQ(forest.total_nodes(), 6u);
}

}  // namespace
}  // namespace mwc::graph
