#include "graph/dsu.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace mwc::graph {
namespace {

TEST(Dsu, InitiallySingletons) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.find(i), i);
    EXPECT_EQ(dsu.set_size(i), 1u);
  }
}

TEST(Dsu, UniteMergesSets) {
  Dsu dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.num_sets(), 3u);
  EXPECT_EQ(dsu.set_size(0), 2u);
}

TEST(Dsu, UniteSameSetReturnsFalse) {
  Dsu dsu(3);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_FALSE(dsu.unite(0, 0));
  EXPECT_EQ(dsu.num_sets(), 2u);
}

TEST(Dsu, TransitiveConnectivity) {
  Dsu dsu(5);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  EXPECT_FALSE(dsu.connected(0, 3));
  dsu.unite(1, 2);
  EXPECT_TRUE(dsu.connected(0, 3));
  EXPECT_EQ(dsu.set_size(3), 4u);
}

TEST(Dsu, Reset) {
  Dsu dsu(3);
  dsu.unite(0, 1);
  dsu.reset(4);
  EXPECT_EQ(dsu.size(), 4u);
  EXPECT_EQ(dsu.num_sets(), 4u);
  EXPECT_FALSE(dsu.connected(0, 1));
}

// Property: Dsu agrees with a naive label-propagation model under random
// operation sequences.
class DsuProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsuProperty, MatchesNaiveModel) {
  const std::size_t n = 60;
  Dsu dsu(n);
  std::vector<std::size_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = i;

  mwc::Rng rng(GetParam());
  for (int op = 0; op < 500; ++op) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (rng.bernoulli(0.5)) {
      const bool merged = dsu.unite(a, b);
      EXPECT_EQ(merged, label[a] != label[b]);
      if (label[a] != label[b]) {
        const auto from = label[b], to = label[a];
        for (auto& l : label)
          if (l == from) l = to;
      }
    } else {
      EXPECT_EQ(dsu.connected(a, b), label[a] == label[b]);
    }
    // Invariant: number of sets matches distinct labels.
    std::set<std::size_t> distinct(label.begin(), label.end());
    EXPECT_EQ(dsu.num_sets(), distinct.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsuProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace mwc::graph
