#include "graph/euler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/mst.hpp"
#include "util/rng.hpp"

namespace mwc::graph {
namespace {

// Verifies that `walk` is a closed walk over exactly the edges of `edges`
// (as a multiset).
void expect_valid_circuit(const std::vector<Edge>& edges,
                          const std::vector<std::size_t>& walk,
                          std::size_t start) {
  ASSERT_EQ(walk.size(), edges.size() + 1);
  EXPECT_EQ(walk.front(), start);
  EXPECT_EQ(walk.back(), start);

  std::multiset<std::pair<std::size_t, std::size_t>> expected;
  for (const auto& e : edges)
    expected.insert(std::minmax(e.u, e.v));
  std::multiset<std::pair<std::size_t, std::size_t>> walked;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i)
    walked.insert(std::minmax(walk[i], walk[i + 1]));
  EXPECT_EQ(expected, walked);
}

TEST(HasEulerianCircuit, EmptyGraph) {
  EXPECT_TRUE(has_eulerian_circuit({}));
}

TEST(HasEulerianCircuit, TriangleHasOne) {
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  EXPECT_TRUE(has_eulerian_circuit(edges));
}

TEST(HasEulerianCircuit, PathHasNone) {
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}};
  EXPECT_FALSE(has_eulerian_circuit(edges));  // endpoints have odd degree
}

TEST(HasEulerianCircuit, DisconnectedEvenComponentsFail) {
  const std::vector<Edge> edges{{0, 1, 1}, {1, 0, 1}, {2, 3, 1}, {3, 2, 1}};
  EXPECT_FALSE(has_eulerian_circuit(edges));
}

TEST(EulerianCircuit, Triangle) {
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  const auto walk = eulerian_circuit(edges, 0);
  expect_valid_circuit(edges, walk, 0);
}

TEST(EulerianCircuit, EmptyEdgesSingleNode) {
  const auto walk = eulerian_circuit({}, 9);
  EXPECT_EQ(walk, std::vector<std::size_t>{9});
}

TEST(EulerianCircuit, MultiEdges) {
  // Two parallel edges 0-1: circuit 0,1,0.
  const std::vector<Edge> edges{{0, 1, 1}, {0, 1, 1}};
  const auto walk = eulerian_circuit(edges, 0);
  expect_valid_circuit(edges, walk, 0);
}

TEST(EulerianCircuit, TwoTrianglesSharingNode) {
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
                                {0, 3, 1}, {3, 4, 1}, {4, 0, 1}};
  const auto walk = eulerian_circuit(edges, 0);
  expect_valid_circuit(edges, walk, 0);
}

TEST(DoubledTreeCircuit, SingleEdge) {
  const std::vector<Edge> tree{{0, 1, 5.0}};
  const auto walk = doubled_tree_circuit(tree, 0);
  EXPECT_EQ(walk, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(DoubledTreeCircuit, UsesEveryTreeEdgeTwice) {
  const std::vector<Edge> tree{{0, 1, 1}, {1, 2, 1}, {1, 3, 1}, {0, 4, 1}};
  const auto walk = doubled_tree_circuit(tree, 0);
  ASSERT_EQ(walk.size(), 2 * tree.size() + 1);
  std::map<std::pair<std::size_t, std::size_t>, int> uses;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i)
    ++uses[std::minmax(walk[i], walk[i + 1])];
  for (const auto& e : tree)
    EXPECT_EQ(uses[std::minmax(e.u, e.v)], 2);
}

// Property: doubled circuits of random MSTs are valid.
class DoubledTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubledTreeProperty, RandomMstCircuitsValid) {
  mwc::Rng rng(GetParam());
  const std::size_t n = 30;
  std::vector<mwc::geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  const auto mst = prim_mst(
      n, [&](std::size_t a, std::size_t b) {
        return mwc::geom::distance(pts[a], pts[b]);
      });
  const auto walk = doubled_tree_circuit(mst.edges, 0);
  ASSERT_EQ(walk.size(), 2 * mst.edges.size() + 1);
  EXPECT_EQ(walk.front(), 0u);
  EXPECT_EQ(walk.back(), 0u);
  // Every node appears.
  const std::set<std::size_t> visited(walk.begin(), walk.end());
  EXPECT_EQ(visited.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubledTreeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ShortcutClosedWalk, RemovesRepeats) {
  const std::vector<std::size_t> walk{0, 1, 2, 1, 3, 1, 0};
  EXPECT_EQ(shortcut_closed_walk(walk),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ShortcutClosedWalk, Empty) {
  EXPECT_TRUE(shortcut_closed_walk(std::vector<std::size_t>{}).empty());
}

TEST(ShortcutClosedWalk, KeepsFirstOccurrenceOrder) {
  const std::vector<std::size_t> walk{5, 3, 5, 9, 3, 5};
  EXPECT_EQ(shortcut_closed_walk(walk), (std::vector<std::size_t>{5, 3, 9}));
}

}  // namespace
}  // namespace mwc::graph
