// Flood-monitoring scenario (the paper's motivating application class):
// a grid of water-level sensors relays readings over multihop routes to a
// base station. Instead of the synthetic "linear" cycle model, this
// example derives each sensor's energy consumption from the actual relay
// load on the routing tree (wsn/energy.hpp), converts it to a maximum
// charging cycle, and schedules a charger fleet to keep the network alive
// through a monitoring season — then verifies the plan in the simulator
// and compares it with on-demand greedy charging.
//
//   ./flood_monitoring [--n 120] [--q 4] [--range 160] [--seasons 40]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);

  // Jittered grid of river/levee sensors across a 1 km x 1 km basin.
  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 120));
  deployment.q = static_cast<std::size_t>(args.get_int_or("q", 4));
  deployment.battery_capacity = 2.0;
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 2014)));
  const wsn::Network network = wsn::deploy_grid(deployment, 0.3, rng);

  // Physical energy model: unit-disk links, shortest-path routing to the
  // base station, per-node relay loads -> consumption rates -> cycles.
  wsn::EnergyModelConfig energy;
  energy.comm_range = args.get_double_or("range", 160.0);
  energy.gen_rate = 1.0;
  energy.e_tx = 1.6e-3;
  energy.e_rx = 0.8e-3;
  energy.e_sense = 0.4e-3;
  const auto profile = wsn::compute_energy_profile(network, energy);

  double max_load = 0.0, min_cycle = 1e18, max_cycle = 0.0;
  for (std::size_t i = 0; i < network.n(); ++i) {
    max_load = std::max(max_load, profile.load[i]);
    min_cycle = std::min(min_cycle, profile.cycle[i]);
    max_cycle = std::max(max_cycle, profile.cycle[i]);
  }
  std::printf("flood basin: %zu sensors, comm range %.0f m\n", network.n(),
              energy.comm_range);
  std::printf("relay loads: up to %.0fx a leaf's traffic; derived charging "
              "cycles span [%.1f, %.1f] (ratio %.1f)\n",
              max_load, min_cycle, max_cycle, max_cycle / min_cycle);

  std::printf("\nhotspot sensors (top relay load):\n");
  std::vector<std::size_t> order(network.n());
  for (std::size_t i = 0; i < network.n(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profile.load[a] > profile.load[b];
  });
  for (std::size_t r = 0; r < 5 && r < order.size(); ++r) {
    const std::size_t i = order[r];
    std::printf("  sensor %3zu at (%4.0f, %4.0f): load %4.0f, %zu hops, "
                "cycle %.1f\n",
                i, network.sensor(i).position.x,
                network.sensor(i).position.y, profile.load[i],
                profile.hops[i], profile.cycle[i]);
  }

  // Season plan: Algorithm 3 on the derived cycles.
  const double T =
      args.get_double_or("seasons", 40.0) * min_cycle;
  const auto schedule = charging::build_min_total_distance_schedule(
      network, profile.cycle, T);

  std::printf("\ncycle classes and round tours:\n");
  ConsoleTable table({"class", "sensors", "cycle", "round tour (km)"});
  for (std::size_t k = 0; k <= schedule.partition.K; ++k) {
    table.add_row({"V_" + std::to_string(k),
                   std::to_string(schedule.partition.groups[k].size()),
                   fmt_fixed(schedule.partition.class_cycle(k), 1),
                   fmt_fixed(
                       schedule.tours_by_depth[k].total_length / 1000.0,
                       2)});
  }
  table.print(std::cout);
  std::printf("season plan: %zu dispatches over T=%.0f, %.1f km travel\n",
              schedule.dispatches.size(), T,
              schedule.total_cost / 1000.0);

  // Verify by simulation on the derived cycles, and compare with greedy.
  wsn::CycleModelConfig cycle_band;
  cycle_band.tau_min = 0.5 * min_cycle;
  cycle_band.tau_max = 2.0 * max_cycle;
  cycle_band.sigma = 0.0;  // cycles are exactly the derived means
  const auto cycle_model =
      wsn::CycleModel::from_means(profile.cycle, cycle_band, 1);

  sim::SimOptions sim_options;
  sim_options.horizon = T;
  sim::Simulator simulator(network, cycle_model, sim_options);

  charging::MinTotalDistancePolicy planned;
  const auto planned_result = simulator.run(planned);
  charging::GreedyPolicy greedy(
      charging::GreedyOptions{.threshold = min_cycle});
  const auto greedy_result = simulator.run(greedy);

  std::printf("\nsimulation over the season:\n");
  std::printf("  MinTotalDistance: %.1f km, %zu dispatches, %zu dead\n",
              planned_result.service_cost / 1000.0,
              planned_result.num_dispatches, planned_result.dead_sensors);
  std::printf("  Greedy:           %.1f km, %zu dispatches, %zu dead\n",
              greedy_result.service_cost / 1000.0,
              greedy_result.num_dispatches, greedy_result.dead_sensors);
  std::printf("  planned fleet saves %.0f%% of travel\n",
              100.0 * (1.0 - planned_result.service_cost /
                                 greedy_result.service_cost));
  return planned_result.feasible() && greedy_result.feasible() ? 0 : 1;
}
