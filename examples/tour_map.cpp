// Tour map: renders a deployment, its multihop routing tree, and the
// charging tours of selected MinTotalDistance rounds to SVG files you can
// open in any browser — the visual sanity check for everything the other
// examples compute.
//
//   ./tour_map [--n 150] [--q 5] [--out /tmp]
// writes <out>/mwc_network.svg, <out>/mwc_routing.svg,
//        <out>/mwc_round_k<k>.svg for each cycle class k.
#include <cstdio>
#include <string>

#include "charging/min_total_distance.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "viz/render.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const std::string out = args.get_or("out", "/tmp");

  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 150));
  deployment.q = static_cast<std::size_t>(args.get_int_or("q", 5));
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 12)));
  const wsn::Network network = wsn::deploy_random(deployment, rng);

  // 1. Deployment map.
  viz::render_network(network).save(out + "/mwc_network.svg");
  std::printf("wrote %s/mwc_network.svg\n", out.c_str());

  // 2. Routing tree that motivates the linear cycle distribution.
  wsn::EnergyModelConfig energy;
  energy.comm_range = 180.0;
  const auto profile = wsn::compute_energy_profile(network, energy);
  viz::render_routing_tree(network, profile)
      .save(out + "/mwc_routing.svg");
  std::printf("wrote %s/mwc_routing.svg\n", out.c_str());

  // 3. One tour map per cycle class of the MinTotalDistance schedule:
  //    class k's map shows the round that charges V_0 ∪ ... ∪ V_k.
  wsn::CycleModelConfig cycles_config;
  const wsn::CycleModel cycle_model(network, cycles_config, 5);
  const auto schedule = charging::build_min_total_distance_schedule(
      network, cycle_model.fixed_cycles(), /*T=*/1000.0);

  std::vector<std::size_t> cumulative;
  for (std::size_t k = 0; k <= schedule.partition.K; ++k) {
    cumulative.insert(cumulative.end(),
                      schedule.partition.groups[k].begin(),
                      schedule.partition.groups[k].end());
    std::sort(cumulative.begin(), cumulative.end());
    const std::string path =
        out + "/mwc_round_k" + std::to_string(k) + ".svg";
    viz::render_round(network, cumulative, schedule.tours_by_depth[k])
        .save(path);
    std::printf("wrote %s  (%zu sensors, %.1f km of tours)\n", path.c_str(),
                cumulative.size(),
                schedule.tours_by_depth[k].total_length / 1000.0);
  }
  return 0;
}
