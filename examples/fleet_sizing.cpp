// Fleet sizing study: how many mobile chargers (and depots) does a
// deployment actually need? Sweeps q, reports the service cost, the
// per-charger utilization split, and the marginal saving of each extra
// charger — the operational question a network owner asks before buying
// vehicles.
//
//   ./fleet_sizing [--n 200] [--qmax 8] [--trials 5]
#include <cstdio>
#include <iostream>

#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  using namespace mwc::exp;
  CliArgs args(argc, argv);

  auto config = paper_defaults();
  config.deployment.n =
      static_cast<std::size_t>(args.get_int_or("n", 200));
  config.trials = static_cast<std::size_t>(args.get_int_or("trials", 5));
  const auto qmax = static_cast<std::size_t>(args.get_int_or("qmax", 8));

  std::printf("fleet sizing: n=%zu sensors, linear cycles [%.0f, %.0f], "
              "T=%.0f, %zu topologies per point\n\n",
              config.deployment.n, config.cycles.tau_min,
              config.cycles.tau_max, config.sim.horizon, config.trials);

  ConsoleTable table({"q", "cost (km)", "marginal saving", "km/charger",
                      "busiest charger"});
  double previous_cost = 0.0;
  for (std::size_t q = 1; q <= qmax; ++q) {
    config.deployment.q = q;

    // Average the per-charger breakdown over the trials directly.
    std::vector<double> costs;
    std::vector<double> per_charger(q, 0.0);
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto result =
          run_trial(config, "MinTotalDistance", trial);
      costs.push_back(result.service_cost);
      for (std::size_t l = 0; l < q; ++l)
        per_charger[l] += result.per_charger_cost[l] / double(config.trials);
    }
    const auto stats = summarize(costs);
    double busiest = 0.0;
    for (double c : per_charger) busiest = std::max(busiest, c);

    std::string marginal = "-";
    if (q > 1 && previous_cost > 0.0) {
      marginal = fmt_fixed(
                     100.0 * (previous_cost - stats.mean) / previous_cost,
                     1) +
                 "%";
    }
    table.add_row({std::to_string(q), fmt_fixed(stats.mean / 1000.0, 1),
                   marginal,
                   fmt_fixed(stats.mean / 1000.0 / double(q), 1),
                   fmt_fixed(busiest / 1000.0, 1)});
    previous_cost = stats.mean;
  }
  table.print(std::cout);
  std::printf("\nReading: the co-located depot handles the base-station "
              "hotspot; extra depots mainly shorten approach legs, so "
              "returns diminish once the field is covered.\n");
  return 0;
}
