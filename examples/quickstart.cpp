// Quickstart: deploy a small sensor network, compute a MinTotalDistance
// charging schedule, inspect its rounds and tours, and verify it in the
// simulator. Start here to learn the public API.
//
//   ./quickstart [--n 30] [--q 3] [--horizon 64] [--seed 7]
#include <cstdio>

#include "charging/min_total_distance.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);

  // 1. Deploy a network: n sensors uniform in a 1 km^2 field, a base
  //    station at the centre, q depots each hosting one mobile charger.
  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 30));
  deployment.q = static_cast<std::size_t>(args.get_int_or("q", 3));
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 7)));
  const wsn::Network network = wsn::deploy_random(deployment, rng);
  std::printf("deployed %zu sensors, %zu chargers, base station (%.0f, %.0f)\n",
              network.n(), network.q(), network.base_station().x,
              network.base_station().y);

  // 2. Assign maximum charging cycles: sensors near the base station
  //    relay more traffic and drain faster (the "linear" model).
  wsn::CycleModelConfig cycle_config;
  cycle_config.tau_min = 1.0;
  cycle_config.tau_max = 16.0;
  const wsn::CycleModel cycle_model(network, cycle_config, /*seed=*/11);
  const auto cycles = cycle_model.fixed_cycles();

  // 3. Build the MinTotalDistance schedule (Algorithm 3) offline.
  const double T = args.get_double_or("horizon", 64.0);
  const auto schedule =
      mwc::charging::build_min_total_distance_schedule(network, cycles, T);
  std::printf("\ncycle classes (K=%zu):\n", schedule.partition.K);
  for (std::size_t k = 0; k <= schedule.partition.K; ++k) {
    std::printf("  V_%zu: %3zu sensors, charged every %5.1f — round tour %.0f m\n",
                k, schedule.partition.groups[k].size(),
                schedule.partition.class_cycle(k),
                schedule.tours_by_depth[k].total_length);
  }
  std::printf("schedule: %zu dispatches over T=%.0f, total cost %.1f km\n",
              schedule.dispatches.size(), T, schedule.total_cost / 1000.0);

  // Peek at the first few rounds.
  std::printf("\nfirst rounds:\n");
  for (std::size_t j = 0; j < schedule.dispatches.size() && j < 4; ++j) {
    const auto& d = schedule.dispatches[j];
    std::printf("  t=%5.1f charge %zu sensors\n", d.time,
                d.sensors.size());
  }

  // 4. Verify feasibility by simulation: the policy form of the same
  //    algorithm drives an event simulator that tracks every battery.
  //    All tour-construction knobs live in one place — sim.tour_options
  //    (a tsp::QRootedOptions): construction algorithm, 2-opt/Or-opt
  //    polish, and their iteration caps.
  sim::SimOptions sim_options;
  sim_options.horizon = T;
  sim_options.tour_options.improve = false;  // flip on for polished tours
  sim::Simulator simulator(network, cycle_model, sim_options);
  charging::MinTotalDistancePolicy policy;
  const auto result = simulator.run(policy);
  std::printf("\nsimulated: cost %.1f km over %zu dispatches, %zu dead sensors%s\n",
              result.service_cost / 1000.0, result.num_dispatches,
              result.dead_sensors,
              result.feasible() ? " (feasible)" : " (INFEASIBLE!)");

  // Identical dispatch sets are costed once: the simulator memoizes tour
  // costs over a shared distance oracle, so only the K+1 round classes
  // ever miss.
  std::printf("tour cache: %zu hits, %zu misses\n", result.tour_cache_hits,
              result.tour_cache_misses);

  // 5. Compare against the greedy on-demand baseline. Policies are
  //    registered by name in exp::PolicyRegistry — list them with
  //    exp::PolicyRegistry::global().names().
  const auto greedy = exp::make_policy("Greedy");
  const auto greedy_result = simulator.run(*greedy);
  std::printf("greedy baseline: cost %.1f km (MinTotalDistance saves %.0f%%)\n",
              greedy_result.service_cost / 1000.0,
              100.0 * (1.0 - result.service_cost /
                                 greedy_result.service_cost));
  return result.feasible() ? 0 : 1;
}
