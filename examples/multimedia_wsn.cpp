// Multimedia surveillance WSN: camera nodes whose energy drain is driven
// by scene activity, not by routing distance — the paper's *random*
// distribution, with cycles that change over time as activity shifts.
// Demonstrates the variable-cycle machinery: per-slot cycle redraws, the
// EWMA rate predictor each sensor runs (Sec. VI-A), and the
// MinTotalDistance-var heuristic's plan recomputation.
//
//   ./multimedia_wsn [--n 150] [--q 5] [--slot 10] [--sigma 8]
#include <cstdio>

#include "charging/greedy.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"
#include "wsn/predictor.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);

  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 150));
  deployment.q = static_cast<std::size_t>(args.get_int_or("q", 5));
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 99)));
  const wsn::Network network = wsn::deploy_random(deployment, rng);

  // Camera workload: cycles uniform in [2, 40], re-drawn every slot with
  // jitter sigma — activity at a camera is uncorrelated with its
  // distance to the base station.
  wsn::CycleModelConfig cycle_config;
  cycle_config.distribution = wsn::CycleDistribution::kRandom;
  cycle_config.tau_min = 2.0;
  cycle_config.tau_max = 40.0;
  cycle_config.sigma = args.get_double_or("sigma", 8.0);
  const wsn::CycleModel cycle_model(network, cycle_config, /*seed=*/5);

  const double slot = args.get_double_or("slot", 10.0);
  const double T = args.get_double_or("horizon", 1000.0);
  std::printf("multimedia WSN: %zu cameras, cycles U[%.0f, %.0f] redrawn "
              "every %.0f (sigma %.0f), T=%.0f\n",
              network.n(), cycle_config.tau_min, cycle_config.tau_max,
              slot, cycle_config.sigma, T);

  // Each camera runs the paper's EWMA predictor on its consumption rate;
  // show how well it tracks one camera's true rate across slots.
  {
    const std::size_t cam = 0;
    wsn::EwmaPredictor predictor(
        /*gamma=*/0.5, 1.0 / cycle_model.cycle_at_slot(cam, 0));
    std::printf("\ncamera %zu rate tracking (EWMA gamma=0.5):\n", cam);
    std::printf("  %-6s %-12s %-12s %-10s\n", "slot", "true cycle",
                "predicted", "error");
    for (std::size_t s = 1; s <= 6; ++s) {
      const double true_cycle = cycle_model.cycle_at_slot(cam, s);
      predictor.observe(1.0 / true_cycle);
      const double predicted = predictor.predicted_cycle(1.0);
      std::printf("  %-6zu %-12.2f %-12.2f %+.1f%%\n", s, true_cycle,
                  predicted, 100.0 * (predicted - true_cycle) / true_cycle);
    }
  }

  // Run the variable-cycle heuristic against greedy on identical draws.
  sim::SimOptions sim_options;
  sim_options.horizon = T;
  sim_options.slot_length = slot;
  sim::Simulator simulator(network, cycle_model, sim_options);

  charging::MinTotalDistanceVarPolicy var_policy;
  const auto var_result = simulator.run(var_policy);
  charging::GreedyPolicy greedy(
      charging::GreedyOptions{.threshold = cycle_config.tau_min});
  const auto greedy_result = simulator.run(greedy);

  std::printf("\nresults over T=%.0f:\n", T);
  std::printf("  MinTotalDistance-var: %8.1f km, %5zu dispatches, "
              "%3zu plan recomputes, %zu dead\n",
              var_result.service_cost / 1000.0, var_result.num_dispatches,
              var_policy.recompute_count(), var_result.dead_sensors);
  std::printf("  Greedy:               %8.1f km, %5zu dispatches, %zu dead\n",
              greedy_result.service_cost / 1000.0,
              greedy_result.num_dispatches, greedy_result.dead_sensors);
  std::printf("  adaptive plan saves %.0f%% of travel\n",
              100.0 * (1.0 - var_result.service_cost /
                                 greedy_result.service_cost));
  return var_result.feasible() && greedy_result.feasible() ? 0 : 1;
}
