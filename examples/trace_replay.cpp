// Trace replay: snapshot a cycle history to CSV, reload it, and re-run
// different charging policies against the *exact same* workload — the
// workflow for comparing schedulers on recorded field data.
//
//   ./trace_replay [--n 100] [--slots 60] [--slot 10] [--out /tmp/trace.csv]
#include <cstdio>
#include <stdexcept>
#include <string>

#include "charging/greedy.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"
#include "wsn/storm.hpp"
#include "wsn/trace.hpp"

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);
  const std::string trace_path =
      args.get_or("out", "/tmp/mwc_replay_trace.csv");

  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 100));
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 4)));
  const wsn::Network network = wsn::deploy_random(deployment, rng);

  // "Field measurements": a storm-driven history, exported to CSV. In a
  // real deployment this file would come from the base station's logs.
  wsn::StormConfig storm_config;
  storm_config.p_enter = 0.1;
  storm_config.stress_factor = 4.0;
  const wsn::StormCycleProcess recorded(network, storm_config, 21);
  const auto slots = static_cast<std::size_t>(args.get_int_or("slots", 60));
  wsn::save_cycle_trace(recorded, slots, trace_path);
  std::printf("recorded %zu slots of storm-driven cycles for %zu sensors "
              "-> %s\n",
              slots, network.n(), trace_path.c_str());

  // Reload and replay against multiple policies.
  const auto trace = wsn::load_cycle_trace(trace_path);
  const double slot_length = args.get_double_or("slot", 10.0);
  sim::SimOptions options;
  options.slot_length = slot_length;
  options.horizon = static_cast<double>(slots) * slot_length;
  sim::Simulator simulator(network, trace, options);

  std::printf("\nreplaying T=%.0f against each policy:\n", options.horizon);
  {
    charging::MinTotalDistanceVarPolicy policy;
    const auto result = simulator.run(policy);
    std::printf("  %-22s %8.1f km, %4zu dispatches, %zu dead\n",
                policy.name().c_str(), result.service_cost / 1000.0,
                result.num_dispatches, result.dead_sensors);
  }
  {
    charging::GreedyPolicy policy(
        charging::GreedyOptions{.threshold = storm_config.tau_min});
    const auto result = simulator.run(policy);
    std::printf("  %-22s %8.1f km, %4zu dispatches, %zu dead\n",
                policy.name().c_str(), result.service_cost / 1000.0,
                result.num_dispatches, result.dead_sensors);
  }

  // Determinism check: the CSV round-trip preserved the workload.
  bool identical = true;
  for (std::size_t s = 0; s < slots && identical; ++s)
    for (std::size_t i = 0; i < network.n(); ++i)
      identical &= std::abs(trace.cycle_at_slot(i, s) -
                            recorded.cycle_at_slot(i, s)) <
                   1e-4 * recorded.cycle_at_slot(i, s);
  std::printf("\ntrace round-trip %s the recorded process\n",
              identical ? "matches" : "DIVERGES FROM");
  return identical ? 0 : 1;
}
