file(REMOVE_RECURSE
  "CMakeFiles/fleet_sizing.dir/fleet_sizing.cpp.o"
  "CMakeFiles/fleet_sizing.dir/fleet_sizing.cpp.o.d"
  "fleet_sizing"
  "fleet_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
