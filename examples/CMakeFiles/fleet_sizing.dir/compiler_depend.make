# Empty compiler generated dependencies file for fleet_sizing.
# This may be replaced when dependencies are built.
