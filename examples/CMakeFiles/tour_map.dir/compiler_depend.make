# Empty compiler generated dependencies file for tour_map.
# This may be replaced when dependencies are built.
