file(REMOVE_RECURSE
  "CMakeFiles/tour_map.dir/tour_map.cpp.o"
  "CMakeFiles/tour_map.dir/tour_map.cpp.o.d"
  "tour_map"
  "tour_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tour_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
