file(REMOVE_RECURSE
  "CMakeFiles/disaster_response.dir/disaster_response.cpp.o"
  "CMakeFiles/disaster_response.dir/disaster_response.cpp.o.d"
  "disaster_response"
  "disaster_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
