# Empty dependencies file for disaster_response.
# This may be replaced when dependencies are built.
