# Empty dependencies file for multimedia_wsn.
# This may be replaced when dependencies are built.
