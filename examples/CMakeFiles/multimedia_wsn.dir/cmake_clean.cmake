file(REMOVE_RECURSE
  "CMakeFiles/multimedia_wsn.dir/multimedia_wsn.cpp.o"
  "CMakeFiles/multimedia_wsn.dir/multimedia_wsn.cpp.o.d"
  "multimedia_wsn"
  "multimedia_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
