# Empty compiler generated dependencies file for flood_monitoring.
# This may be replaced when dependencies are built.
