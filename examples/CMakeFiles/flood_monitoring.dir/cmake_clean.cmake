file(REMOVE_RECURSE
  "CMakeFiles/flood_monitoring.dir/flood_monitoring.cpp.o"
  "CMakeFiles/flood_monitoring.dir/flood_monitoring.cpp.o.d"
  "flood_monitoring"
  "flood_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flood_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
