// Disaster response: a flood-detection WSN under storms. Each sensor's
// sampling rate — and hence its maximum charging cycle — follows a
// two-state Markov chain (calm / storm); optionally a single storm cell
// sweeps the field so bursts are spatially correlated. Shows how the
// variable-cycle heuristic re-plans as storms move, versus greedy
// on-demand charging on identical weather.
//
//   ./disaster_response [--n 150] [--penter 0.08] [--stress 5]
//                       [--regional] [--horizon 600]
#include <cstdio>

#include "charging/greedy.hpp"
#include "charging/var_heuristic.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"
#include "wsn/storm.hpp"

int main(int argc, char** argv) {
  using namespace mwc;
  CliArgs args(argc, argv);

  wsn::DeploymentConfig deployment;
  deployment.n = static_cast<std::size_t>(args.get_int_or("n", 150));
  deployment.q = static_cast<std::size_t>(args.get_int_or("q", 5));
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 3)));
  const wsn::Network network = wsn::deploy_random(deployment, rng);

  wsn::StormConfig storm_config;
  storm_config.p_enter = args.get_double_or("penter", 0.08);
  storm_config.p_exit = args.get_double_or("pexit", 0.3);
  storm_config.stress_factor = args.get_double_or("stress", 5.0);
  storm_config.regional = args.get_bool_or("regional", false);
  const wsn::StormCycleProcess weather(network, storm_config, /*seed=*/17);

  const double slot = args.get_double_or("slot", 5.0);
  const double T = args.get_double_or("horizon", 600.0);

  std::printf("disaster-response WSN: %zu sensors, %zu chargers\n",
              network.n(), network.q());
  std::printf("storm process: enter %.0f%%/slot, exit %.0f%%/slot, "
              "consumption x%.0f during storms%s\n",
              100.0 * storm_config.p_enter, 100.0 * storm_config.p_exit,
              storm_config.stress_factor,
              storm_config.regional ? " (regional cell)" : "");

  // Show the weather the fleet will face.
  std::printf("\nstorm coverage over the first slots:\n  ");
  for (std::size_t s = 0; s < 20; ++s) {
    const double f = weather.storm_fraction(s);
    std::printf("%c", f == 0.0 ? '.' : (f < 0.1 ? ':' : '#'));
  }
  std::printf("   (. calm, : scattered, # widespread)\n");

  sim::SimOptions sim_options;
  sim_options.horizon = T;
  sim_options.slot_length = slot;
  sim::Simulator simulator(network, weather, sim_options);

  charging::MinTotalDistanceVarPolicy var;
  const auto var_result = simulator.run(var);
  charging::GreedyPolicy greedy(
      charging::GreedyOptions{.threshold = storm_config.tau_min});
  const auto greedy_result = simulator.run(greedy);

  std::printf("\nover T=%.0f (%0.0f slots of weather):\n", T, T / slot);
  std::printf("  MinTotalDistance-var: %8.1f km, %4zu dispatches, "
              "%3zu re-plans, %zu dead\n",
              var_result.service_cost / 1000.0, var_result.num_dispatches,
              var.recompute_count(), var_result.dead_sensors);
  std::printf("  Greedy:               %8.1f km, %4zu dispatches, %zu dead\n",
              greedy_result.service_cost / 1000.0,
              greedy_result.num_dispatches, greedy_result.dead_sensors);
  if (greedy_result.service_cost > 0.0) {
    std::printf("  adaptive planning saves %.0f%% of fleet travel\n",
                100.0 * (1.0 - var_result.service_cost /
                                   greedy_result.service_cost));
  }
  return var_result.feasible() && greedy_result.feasible() ? 0 : 1;
}
