#!/usr/bin/env bash
# Reproduces every paper figure and ablation at a chosen averaging scale,
# writing console tables, CSVs, and SVG charts into results/.
#
#   scripts/reproduce_all.sh [trials]      # default 30; paper used 100
set -euo pipefail

TRIALS="${1:-30}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
OUT="$ROOT/results"
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "building first..."
  cmake -B "$BUILD" -G Ninja "$ROOT"
  cmake --build "$BUILD"
fi

FIGS="fig1_network_size fig2_taumax fig3_var_network_size fig4_var_taumax \
      fig5_slot_length fig6_sigma"
ABLS="abl_tour_improvement abl_charger_count abl_rounding abl_fleet \
      abl_charging_time abl_prediction abl_construction abl_optimality"

{
  echo "# libmwc full reproduction run: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "# trials per point: $TRIALS"
  for b in $FIGS; do
    echo
    "$BUILD/bench/$b" --trials "$TRIALS" \
      --csv "$OUT/$b.csv" --svg "$OUT/$b.svg"
  done
  for b in $ABLS; do
    echo
    "$BUILD/bench/$b" --trials "$TRIALS"
  done
  echo
  "$BUILD/bench/micro_oracle" --reps 10 --json "$OUT/BENCH_oracle.json"
  echo
  scripts/bench_kernels.sh "$OUT/BENCH_kernels.json"
  echo
  scripts/bench_spatial.sh "$OUT/BENCH_spatial.json"
} | tee "$OUT/reproduction_run.txt"

echo
echo "done: tables in $OUT/reproduction_run.txt, CSVs and SVG charts in $OUT/,"
echo "      oracle timings in $OUT/BENCH_oracle.json, SIMD kernel grid in"
echo "      $OUT/BENCH_kernels.json, spatial-index grid in $OUT/BENCH_spatial.json"
