#!/usr/bin/env bash
# Measures the mwc::obs instrumentation overhead: builds bench/micro_obs
# twice (-DMWC_OBS=ON / OFF), runs both arms on the identical instance,
# and merges the timings (+ overhead percentages) into BENCH_obs.json.
#
# Usage: scripts/bench_obs.sh [output.json] [reps]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_obs.json}"
REPS="${2:-20}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for obs in ON OFF; do
  dir="build-obs-$(echo "$obs" | tr '[:upper:]' '[:lower:]')"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DMWC_OBS="$obs" \
        > /dev/null
  cmake --build "$dir" --target micro_obs -j "$(nproc)" > /dev/null
  "$dir/bench/micro_obs" --reps "$REPS" --json "$TMP/obs_$obs.json"
done

python3 - "$TMP/obs_ON.json" "$TMP/obs_OFF.json" "$OUT" <<'EOF'
import json, sys
on = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
assert on["obs_enabled"] == 1 and off["obs_enabled"] == 0

def pct(a, b):
    return round((a / b - 1.0) * 100.0, 2)

merged = {
    "bench": "micro_obs",
    "n": on["n"], "q": on["q"], "reps": on["reps"],
    "tour_ms_instrumented": on["tour_ms_per_rep"],
    "tour_ms_noop": off["tour_ms_per_rep"],
    "tour_overhead_pct": pct(on["tour_ms_per_rep"],
                             off["tour_ms_per_rep"]),
    "sim_ms_instrumented": on["sim_ms_per_rep"],
    "sim_ms_noop": off["sim_ms_per_rep"],
    "sim_overhead_pct": pct(on["sim_ms_per_rep"], off["sim_ms_per_rep"]),
    "budget_pct": 2.0,
    # Service warm-request path, measured within the instrumented build:
    # plain cache hits vs the full observability plane per request
    # (client trace id + timing echo + access-log line). Separate budget
    # because this arm buys wire-visible features, not just counters.
    "svc_batch": on["svc_batch"],
    "svc_us_plain": on["svc_plain_us_per_req"],
    "svc_us_traced": on["svc_traced_us_per_req"],
    "svc_traced_overhead_pct": pct(on["svc_traced_us_per_req"],
                                   on["svc_plain_us_per_req"]),
    "svc_budget_pct": 3.0,
    "note": "overhead = instrumented/no-op - 1 on the min-of-reps "
            "timing; negative means the instrumented build measured "
            "faster (code-layout effects dominate the atomic costs)",
}
json.dump(merged, open(sys.argv[3], "w"), indent=2)
open(sys.argv[3], "a").write("\n")
print(f"tour overhead {merged['tour_overhead_pct']}%, "
      f"sim overhead {merged['sim_overhead_pct']}%, "
      f"svc traced overhead {merged['svc_traced_overhead_pct']}% "
      f"(budgets {merged['budget_pct']}% / {merged['svc_budget_pct']}%)")
print(f"wrote {sys.argv[3]}")
EOF
