#!/usr/bin/env bash
# Measures the candidate-list tour-polish speedup: runs bench/micro_improve
# (exhaustive O(n²) sweep vs candidate O(n·k) path, identical instances)
# at n in {100, 800, 2000} and merges the per-size JSON outputs into
# BENCH_improve.json. Target: >= 5x at n=800 with <= 1% longer tours.
#
# Usage: scripts/bench_improve.sh [output.json] [trials]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_improve.json}"
TRIALS="${2:-3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_improve -j "$(nproc)" > /dev/null

SIZES=(100 800 2000)
for n in "${SIZES[@]}"; do
  ./build/bench/micro_improve --n "$n" --trials "$TRIALS" \
      --json "$TMP/improve_$n.json"
done

python3 - "$OUT" "$TMP" "${SIZES[@]}" <<'EOF'
import json, sys
out, tmp, sizes = sys.argv[1], sys.argv[2], sys.argv[3:]
points = [json.load(open(f"{tmp}/improve_{n}.json")) for n in sizes]
at800 = next(p for p in points if p["n"] == 800)
merged = {
    "bench": "micro_improve",
    "q": points[0]["q"], "k": points[0]["k"],
    "trials": points[0]["trials"],
    "points": points,
    "speedup_at_800": at800["speedup"],
    "quality_delta_pct_at_800": at800["quality_delta_pct"],
    "target_speedup_at_800": 5.0,
    "target_quality_delta_pct": 1.0,
    "note": "exhaustive = full O(n^2) 2-opt/Or-opt sweeps; candidate = "
            "k-NN candidate lists + don't-look bits + pruned q-rooted "
            "MSF (timing includes building the candidate graph); "
            "parallel = candidate arm with per-charger polish on a "
            "ThreadPool; negative quality delta means the candidate "
            "tours came out shorter",
}
json.dump(merged, open(out, "w"), indent=2)
open(out, "a").write("\n")
for p in points:
    print(f"n={p['n']:>5}: {p['speedup']:6.2f}x, "
          f"tour delta {p['quality_delta_pct']:+.3f}%")
ok = (at800["speedup"] >= merged["target_speedup_at_800"]
      and at800["quality_delta_pct"] <= merged["target_quality_delta_pct"])
print(f"wrote {out} ({'targets met' if ok else 'TARGETS MISSED'})")
sys.exit(0 if ok else 1)
EOF
