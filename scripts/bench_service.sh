#!/usr/bin/env bash
# Benchmarks the mwc::svc scheduling service and writes BENCH_service.json:
#   * bench/micro_service — in-process Server: cold vs warm (PlanCache)
#     latency percentiles at n sensors, plus warm req/s at queue depths
#     {1, 8, 64};
#   * tools/mwc_loadgen driving tools/mwcd over a pipe — end-to-end wire
#     latency, cold and warm;
#   * wire_pipelined — mwcd's epoll TCP transport with JSONL pipelining
#     (--pipeline) and a warmup pass; budget: >= 3x the pipe warm rate;
#   * fleet — two mwcd daemons, loadgen consistent-hash routing across
#     both endpoints;
#   * warm_restart — populate the cache, SIGTERM (snapshot to disk),
#     restart from the snapshot, assert every request is a cache hit.
#
# Usage: scripts/bench_service.sh [output.json] [n]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_service.json}"
N="${2:-800}"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2> /dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

PORT_A=$((18000 + RANDOM % 4000))
PORT_B=$((PORT_A + 1))

wait_listening() {  # port
  for _ in $(seq 1 200); do
    if (exec 3<> "/dev/tcp/127.0.0.1/$1") 2> /dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.05
  done
  echo "daemon on port $1 never came up" >&2
  return 1
}

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_service mwcd mwc_loadgen \
      -j "$(nproc)" > /dev/null

build/bench/micro_service --n "$N" --json "$TMP/inproc.json"
build/tools/mwc_loadgen --server build/tools/mwcd --mode cold \
    --count 12 --concurrency 1 --n "$N" --json "$TMP/wire_cold.json"
build/tools/mwc_loadgen --server build/tools/mwcd --mode warm \
    --count 200 --concurrency 4 --n "$N" --json "$TMP/wire_warm.json"

# --- wire_pipelined: epoll TCP, deep pipeline, warmup pass ------------
build/tools/mwcd --port "$PORT_A" > /dev/null 2>&1 &
PIDS+=($!)
wait_listening "$PORT_A"
build/tools/mwc_loadgen --connect "127.0.0.1:$PORT_A" --mode warm \
    --count 4000 --pipeline 32 --warmup 4 --n "$N" \
    --json "$TMP/wire_pipelined.json"

# --- fleet: two daemons, consistent-hash routing ----------------------
build/tools/mwcd --port "$PORT_B" > /dev/null 2>&1 &
PIDS+=($!)
wait_listening "$PORT_B"
build/tools/mwc_loadgen \
    --connect "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" --mode mixed \
    --distinct 8 --count 2000 --pipeline 16 --warmup 8 --n "$N" \
    --json "$TMP/fleet.json"
kill "${PIDS[@]}" 2> /dev/null || true
wait "${PIDS[@]}" 2> /dev/null || true
PIDS=()

# --- warm_restart: snapshot on SIGTERM, restart, all hits -------------
SNAP="$TMP/cache.snap"
build/tools/mwcd --port "$PORT_A" --cache-snapshot "$SNAP" \
    > /dev/null 2>&1 &
FIRST_PID=$!
wait_listening "$PORT_A"
build/tools/mwc_loadgen --connect "127.0.0.1:$PORT_A" --mode warm \
    --count 50 --pipeline 8 --n "$N" --json /dev/null
kill -TERM "$FIRST_PID"
wait "$FIRST_PID" 2> /dev/null || true
test -s "$SNAP" || { echo "snapshot not written" >&2; exit 1; }
build/tools/mwcd --port "$PORT_A" --cache-snapshot "$SNAP" \
    > /dev/null 2>&1 &
PIDS+=($!)
wait_listening "$PORT_A"
build/tools/mwc_loadgen --connect "127.0.0.1:$PORT_A" --mode warm \
    --count 200 --pipeline 8 --n "$N" --json "$TMP/warm_restart.json"
kill "${PIDS[@]}" 2> /dev/null || true
wait "${PIDS[@]}" 2> /dev/null || true
PIDS=()

python3 - "$TMP/inproc.json" "$TMP/wire_cold.json" "$TMP/wire_warm.json" \
    "$TMP/wire_pipelined.json" "$TMP/fleet.json" "$TMP/warm_restart.json" \
    "$OUT" <<'EOF'
import json, sys
inproc = json.load(open(sys.argv[1]))
cold = json.load(open(sys.argv[2]))
warm = json.load(open(sys.argv[3]))
pipelined = json.load(open(sys.argv[4]))
fleet = json.load(open(sys.argv[5]))
restart = json.load(open(sys.argv[6]))

# The warm pass's first request per mwcd process is a real solve; with
# count >> 1 it only contaminates the max, not the p50. The pipelined
# arm runs a --warmup pass instead, so its p99 excludes the priming
# solve entirely (that solve was the whole wire_warm p99 tail: one
# ~27 ms cold request amid sub-ms cache hits).
speedup = round(cold["latency_ms_p50"] / warm["latency_ms_p50"], 1)
pipeline_x = round(pipelined["req_per_s"] / warm["req_per_s"], 1)
merged = {
    "bench": "service",
    "n": inproc["n"], "q": inproc["q"], "policy": inproc["policy"],
    "inprocess": inproc,
    "wire_cold": cold,
    "wire_warm": warm,
    "wire_pipelined": pipelined,
    "fleet": fleet,
    "warm_restart": restart,
    "wire_warm_speedup_p50": speedup,
    "budget_speedup_p50": 5.0,
    "pipelined_speedup_vs_pipe": pipeline_x,
    "budget_pipelined_speedup": 3.0,
    "note": "inprocess = svc::Server called directly; wire = mwc_loadgen "
            "driving mwcd over a stdio pipe (JSONL encode/decode and "
            "transport included). warm repeats one instance so all but "
            "the first request hit the PlanCache. wire_pipelined/fleet/"
            "warm_restart use the epoll TCP transport (TCP_NODELAY on "
            "both ends); warm_restart reloads the plan cache from the "
            "SIGTERM snapshot, so every request is a hit.",
}
json.dump(merged, open(sys.argv[7], "w"), indent=2)
open(sys.argv[7], "a").write("\n")

failures = []
if speedup < merged["budget_speedup_p50"]:
    failures.append(f"warm-vs-cold p50 speedup {speedup}x below "
                    f"{merged['budget_speedup_p50']}x")
if pipeline_x < merged["budget_pipelined_speedup"]:
    failures.append(f"pipelined throughput {pipeline_x}x pipe-warm, "
                    f"budget {merged['budget_pipelined_speedup']}x")
if restart["cached"] != restart["answered"]:
    failures.append(f"warm_restart: {restart['cached']}/"
                    f"{restart['answered']} cache hits (want all: the "
                    "snapshot must make the first request a hit)")
if fleet.get("errors", 0) or fleet["answered"] != fleet["count"]:
    failures.append("fleet arm dropped requests")

print(f"warm-vs-cold wire p50 speedup {speedup}x "
      f"(budget {merged['budget_speedup_p50']}x)")
print(f"pipelined wire throughput {pipelined['req_per_s']:.0f} req/s = "
      f"{pipeline_x}x pipe-warm (budget "
      f"{merged['budget_pipelined_speedup']}x)")
print(f"fleet: {fleet['answered']}/{fleet['count']} answered across "
      f"{fleet.get('endpoints', 1):.0f} endpoints")
print(f"warm_restart: {restart['cached']}/{restart['answered']} hits")
for f in failures:
    print("FAIL:", f)
print(f"wrote {sys.argv[7]}")
sys.exit(1 if failures else 0)
EOF
