#!/usr/bin/env bash
# Benchmarks the mwc::svc scheduling service and writes BENCH_service.json:
#   * bench/micro_service — in-process Server: cold vs warm (PlanCache)
#     latency percentiles at n sensors, plus warm req/s at queue depths
#     {1, 8, 64};
#   * tools/mwc_loadgen driving tools/mwcd over a pipe — end-to-end wire
#     latency, cold and warm.
#
# Usage: scripts/bench_service.sh [output.json] [n]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_service.json}"
N="${2:-800}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_service mwcd mwc_loadgen \
      -j "$(nproc)" > /dev/null

build/bench/micro_service --n "$N" --json "$TMP/inproc.json"
build/tools/mwc_loadgen --server build/tools/mwcd --mode cold \
    --count 12 --concurrency 1 --n "$N" --json "$TMP/wire_cold.json"
build/tools/mwc_loadgen --server build/tools/mwcd --mode warm \
    --count 200 --concurrency 4 --n "$N" --json "$TMP/wire_warm.json"

python3 - "$TMP/inproc.json" "$TMP/wire_cold.json" "$TMP/wire_warm.json" \
    "$OUT" <<'EOF'
import json, sys
inproc = json.load(open(sys.argv[1]))
cold = json.load(open(sys.argv[2]))
warm = json.load(open(sys.argv[3]))

# The warm pass's first request per mwcd process is a real solve; with
# count >> 1 it only contaminates the max, not the p50.
speedup = round(cold["latency_ms_p50"] / warm["latency_ms_p50"], 1)
merged = {
    "bench": "service",
    "n": inproc["n"], "q": inproc["q"], "policy": inproc["policy"],
    "inprocess": inproc,
    "wire_cold": cold,
    "wire_warm": warm,
    "wire_warm_speedup_p50": speedup,
    "budget_speedup_p50": 5.0,
    "note": "inprocess = svc::Server called directly; wire = mwc_loadgen "
            "driving mwcd over a stdio pipe (JSONL encode/decode and "
            "transport included). warm repeats one instance so all but "
            "the first request hit the PlanCache.",
}
json.dump(merged, open(sys.argv[4], "w"), indent=2)
open(sys.argv[4], "a").write("\n")
ok = speedup >= merged["budget_speedup_p50"]
print(f"warm-vs-cold wire p50 speedup {speedup}x "
      f"(budget {merged['budget_speedup_p50']}x) "
      f"{'OK' if ok else 'BELOW BUDGET'}")
print(f"wrote {sys.argv[4]}")
sys.exit(0 if ok else 1)
EOF
