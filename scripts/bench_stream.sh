#!/usr/bin/env bash
# Benchmarks the mwc.svc.stream.v1 predictive streaming sessions and
# writes BENCH_stream.json:
#   * bench/micro_stream — in-process SessionManager: wall time from a
#     surge observation to the unsolicited plan push, vs a cold full
#     solve of the same instance size;
#   * tools/mwc_loadgen --stream --surge driving tools/mwcd --sessions
#     over TCP — a regional storm arrives mid-session, the server's
#     deadline trigger replans, and a client-side two-arm replay counts
#     the sensors the pushed plans saved vs riding the base plan.
#
# Budgets: replan-push p50 < cold-solve p50 at the headline n (speedup
# > 1x), surge sensors-saved > 0, and the daemon's svc.delta.requests /
# svc.stream.pushes counters prove replans flowed through the normal
# delta admission path.
#
# Usage: scripts/bench_stream.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_stream.json}"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2> /dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

PORT=$((18000 + RANDOM % 4000))

wait_listening() {  # port
  for _ in $(seq 1 200); do
    if (exec 3<> "/dev/tcp/127.0.0.1/$1") 2> /dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.05
  done
  echo "daemon on port $1 never came up" >&2
  return 1
}

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_stream mwcd mwc_loadgen \
      -j "$(nproc)" > /dev/null

build/bench/micro_stream --json "$TMP/inproc.json"

build/tools/mwcd --port "$PORT" --sessions \
    --metrics-out "$TMP/metrics.json" > /dev/null 2>&1 &
PIDS+=($!)
wait_listening "$PORT"
build/tools/mwc_loadgen --connect "127.0.0.1:$PORT" --stream --surge \
    --n 200 --json "$TMP/wire_stream.json"
kill -TERM "${PIDS[0]}"
for _ in $(seq 1 100); do
  [ -s "$TMP/metrics.json" ] && break
  sleep 0.05
done
wait "${PIDS[0]}" 2> /dev/null || true
PIDS=()

python3 - "$TMP/inproc.json" "$TMP/wire_stream.json" "$TMP/metrics.json" \
    "$OUT" <<'EOF'
import json, sys
inproc = json.load(open(sys.argv[1]))
wire = json.load(open(sys.argv[2]))
metrics = json.load(open(sys.argv[3]))

headline = max(inproc["rows"], key=lambda r: r["n"])
speedup = round(headline["speedup_p50"], 1)
saved = wire["surge"]["sensors_saved"]
counters = metrics["counters"]
merged = {
    "bench": "stream",
    "inprocess": inproc,
    "wire_stream": wire,
    "daemon_counters": {
        k: counters[k]
        for k in sorted(counters)
        if k.startswith("svc.stream.") or k == "svc.delta.requests"
        or k == "svc.net.pushes"
    },
    "headline_n": headline["n"],
    "headline_replan_push_p50_ms": headline["replan_push_p50_ms"],
    "headline_cold_p50_ms": headline["cold_p50_ms"],
    "headline_speedup_p50": speedup,
    "budget_speedup_p50": 1.0,
    "surge_sensors_saved": saved,
    "note": "inprocess = svc::SessionManager surge observe -> plan push "
            "wall time vs handle_request on a fresh topology; "
            "wire_stream = mwc_loadgen streaming storm-driven discharge "
            "rates to mwcd --sessions over TCP, with a client-side "
            "two-arm replay (base plan vs base+pushed plans) counting "
            "sensors saved by mid-session replans.",
}
json.dump(merged, open(sys.argv[4], "w"), indent=2)
open(sys.argv[4], "a").write("\n")

failures = []
if speedup < merged["budget_speedup_p50"]:
    failures.append(f"replan push p50 not under cold p50 ({speedup}x)")
if saved <= 0:
    failures.append(f"surge saved no sensors ({saved})")
if counters.get("svc.delta.requests", 0) <= 0:
    failures.append("no svc.delta.requests on the daemon")
if counters.get("svc.stream.pushes", 0) <= 0:
    failures.append("no svc.stream.pushes on the daemon")
print(f"replan-push-vs-cold p50 speedup {speedup}x at "
      f"n={headline['n']} (budget {merged['budget_speedup_p50']}x); "
      f"surge saved {saved} sensors; "
      f"delta requests {counters.get('svc.delta.requests', 0)}, "
      f"stream pushes {counters.get('svc.stream.pushes', 0)} "
      f"{'OK' if not failures else 'FAIL: ' + '; '.join(failures)}")
print(f"wrote {sys.argv[4]}")
sys.exit(0 if not failures else 1)
EOF
