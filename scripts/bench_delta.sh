#!/usr/bin/env bash
# Benchmarks the mwc.svc.v2 incremental re-planning path and writes
# BENCH_delta.json:
#   * bench/micro_delta — in-process handle_request vs handle_delta over
#     n x patch-size grid: cold full-solve p50 vs delta-repair p50;
#   * tools/mwc_loadgen --delta driving tools/mwcd over a pipe —
#     end-to-end wire latency of a derived-plan stream.
#
# Budget: delta p50 >= 10x faster than a cold full solve at n=2000 for
# single-sensor patches.
#
# Usage: scripts/bench_delta.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_delta.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_delta mwcd mwc_loadgen \
      -j "$(nproc)" > /dev/null

build/bench/micro_delta --json "$TMP/inproc.json"
build/tools/mwc_loadgen --server build/tools/mwcd --delta \
    --count 64 --concurrency 4 --n 800 --json "$TMP/wire_delta.json"

python3 - "$TMP/inproc.json" "$TMP/wire_delta.json" "$OUT" <<'EOF'
import json, sys
inproc = json.load(open(sys.argv[1]))
wire = json.load(open(sys.argv[2]))

target = next(r for r in inproc["rows"]
              if r["n"] == 2000 and r["patch_ops"] == 1)
speedup = round(target["speedup_p50"], 1)
merged = {
    "bench": "delta",
    "inprocess": inproc,
    "wire_delta": wire,
    "headline_n": 2000,
    "headline_patch_ops": 1,
    "headline_speedup_p50": speedup,
    "budget_speedup_p50": 10.0,
    "note": "inprocess = svc::handle_delta called directly against a "
            "cached base plan, vs handle_request on a fresh topology "
            "(full resolve + solve + horizon simulation); wire = "
            "mwc_loadgen --delta streaming move_sensor patches to mwcd "
            "over a stdio pipe after one full base solve.",
}
json.dump(merged, open(sys.argv[3], "w"), indent=2)
open(sys.argv[3], "a").write("\n")
ok = speedup >= merged["budget_speedup_p50"]
print(f"delta-vs-cold p50 speedup {speedup}x at n=2000/patch=1 "
      f"(budget {merged['budget_speedup_p50']}x) "
      f"{'OK' if ok else 'BELOW BUDGET'}")
print(f"wrote {sys.argv[3]}")
sys.exit(0 if ok else 1)
EOF
