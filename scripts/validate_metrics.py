#!/usr/bin/env python3
"""Validate an mwc.metrics.v1 JSON document (and optionally a Chrome trace).

Usage:
    validate_metrics.py METRICS_JSON [--schema SCHEMA_JSON] [--trace TRACE_JSON]

Stdlib only. Implements exactly the JSON Schema subset used by
scripts/metrics_schema.json (type / const / required / properties /
additionalProperties / items / minItems / minimum), plus mwc-specific
semantic checks the schema language can't express:

  * every histogram has len(buckets) == len(bounds) + 1 (overflow bucket);
  * bounds are strictly increasing;
  * sum(buckets) == count;
  * metric names follow the "component.metric" convention.

With --trace, also checks the trace file is a loadable Chrome trace-event
document: a traceEvents list of complete ("ph" == "X") events carrying
name/ts/dur/pid/tid.
"""

import argparse
import json
import os
import re
import sys

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def type_matches(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    raise ValueError(f"unsupported schema type {expected!r}")


def check_schema(value, schema, path, errors):
    """Recursive validation of the supported JSON Schema subset."""
    expected = schema.get("type")
    if expected is not None and not type_matches(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                check_schema(value[key], sub, f"{path}.{key}", errors)
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, sub in value.items():
                if key not in props:
                    check_schema(sub, extra, f"{path}.{key}", errors)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems "
                          f"{schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                check_schema(item, items, f"{path}[{i}]", errors)


def check_semantics(doc, errors):
    """mwc-specific invariants beyond the schema language."""
    for section in ("counters", "gauges", "histograms"):
        for name in doc.get(section, {}):
            if not NAME_RE.match(name):
                errors.append(
                    f"{section}.{name}: name does not follow the "
                    f"'component.metric' convention")
    for name, h in doc.get("histograms", {}).items():
        bounds = h.get("bounds", [])
        buckets = h.get("buckets", [])
        if len(buckets) != len(bounds) + 1:
            errors.append(f"histograms.{name}: {len(buckets)} buckets for "
                          f"{len(bounds)} bounds (want bounds+1)")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            errors.append(f"histograms.{name}: bounds not strictly "
                          f"increasing: {bounds}")
        if sum(buckets) != h.get("count", 0):
            errors.append(f"histograms.{name}: sum(buckets)={sum(buckets)} "
                          f"!= count={h.get('count')}")


def check_trace(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"trace: cannot load {path}: {e}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        errors.append("trace: missing traceEvents array")
        return
    if not events:
        errors.append("trace: traceEvents is empty (was tracing enabled?)")
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                errors.append(f"trace: event [{i}] missing {key!r}")
                break
        else:
            if e["ph"] != "X":
                errors.append(f"trace: event [{i}] has ph={e['ph']!r}, "
                              f"expected complete events ('X')")
            if e["dur"] < 0:
                errors.append(f"trace: event [{i}] has negative dur")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", help="mwc.metrics.v1 JSON file")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "metrics_schema.json"),
        help="schema file (default: metrics_schema.json next to this script)")
    parser.add_argument("--trace", help="also validate a Chrome trace file")
    parser.add_argument(
        "--require-counter", action="append", default=[], metavar="NAME",
        help="fail unless this counter exists with a nonzero value "
             "(repeatable)")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.metrics, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load {args.metrics}: {e}", file=sys.stderr)
        return 1
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    check_schema(doc, schema, "$", errors)
    if not errors:
        check_semantics(doc, errors)
    for name in args.require_counter:
        if doc.get("counters", {}).get(name, 0) <= 0:
            errors.append(f"counters.{name}: required nonzero counter "
                          f"missing or zero")
    if args.trace:
        check_trace(args.trace, errors)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    n_metrics = (len(doc.get("counters", {})) + len(doc.get("gauges", {}))
                 + len(doc.get("histograms", {})))
    print(f"OK: {args.metrics} valid mwc.metrics.v1 ({n_metrics} metrics"
          + (", trace ok" if args.trace else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
