#!/usr/bin/env bash
# Records the spatial-index design datum (DESIGN.md): uniform-grid vs
# kd-tree nearest-neighbour and k-NN query times, plus the SoA
# brute-force baseline, at n in {1k, 10k, 100k}. Merges the per-size
# JSON outputs of bench/micro_spatial into BENCH_spatial.json and
# validates the --metrics-out sidecar (geom.simd.* counters) with
# scripts/validate_metrics.py. micro_spatial itself exits nonzero if
# the two indexes ever disagree on a k-NN list, so a passing run also
# re-pins the cross-index tie-break contract at bench scale.
#
# Usage: scripts/bench_spatial.sh [output.json] [queries]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_spatial.json}"
QUERIES="${2:-2048}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_spatial -j "$(nproc)" > /dev/null

SIZES=(1000 10000 100000)
for n in "${SIZES[@]}"; do
  ./build/bench/micro_spatial --n "$n" --queries "$QUERIES" \
      --json "$TMP/spatial_$n.json" --metrics-out "$TMP/metrics_$n.json"
  python3 scripts/validate_metrics.py "$TMP/metrics_$n.json"
done

python3 - "$OUT" "$TMP" "${SIZES[@]}" <<'EOF'
import json, sys
out, tmp, sizes = sys.argv[1], sys.argv[2], sys.argv[3:]
points = [json.load(open(f"{tmp}/spatial_{n}.json")) for n in sizes]
merged = {
    "bench": "micro_spatial",
    "queries": points[0]["queries"], "k": points[0]["k"],
    "backend": points[0]["backend"],
    "points": points,
    "note": "per-query microseconds; brute = one geom::simd "
            "squared-distance row over the SoA coordinates plus a "
            "scalar argmin (linear in n, index-free). Every k-NN "
            "query is cross-checked kd-tree vs grid for identical "
            "(index, distance) lists including ties.",
}
json.dump(merged, open(out, "w"), indent=2)
open(out, "a").write("\n")
for p in points:
    print(f"n={p['n']:>6}: nn grid {p['grid_nn_us']:7.3f}us "
          f"kd {p['kd_nn_us']:7.3f}us brute {p['brute_nn_us']:9.3f}us; "
          f"knn grid {p['grid_knn_us']:7.3f}us kd {p['kd_knn_us']:7.3f}us")
print(f"wrote {out}")
EOF
