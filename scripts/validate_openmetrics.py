#!/usr/bin/env python3
"""Validate an OpenMetrics / Prometheus text exposition document.

Usage:
    validate_openmetrics.py METRICS_TXT

Stdlib only. Checks the invariants obs::RegistrySnapshot::to_openmetrics
promises (and that a Prometheus scraper relies on):

  * the document ends with a `# EOF` line and contains nothing after it;
  * every sample line is `<name>[{labels}] <value>` with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*);
  * every sample belongs to a preceding `# TYPE` declaration:
      - counter samples use the `_total` suffix and are non-negative
        integers;
      - gauge samples use the bare family name;
      - histogram samples are `_bucket{le="..."}` / `_sum` / `_count`;
  * histogram buckets are cumulative (non-decreasing) with strictly
    increasing `le` bounds, and the final `+Inf` bucket equals `_count`;
  * no family is declared twice and no sample appears before its TYPE.

Exits 0 when valid, 1 with a list of violations otherwise.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{([^}]*)\})?"
                       r" (\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram)$")
LE_RE = re.compile(r'^le="([^"]+)"$')


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    return float(text)


def validate(lines):
    errors = []
    families = {}  # name -> type
    # histogram name -> {"buckets": [(le, cum)], "count": int|None,
    #                    "sum": float|None}
    histograms = {}

    if not lines or lines[-1] != "# EOF":
        errors.append("document must end with a '# EOF' line")
    body = lines[:-1] if lines and lines[-1] == "# EOF" else lines

    for lineno, line in enumerate(body, start=1):
        if line == "# EOF":
            errors.append(f"line {lineno}: '# EOF' before end of document")
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                errors.append(f"line {lineno}: unrecognized comment "
                              f"{line!r} (only '# TYPE name type' and "
                              f"'# EOF' are emitted)")
                continue
            name, family_type = m.groups()
            if name in families:
                errors.append(f"line {lineno}: family {name} declared twice")
            families[name] = family_type
            if family_type == "histogram":
                histograms[name] = {"buckets": [], "count": None,
                                    "sum": None}
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        sample_name, labels, value_text = m.groups()
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"line {lineno}: bad value {value_text!r}")
            continue

        # Match the sample back to its declared family.
        if sample_name.endswith("_total") and \
                families.get(sample_name[:-len("_total")]) == "counter":
            if labels:
                errors.append(f"line {lineno}: counters carry no labels")
            if value < 0 or value != int(value):
                errors.append(f"line {lineno}: counter value {value_text} "
                              f"is not a non-negative integer")
        elif sample_name.endswith("_bucket") and \
                families.get(sample_name[:-len("_bucket")]) == "histogram":
            family = sample_name[:-len("_bucket")]
            le_match = LE_RE.match(labels or "")
            if le_match is None:
                errors.append(f"line {lineno}: histogram bucket needs an "
                              f"le label, got {labels!r}")
                continue
            try:
                bound = parse_value(le_match.group(1))
            except ValueError:
                errors.append(f"line {lineno}: bad le bound "
                              f"{le_match.group(1)!r}")
                continue
            histograms[family]["buckets"].append((lineno, bound, value))
        elif sample_name.endswith("_sum") and \
                families.get(sample_name[:-len("_sum")]) == "histogram":
            histograms[sample_name[:-len("_sum")]]["sum"] = value
        elif sample_name.endswith("_count") and \
                families.get(sample_name[:-len("_count")]) == "histogram":
            histograms[sample_name[:-len("_count")]]["count"] = value
        elif families.get(sample_name) == "gauge":
            if labels:
                errors.append(f"line {lineno}: gauges carry no labels")
        else:
            errors.append(f"line {lineno}: sample {sample_name} has no "
                          f"matching '# TYPE' declaration")

    for name, h in histograms.items():
        buckets = h["buckets"]
        if not buckets:
            errors.append(f"histogram {name}: no _bucket samples")
            continue
        previous_bound = None
        previous_cum = None
        for lineno, bound, cum in buckets:
            if previous_bound is not None and bound <= previous_bound:
                errors.append(f"line {lineno}: {name} le bounds must be "
                              f"strictly increasing")
            if previous_cum is not None and cum < previous_cum:
                errors.append(f"line {lineno}: {name} buckets must be "
                              f"cumulative (non-decreasing)")
            previous_bound = bound
            previous_cum = cum
        if buckets[-1][1] != float("inf"):
            errors.append(f"histogram {name}: last bucket must be +Inf")
        if h["count"] is None:
            errors.append(f"histogram {name}: missing _count")
        elif buckets[-1][2] != h["count"]:
            errors.append(f"histogram {name}: +Inf bucket "
                          f"({buckets[-1][2]}) != _count ({h['count']})")
        if h["sum"] is None:
            errors.append(f"histogram {name}: missing _sum")
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Validate an OpenMetrics text document")
    parser.add_argument("path", help="OpenMetrics text file")
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    errors = validate(lines)
    if errors:
        print(f"{args.path}: INVALID")
        for e in errors:
            print(f"  {e}")
        return 1
    n_families = sum(1 for line in lines if line.startswith("# TYPE"))
    print(f"{args.path}: OK ({n_families} metric families, "
          f"{len(lines)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
