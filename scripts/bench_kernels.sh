#!/usr/bin/env bash
# Measures the SoA + portable-SIMD distance kernels across the extended
# size grid: runs bench/micro_kernels at n in {10k, 100k} and merges the
# per-size JSON outputs into BENCH_kernels.json.
#
# Recorded per cell (see bench/micro_kernels.cpp):
#   * fill  — oracle row materialization, simd vs scalar-fallback vs the
#             seed's per-pair std::hypot kernel (skipped at n = 100k,
#             where the O(n^2) matrix cannot exist);
#   * row   — the raw distance_row kernel (runs at every n);
#   * probe — batched DistanceView::direct probes;
#   * solve — end-to-end q_rooted_tsp, simd on vs off, bit-identical
#             tours required.
#
# Hard gates (exit nonzero): the n = 10k row fill must be >= 3x faster
# than the seed hypot kernel, every cell's simd/scalar tour delta must
# be within 1% (it is 0 by the bit-exactness contract), the n = 100k
# cell must complete, and the --metrics-out sidecar must validate with
# the geom.simd.rows_vectorized counter engaged. The simd-vs-scalar
# ratios are recorded honestly but not gated: on hosts with one sqrt
# unit (e.g. Skylake Xeons) vector sqrt throughput caps them near 2x.
#
# Usage: scripts/bench_kernels.sh [output.json] [reps]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_kernels.json}"
REPS="${2:-3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target micro_kernels -j "$(nproc)" > /dev/null

SIZES=(10000 100000)
for n in "${SIZES[@]}"; do
  ./build/bench/micro_kernels --n "$n" --reps "$REPS" \
      --json "$TMP/kernels_$n.json" --metrics-out "$TMP/metrics_$n.json"
  python3 scripts/validate_metrics.py "$TMP/metrics_$n.json" \
      --require-counter geom.simd.rows_vectorized
done

python3 - "$OUT" "$TMP" "${SIZES[@]}" <<'EOF'
import json, sys
out, tmp, sizes = sys.argv[1], sys.argv[2], sys.argv[3:]
points = [json.load(open(f"{tmp}/kernels_{n}.json")) for n in sizes]
at10k = next(p for p in points if p["n"] == 10000)
at100k = next(p for p in points if p["n"] == 100000)
merged = {
    "bench": "micro_kernels",
    "backend": points[0]["backend"],
    "lanes": points[0]["lanes"],
    "q": points[0]["q"], "reps": points[0]["reps"],
    "points": points,
    "fill_speedup_vs_seed_at_10k": at10k["fill_speedup_vs_seed"],
    "fill_speedup_vs_scalar_at_10k": at10k["fill_speedup"],
    "row_speedup_vs_scalar_at_10k": at10k["row_speedup"],
    "solve_speedup_vs_scalar_at_10k": at10k["solve_speedup"],
    "tour_delta_pct_at_10k": at10k["tour_delta_pct"],
    "solve_100k_ms": at100k["solve_simd_ms"],
    "tour_delta_pct_at_100k": at100k["tour_delta_pct"],
    "target_fill_speedup_vs_seed": 3.0,
    "target_tour_delta_pct": 1.0,
    "note": "seed = the per-pair std::hypot AoS row fill this PR "
            "replaced; scalar = the same sqrt(squared_norm) pipeline "
            "with geom::simd disabled (bit-identical tours, so the "
            "tour delta is exactly 0). simd-vs-scalar ratios are "
            "sqrt-unit-bound on single-sqrt-port hosts and recorded "
            "without a gate; the n=100k cell runs direct-geometry "
            "views only (no O(n^2) matrix).",
}
json.dump(merged, open(out, "w"), indent=2)
open(out, "a").write("\n")
for p in points:
    fill = (f"fill {p['fill_speedup_vs_seed']:5.2f}x vs seed, "
            f"{p['fill_speedup']:4.2f}x vs scalar"
            if p["matrix_fits"] else "fill skipped (O(n^2) matrix)")
    print(f"n={p['n']:>6}: {fill}; row {p['row_speedup']:4.2f}x "
          f"({p['row_speedup_vs_seed']:5.2f}x vs seed); solve "
          f"{p['solve_speedup']:4.2f}x, delta {p['tour_delta_pct']:+.4f}%")
ok = (at10k["fill_speedup_vs_seed"] >= merged["target_fill_speedup_vs_seed"]
      and all(abs(p["tour_delta_pct"]) <= merged["target_tour_delta_pct"]
              for p in points))
print(f"wrote {out} ({'targets met' if ok else 'TARGETS MISSED'})")
sys.exit(0 if ok else 1)
EOF
