// mwc::obs — umbrella header: instrumentation macros + compile-time kill
// switch.
//
// Hot paths are instrumented exclusively through these macros. Each
// macro caches its instrument reference in a function-local static (one
// registry lookup per call site, ever) and then performs a single
// lock-free atomic update — or, for MWC_OBS_SCOPE, one relaxed load when
// tracing is off.
//
// Compile-time kill switch: building with -DMWC_OBS_ENABLED=0 (CMake:
// -DMWC_OBS=OFF) turns every macro below into a no-op that evaluates
// none of its arguments, so the instrumented binary is bit-for-bit the
// uninstrumented hot loop. The obs *library* (Registry, Span, traces)
// stays compiled either way — direct API users such as sim::Simulator's
// per-instance registry keep working — only ambient macro
// instrumentation disappears. The CI build matrix compiles and tests
// both settings.
//
// Naming convention (see docs/OBSERVABILITY.md): dot-separated
// lower_snake path "component.metric[_unit]", e.g. "sim.dispatches",
// "oracle.rows_materialized", "pool.queue_wait_us".
#pragma once

#ifndef MWC_OBS_ENABLED
#define MWC_OBS_ENABLED 1
#endif

#include "obs/registry.hpp"
#include "obs/span.hpp"

#define MWC_OBS_CONCAT_IMPL(a, b) a##b
#define MWC_OBS_CONCAT(a, b) MWC_OBS_CONCAT_IMPL(a, b)

#if MWC_OBS_ENABLED

/// Times the enclosing scope as a trace span named `name` (a string
/// literal). Records only while trace collection is enabled.
#define MWC_OBS_SCOPE(name) \
  ::mwc::obs::Span MWC_OBS_CONCAT(mwc_obs_scope_, __LINE__)(name)

/// Increments the global counter `name` by 1.
#define MWC_OBS_COUNT(name)                                        \
  do {                                                             \
    static ::mwc::obs::Counter& mwc_obs_counter =                  \
        ::mwc::obs::Registry::global().counter(name);              \
    mwc_obs_counter.add(1);                                        \
  } while (0)

/// Increments the global counter `name` by `delta` (flush-style use:
/// accumulate in a local, add once per call).
#define MWC_OBS_COUNT_N(name, delta)                               \
  do {                                                             \
    static ::mwc::obs::Counter& mwc_obs_counter =                  \
        ::mwc::obs::Registry::global().counter(name);              \
    mwc_obs_counter.add(static_cast<std::uint64_t>(delta));        \
  } while (0)

/// Sets the global gauge `name` to `value`.
#define MWC_OBS_GAUGE_SET(name, value)                             \
  do {                                                             \
    static ::mwc::obs::Gauge& mwc_obs_gauge =                      \
        ::mwc::obs::Registry::global().gauge(name);                \
    mwc_obs_gauge.set(static_cast<double>(value));                 \
  } while (0)

/// Adds `delta` to the global gauge `name`.
#define MWC_OBS_GAUGE_ADD(name, delta)                             \
  do {                                                             \
    static ::mwc::obs::Gauge& mwc_obs_gauge =                      \
        ::mwc::obs::Registry::global().gauge(name);                \
    mwc_obs_gauge.add(static_cast<double>(delta));                 \
  } while (0)

/// Observes `value` into the global histogram `name` with the fixed
/// bucket upper bounds given as the trailing arguments (the bounds are
/// read once, at first execution of the call site).
#define MWC_OBS_HISTOGRAM(name, value, ...)                        \
  do {                                                             \
    static ::mwc::obs::Histogram& mwc_obs_hist =                   \
        ::mwc::obs::Registry::global().histogram(                  \
            name, std::initializer_list<double>{__VA_ARGS__});     \
    mwc_obs_hist.observe(static_cast<double>(value));              \
  } while (0)

#else  // !MWC_OBS_ENABLED — every macro compiles to nothing; sizeof keeps
       // the operands type-checked but unevaluated (no codegen, no
       // unused-variable warnings at call sites).

#define MWC_OBS_SCOPE(name) \
  do {                      \
  } while (0)
#define MWC_OBS_COUNT(name) \
  do {                      \
  } while (0)
#define MWC_OBS_COUNT_N(name, delta)  \
  do {                                \
    (void)sizeof((delta));            \
  } while (0)
#define MWC_OBS_GAUGE_SET(name, value) \
  do {                                 \
    (void)sizeof((value));             \
  } while (0)
#define MWC_OBS_GAUGE_ADD(name, delta) \
  do {                                 \
    (void)sizeof((delta));             \
  } while (0)
#define MWC_OBS_HISTOGRAM(name, value, ...) \
  do {                                      \
    (void)sizeof((value));                  \
  } while (0)

#endif  // MWC_OBS_ENABLED
