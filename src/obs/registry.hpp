// mwc::obs — process-wide telemetry registry.
//
// A `Registry` is a named collection of three instrument kinds:
//
//   * `Counter`   — monotonically increasing integer (events, probes);
//   * `Gauge`     — last-written double with atomic add (totals, ratios);
//   * `Histogram` — fixed-bucket distribution (latencies, margins).
//
// All updates are lock-free atomic operations; the registry mutex is only
// taken on first registration of a name and on snapshot/reset, so hot
// paths cache the instrument reference once (the MWC_OBS_* macros in
// obs/obs.hpp do this with a function-local static) and then update
// without any locking. Instrument addresses are stable for the life of
// the registry: `counter("x")` always returns the same object.
//
// `Registry::global()` is the process-wide instance every MWC_OBS_* macro
// writes to; local instances serve per-component accounting (e.g.
// `sim::Simulator` keeps its own registry so per-run deltas stay exact
// under concurrent trials). Snapshots serialize to the stable
// `mwc.metrics.v1` JSON layout validated by scripts/validate_metrics.py.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mwc::obs {

/// Monotonic event counter. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument with atomic set/add on a double.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Atomic add via CAS (works on toolchains without native
  /// atomic<double>::fetch_add).
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations x <= bounds[i]
/// (first matching bound); the last bucket is the implicit +inf overflow.
/// Bounds are fixed at registration and never change.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  std::span<const double> bounds() const noexcept { return bounds_; }
  /// Number of buckets (bounds().size() + 1, incl. overflow).
  std::size_t num_buckets() const noexcept { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest observed value; 0 when count() == 0.
  double min() const noexcept;
  double max() const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket containing the target rank — the standard fixed-bucket
  /// estimator (Prometheus histogram_quantile). The first bucket's lower
  /// edge is the observed min, the overflow bucket's upper edge the
  /// observed max, so estimates never leave the observed range. Returns
  /// 0 when the histogram is empty.
  double quantile(double q) const;
};

/// Point-in-time copy of a registry's instruments.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Serializes to the `mwc.metrics.v1` JSON document (sorted keys,
  /// deterministic formatting).
  std::string to_json() const;

  /// Serializes to OpenMetrics / Prometheus text exposition format
  /// (obs/openmetrics.cpp): dots in names become underscores, counters
  /// get the `_total` suffix, histograms export cumulative
  /// `_bucket{le="..."}` series plus `_sum`/`_count`, and the document
  /// ends with `# EOF`. Deterministic for a given snapshot.
  std::string to_openmetrics() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the MWC_OBS_* macros write to.
  static Registry& global();

  /// Get-or-create; the returned reference stays valid for the life of
  /// the registry.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Get-or-create with the given bucket bounds; asserts that a
  /// re-registration uses identical bounds.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);
  Histogram& histogram(std::string_view name,
                       std::initializer_list<double> upper_bounds) {
    return histogram(name, std::span<const double>(upper_bounds.begin(),
                                                   upper_bounds.size()));
  }

  /// True if an instrument of any kind is registered under `name`.
  bool contains(std::string_view name) const;

  RegistrySnapshot snapshot() const;

  /// Zeroes every instrument; registrations (and cached references)
  /// survive.
  void reset();

  std::string to_json() const { return snapshot().to_json(); }

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  std::string to_openmetrics() const { return snapshot().to_openmetrics(); }

  /// Writes to_openmetrics() to `path`; returns false on I/O failure.
  bool write_openmetrics(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mwc::obs
