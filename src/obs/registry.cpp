#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/assert.hpp"

namespace mwc::obs {

namespace {

/// Atomic min/max folding via CAS (relaxed; instruments are statistics,
/// not synchronization).
void fold_min(std::atomic<double>& slot, double x) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (x < cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<double>& slot, double x) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (x > cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips doubles; JSON has no inf/nan, clamp those to 0
  // (only reachable through a histogram with count == 0, handled by the
  // callers, or a gauge explicitly set to inf).
  if (!std::isfinite(v)) v = 0.0;
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  MWC_ASSERT_MSG(!bounds_.empty(), "histogram needs at least one bound");
  MWC_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
  fold_min(min_, x);
  fold_max(max_, x);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based); q = 0 maps to rank 1.
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Bucket edges: [lower, upper], clamped to the observed range so the
    // open-ended overflow bucket (and a sparse first bucket) interpolate
    // over real data instead of ±inf.
    double lower = i == 0 ? min : bounds[i - 1];
    double upper = i < bounds.size() ? bounds[i] : max;
    lower = std::max(lower, min);
    upper = std::min(upper, max);
    if (upper <= lower) return upper;
    const double fraction =
        (target - before) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * fraction;
  }
  return max;  // unreachable when sum(buckets) == count
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: cached
                                               // instrument refs outlive
                                               // static teardown order
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          upper_bounds.begin(), upper_bounds.end())))
             .first;
  } else {
    const auto existing = it->second->bounds();
    MWC_ASSERT_MSG(existing.size() == upper_bounds.size() &&
                       std::equal(existing.begin(), existing.end(),
                                  upper_bounds.begin()),
                   "histogram re-registered with different bounds");
  }
  return *it->second;
}

bool Registry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds.assign(h->bounds().begin(), h->bounds().end());
    hs.buckets.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i)
      hs.buckets.push_back(h->bucket_count(i));
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string RegistrySnapshot::to_json() const {
  std::string out;
  out.reserve(256 + 64 * (counters.size() + gauges.size()) +
              256 * histograms.size());
  out += "{\n  \"schema\": \"mwc.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_double(out, value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      append_double(out, h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, h.buckets[i]);
      out += buf;
    }
    out += "], \"count\": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, h.count);
    out += buf;
    out += ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"min\": ";
    append_double(out, h.min);
    out += ", \"max\": ";
    append_double(out, h.max);
    out += "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Registry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace mwc::obs
