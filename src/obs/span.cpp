#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mwc::obs {

namespace {

using steady = std::chrono::steady_clock;

steady::time_point process_epoch() noexcept {
  static const steady::time_point epoch = steady::now();
  return epoch;
}

std::atomic<bool> g_trace_enabled{false};

thread_local std::uint64_t t_trace_id = 0;

/// One thread's ring of recorded spans. Owner thread appends under the
/// buffer mutex (uncontended except during a drain); drains copy out
/// under the same mutex. Buffers are registered once per thread and
/// intentionally leaked so a drain can still read spans recorded by
/// threads that have since exited (e.g. a joined ThreadPool).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;   ///< next write slot when the ring is full
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void record(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < kTraceRingCapacity) {
      ring.push_back(e);
    } else {
      ring[head] = e;
      head = (head + 1) % kTraceRingCapacity;
      ++dropped;
    }
  }
};

struct BufferDirectory {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;
  std::uint32_t next_tid = 1;
};

BufferDirectory& directory() {
  static BufferDirectory* dir = new BufferDirectory();
  return *dir;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();  // leaked on purpose; see struct comment
    auto& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    b->tid = dir.next_tid++;
    dir.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(steady::now() -
                                                   process_epoch())
      .count();
}

void set_trace_enabled(bool on) noexcept {
  // Touch the epoch so timestamps are anchored before the first span.
  (void)process_epoch();
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void reset_trace() {
  auto& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  for (ThreadBuffer* b : dir.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mutex);
    b->ring.clear();
    b->head = 0;
    b->dropped = 0;
  }
}

std::size_t trace_event_count() {
  auto& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  std::size_t total = 0;
  for (ThreadBuffer* b : dir.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mutex);
    total += b->ring.size();
  }
  return total;
}

std::size_t trace_dropped_count() {
  auto& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  std::size_t total = 0;
  for (ThreadBuffer* b : dir.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mutex);
    total += b->dropped;
  }
  return total;
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  {
    auto& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    for (ThreadBuffer* b : dir.buffers) {
      std::lock_guard<std::mutex> buffer_lock(b->mutex);
      out.insert(out.end(), b->ring.begin(), b->ring.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const auto events = trace_events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\": [\n", f);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"cat\": \"mwc\", \"ph\": \"X\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                 e.name, e.ts_us, e.dur_us, e.tid);
    if (e.trace != 0) {
      std::fprintf(f, ", \"args\": {\"trace\": \"%016llx\"}",
                   static_cast<unsigned long long>(e.trace));
    }
    std::fprintf(f, "}%s\n", i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f,
               "], \"displayTimeUnit\": \"ms\", "
               "\"otherData\": {\"dropped_events\": \"%zu\"}}\n",
               trace_dropped_count());
  return std::fclose(f) == 0;
}

Span::Span(const char* name) noexcept
    : name_(trace_enabled() ? name : nullptr) {
  if (name_ != nullptr) {
    start_us_ = now_us();
    trace_ = t_trace_id;
  }
}

Span::~Span() {
  if (name_ == nullptr) return;
  TraceEvent e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = now_us() - start_us_;
  e.trace = trace_;
  auto& buffer = local_buffer();
  e.tid = buffer.tid;
  buffer.record(e);
}

std::uint64_t current_trace_id() noexcept { return t_trace_id; }

TraceContext::TraceContext(std::uint64_t id) noexcept : prev_(t_trace_id) {
  t_trace_id = id;
}

TraceContext::~TraceContext() { t_trace_id = prev_; }

}  // namespace mwc::obs
