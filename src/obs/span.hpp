// mwc::obs — scoped spans and Chrome-trace export.
//
// A `Span` measures the wall-clock duration of a scope and records one
// complete ("ph":"X") trace event into a per-thread ring buffer when
// tracing is enabled (`set_trace_enabled(true)`). Buffers are fixed-size
// rings: when a thread records more than kTraceRingCapacity events the
// oldest are overwritten and the drop is counted, so tracing never
// allocates on the hot path and never grows unboundedly.
//
// `write_chrome_trace(path)` drains every thread's buffer into a Chrome
// trace-event JSON file ({"traceEvents": [...]}) that loads directly in
// chrome://tracing and https://ui.perfetto.dev. Drain while instrumented
// threads are still recording is safe (each buffer is mutex-guarded) but
// racing events may land in the file or not; drain at a quiescent point
// (end of a bench run) for a complete picture.
//
// When tracing is disabled a Span costs one relaxed atomic load; the
// MWC_OBS_SCOPE macro in obs/obs.hpp additionally compiles to nothing
// under MWC_OBS_ENABLED=0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mwc::obs {

/// Per-thread trace ring capacity (events); see file comment.
inline constexpr std::size_t kTraceRingCapacity = 16384;

/// One completed span: [ts_us, ts_us + dur_us) on thread `tid`.
/// `name` must point to storage outliving the trace (string literals).
/// `trace` is the owning request's trace id (0 = no request context);
/// exported as `"args": {"trace": "<16 hex digits>"}` so Perfetto can
/// filter all spans belonging to one wire request.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t trace = 0;
};

/// Microseconds since process start (steady clock). Usable whether or
/// not tracing is enabled; the thread pool uses it for queue-wait
/// accounting.
double now_us() noexcept;

/// Globally enables/disables span recording. Off by default.
void set_trace_enabled(bool on) noexcept;
bool trace_enabled() noexcept;

/// Drops all recorded events (buffers stay registered).
void reset_trace();

/// Events currently buffered across all threads.
std::size_t trace_event_count();

/// Events overwritten because a thread's ring was full.
std::size_t trace_dropped_count();

/// Snapshot of all buffered events, sorted by start timestamp.
std::vector<TraceEvent> trace_events();

/// Writes all buffered events as a Chrome trace-event JSON file.
/// Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// RAII scope timer. Records one TraceEvent on destruction when tracing
/// was enabled at construction. `name` must be a string literal (or
/// otherwise outlive the trace).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  ///< nullptr when tracing was off at construction
  double start_us_ = 0.0;
  std::uint64_t trace_ = 0;  ///< current_trace_id() at construction
};

/// Trace id installed on the calling thread, 0 when outside any
/// TraceContext. Spans capture it at construction, so every span opened
/// while a request's context is live carries that request's id.
std::uint64_t current_trace_id() noexcept;

/// RAII request-context marker: installs `id` as the calling thread's
/// current trace id for the lifetime of the scope and restores the
/// previous id on destruction (contexts nest). The service server wraps
/// each request's handler invocation in one of these so solver spans
/// (`sim.replan_round`, `tsp.q_rooted_tsp`, ...) recorded on that worker
/// thread are attributable to the owning wire request.
///
/// Cheap enough to install unconditionally: one thread-local store each
/// way, no atomics, no allocation.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t id) noexcept;
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace mwc::obs
