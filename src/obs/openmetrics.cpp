// OpenMetrics / Prometheus text exposition for RegistrySnapshot.
//
// The mwc metric namespace is dotted lower_snake (`svc.cache.hits`);
// Prometheus names admit only [a-zA-Z0-9_:], so dots map to underscores
// (`svc_cache_hits`). Counters gain the conventional `_total` suffix and
// `# TYPE ... counter` declaration; gauges export verbatim; histograms
// export the cumulative `_bucket{le="..."}` form (our buckets store
// per-bucket counts, so the renderer accumulates them), a `+Inf` bucket
// equal to `_count`, and `_sum`/`_count` series. The document terminates
// with `# EOF` per the OpenMetrics spec; scripts/validate_openmetrics.py
// checks all of these invariants in CI.

#include "obs/registry.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace mwc::obs {

namespace {

/// `svc.cache.hits` -> `svc_cache_hits`; anything outside
/// [a-zA-Z0-9_:] becomes '_' so arbitrary registry names stay legal.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  // Prometheus text admits no nan/inf values for our instruments; clamp
  // defensively like the JSON renderer.
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    v = 0.0;
  }
  // Shortest representation that round-trips: le="0.005", not the full
  // %.17g le="0.0050000000000000001"; integral bounds print plainly
  // (le="10", not the equally-round-tripping le="1e+01").
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    for (int precision = 1; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof buf, "%.*g", precision, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string RegistrySnapshot::to_openmetrics() const {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + "_total ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " ";
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += p + "_bucket{le=\"";
      append_double(out, h.bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += p + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    out += p + "_sum ";
    append_double(out, h.sum);
    out += '\n';
    out += p + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  out += "# EOF\n";
  return out;
}

bool Registry::write_openmetrics(const std::string& path) const {
  const std::string text = to_openmetrics();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mwc::obs
