#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "charging/fleet.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mwc::sim {

namespace {
constexpr double kTimeTolerance = 1e-9;

tsp::DistanceOracle make_network_oracle(const wsn::Network& network) {
  std::vector<geom::Point> sensors;
  sensors.reserve(network.n());
  for (std::size_t i = 0; i < network.n(); ++i)
    sensors.push_back(network.sensor(i).position);
  return tsp::DistanceOracle(network.depots(), sensors);
}
}  // namespace

/// StateView implementation backed by the simulator's live arrays.
class Simulator::View final : public charging::StateView {
 public:
  View(const wsn::Network& network, double horizon)
      : network_(network), horizon_(horizon) {}

  const wsn::Network& network() const override { return network_; }
  double horizon() const override { return horizon_; }
  double now() const override { return now_; }
  double residual_life(std::size_t i) const override {
    return residual_[i];
  }
  double cycle(std::size_t i) const override { return cycles_[i]; }

  // Simulator-side mutators.
  double now_ = 0.0;
  std::vector<double> residual_;
  std::vector<double> cycles_;

 private:
  const wsn::Network& network_;
  double horizon_;
};

Simulator::Simulator(const wsn::Network& network,
                     const wsn::CycleProcess& cycles,
                     const SimOptions& options)
    : network_(network),
      cycle_model_(cycles),
      options_(options),
      oracle_(make_network_oracle(network)),
      cache_hits_c_(metrics_.counter("sim.tour_cache_hits")),
      cache_misses_c_(metrics_.counter("sim.tour_cache_misses")) {
  MWC_ASSERT(options.horizon > 0.0);
  MWC_ASSERT(cycles.n() == network.n());
}

std::uint64_t Simulator::set_hash(const std::vector<std::size_t>& sensors) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + sensors.size();
  for (std::size_t id : sensors) h = mix64(h, id);
  return h;
}

bool Simulator::wants_candidates() const noexcept {
  const auto& topts = options_.tour_options;
  if (topts.candidates != nullptr) return false;  // caller supplied one
  return topts.candidate_msf ||
         (topts.improve && !topts.improve_options.exhaustive &&
          topts.improve_options.candidates == nullptr);
}

const tsp::CandidateGraph& Simulator::shared_candidates() const {
  std::call_once(cand_once_, [&] {
    std::vector<geom::Point> combined;
    combined.reserve(network_.q() + network_.n());
    combined.insert(combined.end(), network_.depots().begin(),
                    network_.depots().end());
    for (std::size_t i = 0; i < network_.n(); ++i)
      combined.push_back(network_.sensor(i).position);
    cand_graph_ = std::make_unique<tsp::CandidateGraph>(
        tsp::CandidateGraph::build(combined,
                                   options_.tour_options.candidate_options));
  });
  return *cand_graph_;
}

Simulator::TourCost Simulator::compute_cost(
    const std::vector<std::size_t>& sensors) const {
  MWC_OBS_SCOPE("sim.compute_tour_cost");
  if (options_.trip_capacity > 0.0) {
    // Range-limited vehicles: plan the round as capacity-respecting
    // trips; each depot's trip lengths accumulate on its charger.
    const auto plan = charging::plan_capacitated_round(
        network_, sensors, options_.trip_capacity, &oracle_);
    TourCost cost;
    cost.total = plan.total_length;
    cost.per_depot.reserve(plan.trips.size());
    for (const auto& depot_trips : plan.trips) {
      double depot_cost = 0.0;
      for (const auto& trip : depot_trips) depot_cost += trip.length;
      cost.per_depot.push_back(depot_cost);
    }
    return cost;
  }

  const auto distances = oracle_.dispatch_view(sensors);

  tsp::QRootedOptions topts = options_.tour_options;
  tsp::CandidateGraph dispatch_graph;
  if (wants_candidates()) {
    // Candidate indices must coincide with view-local indices: the shared
    // full-space graph matches only the identity dispatch (all n sensors
    // in order); any proper subset gets its own subspace graph, amortized
    // by the tour-cost memoization (one build per distinct set).
    bool identity = sensors.size() == network_.n();
    for (std::size_t j = 0; identity && j < sensors.size(); ++j)
      identity = sensors[j] == j;
    if (identity) {
      topts.candidates = &shared_candidates();
      MWC_OBS_COUNT("tsp.cand.shared_reuse");
    } else {
      std::vector<geom::Point> pts;
      pts.reserve(network_.q() + sensors.size());
      pts.insert(pts.end(), network_.depots().begin(),
                 network_.depots().end());
      for (std::size_t id : sensors)
        pts.push_back(network_.sensor(id).position);
      dispatch_graph =
          tsp::CandidateGraph::build(pts, topts.candidate_options);
      topts.candidates = &dispatch_graph;
    }
  }

  const auto tours = tsp::q_rooted_tsp(distances, network_.q(), topts);

  TourCost cost;
  cost.total = tours.total_length;
  cost.per_depot.reserve(tours.tours.size());
  for (const auto& tour : tours.tours)
    cost.per_depot.push_back(tour.length_with(distances));
  return cost;
}

Simulator::TourCost Simulator::dispatch_cost(
    const std::vector<std::size_t>& sensors) {
  const std::uint64_t key =
      options_.cache_tour_costs ? set_hash(sensors) : 0;
  if (options_.cache_tour_costs) {
    const auto it = cost_cache_.find(key);
    if (it != cost_cache_.end()) {
      cache_hits_c_.add(1);
      MWC_OBS_COUNT("sim.tour_cache_hits");
      return it->second;
    }
    cache_misses_c_.add(1);
    MWC_OBS_COUNT("sim.tour_cache_misses");
  }

  TourCost cost = compute_cost(sensors);
  if (options_.cache_tour_costs) cost_cache_.emplace(key, cost);
  return cost;
}

std::size_t Simulator::precost_dispatches(
    std::span<const std::vector<std::size_t>> sets, ThreadPool* pool) {
  if (!options_.cache_tour_costs) return 0;
  MWC_OBS_SCOPE("sim.precost_dispatches");

  // Gather the distinct missing sets serially (the cache map is not
  // thread-safe) ...
  std::vector<const std::vector<std::size_t>*> missing;
  std::vector<std::uint64_t> keys;
  std::unordered_set<std::uint64_t> pending;
  for (const auto& sensors : sets) {
    if (sensors.empty()) continue;
    const std::uint64_t key = set_hash(sensors);
    if (cost_cache_.contains(key) || !pending.insert(key).second) continue;
    missing.push_back(&sensors);
    keys.push_back(key);
  }
  if (missing.empty()) return 0;

  // ... cost them concurrently (compute_cost only reads shared state;
  // the oracle's lazy rows tolerate concurrent first touches) ...
  std::vector<TourCost> costs(missing.size());
  const auto cost_one = [&](std::size_t i) {
    costs[i] = compute_cost(*missing[i]);
  };
  if (pool != nullptr && missing.size() > 1) {
    parallel_for(*pool, 0, missing.size(), cost_one);
  } else {
    serial_for(0, missing.size(), cost_one);
  }

  // ... and publish serially.
  for (std::size_t i = 0; i < missing.size(); ++i)
    cost_cache_.emplace(keys[i], std::move(costs[i]));
  metrics_.counter("sim.precost_sets").add(missing.size());
  MWC_OBS_COUNT_N("sim.precost_sets", missing.size());
  return missing.size();
}

std::size_t Simulator::precost_policy(charging::Policy& policy,
                                      ThreadPool* pool) {
  if (!options_.cache_tour_costs) return 0;
  // Reconstruct the t = 0 state run() starts from; policies are
  // restartable, so the extra reset() is harmless.
  View view(network_, options_.horizon);
  view.now_ = 0.0;
  view.cycles_ = cycle_model_.cycles_at_slot(0);
  view.residual_ = view.cycles_;
  policy.reset(view);
  const auto sets = policy.planned_dispatch_sets(view);
  return precost_dispatches(sets, pool);
}

SimResult Simulator::run(charging::Policy& policy) {
  MWC_OBS_SCOPE("sim.run");
  Timer timer;
  SimResult result;
  const std::size_t hits_before = cache_hits_c_.value();
  const std::size_t misses_before = cache_misses_c_.value();
  const std::size_t n = network_.n();
  const double T = options_.horizon;

  View view(network_, T);
  view.now_ = 0.0;
  view.cycles_ = cycle_model_.cycles_at_slot(0);
  view.residual_ = view.cycles_;  // all sensors fully charged at t = 0

  result.per_charger_cost.assign(network_.q(), 0.0);
  std::vector<bool> currently_dead(n, false);
  std::vector<bool> ever_dead(n, false);

  policy.reset(view);

  std::size_t slot = 0;
  const bool variable = options_.slot_length > 0.0;

  // Advances the clock to `target`, recording depletion events.
  const auto advance_to = [&](double target) {
    const double delta = target - view.now_;
    MWC_DEBUG_ASSERT(delta >= -kTimeTolerance);
    if (delta <= 0.0) {
      view.now_ = target;
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!currently_dead[i] && view.residual_[i] < delta - kTimeTolerance) {
        currently_dead[i] = true;
        if (!ever_dead[i]) {
          ever_dead[i] = true;
          ++result.dead_sensors;
        }
        result.deaths.push_back(DeathEvent{i, view.now_ + view.residual_[i]});
      }
      view.residual_[i] = std::max(0.0, view.residual_[i] - delta);
    }
    view.now_ = target;
  };

  while (view.now_ < T) {
    const double next_slot_time =
        variable ? static_cast<double>(slot + 1) * options_.slot_length
                 : std::numeric_limits<double>::infinity();

    auto dispatch = policy.next_dispatch(view);
    double dispatch_time = std::numeric_limits<double>::infinity();
    if (dispatch) {
      MWC_ASSERT_MSG(dispatch->time >= view.now_ - kTimeTolerance,
                     "policy scheduled a dispatch in the past");
      MWC_ASSERT_MSG(!dispatch->sensors.empty(),
                     "policy scheduled an empty dispatch");
      dispatch_time = std::max(dispatch->time, view.now_);
    }

    const double t_next = std::min({next_slot_time, dispatch_time, T});
    advance_to(t_next);
    if (view.now_ >= T) break;

    if (dispatch && dispatch_time <= t_next + kTimeTolerance &&
        dispatch_time <= next_slot_time) {
      // Execute the dispatch.
      MWC_OBS_SCOPE("sim.dispatch");
      const auto cost = dispatch_cost(dispatch->sensors);
      result.service_cost += cost.total;
      for (std::size_t l = 0; l < cost.per_depot.size(); ++l)
        result.per_charger_cost[l] += cost.per_depot[l];
      ++result.num_dispatches;
      result.num_sensor_charges += dispatch->sensors.size();
      if (options_.record_dispatches) {
        result.dispatch_log.push_back(
            DispatchRecord{dispatch_time, dispatch->sensors, cost.total});
      }
      double dispatch_margin = std::numeric_limits<double>::infinity();
      for (std::size_t id : dispatch->sensors) {
        dispatch_margin = std::min(dispatch_margin, view.residual_[id]);
        view.residual_[id] = view.cycles_[id];
        currently_dead[id] = false;
      }
      result.min_residual_at_charge =
          std::min(result.min_residual_at_charge, dispatch_margin);
      MWC_OBS_COUNT("sim.dispatches");
      MWC_OBS_COUNT_N("sim.sensor_charges", dispatch->sensors.size());
      MWC_OBS_GAUGE_ADD("sim.service_cost_total", cost.total);
      // Tightest residual lifetime among this round's sensors: the margin
      // by which the policy beat depletion (time units of the cycle τ).
      MWC_OBS_HISTOGRAM("sim.residual_margin", dispatch_margin, 0.5, 1.0,
                        2.0, 5.0, 10.0, 20.0, 50.0);
      policy.on_dispatch_executed(view, *dispatch);
      MWC_ASSERT_MSG(result.num_dispatches <= options_.max_dispatches,
                     "dispatch cap exceeded (runaway policy?)");
      continue;
    }

    if (variable && view.now_ + kTimeTolerance >= next_slot_time) {
      // Slot boundary: redraw cycles; residual energy *fraction* carries
      // over, so residual lifetime rescales by τ_new / τ_old.
      ++slot;
      const auto new_cycles = cycle_model_.cycles_at_slot(slot);
      for (std::size_t i = 0; i < n; ++i) {
        const double old_tau = view.cycles_[i];
        if (old_tau > 0.0) {
          view.residual_[i] *= new_cycles[i] / old_tau;
        }
        view.cycles_[i] = new_cycles[i];
      }
      policy.on_cycles_updated(view);
    }
  }

  // SimResult's cache counters and wall time are sourced from the
  // per-instance metrics registry (fields kept, values identical to the
  // pre-registry hand-threaded members).
  result.tour_cache_hits = cache_hits_c_.value() - hits_before;
  result.tour_cache_misses = cache_misses_c_.value() - misses_before;
  obs::Gauge& wall = metrics_.gauge("sim.run_wall_seconds");
  wall.set(timer.elapsed_seconds());
  result.wall_seconds = wall.value();
  return result;
}

}  // namespace mwc::sim
