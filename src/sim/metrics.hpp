// Result record of one simulated monitoring period.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mwc::sim {

struct DeathEvent {
  std::size_t sensor = 0;
  double time = 0.0;
};

/// One executed charging scheduling (recorded when
/// SimOptions::record_dispatches is set).
struct DispatchRecord {
  double time = 0.0;
  std::vector<std::size_t> sensors;
  double cost = 0.0;  ///< total tour length of this round
};

struct SimResult {
  /// Total travelled distance of all chargers over the period — the
  /// paper's "service cost" (same length unit as the field; the benches
  /// report km for a metre-denominated field).
  double service_cost = 0.0;
  /// Distance broken down per charger/depot.
  std::vector<double> per_charger_cost;
  /// Number of charging schedulings executed.
  std::size_t num_dispatches = 0;
  /// Number of individual sensor charges across all dispatches.
  std::size_t num_sensor_charges = 0;
  /// Distinct sensors that ran out of energy at least once (0 for a
  /// feasible policy).
  std::size_t dead_sensors = 0;
  /// Every depletion event (first per discharge interval).
  std::vector<DeathEvent> deaths;
  /// Executed dispatches, oldest first (only when
  /// SimOptions::record_dispatches is set; empty otherwise).
  std::vector<DispatchRecord> dispatch_log;
  /// Smallest residual lifetime observed at any charge instant — the
  /// tightest margin by which the policy stayed feasible.
  double min_residual_at_charge = std::numeric_limits<double>::infinity();
  /// Tour-cost cache hits/misses during this run. A dispatch whose set
  /// was already costed (earlier in the run, in a previous run, or by
  /// Simulator::precost_dispatches) counts as a hit; for
  /// MinTotalDistance with a cold cache, misses == K + 1 (the distinct
  /// round classes) and hits == num_dispatches - (K + 1).
  std::size_t tour_cache_hits = 0;
  std::size_t tour_cache_misses = 0;
  /// Wall-clock seconds spent simulating (policy + tour construction).
  double wall_seconds = 0.0;

  bool feasible() const noexcept { return dead_sensors == 0; }
};

/// Accumulates per-run results into a mean (benches aggregate over
/// topologies with full Summary statistics; this is the quick form).
SimResult average(const std::vector<SimResult>& results);

}  // namespace mwc::sim
