// Event-driven network simulator.
//
// Time is continuous. Per-sensor state is the residual lifetime — the time
// left until depletion at the current consumption rate; this is exact for
// piecewise-constant rates, which is what the slot model produces:
//   * advancing by δ subtracts δ,
//   * a full charge resets it to the current cycle τ_i(t),
//   * a slot redraw rescales it by τ_new/τ_old (the *energy fraction* is
//     what carries over when the consumption rate changes).
//
// The simulator alternates between the policy's next planned dispatch and
// the next slot boundary (variable-cycle runs only), executes whichever
// comes first, and charges each dispatch's service cost as the total
// length of the q closed tours that Algorithm 2 (tsp::q_rooted_tsp) builds
// over the dispatch set — identical costing for every policy. Costs are
// memoized by dispatch set, which collapses the K+1 distinct round classes
// of MinTotalDistance to K+1 tour constructions per run.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "charging/schedule.hpp"
#include "obs/registry.hpp"
#include "sim/metrics.hpp"
#include "tsp/candidates.hpp"
#include "tsp/oracle.hpp"
#include "tsp/qrooted.hpp"
#include "util/thread_pool.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::sim {

struct SimOptions {
  double horizon = 1000.0;     ///< monitoring period T
  /// Slot length ΔT for cycle redraws; <= 0 freezes cycles at slot 0
  /// (the fixed-maximum-charging-cycle setting).
  double slot_length = 0.0;
  /// How each round's q tours are built (construction heuristic +
  /// optional 2-opt/Or-opt polish, candidate-list acceleration). Defaults
  /// match the paper. When a candidate-consuming stage is enabled
  /// (`improve` without `improve_options.exhaustive`, or `candidate_msf`)
  /// and no graph is supplied, the simulator provides one: the lazily
  /// built shared graph over the full combined space for full dispatches,
  /// or a per-dispatch subspace graph otherwise (memoized with the tour
  /// cost, so each distinct set builds at most once).
  tsp::QRootedOptions tour_options;
  /// Per-trip travel budget of each charger (metres); > 0 splits every
  /// round's tours via charging::plan_capacitated_round, adding the
  /// return legs a range-limited vehicle actually drives. <= 0 matches
  /// the paper's unlimited-range model.
  double trip_capacity = 0.0;
  /// Memoize tour costs per distinct dispatch set.
  bool cache_tour_costs = true;
  /// Record every executed dispatch into SimResult::dispatch_log (for
  /// replay validation and debugging).
  bool record_dispatches = false;
  /// Hard cap on dispatches (guards against a runaway policy).
  std::size_t max_dispatches = 10'000'000;
};

class Simulator {
 public:
  Simulator(const wsn::Network& network, const wsn::CycleProcess& cycles,
            const SimOptions& options);

  /// Runs one full monitoring period under `policy`. Restartable: each
  /// call re-initializes all state (the tour-cost cache persists across
  /// runs; it depends only on the network geometry and options).
  SimResult run(charging::Policy& policy);

  /// Pre-warms the tour-cost cache with the given dispatch sets: missing
  /// sets are costed concurrently on `pool` (serially when null) and
  /// inserted into the cache. A subsequent run() then hits the cache on
  /// every dispatch of one of these sets. Distances are read through the
  /// shared per-network oracle, whose lazy rows are thread-safe. Returns
  /// the number of sets actually computed (not already cached). No-op
  /// when cache_tour_costs is off.
  std::size_t precost_dispatches(
      std::span<const std::vector<std::size_t>> sets,
      ThreadPool* pool = nullptr);

  /// Asks `policy` (after a reset at t = 0) for its planned dispatch
  /// sets and pre-costs them. Convenience wrapper used by the experiment
  /// runner before timed runs.
  std::size_t precost_policy(charging::Policy& policy,
                             ThreadPool* pool = nullptr);

  const SimOptions& options() const noexcept { return options_; }

  /// Shared pairwise-distance oracle over the network's q depots plus all
  /// n sensors (combined index space: depot l at l, sensor i at q + i).
  const tsp::DistanceOracle& oracle() const noexcept { return oracle_; }

  /// Tour-cache statistics since construction, read from the simulator's
  /// metrics registry (run() snapshots the per-run delta into SimResult).
  std::size_t tour_cache_hits() const noexcept {
    return cache_hits_c_.value();
  }
  std::size_t tour_cache_misses() const noexcept {
    return cache_misses_c_.value();
  }

  /// Per-instance telemetry registry: the authoritative source of
  /// SimResult::tour_cache_hits/misses and wall_seconds. Instance-local
  /// (not obs::Registry::global()) so per-run deltas stay exact when
  /// many simulators run concurrently; the global registry receives the
  /// same events through MWC_OBS_* macros for process-wide aggregation.
  const obs::Registry& metrics() const noexcept { return metrics_; }
  obs::Registry& metrics() noexcept { return metrics_; }

 private:
  class View;

  struct TourCost {
    double total = 0.0;
    std::vector<double> per_depot;
  };

  TourCost dispatch_cost(const std::vector<std::size_t>& sensors);
  /// Pure costing of one dispatch set through the oracle; no cache access,
  /// safe to call concurrently.
  TourCost compute_cost(const std::vector<std::size_t>& sensors) const;
  static std::uint64_t set_hash(const std::vector<std::size_t>& sensors);

  /// True when tour_options wants a candidate graph but supplies none.
  bool wants_candidates() const noexcept;
  /// Lazily built shared k-NN graph over the full combined node space
  /// (thread-safe via call_once); index-compatible with any identity
  /// dispatch view, i.e. a dispatch of all n sensors in order.
  const tsp::CandidateGraph& shared_candidates() const;

  const wsn::Network& network_;
  const wsn::CycleProcess& cycle_model_;
  SimOptions options_;
  tsp::DistanceOracle oracle_;
  mutable std::once_flag cand_once_;
  mutable std::unique_ptr<tsp::CandidateGraph> cand_graph_;
  std::unordered_map<std::uint64_t, TourCost> cost_cache_;
  obs::Registry metrics_;
  obs::Counter& cache_hits_c_;    ///< metrics_ "sim.tour_cache_hits"
  obs::Counter& cache_misses_c_;  ///< metrics_ "sim.tour_cache_misses"
};

}  // namespace mwc::sim
