// Event-driven network simulator.
//
// Time is continuous. Per-sensor state is the residual lifetime — the time
// left until depletion at the current consumption rate; this is exact for
// piecewise-constant rates, which is what the slot model produces:
//   * advancing by δ subtracts δ,
//   * a full charge resets it to the current cycle τ_i(t),
//   * a slot redraw rescales it by τ_new/τ_old (the *energy fraction* is
//     what carries over when the consumption rate changes).
//
// The simulator alternates between the policy's next planned dispatch and
// the next slot boundary (variable-cycle runs only), executes whichever
// comes first, and charges each dispatch's service cost as the total
// length of the q closed tours that Algorithm 2 (tsp::q_rooted_tsp) builds
// over the dispatch set — identical costing for every policy. Costs are
// memoized by dispatch set, which collapses the K+1 distinct round classes
// of MinTotalDistance to K+1 tour constructions per run.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "charging/schedule.hpp"
#include "sim/metrics.hpp"
#include "tsp/qrooted.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::sim {

struct SimOptions {
  double horizon = 1000.0;     ///< monitoring period T
  /// Slot length ΔT for cycle redraws; <= 0 freezes cycles at slot 0
  /// (the fixed-maximum-charging-cycle setting).
  double slot_length = 0.0;
  /// Polish tours with 2-opt/Or-opt (ablation; default matches the paper).
  bool improve_tours = false;
  /// Per-group tour constructor (ablation; default matches the paper).
  tsp::TourConstruction tour_construction =
      tsp::TourConstruction::kDoubleTree;
  /// Per-trip travel budget of each charger (metres); > 0 splits every
  /// round's tours via charging::plan_capacitated_round, adding the
  /// return legs a range-limited vehicle actually drives. <= 0 matches
  /// the paper's unlimited-range model.
  double trip_capacity = 0.0;
  /// Memoize tour costs per distinct dispatch set.
  bool cache_tour_costs = true;
  /// Record every executed dispatch into SimResult::dispatch_log (for
  /// replay validation and debugging).
  bool record_dispatches = false;
  /// Hard cap on dispatches (guards against a runaway policy).
  std::size_t max_dispatches = 10'000'000;
};

class Simulator {
 public:
  Simulator(const wsn::Network& network, const wsn::CycleProcess& cycles,
            const SimOptions& options);

  /// Runs one full monitoring period under `policy`. Restartable: each
  /// call re-initializes all state.
  SimResult run(charging::Policy& policy);

  const SimOptions& options() const noexcept { return options_; }

 private:
  class View;

  struct TourCost {
    double total = 0.0;
    std::vector<double> per_depot;
  };

  TourCost dispatch_cost(const std::vector<std::size_t>& sensors);
  static std::uint64_t set_hash(const std::vector<std::size_t>& sensors);

  const wsn::Network& network_;
  const wsn::CycleProcess& cycle_model_;
  SimOptions options_;
  std::unordered_map<std::uint64_t, TourCost> cost_cache_;
};

}  // namespace mwc::sim
