// One-shot solve entry point over a *prebuilt* instance.
//
// The experiment runner (exp::run_trial / run_policies) generates its own
// topologies; a serving layer receives them. solve_network() runs one
// monitoring period of `policy` over a caller-supplied network + cycle
// process and additionally reconstructs the q closed tours of the first
// executed charging round (through the same oracle-backed Algorithm-2
// pipeline the simulator costs with), which is what an on-demand client
// actually drives: the fleet's next rollout plus the horizon-total cost.
#pragma once

#include <span>

#include "charging/schedule.hpp"
#include "geom/point.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "tsp/candidates.hpp"
#include "tsp/qrooted.hpp"
#include "tsp/tour.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::sim {

/// The first executed charging round, as explicit tours. Tours are in
/// the *global* combined labeling: node l < q is depot l, node q + i is
/// sensor id i (not dispatch-local positions).
struct RoundPlan {
  std::vector<std::size_t> sensors;  ///< the round's dispatch set
  std::vector<tsp::Tour> tours;      ///< one per depot, combined labels
  std::vector<double> tour_lengths;
  double total_length = 0.0;
  /// The round's q-rooted MSF in *round-local* combined space (depot l
  /// is node l, the j-th entry of `sensors` is node q + j) — kept so
  /// incremental re-planning can repair it instead of re-solving.
  tsp::QRootedForest forest;
};

struct SolveOutcome {
  SimResult result;      ///< full-horizon simulation (dispatch log kept)
  RoundPlan first_round; ///< empty when the policy never dispatched
};

/// Runs one monitoring period of `policy` on the given instance.
/// `options.record_dispatches` is forced on (the dispatch log is the
/// product). Deterministic: equal inputs give bit-identical outcomes.
SolveOutcome solve_network(const wsn::Network& network,
                           const wsn::CycleProcess& cycles,
                           SimOptions options, charging::Policy& policy);

/// A patch against a base RoundPlan, expressed in the *patched* network's
/// id space. The svc delta layer folds wire patch ops into this form.
struct RoundPatch {
  /// The new dispatch set: global sensor ids of the patched network,
  /// ordered surviving-base-sensors-first (in base round order), then
  /// additions. The order fixes the new round-local combined space.
  std::vector<std::size_t> sensors;
  /// Parallel to `sensors`: the index of the same physical sensor in the
  /// base round's dispatch set, or npos (size_t(-1)) for an addition.
  std::vector<std::size_t> base_slot;
  /// New-round-local combined ids whose geometry or status changed:
  /// q + j for moved or added sensors, depot index l for a charger whose
  /// availability flipped. Drives dirty-tree selection and the localized
  /// re-polish seeds.
  std::vector<std::size_t> touched;
  /// Per-depot availability (size q, or empty for "all active"). At
  /// least one depot must stay active.
  std::vector<char> charger_active;
};

struct ReplanOutcome {
  RoundPlan round;                 ///< tours global-labeled, forest local
  tsp::CandidateGraph candidates;  ///< repaired graph, new local space
  tsp::MsfRepairStats msf;
  std::size_t reused_tours = 0;      ///< clean trees, tour copied verbatim
  std::size_t repolished_tours = 0;  ///< same tree re-derived, seeded polish
  std::size_t rebuilt_tours = 0;     ///< tree changed, tour rebuilt
};

/// Incrementally re-plans one charging round after a patch: repairs the
/// candidate graph (CandidateGraph::repair), repairs the q-rooted MSF over
/// the dirty region only (repair_q_rooted_msf), rebuilds tours only for
/// trees that actually changed, and re-polishes surviving tours locally
/// (ImproveOptions::seed_nodes) when candidate-mode polish is active.
///
/// `network` is the *patched* network; `base`/`base_points` (q depots +
/// base round sensors, round-local order) and `base_candidates` describe
/// the cached base round. The result's tour weight is never worse than a
/// full re-solve of the patched round with the same `options` (changed
/// trees re-run the identical construct+polish pipeline; unchanged trees
/// keep their already-polished tours, optionally improved further).
ReplanOutcome replan_round(const wsn::Network& network, const RoundPlan& base,
                           std::span<const geom::Point> base_points,
                           const tsp::CandidateGraph& base_candidates,
                           const RoundPatch& patch,
                           const tsp::QRootedOptions& options);

}  // namespace mwc::sim
