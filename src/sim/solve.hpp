// One-shot solve entry point over a *prebuilt* instance.
//
// The experiment runner (exp::run_trial / run_policies) generates its own
// topologies; a serving layer receives them. solve_network() runs one
// monitoring period of `policy` over a caller-supplied network + cycle
// process and additionally reconstructs the q closed tours of the first
// executed charging round (through the same oracle-backed Algorithm-2
// pipeline the simulator costs with), which is what an on-demand client
// actually drives: the fleet's next rollout plus the horizon-total cost.
#pragma once

#include "charging/schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "tsp/tour.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::sim {

/// The first executed charging round, as explicit tours. Tours are in
/// the *global* combined labeling: node l < q is depot l, node q + i is
/// sensor id i (not dispatch-local positions).
struct RoundPlan {
  std::vector<std::size_t> sensors;  ///< the round's dispatch set
  std::vector<tsp::Tour> tours;      ///< one per depot, combined labels
  std::vector<double> tour_lengths;
  double total_length = 0.0;
};

struct SolveOutcome {
  SimResult result;      ///< full-horizon simulation (dispatch log kept)
  RoundPlan first_round; ///< empty when the policy never dispatched
};

/// Runs one monitoring period of `policy` on the given instance.
/// `options.record_dispatches` is forced on (the dispatch log is the
/// product). Deterministic: equal inputs give bit-identical outcomes.
SolveOutcome solve_network(const wsn::Network& network,
                           const wsn::CycleProcess& cycles,
                           SimOptions options, charging::Policy& policy);

}  // namespace mwc::sim
