// Independent replay validation of a simulated run.
//
// The simulator tracks per-sensor state as *residual lifetime* (exact for
// piecewise-constant rates, but an abstraction). This module re-executes
// a recorded dispatch log against explicit `wsn::Battery` objects driven
// by physical consumption rates ρ_i(t) = B_i / τ_i(t) — a second,
// structurally different bookkeeping implementation. Agreement between
// the two (same deaths, same tightest margins) is a property test on the
// simulator itself.
#pragma once

#include <vector>

#include "sim/metrics.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::sim {

struct ReplayResult {
  std::size_t dead_sensors = 0;
  std::vector<DeathEvent> deaths;
  /// Smallest battery fraction observed at any charge instant.
  double min_fraction_at_charge = 1.0;
};

/// Replays `log` over `horizon` with slot redraws every `slot_length`
/// (<= 0 freezes cycles at slot 0), integrating each battery at its
/// physical rate between events. Batteries start full.
ReplayResult replay_with_batteries(const wsn::Network& network,
                                   const wsn::CycleProcess& cycles,
                                   double horizon, double slot_length,
                                   const std::vector<DispatchRecord>& log);

}  // namespace mwc::sim
