#include "sim/solve.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "tsp/construct.hpp"
#include "tsp/qrooted.hpp"
#include "util/assert.hpp"

namespace mwc::sim {

SolveOutcome solve_network(const wsn::Network& network,
                           const wsn::CycleProcess& cycles,
                           SimOptions options, charging::Policy& policy) {
  MWC_OBS_SCOPE("sim.solve_network");
  options.record_dispatches = true;
  Simulator simulator(network, cycles, options);

  SolveOutcome outcome;
  outcome.result = simulator.run(policy);
  if (outcome.result.dispatch_log.empty()) return outcome;

  // Rebuild the first round's tours through the simulator's shared
  // oracle — the identical distance kernel its costing used, so the
  // tours' total matches the logged round cost bit for bit (when no
  // trip-capacity splitting rewrites the round).
  const auto& first = outcome.result.dispatch_log.front();
  RoundPlan& round = outcome.first_round;
  round.sensors = first.sensors;
  const auto view = simulator.oracle().dispatch_view(round.sensors);
  auto tours = tsp::q_rooted_tsp(view, network.q(), options.tour_options);
  round.total_length = tours.total_length;
  round.tours.reserve(tours.tours.size());
  round.tour_lengths.reserve(tours.tours.size());
  for (auto& tour : tours.tours) {
    round.tour_lengths.push_back(tour.length_with(view));
    // Dispatch-view locals -> global combined labels (depot l stays l;
    // local q + j becomes q + sensors[j]).
    std::vector<std::size_t> order = std::move(tour.order());
    for (std::size_t& node : order) {
      if (node >= network.q())
        node = network.q() + round.sensors[node - network.q()];
    }
    round.tours.emplace_back(std::move(order));
  }
  // The forest stays round-local; the delta path repairs it in place of
  // re-deriving the MSF.
  round.forest = std::move(tours.forest);
  return outcome;
}

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Unordered edge-set equality on endpoints (weights follow endpoints
/// under identical geometry).
bool same_edge_set(std::vector<graph::Edge> a, std::vector<graph::Edge> b) {
  if (a.size() != b.size()) return false;
  const auto norm = [](std::vector<graph::Edge>& es) {
    for (auto& e : es)
      if (e.u > e.v) std::swap(e.u, e.v);
    std::sort(es.begin(), es.end(),
              [](const graph::Edge& x, const graph::Edge& y) {
                return x.u != y.u ? x.u < y.u : x.v < y.v;
              });
  };
  norm(a);
  norm(b);
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].u != b[i].u || a[i].v != b[i].v) return false;
  return true;
}

}  // namespace

ReplanOutcome replan_round(const wsn::Network& network, const RoundPlan& base,
                           std::span<const geom::Point> base_points,
                           const tsp::CandidateGraph& base_candidates,
                           const RoundPatch& patch,
                           const tsp::QRootedOptions& options) {
  MWC_OBS_SCOPE("sim.replan_round");
  MWC_OBS_COUNT("sim.replans");
  const std::size_t q = network.q();
  const std::size_t m0 = base.sensors.size();
  const std::size_t m1 = patch.sensors.size();
  MWC_ASSERT_MSG(base_points.size() == q + m0, "base_points size mismatch");
  MWC_ASSERT_MSG(patch.base_slot.size() == m1, "base_slot size mismatch");
  MWC_ASSERT_MSG(base.forest.trees.size() == q, "base forest missing");
  MWC_ASSERT_MSG(base.tours.size() == q, "base tours missing");

  ReplanOutcome outcome;

  // The new round-local combined geometry: depots, then patch.sensors.
  std::vector<geom::Point> new_points;
  new_points.reserve(q + m1);
  new_points.insert(new_points.end(), network.depots().begin(),
                    network.depots().end());
  for (const std::size_t id : patch.sensors) {
    MWC_ASSERT_MSG(id < network.n(), "patch sensor id out of range");
    new_points.push_back(network.sensor_points()[id]);
  }
  const auto view = tsp::DistanceView::direct(new_points);

  // Base-slot <-> new-slot maps. Survivors must appear in base round
  // order: index-order compaction keeps remapped candidate rows sorted,
  // which CandidateGraph::repair's exactness argument relies on.
  std::vector<std::size_t> slot_to_new(m0, kNpos);
  {
    bool seen = false;
    std::size_t prev = 0;
    for (std::size_t j = 0; j < m1; ++j) {
      const std::size_t slot = patch.base_slot[j];
      if (slot == kNpos) continue;
      MWC_ASSERT_MSG(slot < m0 && slot_to_new[slot] == kNpos,
                     "base_slot out of range or duplicated");
      MWC_ASSERT_MSG(!seen || slot > prev,
                     "surviving sensors must keep base round order");
      slot_to_new[slot] = j;
      prev = slot;
      seen = true;
    }
  }

  // 1. Repair the candidate graph over the new space.
  tsp::CandidateRemap remap;
  remap.old_to_new.assign(q + m0, tsp::CandidateRemap::kRemoved);
  for (std::size_t l = 0; l < q; ++l) remap.old_to_new[l] = l;
  for (std::size_t i = 0; i < m0; ++i)
    if (slot_to_new[i] != kNpos) remap.old_to_new[q + i] = q + slot_to_new[i];
  remap.new_size = q + m1;
  for (const std::size_t t : patch.touched) {
    MWC_ASSERT_MSG(t < q + m1, "touched id out of range");
    if (t >= q) remap.fresh.push_back(t);
  }
  outcome.candidates = tsp::CandidateGraph::repair(
      base_candidates, new_points, remap, options.candidate_options);

  // 2. Dirty-tree selection: trees losing a sensor, trees owning a
  // touched node or one of its candidate neighbors, and flipped chargers.
  std::vector<std::size_t> base_owner(q + m0, kNpos);
  for (std::size_t l = 0; l < q; ++l)
    for (const std::size_t v : base.forest.trees[l].nodes()) base_owner[v] = l;

  const auto root_active = [&](std::size_t l) {
    return patch.charger_active.empty() || patch.charger_active[l] != 0;
  };

  std::vector<char> tree_dirty(q, 0);
  for (std::size_t i = 0; i < m0; ++i)
    if (slot_to_new[i] == kNpos && base_owner[q + i] != kNpos)
      tree_dirty[base_owner[q + i]] = 1;
  const auto mark = [&](std::size_t new_local) {
    std::size_t base_local = new_local;
    if (new_local >= q) {
      const std::size_t slot = patch.base_slot[new_local - q];
      if (slot == kNpos) return;  // an addition owns no base tree
      base_local = q + slot;
    }
    if (base_owner[base_local] != kNpos) tree_dirty[base_owner[base_local]] = 1;
  };
  for (const std::size_t t : patch.touched) {
    mark(t);
    for (const std::size_t c : outcome.candidates.neighbors(t)) mark(c);
    if (t < q && !root_active(t)) tree_dirty[t] = 1;
  }

  // 3. Remap the base forest into the new space. Clean trees carry their
  // edges; dirty trees contribute membership only (their survivors plus
  // all additions become the repair's re-span set). For dirty trees whose
  // nodes all survived, keep the remapped edge list around to detect
  // "repair re-derived the identical tree" below.
  tsp::QRootedForest base_local;
  base_local.trees.reserve(q);
  tsp::MsfRepairPlan plan;
  plan.tree_dirty = tree_dirty;
  plan.root_active = patch.charger_active;
  const auto to_new = [&](std::size_t v) {
    if (v < q) return v;
    const std::size_t j = slot_to_new[v - q];
    return j == kNpos ? kNpos : q + j;
  };
  std::vector<std::vector<graph::Edge>> dirty_base_edges(q);
  std::vector<char> dirty_comparable(q, 0);
  for (std::size_t l = 0; l < q; ++l) {
    const auto& tree = base.forest.trees[l];
    if (!tree_dirty[l]) {
      std::vector<graph::Edge> edges;
      edges.reserve(tree.edges().size());
      for (const auto& e : tree.edges())
        edges.push_back(graph::Edge{to_new(e.u), to_new(e.v), e.w});
      base_local.trees.emplace_back(l, edges);
      continue;
    }
    base_local.trees.emplace_back(l, std::span<const graph::Edge>{});
    bool comparable = true;
    std::vector<graph::Edge> edges;
    for (const auto& e : tree.edges()) {
      const std::size_t u = to_new(e.u);
      const std::size_t v = to_new(e.v);
      if (u == kNpos || v == kNpos)
        comparable = false;
      else
        edges.push_back(graph::Edge{u, v, e.w});
    }
    if (comparable) {
      dirty_comparable[l] = 1;
      dirty_base_edges[l] = std::move(edges);
    }
    for (const std::size_t v : tree.nodes()) {
      if (v < q) continue;
      const std::size_t nv = to_new(v);
      if (nv != kNpos) plan.extra_sensors.push_back(nv);
    }
  }
  for (std::size_t j = 0; j < m1; ++j)
    if (patch.base_slot[j] == kNpos) plan.extra_sensors.push_back(q + j);

  // 4. Repair the MSF over the dirty region with candidate-pruned Prim.
  // The repaired graph covers the new space, so the re-span touches
  // O(dirty × k) pairs instead of the dense dirty × clean sweep; the
  // best-of tour starts below absorb the (rare, tiny) weight excess a
  // pruned re-span can introduce over a dense full rebuild.
  auto forest = tsp::repair_q_rooted_msf(view, q, base_local, plan,
                                         &outcome.candidates, &outcome.msf);

  // 5. Tours. Unchanged trees keep their already-polished base tours;
  // dirty trees that the repair re-derived identically keep theirs too
  // (a full re-solve reconstructs the same tour from the same tree) and
  // get a localized seeded re-polish; genuinely changed trees re-run the
  // full construct+polish pipeline.
  RoundPlan& round = outcome.round;
  round.sensors = patch.sensors;

  tsp::ImproveOptions improve_opts = options.improve_options;
  // Mirror Simulator::wants_candidates: the full pipeline polishes in
  // candidate mode whenever improvement is on and not forced exhaustive
  // (building a graph on demand if the caller supplied none), so the
  // repair must too — an exhaustive sweep here would cost more than the
  // full solve it is meant to undercut.
  const bool candidate_polish =
      !improve_opts.exhaustive &&
      (improve_opts.candidates != nullptr || options.candidates != nullptr ||
       options.candidate_msf || options.improve);
  // Any caller-supplied graph covers the *base* space; substitute the
  // repaired one (same k regime, new space).
  improve_opts.candidates = candidate_polish ? &outcome.candidates : nullptr;

  // Two candidate hops: improving 2-opt/Or-opt moves triggered by a
  // patch routinely involve an edge one neighbourhood removed from the
  // touched node, and the seeded re-polish can only find moves whose
  // don't-look bits are cleared.
  std::vector<std::size_t> seeds;
  for (const std::size_t t : patch.touched) {
    seeds.push_back(t);
    for (const std::size_t c : outcome.candidates.neighbors(t)) {
      seeds.push_back(c);
      for (const std::size_t c2 : outcome.candidates.neighbors(c))
        seeds.push_back(c2);
    }
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  std::unordered_map<std::size_t, std::size_t> base_slot_of;
  base_slot_of.reserve(m0);
  for (std::size_t i = 0; i < m0; ++i) base_slot_of.emplace(base.sensors[i], i);
  const auto base_tour_local = [&](std::size_t l) {
    std::vector<std::size_t> order;
    order.reserve(base.tours[l].size());
    for (const std::size_t v : base.tours[l].order())
      order.push_back(v < q ? v : q + slot_to_new[base_slot_of.at(v - q)]);
    return tsp::Tour(std::move(order));
  };
  const auto rotate_to_root = [](tsp::Tour& tour, std::size_t root) {
    auto& order = tour.order();
    const auto at = std::find(order.begin(), order.end(), root);
    if (at != order.begin() && at != order.end())
      std::rotate(order.begin(), at, order.end());
  };

  round.tours.reserve(q);
  round.tour_lengths.reserve(q);
  for (std::size_t l = 0; l < q; ++l) {
    const auto& tree = forest.trees[l];
    const bool changed = outcome.msf.tree_changed[l] != 0;
    tsp::Tour tour;
    double length = 0.0;
    bool have_length = false;
    if (!changed) {
      tour = base_tour_local(l);
      length = base.tour_lengths[l];
      have_length = true;
      ++outcome.reused_tours;
    } else if (dirty_comparable[l] != 0 &&
               same_edge_set(tree.edges(), dirty_base_edges[l])) {
      tour = base_tour_local(l);
      if (options.improve && tour.size() >= 4) {
        tsp::ImproveOptions seeded = improve_opts;
        seeded.seed_nodes = &seeds;
        const double gain = tsp::improve_tour(tour, view, seeded);
        MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", gain);
        // The repair re-derived the identical tree, so a full re-solve
        // would run tree_to_tour + unseeded polish on it — a different
        // construction basin that sometimes beats the re-polished base
        // tour. Run that exact pipeline too and keep the shorter tour;
        // this is what pins the repaired round at-or-below the full
        // re-solve on every tree the repair left structurally intact.
        tsp::Tour fresh = tsp::tree_to_tour(tree.edges(), l);
        const double fresh_gain = tsp::improve_tour(fresh, view, improve_opts);
        MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", fresh_gain);
        if (fresh.length_with(view) < tour.length_with(view))
          tour = std::move(fresh);
        rotate_to_root(tour, l);
      }
      ++outcome.repolished_tours;
    } else {
      // The repaired tree's edge order (hence its preorder shortcut)
      // differs from a dense rebuild's, so a single tree-shortcut start
      // is not enough to keep the repaired round at-or-below the full
      // re-solve's weight. When the tree still spans exactly the base
      // tree's sensors, the already-polished base tour is the strongest
      // start and one unseeded re-polish of it both absorbs the patch
      // and out-searches the shortcut basin; otherwise run the shortcut
      // and a nearest-neighbour construction and keep the shorter.
      const auto& nodes = tree.nodes();
      bool same_membership = false;
      if (dirty_comparable[l] != 0 &&
          nodes.size() == base.forest.trees[l].num_nodes()) {
        std::vector<std::size_t> mine(nodes.begin(), nodes.end());
        std::sort(mine.begin(), mine.end());
        std::vector<std::size_t> theirs;
        theirs.reserve(mine.size());
        theirs.push_back(l);
        for (const std::size_t v : base.forest.trees[l].nodes())
          if (v >= q) theirs.push_back(to_new(v));
        std::sort(theirs.begin(), theirs.end());
        same_membership = mine == theirs;
      }
      if (same_membership && options.improve) {
        tour = base_tour_local(l);
        if (tour.size() >= 4) {
          const double gain = tsp::improve_tour(tour, view, improve_opts);
          MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", gain);
        }
        rotate_to_root(tour, l);
      } else {
        tour = tsp::tree_to_tour(tree.edges(), l);
        if (options.improve && tour.size() >= 4) {
          const double gain = tsp::improve_tour(tour, view, improve_opts);
          MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", gain);
          std::vector<geom::Point> local_points;
          local_points.reserve(nodes.size());
          std::size_t local_root = 0;
          for (std::size_t k = 0; k < nodes.size(); ++k) {
            if (nodes[k] == l) local_root = k;
            local_points.push_back(new_points[nodes[k]]);
          }
          tsp::Tour local =
              tsp::nearest_neighbor_tour(local_points, local_root);
          std::vector<std::size_t> alt_order;
          alt_order.reserve(local.size());
          for (const std::size_t v : local.order())
            alt_order.push_back(nodes[v]);
          tsp::Tour alt(std::move(alt_order));
          const double alt_gain =
              tsp::improve_tour(alt, view, improve_opts);
          MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", alt_gain);
          if (alt.length_with(view) < tour.length_with(view))
            tour = std::move(alt);
          rotate_to_root(tour, l);
        }
      }
      ++outcome.rebuilt_tours;
    }
    if (!have_length) length = tour.length_with(view);
    round.tour_lengths.push_back(length);
    round.total_length += length;
    std::vector<std::size_t> order = std::move(tour.order());
    for (std::size_t& node : order)
      if (node >= q) node = q + patch.sensors[node - q];
    round.tours.emplace_back(std::move(order));
  }
  round.forest = std::move(forest);
  MWC_OBS_COUNT_N("tsp.repair.reused_tours", outcome.reused_tours);
  MWC_OBS_COUNT_N("tsp.repair.repolished_tours", outcome.repolished_tours);
  MWC_OBS_COUNT_N("tsp.repair.rebuilt_tours", outcome.rebuilt_tours);
  return outcome;
}

}  // namespace mwc::sim
