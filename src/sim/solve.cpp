#include "sim/solve.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "tsp/qrooted.hpp"

namespace mwc::sim {

SolveOutcome solve_network(const wsn::Network& network,
                           const wsn::CycleProcess& cycles,
                           SimOptions options, charging::Policy& policy) {
  MWC_OBS_SCOPE("sim.solve_network");
  options.record_dispatches = true;
  Simulator simulator(network, cycles, options);

  SolveOutcome outcome;
  outcome.result = simulator.run(policy);
  if (outcome.result.dispatch_log.empty()) return outcome;

  // Rebuild the first round's tours through the simulator's shared
  // oracle — the identical distance kernel its costing used, so the
  // tours' total matches the logged round cost bit for bit (when no
  // trip-capacity splitting rewrites the round).
  const auto& first = outcome.result.dispatch_log.front();
  RoundPlan& round = outcome.first_round;
  round.sensors = first.sensors;
  const auto view = simulator.oracle().dispatch_view(round.sensors);
  auto tours = tsp::q_rooted_tsp(view, network.q(), options.tour_options);
  round.total_length = tours.total_length;
  round.tours.reserve(tours.tours.size());
  round.tour_lengths.reserve(tours.tours.size());
  for (auto& tour : tours.tours) {
    round.tour_lengths.push_back(tour.length_with(view));
    // Dispatch-view locals -> global combined labels (depot l stays l;
    // local q + j becomes q + sensors[j]).
    std::vector<std::size_t> order = std::move(tour.order());
    for (std::size_t& node : order) {
      if (node >= network.q())
        node = network.q() + round.sensors[node - network.q()];
    }
    round.tours.emplace_back(std::move(order));
  }
  return outcome;
}

}  // namespace mwc::sim
