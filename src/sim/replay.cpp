#include "sim/replay.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "wsn/energy.hpp"

namespace mwc::sim {

ReplayResult replay_with_batteries(const wsn::Network& network,
                                   const wsn::CycleProcess& cycles,
                                   double horizon, double slot_length,
                                   const std::vector<DispatchRecord>& log) {
  MWC_ASSERT(horizon > 0.0);
  const std::size_t n = network.n();
  MWC_ASSERT(cycles.n() == n);

  ReplayResult result;
  std::vector<wsn::Battery> batteries;
  batteries.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    batteries.emplace_back(network.sensor(i).battery_capacity);

  std::vector<bool> currently_dead(n, false);
  std::vector<bool> ever_dead(n, false);

  const bool variable = slot_length > 0.0;
  std::size_t slot = 0;
  auto taus = cycles.cycles_at_slot(0);
  const auto rate = [&](std::size_t i) {
    return network.sensor(i).battery_capacity / taus[i];
  };

  double now = 0.0;
  std::size_t next_dispatch = 0;
  while (now < horizon) {
    const double next_slot_time =
        variable ? static_cast<double>(slot + 1) * slot_length
                 : std::numeric_limits<double>::infinity();
    const double next_dispatch_time =
        next_dispatch < log.size() ? log[next_dispatch].time
                                   : std::numeric_limits<double>::infinity();
    const double target = std::min({next_slot_time, next_dispatch_time,
                                    horizon});

    // Integrate each battery at its physical rate over [now, target].
    const double delta = target - now;
    MWC_ASSERT(delta >= -1e-9);
    for (std::size_t i = 0; i < n; ++i) {
      const double before = batteries[i].level();
      batteries[i].discharge(rate(i), std::max(delta, 0.0));
      if (!currently_dead[i] && batteries[i].depleted()) {
        // Depletion instant: level hits zero `before / rate` after `now`.
        // A charge landing exactly at the depletion instant (the greedy
        // policy's tightest legal schedule) is not a death — mirror the
        // simulator's tolerance.
        const double death_time = now + before / rate(i);
        if (death_time < target - 1e-6) {
          currently_dead[i] = true;
          if (!ever_dead[i]) {
            ever_dead[i] = true;
            ++result.dead_sensors;
          }
          result.deaths.push_back(DeathEvent{i, death_time});
        }
      }
    }
    now = target;
    if (now >= horizon) break;

    if (next_dispatch < log.size() &&
        log[next_dispatch].time <= now + 1e-9 &&
        log[next_dispatch].time <= next_slot_time) {
      for (std::size_t id : log[next_dispatch].sensors) {
        MWC_DEBUG_ASSERT(id < n);
        result.min_fraction_at_charge =
            std::min(result.min_fraction_at_charge,
                     batteries[id].fraction());
        batteries[id].recharge_full();
        currently_dead[id] = false;
      }
      ++next_dispatch;
      continue;
    }

    if (variable && now + 1e-9 >= next_slot_time) {
      ++slot;
      taus = cycles.cycles_at_slot(slot);
    }
  }
  return result;
}

}  // namespace mwc::sim
