#include "sim/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc::sim {

SimResult average(const std::vector<SimResult>& results) {
  SimResult avg;
  if (results.empty()) return avg;
  const double inv = 1.0 / static_cast<double>(results.size());

  std::size_t max_chargers = 0;
  for (const auto& r : results)
    max_chargers = std::max(max_chargers, r.per_charger_cost.size());
  avg.per_charger_cost.assign(max_chargers, 0.0);

  double dispatches = 0.0, charges = 0.0, dead = 0.0, wall = 0.0;
  avg.min_residual_at_charge = std::numeric_limits<double>::infinity();
  for (const auto& r : results) {
    avg.service_cost += r.service_cost * inv;
    for (std::size_t l = 0; l < r.per_charger_cost.size(); ++l)
      avg.per_charger_cost[l] += r.per_charger_cost[l] * inv;
    dispatches += static_cast<double>(r.num_dispatches) * inv;
    charges += static_cast<double>(r.num_sensor_charges) * inv;
    dead += static_cast<double>(r.dead_sensors) * inv;
    wall += r.wall_seconds * inv;
    avg.min_residual_at_charge =
        std::min(avg.min_residual_at_charge, r.min_residual_at_charge);
  }
  avg.num_dispatches = static_cast<std::size_t>(dispatches + 0.5);
  avg.num_sensor_charges = static_cast<std::size_t>(charges + 0.5);
  avg.dead_sensors = static_cast<std::size_t>(dead + 0.5);
  avg.wall_seconds = wall;
  return avg;
}

}  // namespace mwc::sim
