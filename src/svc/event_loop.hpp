// svc::NetServer — non-blocking epoll transport for the scheduling
// service.
//
// One event-loop thread serves every TCP connection: edge-triggered
// epoll readiness, per-connection read/write buffers, and JSONL
// pipelining — a client may write any number of requests back-to-back on
// one socket and always receives the responses in request order, even
// though solver workers complete out of order (each inbound line takes a
// per-connection sequence number; completed responses park in a reorder
// map until every earlier line has been flushed). Admin requests and
// synchronous rejections (bad_request, queue_full, ...) join the same
// sequence stream, so an error mid-pipeline never desyncs it.
//
// Solve work still flows through svc::Server::submit_line, so admission
// control, deadlines, and drain semantics are identical to the stdio
// transport; worker completions serialize the response on the worker and
// hand the bytes back to the loop through an eventfd wakeup.
//
// Shutdown is deterministic: request_stop() (async-signal-safe) wakes
// the loop, which closes the listener, stops parsing new input, flushes
// every response already owed, closes all connections, and returns from
// run() — no thread ever blocks in read() past the stop, and a peer
// that stops reading cannot stall the drain: connections whose owed
// output is still unflushed after `drain_timeout_ms` are force-closed
// (`svc.net.drain_dropped`). Accepted
// sockets get TCP_NODELAY so pipelined request/response exchanges are
// not serialized by Nagle / delayed ACKs. Idle connections (nothing
// owed, nothing buffered) close after `idle_timeout_ms`.
//
// Streaming sessions (mwc.svc.stream.v1): when constructed with a
// StreamHub, lines carrying the stream version string are routed to it
// instead of Server::submit_line. The hub answers synchronously on the
// loop thread (the reply joins the sequence stream at the frame's slot)
// and may later push server-initiated lines — plan updates — through
// the same ordered write path. Pushes carry no sequence number: they
// are appended to the output buffer between in-order flushes, so they
// interleave with pipelined responses without ever reordering them.
// Connections with a live session are exempt from idle reaping.
//
// Telemetry: `svc.net.*` counters/gauges on the global registry plus an
// exact local NetStats snapshot (stats()) that mwcd's statusz exposes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/admin.hpp"
#include "svc/server.hpp"

namespace mwc::svc {

/// Session-layer seam: NetServer routes mwc.svc.stream.v1 frames to a
/// StreamHub (svc::SessionManager in production; fakes in tests)
/// instead of the request parser.
class StreamHub {
 public:
  /// Writes one server-initiated JSONL line (newline included) to the
  /// connection the hub received it from. Thread-safe; callable from
  /// worker threads. Returns false when the connection is gone (the
  /// line is dropped and counted in NetStats::pushes_dropped).
  using PushFn = std::function<bool(std::string)>;

  virtual ~StreamHub() = default;

  /// Handles one stream frame on the loop thread and returns the
  /// complete JSONL reply, which joins the connection's in-order
  /// response stream at the frame's sequence slot. `push` may be
  /// retained for the life of the connection. `*streaming` enters as
  /// the connection's current flag and must be left true while the
  /// connection holds any live session (exempts it from idle reaping
  /// and routes its close to drop_connection).
  virtual std::string handle_frame(std::uint64_t conn_token,
                                   const std::string& line, PushFn push,
                                   bool* streaming) = 0;

  /// The transport closed this connection: tear down its sessions.
  /// Runs on the loop thread.
  virtual void drop_connection(std::uint64_t conn_token) = 0;
};

struct NetServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;       ///< 0 = ephemeral; port() reports the bound port
  int backlog = 128;
  std::size_t max_connections = 1024;  ///< accepts beyond are closed
  double idle_timeout_ms = 0.0;        ///< 0 = never reap idle conns
  /// Per-connection buffer guard (unparsed input or unflushed output);
  /// a connection exceeding it is closed.
  std::size_t max_buffered_bytes = 64 * 1024 * 1024;
  bool tcp_nodelay = true;
  /// After request_stop(), connections whose owed output still cannot
  /// be flushed (peer stopped reading) are force-closed once this many
  /// ms have passed, so shutdown always terminates. 0 = wait forever.
  double drain_timeout_ms = 5000.0;
};

/// Monotonic transport counters (exact, usable under MWC_OBS=OFF);
/// `connections` is the one point-in-time gauge.
struct NetStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t connections = 0;  ///< currently open
  std::uint64_t requests = 0;     ///< inbound JSONL lines
  std::uint64_t responses = 0;    ///< response lines flushed to buffers
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t wakeups = 0;      ///< eventfd wakeups (worker -> loop)
  std::uint64_t idle_closed = 0;
  std::uint64_t overflow_closed = 0;  ///< buffer-guard / accept-cap closes
  std::uint64_t drain_dropped = 0;  ///< force-closed at the drain deadline
  std::uint64_t pushes = 0;          ///< server-initiated lines enqueued
  std::uint64_t pushes_dropped = 0;  ///< pushes to already-closed conns
};

class NetServer {
 public:
  /// `admin` may be null (no in-band introspection); `sessions` may be
  /// null (stream frames answered with the structured sessions_disabled
  /// error). All referents must outlive the NetServer.
  NetServer(Server& server, const AdminHandler* admin,
            NetServerOptions options = {}, StreamHub* sessions = nullptr);

  /// Drains the Server (so no worker callback can outlive the loop
  /// state) — safe also when run() never started.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens; false (with a perror line) on failure.
  bool start();

  /// The actually-bound port (after start(); useful with port 0).
  int port() const noexcept { return bound_port_; }

  /// Runs the event loop on the calling thread until request_stop().
  /// Requires start(). When it returns, every connection is closed and
  /// every response owed to a client has been written or the peer is
  /// gone; the caller still runs Server::shutdown() for the drain of
  /// work admitted through other transports.
  void run();

  /// Stops the loop: no new connections, no new requests; in-flight
  /// work is answered and flushed, then run() returns. Async-signal-
  /// safe and callable from any thread.
  void request_stop() noexcept;

  NetStats stats() const;

 private:
  struct Conn;

  void wake() noexcept;
  void handle_accept();
  void handle_conn_event(const std::shared_ptr<Conn>& conn,
                         std::uint32_t events);
  void read_input(const std::shared_ptr<Conn>& conn);
  void process_line(const std::shared_ptr<Conn>& conn, std::string line);
  /// Moves completed responses into the ordered output buffer and
  /// writes as much as the socket accepts; closes the connection when
  /// it is finished or broken.
  void pump(const std::shared_ptr<Conn>& conn);
  /// Enqueues one server-initiated line (thread-safe; see
  /// StreamHub::PushFn for the contract).
  bool push_line(const std::shared_ptr<Conn>& conn, std::string line);
  void close_conn(const std::shared_ptr<Conn>& conn, const char* reason);
  void drain_completions();
  void sweep_idle();
  void begin_stop();

  Server& server_;
  const AdminHandler* admin_;
  NetServerOptions options_;
  StreamHub* sessions_;
  std::uint64_t next_conn_token_ = 1;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::atomic<int> wake_fd_{-1};
  int bound_port_ = 0;

  std::atomic<bool> stop_requested_{false};
  bool stopping_ = false;  ///< loop-thread view (begin_stop ran)
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::atomic<bool> wake_pending_{false};

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::mutex completed_mutex_;
  std::vector<std::shared_ptr<Conn>> completed_;  ///< conns w/ new done

  // Stats (atomics: workers bump responses-side counters).
  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, requests_{0},
      responses_{0}, bytes_read_{0}, bytes_written_{0}, wakeups_{0},
      idle_closed_{0}, overflow_closed_{0}, drain_dropped_{0}, pushes_{0},
      pushes_dropped_{0};
};

}  // namespace mwc::svc
