// mwc.svc.admin.v1 — daemon introspection over the service socket.
//
// Admin requests share the JSONL transport with scheduling requests and
// are distinguished by the "admin" key (a scheduling request never has
// one):
//
//   {"admin": "statusz",  "id": "a1"}
//   {"admin": "metrics",  "id": "a2", "format": "openmetrics"}
//   {"admin": "tracez",   "id": "a3", "limit": 5}
//   {"admin": "config",   "id": "a4"}
//
// Responses are one JSON line with "v": "mwc.svc.admin.v1":
//
//   statusz -> uptime, build info, transport, queue depth/capacity,
//              in-flight count, PlanCache size/capacity/hit-rate,
//              access-log state;
//   metrics -> live obs registry snapshot: the mwc.metrics.v1 object
//              inline under "metrics" (default) or the OpenMetrics text
//              under "openmetrics" when "format": "openmetrics";
//   tracez  -> the N slowest completed requests from the server's
//              recent-request ring, each with its stage breakdown;
//   config  -> the server options and daemon flags as started.
//
// Admin requests are answered synchronously (no queue admission — an
// overloaded daemon still answers statusz) and never touch the solve
// path. Unknown admin commands get {"ok": false, "error": "bad_request"}
// on the admin version string; lines that merely *contain* the word
// admin but do not parse as {"admin": ...} objects fall through to the
// scheduling parser.
#pragma once

#include <functional>
#include <string>

#include "svc/json.hpp"
#include "svc/server.hpp"

namespace mwc::svc {

inline constexpr const char* kAdminVersion = "mwc.svc.admin.v1";

/// Daemon-level facts the server object does not know: how the process
/// was started and where its sidecars go. The embedding tool fills this
/// once at startup.
struct AdminInfo {
  std::string build = "libmwc/1.0.0";
  std::string transport = "stdio";  ///< "stdio" or "tcp"
  double start_us = 0.0;            ///< obs::now_us() at daemon start
  std::string metrics_out;          ///< --metrics-out path ("" = none)
  std::string trace_out;            ///< --trace-out path ("" = none)
  /// Optional hook appending transport-specific sections to statusz
  /// (mwcd's epoll transport adds a "net" object of connection / event-
  /// loop gauges). Called on the admin caller's thread; must be
  /// thread-safe. Null = no extra section.
  std::function<void(Json&)> statusz_extra;
};

/// Serves mwc.svc.admin.v1 against a live Server. Thread-safe: handlers
/// only read server state through const accessors and mutex-guarded
/// snapshots, so transports may call try_handle from any thread.
class AdminHandler {
 public:
  AdminHandler(const Server& server, AdminInfo info)
      : server_(server), info_(std::move(info)) {}

  /// Answers `line` if it is an admin request: writes one JSONL response
  /// (newline included) to `*response_line` and returns true. Returns
  /// false (leaving *response_line untouched) when the line is not an
  /// admin request — including unparseable lines, which the scheduling
  /// parser owns.
  bool try_handle(const std::string& line, std::string* response_line) const;

 private:
  const Server& server_;
  AdminInfo info_;
};

}  // namespace mwc::svc
