// svc delta engine — the mwc.svc.v2 incremental re-planning path.
//
// A v2 delta request names a previously solved base plan by fingerprint
// and a list of patch ops (add/remove/move sensors, update cycles, flip
// charger availability). Instead of re-solving the patched instance from
// scratch, the engine resolves the base's cached solver state, folds the
// ordered ops into a canonical PatchState, and repairs the base plan:
// candidate-graph repair, dirty-region q-rooted MSF repair, and selective
// tour rebuild / localized re-polish (sim::replan_round). Horizon
// aggregates (total distance, dispatch counts) are inherited from the
// base plan; only the first charging round is re-planned.
//
// Derivation is itself cached: derived_fingerprint(base, patch) keys the
// derived plan in the same PlanCache, so a repeated or re-ordered-but-
// commuting patch is a cache hit, and a derived plan can serve as the
// base of a further delta (chaining).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "geom/point.hpp"
#include "sim/solve.hpp"
#include "svc/engine.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"
#include "wsn/network.hpp"

namespace mwc::svc {

/// The canonical fold of an ordered patch list: per-sensor final state.
/// Two op sequences that commute (touch disjoint state, or reach the
/// same final state) fold identically and therefore share a derived
/// fingerprint; genuinely order-sensitive sequences (two moves of the
/// same sensor) fold to their last-writer state and differ.
struct PatchState {
  std::vector<std::size_t> removed;         ///< base sensor ids, sorted
  std::map<std::size_t, geom::Point> moved; ///< base id -> final position
  std::map<std::size_t, double> retau;      ///< base id -> final τ
  /// Additions in arrival order (order assigns the new ids, so it is
  /// semantically significant and hashes as-is).
  std::vector<std::pair<geom::Point, double>> added;
  /// Chargers whose final availability differs from the base's.
  std::map<std::size_t, bool> charger;
};

/// Everything the delta path needs to repair a plan without re-running
/// the simulation. Built after each successful full solve (and after
/// each delta, so deltas chain) and cached beside the Plan.
struct BaseState {
  wsn::Network network;
  std::vector<double> tau;           ///< slot-0 cycles, one per sensor
  std::vector<char> charger_active;  ///< empty = all active
  std::string policy;
  double horizon = 0.0;
  double slot_length = 0.0;
  bool improve = false;
  sim::SimOptions sim;               ///< options the round rebuild used
  sim::RoundPlan round;              ///< first round, forest round-local
  std::vector<geom::Point> round_points;  ///< q depots + round sensors
  tsp::CandidateGraph round_candidates;   ///< over round_points
  std::shared_ptr<const Plan> plan;  ///< horizon aggregates to inherit
};

/// Folds the ordered op list into canonical per-entity final state,
/// validating every reference against the base instance (n sensors, q
/// chargers, current charger availability). Throws WireError on an op
/// referencing an out-of-range id, a sensor already removed by this
/// patch, or a patch that downs every charger.
PatchState fold_patch(const std::vector<PatchOp>& patch, std::size_t n,
                      std::size_t q,
                      const std::vector<char>& base_charger_active);

/// Order-insensitive (up to commutation) hash of the folded patch.
std::uint64_t patch_fingerprint(const PatchState& state);

/// Cache key of the derived plan: base fingerprint x patch fingerprint.
std::uint64_t derived_fingerprint(std::uint64_t base_fingerprint,
                                  const PatchState& state);

/// Builds the cacheable solver state after a successful full solve.
/// Returns null when the policy never dispatched (nothing to repair).
std::shared_ptr<const BaseState> make_base_state(
    const Request& request, const ResolvedInstance& instance,
    const sim::SolveOutcome& outcome, std::shared_ptr<const Plan> plan);

/// Serves one v2 delta request: resolve the base state from the cache,
/// fold + validate the patch, probe the derived-plan cache, and on a
/// miss repair the base plan through sim::replan_round. Never throws;
/// failures come back as structured errors (`unknown_base` when the
/// base fingerprint is not cached or was stored without solver state,
/// `bad_request` on invalid patches). `cache` may be null, which always
/// answers `unknown_base` — the delta path requires a cache. When
/// `stages` is non-null, fills `cache_ms` (base resolve + fold + derived
/// probe) and `solve_ms` (the sim::replan_round repair).
Response handle_delta(const DeltaRequest& request, PlanCache* cache,
                      StageTimings* stages = nullptr);

}  // namespace mwc::svc
