#include "svc/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace mwc::svc {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Containers may nest at most this deep; crafted inputs like
  /// "[[[[..." otherwise recurse without bound.
  static constexpr std::size_t kMaxDepth = 64;

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw JsonError("json: unexpected end of input at offset " +
                      std::to_string(pos_));
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      fail("invalid literal");
    pos_ += literal.size();
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case 'n':
        expect_literal("null");
        return Json();
      case 'N':
      case 'I':
      case 'i':
        fail("NaN/Infinity are not valid JSON");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    if (++depth_ > kMaxDepth) fail("nesting too deep (depth cap 64)");
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      if (obj.find(key) != nullptr)
        fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) {
        --depth_;
        return obj;
      }
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    if (++depth_ > kMaxDepth) fail("nesting too deep (depth cap 64)");
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (consume(']')) {
        --depth_;
        return arr;
      }
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // \uXXXX — decode the code point as UTF-8 (no surrogate-pair
          // recombination; the wire format is ASCII in practice).
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  char buf[64];
  // Integral values print without exponent/decimal noise so ids and
  // counts stay readable; everything else keeps the historical %.17g
  // round-trip bytes (the v1 golden responses pin them) but renders
  // them via std::to_chars, which is specified to match printf "%.*g"
  // in the C locale and is ~4x faster on the per-request paths.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    const auto result =
        std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
    out.append(buf, result.ptr);
  }
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double v = as_double();
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v)
    throw JsonError("json: not an integer");
  return i;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw JsonError("json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr)
    throw JsonError("json: missing key \"" + std::string(key) + "\"");
  return *found;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_json_number(out, number_);
      break;
    case Type::kString:
      append_json_escaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_json_escaped(out, object_[i].first);
        out += ':';
        object_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace mwc::svc
