// svc request engine — resolves a wire Request into a concrete problem
// instance, fingerprints it, and drives one solve through sim::solve_network.
//
// Resolution is deterministic: a preset network deploys through
// wsn::deploy_random on a stream derived from the request's seed, inline
// geometry is adopted verbatim, and cycles come from wsn::CycleModel (model
// spec) or a single-row wsn::TraceCycleProcess (inline values, held for
// every slot). The fingerprint hashes the *resolved* instance — quantized
// coordinates, slot-0 cycle draws, policy name, and solve options — so a
// preset request and an inline request describing the same geometry share
// one PlanCache entry.
#pragma once

#include <cstdint>
#include <memory>

#include "exp/config.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"
#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::svc {

/// A request made concrete: the network, its cycle process, the solver
/// options, and the experiment config the policy factory consumes (the
/// paper's greedy reads Δl = τ_min from it).
struct ResolvedInstance {
  wsn::Network network;
  std::unique_ptr<wsn::CycleProcess> cycles;
  sim::SimOptions sim;
  exp::ExperimentConfig config;
};

/// Materializes the request's instance. Throws WireError on specs that
/// parse but cannot be realized (e.g. inline cycle count mismatching the
/// deployed sensor count).
ResolvedInstance resolve(const Request& request);

/// Cache key of the resolved instance: FNV-1a over the policy name, the
/// solve options, quantized geometry (1e-6 m), and quantized slot-0 cycle
/// draws (plus the cycle model parameters when per-slot redraws are on,
/// since then slot 0 alone does not pin the trajectory).
std::uint64_t fingerprint(const Request& request,
                          const ResolvedInstance& instance);

/// Cheap hash of the *raw* request spec (everything resolution and
/// fingerprinting read: policy, solve options, network spec, cycle
/// spec — id / trace / deadline excluded). Resolution is deterministic,
/// so equal spec hashes imply equal instance fingerprints; the warm path
/// memoizes spec -> fingerprint in the PlanCache and skips resolving
/// (network deployment + quantized hashing) on repeat requests. Unlike
/// the fingerprint it does not canonicalize: a preset and an equivalent
/// inline request hash differently here but still meet at the same
/// fingerprint and cache entry.
std::uint64_t spec_fingerprint(const Request& request);

/// Serves one request end to end: resolve, policy lookup, cache probe,
/// solve, cache fill. Never throws — every failure comes back as a
/// structured error Response (bad_request / unknown_policy / internal).
/// `cache` may be null (solve-always). `latency_ms` covers this call only;
/// the server adds queueing time on top. When `stages` is non-null the
/// engine fills `cache_ms` (resolve + fingerprint + cache probe) and
/// `solve_ms` (the sim::solve_network call); other stages are the
/// server's to measure.
Response handle_request(const Request& request, PlanCache* cache,
                        StageTimings* stages = nullptr);

}  // namespace mwc::svc
