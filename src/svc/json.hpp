// Minimal JSON document model for the mwc::svc wire format.
//
// The serving layer speaks JSONL (one JSON document per line), so it
// needs what the rest of the repo never did: *parsing* JSON, not just
// emitting it. This is a deliberately small recursive-descent
// implementation — objects keep insertion order (deterministic dumps),
// numbers are doubles (round-tripped with %.17g semantics), and parse
// errors throw JsonError with a byte offset. No external dependency;
// stdlib only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mwc::svc {

/// Malformed document (parse) or wrong-type access (as_*).
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// One JSON value. Copyable value type; arrays/objects own their
/// children. Objects preserve insertion order so dump() is stable.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::size_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parses one complete document; trailing non-whitespace is an error.
  /// Throws JsonError on malformed input.
  static Json parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< as_double, checked integral
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements
  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Object member, or nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Object member; throws JsonError when absent.
  const Json& at(std::string_view key) const;

  /// Array append / object insert (replaces an existing key).
  void push_back(Json value);
  void set(std::string key, Json value);

  std::size_t size() const noexcept;

  /// Serializes compactly (no whitespace); objects in insertion order.
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_escaped(std::string& out, std::string_view s);

/// Appends `v` in exactly the form Json::dump uses for numbers (integral
/// values as plain integers, everything else as %.17g). Direct-append
/// serializers share this so their bytes match a Json-tree dump.
void append_json_number(std::string& out, double v);

}  // namespace mwc::svc
