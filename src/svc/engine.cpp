#include "svc/engine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "geom/bbox.hpp"
#include "obs/obs.hpp"
#include "sim/solve.hpp"
#include "svc/delta.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"
#include "wsn/sensor.hpp"
#include "wsn/trace.hpp"

namespace mwc::svc {

namespace {

constexpr double kCoordQuantum = 1e-6;  ///< metres; below survey accuracy
constexpr double kValueQuantum = 1e-9;  ///< cycles / times / options

wsn::Network build_network(const NetworkSpec& spec) {
  if (!spec.inline_points) {
    Rng deploy_rng(spec.seed, 0);
    return wsn::deploy_random(spec.deployment, deploy_rng);
  }
  std::vector<wsn::Sensor> sensors;
  sensors.reserve(spec.sensors.size());
  for (std::size_t i = 0; i < spec.sensors.size(); ++i)
    sensors.push_back(wsn::Sensor{i, spec.sensors[i], 1.0});
  // The field box only feeds candidate-graph construction; make sure it
  // covers every point even when the caller's coordinates stray outside
  // the nominal square.
  geom::BBox field = geom::BBox::square(spec.deployment.field_side);
  for (const auto& p : spec.sensors) field.expand(p);
  for (const auto& p : spec.depots) field.expand(p);
  field.expand(spec.base_station);
  return wsn::Network(std::move(sensors), spec.base_station, spec.depots,
                      field);
}

std::unique_ptr<wsn::CycleProcess> build_cycles(const CycleSpec& spec,
                                                const wsn::Network& network) {
  if (spec.inline_values) {
    if (spec.values.size() != network.n())
      throw WireError("cycles.values size != deployed sensor count");
    // One recorded slot, held for the whole horizon: the fixed-τ setting.
    return std::make_unique<wsn::TraceCycleProcess>(
        std::vector<std::vector<double>>{spec.values});
  }
  return std::make_unique<wsn::CycleModel>(network, spec.model, spec.seed);
}

exp::ExperimentConfig build_config(const Request& request,
                                   const ResolvedInstance& instance) {
  exp::ExperimentConfig config;
  config.deployment = request.network.deployment;
  config.deployment.n = instance.network.n();
  config.deployment.q = instance.network.q();
  if (request.cycles.inline_values) {
    // Synthesize the τ band the factories read (the paper's greedy uses
    // Δl = τ_min) from the explicit assignment; no jitter.
    double lo = request.cycles.values.front();
    double hi = lo;
    for (double tau : request.cycles.values) {
      if (tau < lo) lo = tau;
      if (tau > hi) hi = tau;
    }
    config.cycles.tau_min = lo;
    config.cycles.tau_max = hi;
    config.cycles.sigma = 0.0;
  } else {
    config.cycles = request.cycles.model;
  }
  config.sim = instance.sim;
  config.trials = 1;
  config.seed = request.network.seed;
  return config;
}

}  // namespace

ResolvedInstance resolve(const Request& request) {
  ResolvedInstance instance;
  instance.network = build_network(request.network);
  instance.cycles = build_cycles(request.cycles, instance.network);
  instance.sim.horizon = request.horizon;
  instance.sim.slot_length = request.slot_length;
  instance.sim.tour_options.improve = request.improve;
  instance.config = build_config(request, instance);
  return instance;
}

std::uint64_t fingerprint(const Request& request,
                          const ResolvedInstance& instance) {
  Fnv1a h;
  h.str(request.policy);
  h.quantized(request.horizon, kValueQuantum);
  h.quantized(request.slot_length, kValueQuantum);
  h.u64(request.improve ? 1 : 0);

  const wsn::Network& network = instance.network;
  h.u64(network.q());
  h.u64(network.n());
  for (const auto& p : network.depots()) {
    h.quantized(p.x, kCoordQuantum);
    h.quantized(p.y, kCoordQuantum);
  }
  h.quantized(network.base_station().x, kCoordQuantum);
  h.quantized(network.base_station().y, kCoordQuantum);
  for (const auto& p : network.sensor_points()) {
    h.quantized(p.x, kCoordQuantum);
    h.quantized(p.y, kCoordQuantum);
  }

  for (std::size_t i = 0; i < network.n(); ++i)
    h.quantized(instance.cycles->cycle_at_slot(i, 0), kValueQuantum);
  if (request.slot_length > 0.0 && !request.cycles.inline_values) {
    // Per-slot redraws: slot 0 does not pin the whole trajectory, the
    // model parameters and seed do.
    const auto& model = request.cycles.model;
    h.u64(static_cast<std::uint64_t>(model.distribution));
    h.quantized(model.tau_min, kValueQuantum);
    h.quantized(model.tau_max, kValueQuantum);
    h.quantized(model.sigma, kValueQuantum);
    h.u64(request.cycles.seed);
  }
  return h.value();
}

std::uint64_t spec_fingerprint(const Request& request) {
  Fnv1a h;
  h.str("spec");  // domain-separate from instance fingerprints
  h.str(request.policy);
  h.quantized(request.horizon, kValueQuantum);
  h.quantized(request.slot_length, kValueQuantum);
  h.u64(request.improve ? 1 : 0);

  const NetworkSpec& net = request.network;
  h.u64(net.inline_points ? 1 : 0);
  h.quantized(net.deployment.field_side, kValueQuantum);
  if (!net.inline_points) {
    h.u64(net.deployment.n);
    h.u64(net.deployment.q);
    h.u64(net.deployment.depot_at_base_station ? 1 : 0);
    h.quantized(net.deployment.battery_capacity, kValueQuantum);
    h.u64(net.seed);
  } else {
    h.u64(net.sensors.size());
    for (const auto& p : net.sensors) {
      h.quantized(p.x, kCoordQuantum);
      h.quantized(p.y, kCoordQuantum);
    }
    h.u64(net.depots.size());
    for (const auto& p : net.depots) {
      h.quantized(p.x, kCoordQuantum);
      h.quantized(p.y, kCoordQuantum);
    }
    h.quantized(net.base_station.x, kCoordQuantum);
    h.quantized(net.base_station.y, kCoordQuantum);
  }

  const CycleSpec& cycles = request.cycles;
  h.u64(cycles.inline_values ? 1 : 0);
  if (cycles.inline_values) {
    h.u64(cycles.values.size());
    for (double tau : cycles.values) h.quantized(tau, kValueQuantum);
  } else {
    h.u64(static_cast<std::uint64_t>(cycles.model.distribution));
    h.quantized(cycles.model.tau_min, kValueQuantum);
    h.quantized(cycles.model.tau_max, kValueQuantum);
    h.quantized(cycles.model.sigma, kValueQuantum);
    h.u64(cycles.seed);
  }
  return h.value();
}

namespace {

std::shared_ptr<const Plan> build_plan(const sim::SolveOutcome& outcome,
                                       std::size_t q, std::uint64_t key) {
  auto plan = std::make_shared<Plan>();
  const sim::RoundPlan& round = outcome.first_round;
  plan->first_round_tours.reserve(round.tours.size());
  for (std::size_t t = 0; t < round.tours.size(); ++t) {
    PlanTour tour;
    tour.depot = t;
    for (std::size_t node : round.tours[t].order()) {
      if (node < q) {
        tour.depot = node;  // combined label l < q is depot l
      } else {
        tour.sensors.push_back(node - q);
      }
    }
    tour.length = round.tour_lengths[t];
    plan->first_round_length += tour.length;
    plan->first_round_tours.push_back(std::move(tour));
  }
  plan->total_distance = outcome.result.service_cost;
  plan->num_dispatches = outcome.result.num_dispatches;
  plan->num_sensor_charges = outcome.result.num_sensor_charges;
  plan->dead_sensors = outcome.result.dead_sensors;
  plan->fingerprint = key;
  return plan;
}

}  // namespace

Response handle_request(const Request& request, PlanCache* cache,
                        StageTimings* stages) {
  MWC_OBS_SCOPE("svc.handle_request");
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto with_version = [&](Response response) {
    response.version = request.version;
    response.trace_id = request.trace_id;
    response.policy = request.policy;
    return response;
  };

  const auto cache_hit = [&](std::shared_ptr<const Plan> hit) {
    Response response = with_version(Response{});
    response.id = request.id;
    response.ok = true;
    response.cached = true;
    response.plan = std::move(hit);
    response.latency_ms = elapsed_ms();
    return response;
  };

  // Warm fast lane: a spec previously seen maps straight to its instance
  // fingerprint, so a repeat request skips resolution (network
  // deployment + quantized hashing) entirely. Memo hits only ever
  // shortcut work — a spec is remembered only after it resolved and
  // fingerprinted successfully, and resolution is deterministic, so the
  // plan returned is the one the slow path would have found.
  bool probed = false;
  const std::uint64_t spec =
      cache != nullptr ? spec_fingerprint(request) : 0;
  if (cache != nullptr) {
    if (const std::uint64_t memo_key = cache->spec_lookup(spec)) {
      auto hit = cache->get(memo_key);
      if (stages != nullptr) stages->cache_ms = elapsed_ms();
      if (hit != nullptr) {
        MWC_OBS_COUNT("svc.cache.spec_fast_hits");
        return cache_hit(std::move(hit));
      }
      probed = true;  // the plan was evicted; counted as this miss
    }
  }

  ResolvedInstance instance;
  try {
    instance = resolve(request);
  } catch (const std::exception& e) {
    return with_version(error_response(request.id, ErrorCode::kBadRequest,
                                       e.what(), elapsed_ms()));
  }

  std::unique_ptr<charging::Policy> policy;
  try {
    policy = exp::make_policy(request.policy, instance.config);
  } catch (const std::invalid_argument& e) {
    return with_version(error_response(request.id, ErrorCode::kUnknownPolicy,
                                       e.what(), elapsed_ms()));
  }

  const std::uint64_t key = fingerprint(request, instance);
  if (stages != nullptr) stages->cache_ms = elapsed_ms();
  if (cache != nullptr) {
    cache->spec_remember(spec, key);
    // The fast lane's probe already counted this key's miss.
    if (auto hit = probed ? nullptr : cache->get(key))
      return cache_hit(std::move(hit));
  }

  try {
    MWC_OBS_SCOPE("svc.solve");
    const double solve_start_ms = elapsed_ms();
    const sim::SolveOutcome outcome = sim::solve_network(
        instance.network, *instance.cycles, instance.sim, *policy);
    if (stages != nullptr) stages->solve_ms = elapsed_ms() - solve_start_ms;
    auto plan = build_plan(outcome, instance.network.q(), key);
    if (cache != nullptr) {
      // The solver state rides along so this plan can serve as the base
      // of v2 delta requests.
      cache->put(key, plan, make_base_state(request, instance, outcome, plan));
    }
    Response response = with_version(Response{});
    response.id = request.id;
    response.ok = true;
    response.plan = std::move(plan);
    response.latency_ms = elapsed_ms();
    return response;
  } catch (const std::exception& e) {
    return with_version(error_response(request.id, ErrorCode::kInternal,
                                       e.what(), elapsed_ms()));
  }
}

}  // namespace mwc::svc
