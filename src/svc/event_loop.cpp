#include "svc/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {

namespace {
using SteadyClock = std::chrono::steady_clock;
}

/// Per-connection state. The loop thread owns everything except `done`
/// and `closed`, which workers touch under `mutex`.
struct NetServer::Conn {
  int fd = -1;
  std::uint64_t token = 0;  ///< stable id handed to the StreamHub
  std::string in;   ///< unparsed input tail
  std::string out;  ///< in-order response bytes awaiting the socket
  std::size_t out_pos = 0;  ///< flushed prefix of `out`
  /// Responses completed out of order, parked until every earlier
  /// sequence number has flushed.
  std::map<std::uint64_t, std::string> ready;
  std::uint64_t next_seq = 0;    ///< sequence of the next inbound line
  std::uint64_t next_flush = 0;  ///< sequence owed to the client next
  bool half_closed = false;      ///< peer sent EOF; flush then close
  bool epollout = false;         ///< EPOLLOUT currently armed
  bool streaming = false;  ///< holds a live stream session (loop thread)
  SteadyClock::time_point last_activity;

  std::mutex mutex;
  bool closed = false;
  std::vector<std::pair<std::uint64_t, std::string>> done;
  /// Server-initiated lines (no sequence number); drained into `out`
  /// between in-order flushes.
  std::vector<std::string> pushed;
};

NetServer::NetServer(Server& server, const AdminHandler* admin,
                     NetServerOptions options, StreamHub* sessions)
    : server_(server),
      admin_(admin),
      options_(std::move(options)),
      sessions_(sessions) {}

NetServer::~NetServer() {
  // Drain the solver first: after shutdown() no worker callback can run,
  // so tearing down connection state below cannot race one.
  server_.shutdown();
  for (auto& [fd, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.clear();
  const int wfd = wake_fd_.exchange(-1);
  if (wfd >= 0) ::close(wfd);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool NetServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    std::perror("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad listen host %s\n", options_.host.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    std::perror("bind/listen");
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  const int wfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wfd < 0) {
    std::perror("epoll_create1/eventfd");
    if (wfd >= 0) ::close(wfd);
    return false;
  }
  wake_fd_.store(wfd, std::memory_order_release);

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    std::perror("epoll_ctl listen");
    return false;
  }
  // Level-triggered on purpose: an unread wake count must keep the loop
  // from blocking (request_stop can fire between drain and wait).
  ev.events = EPOLLIN;
  ev.data.fd = wfd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wfd, &ev) < 0) {
    std::perror("epoll_ctl wake");
    return false;
  }
  return true;
}

void NetServer::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  const int fd = wake_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &one, sizeof one);
  }
}

void NetServer::wake() noexcept {
  // Coalesce: one pending eventfd count is enough to get the loop
  // through drain_completions(), which picks up everything queued.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.net.wakeups");
  const int fd = wake_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &one, sizeof one);
  }
}

void NetServer::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    if (stopping_ || conns_.size() >= options_.max_connections) {
      ::close(fd);
      if (!stopping_) {
        overflow_closed_.fetch_add(1, std::memory_order_relaxed);
        MWC_OBS_COUNT("svc.net.overflow_closed");
      }
      continue;
    }
    if (options_.tcp_nodelay) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->token = next_conn_token_++;
    conn->last_activity = SteadyClock::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.net.accepted");
    MWC_OBS_GAUGE_SET("svc.net.connections",
                      static_cast<double>(conns_.size()));
  }
}

void NetServer::process_line(const std::shared_ptr<Conn>& conn,
                             std::string line) {
  const std::uint64_t seq = conn->next_seq++;
  requests_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.net.requests");

  // Stream-session frames answer synchronously on the loop thread (the
  // hub's reply takes the frame's sequence slot); servers without a hub
  // reject them with the structured error instead of letting the
  // version string hit parse_any_request as unsupported_version.
  if (is_stream_frame(line)) {
    std::string reply;
    if (sessions_ == nullptr) {
      reply = stream_error_line(stream_frame_id(line),
                                ErrorCode::kSessionsDisabled,
                                "server started without --sessions");
    } else {
      auto push = [this, conn](std::string pushed) {
        return push_line(conn, std::move(pushed));
      };
      bool streaming = conn->streaming;
      reply = sessions_->handle_frame(conn->token, line, std::move(push),
                                      &streaming);
      conn->streaming = streaming;
    }
    conn->ready.emplace(seq, std::move(reply));
    return;
  }

  // Admin requests answer synchronously on the loop thread but join the
  // sequence stream so pipelined responses stay in request order.
  if (admin_ != nullptr) {
    std::string admin_response;
    if (admin_->try_handle(line, &admin_response)) {
      conn->ready.emplace(seq, std::move(admin_response));
      return;
    }
  }

  // The callback runs on a solver worker (or inline for synchronous
  // rejections); it serializes there so the loop thread only moves
  // bytes. A connection that died first drops the response.
  auto callback = [this, conn, seq](const Response& response) {
    std::string out_line = to_jsonl(response);
    bool enqueue = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (!conn->closed) {
        conn->done.emplace_back(seq, std::move(out_line));
        enqueue = true;
      }
    }
    if (enqueue) {
      {
        std::lock_guard<std::mutex> lock(completed_mutex_);
        completed_.push_back(conn);
      }
      wake();
    }
  };
  server_.submit_line(line, std::move(callback), "tcp");
}

void NetServer::read_input(const std::shared_ptr<Conn>& conn) {
  // Edge-triggered: drain the socket completely.
  char buffer[65536];
  for (;;) {
    const ssize_t got = ::read(conn->fd, buffer, sizeof buffer);
    if (got > 0) {
      bytes_read_.fetch_add(static_cast<std::uint64_t>(got),
                            std::memory_order_relaxed);
      MWC_OBS_COUNT_N("svc.net.bytes_read", static_cast<std::uint64_t>(got));
      conn->in.append(buffer, static_cast<std::size_t>(got));
      conn->last_activity = SteadyClock::now();
      if (conn->in.size() > options_.max_buffered_bytes) {
        overflow_closed_.fetch_add(1, std::memory_order_relaxed);
        MWC_OBS_COUNT("svc.net.overflow_closed");
        close_conn(conn, "input overflow");
        return;
      }
      continue;
    }
    if (got == 0) {
      conn->half_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn, "read error");
    return;
  }

  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || stopping_) continue;  // stop: no new admissions
    process_line(conn, std::move(line));
  }
  conn->in.erase(0, start);
  // EOF ends a final unterminated line, matching the stdio transport.
  if (conn->half_closed && !conn->in.empty()) {
    std::string line = std::move(conn->in);
    conn->in.clear();
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
      line.pop_back();
    if (!line.empty() && !stopping_) process_line(conn, std::move(line));
  }
  pump(conn);
}

void NetServer::pump(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    for (auto& [seq, line] : conn->done)
      conn->ready.emplace(seq, std::move(line));
    conn->done.clear();
  }
  // Release responses strictly in request order.
  auto it = conn->ready.begin();
  while (it != conn->ready.end() && it->first == conn->next_flush) {
    conn->out += it->second;
    it = conn->ready.erase(it);
    ++conn->next_flush;
    responses_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.net.responses");
  }
  // Server-initiated pushes carry no sequence number: they append after
  // whatever in-order prefix is flushable right now, so they interleave
  // with pipelined responses without perturbing their order (a push
  // never waits on a still-parked earlier response, and the
  // next_flush/next_seq close accounting never sees them).
  {
    std::vector<std::string> pushed;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      pushed.swap(conn->pushed);
    }
    for (std::string& line : pushed) conn->out += line;
  }
  if (conn->out.size() - conn->out_pos > options_.max_buffered_bytes) {
    overflow_closed_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.net.overflow_closed");
    close_conn(conn, "output overflow");
    return;
  }

  while (conn->out_pos < conn->out.size()) {
    const ssize_t wrote =
        ::send(conn->fd, conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (wrote > 0) {
      bytes_written_.fetch_add(static_cast<std::uint64_t>(wrote),
                               std::memory_order_relaxed);
      MWC_OBS_COUNT_N("svc.net.bytes_written",
                      static_cast<std::uint64_t>(wrote));
      conn->out_pos += static_cast<std::size_t>(wrote);
      conn->last_activity = SteadyClock::now();
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->epollout) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET | EPOLLOUT;
        ev.data.fd = conn->fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
          conn->epollout = true;
      }
      break;
    }
    if (wrote < 0 && errno == EINTR) continue;
    close_conn(conn, "write error");
    return;
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->epollout) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
      ev.data.fd = conn->fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
        conn->epollout = false;
    }
  } else if (conn->out_pos > (1u << 20)) {
    conn->out.erase(0, conn->out_pos);  // compact a long flushed prefix
    conn->out_pos = 0;
  }

  // Finished: every line answered and flushed, and no more input coming.
  if ((conn->half_closed || stopping_) && conn->out_pos == conn->out.size() &&
      conn->next_flush == conn->next_seq)
    close_conn(conn, "done");
}

bool NetServer::push_line(const std::shared_ptr<Conn>& conn,
                          std::string line) {
  bool enqueue = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->closed) {
      conn->pushed.push_back(std::move(line));
      enqueue = true;
    }
  }
  if (!enqueue) {
    pushes_dropped_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.net.pushes_dropped");
    return false;
  }
  pushes_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.net.pushes");
  {
    std::lock_guard<std::mutex> lock(completed_mutex_);
    completed_.push_back(conn);
  }
  wake();
  return true;
}

void NetServer::close_conn(const std::shared_ptr<Conn>& conn,
                           const char* /*reason*/) {
  if (conn->fd < 0) return;
  const int fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn->fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closed = true;
    conn->done.clear();
    conn->pushed.clear();
  }
  conn->ready.clear();
  if (conn->streaming && sessions_ != nullptr) {
    conn->streaming = false;
    sessions_->drop_connection(conn->token);
  }
  conns_.erase(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.net.closed");
  MWC_OBS_GAUGE_SET("svc.net.connections",
                    static_cast<double>(conns_.size()));
}

void NetServer::handle_conn_event(const std::shared_ptr<Conn>& conn,
                                  std::uint32_t events) {
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
    read_input(conn);
    if (conn->fd < 0) return;
  }
  if ((events & EPOLLOUT) != 0) pump(conn);
}

void NetServer::drain_completions() {
  std::vector<std::shared_ptr<Conn>> batch;
  {
    std::lock_guard<std::mutex> lock(completed_mutex_);
    batch.swap(completed_);
  }
  for (const auto& conn : batch) pump(conn);
}

void NetServer::sweep_idle() {
  if (options_.idle_timeout_ms <= 0.0) return;
  const auto now = SteadyClock::now();
  std::vector<std::shared_ptr<Conn>> idle;
  for (const auto& [fd, conn] : conns_) {
    const double idle_ms =
        std::chrono::duration<double, std::milli>(now - conn->last_activity)
            .count();
    // Only reap quiet connections: nothing owed, nothing buffered —
    // a half-received request line in `in` counts as activity. A live
    // stream session is long-lived by design and never idle-reaped.
    if (idle_ms > options_.idle_timeout_ms && !conn->streaming &&
        conn->in.empty() && conn->next_flush == conn->next_seq &&
        conn->out_pos == conn->out.size())
      idle.push_back(conn);
  }
  for (const auto& conn : idle) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.net.idle_closed");
    close_conn(conn, "idle");
  }
}

void NetServer::begin_stop() {
  stopping_ = true;
  drain_deadline_ =
      SteadyClock::now() +
      std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double, std::milli>(options_.drain_timeout_ms));
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unread input is dropped (a drain answers what was admitted, not what
  // is still in flight on the wire); connections owing nothing close now.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) all.push_back(conn);
  for (const auto& conn : all) {
    conn->in.clear();
    pump(conn);
  }
}

void NetServer::run() {
  std::vector<epoll_event> events(128);
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !stopping_)
      begin_stop();
    if (stopping_ && conns_.empty()) break;
    if (stopping_ && options_.drain_timeout_ms > 0.0 &&
        SteadyClock::now() >= drain_deadline_) {
      // Drain deadline: a peer that stopped reading holds unflushable
      // output forever — force-close so run() always returns.
      std::vector<std::shared_ptr<Conn>> rest;
      rest.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) rest.push_back(conn);
      for (const auto& conn : rest) {
        drain_dropped_.fetch_add(1, std::memory_order_relaxed);
        MWC_OBS_COUNT("svc.net.drain_dropped");
        close_conn(conn, "drain timeout");
      }
      break;
    }

    int timeout = -1;
    if (options_.idle_timeout_ms > 0.0 && !conns_.empty())
      timeout = std::clamp(static_cast<int>(options_.idle_timeout_ms / 2),
                           10, 1000);
    if (stopping_ && options_.drain_timeout_ms > 0.0)
      timeout = timeout < 0 ? 50 : std::min(timeout, 50);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_.load(std::memory_order_acquire)) {
        std::uint64_t drained;
        while (::read(fd, &drained, sizeof drained) > 0) {
        }
        wake_pending_.store(false, std::memory_order_release);
      } else if (fd == listen_fd_ && listen_fd_ >= 0) {
        handle_accept();
      } else {
        const auto it = conns_.find(fd);
        if (it != conns_.end()) {
          // Copy out of the map: close_conn() inside the handler erases
          // this entry, which would destroy the shared_ptr a reference
          // to it->second still dereferences afterwards.
          const std::shared_ptr<Conn> conn = it->second;
          handle_conn_event(conn, events[static_cast<std::size_t>(i)].events);
        }
      }
    }
    drain_completions();
    sweep_idle();
  }
}

NetStats NetServer::stats() const {
  NetStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.connections = s.accepted - s.closed;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.overflow_closed = overflow_closed_.load(std::memory_order_relaxed);
  s.drain_dropped = drain_dropped_.load(std::memory_order_relaxed);
  s.pushes = pushes_.load(std::memory_order_relaxed);
  s.pushes_dropped = pushes_dropped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mwc::svc
