#include "svc/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "geom/point.hpp"
#include "obs/obs.hpp"

namespace mwc::svc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Relative τ change below which an update_cycles op is a no-op (same
/// quantum the delta engine's fold uses for values).
constexpr double kTauQuantum = 1e-9;
/// Upper bound on client-supplied session times. Generous for any real
/// workload (1e12 cycle units) while keeping deadline arithmetic
/// (epoch + k·τ) well inside the exact-integer range of a double; a t
/// beyond it — or non-finite — is a client fault, never admitted into
/// the monitor's time math.
constexpr double kMaxSessionTime = 1e12;

/// Validates a client-supplied session time (throws WireError).
double checked_time(double t) {
  if (!(std::isfinite(t) && t >= 0.0 && t <= kMaxSessionTime))
    throw WireError("t must be finite and in [0, 1e12]");
  return t;
}

std::string frame_id(const Json& doc) {
  const Json* id = doc.find("id");
  if (id != nullptr && id->is_string() &&
      id->as_string().size() <= kMaxTraceIdLength)
    return id->as_string();
  return {};
}

void append_head(std::string& out, const std::string& id) {
  out += "{\"v\":\"";
  out += kWireVersionStream;
  out += "\",\"id\":";
  append_json_escaped(out, id);
}

double optional_double(const Json& doc, const char* key, double fallback) {
  const Json* j = doc.find(key);
  return j != nullptr ? j->as_double() : fallback;
}

}  // namespace

std::vector<double> plan_visit_times(const Plan& plan,
                                     const wsn::Network& network,
                                     double travel_speed,
                                     double charge_time) {
  std::vector<double> out(network.n(), kInf);
  if (!(travel_speed > 0.0)) return out;
  for (const PlanTour& tour : plan.first_round_tours) {
    if (tour.depot >= network.q()) continue;
    geom::Point pos = network.depots()[tour.depot];
    double t = 0.0;
    for (const std::size_t id : tour.sensors) {
      if (id >= network.n()) continue;
      const geom::Point& p = network.sensor_points()[id];
      t += geom::distance(pos, p) / travel_speed;
      if (t < out[id]) out[id] = t;
      t += charge_time;
      pos = p;
    }
  }
  return out;
}

SessionManager::SessionManager(Server& server, SessionOptions options)
    : server_(server), options_(options) {}

SessionManager::~SessionManager() {
  // An in-flight replan callback captures `this`; draining the server
  // first guarantees none outlives the session table.
  server_.shutdown();
}

std::string SessionManager::reject(const std::string& id, ErrorCode code,
                                   const std::string& message) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.stream.rejected");
  return stream_error_line(id, code, message);
}

std::string SessionManager::handle_frame(std::uint64_t conn_token,
                                         const std::string& line,
                                         PushFn push, bool* streaming) {
  MWC_OBS_COUNT("svc.stream.frames");
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonError& e) {
    return reject("", ErrorCode::kBadRequest, e.what());
  }
  if (!doc.is_object())
    return reject("", ErrorCode::kBadRequest,
                  "stream frame must be a JSON object");
  try {
    const Json* op = doc.find("op");
    if (op == nullptr)
      return reject(frame_id(doc), ErrorCode::kBadRequest,
                    "stream frame needs \"op\"");
    const std::string& name = op->as_string();
    if (name == "open") return handle_open(conn_token, doc, push, streaming);
    if (name == "observe") return handle_observe(conn_token, doc);
    if (name == "close") return handle_close(conn_token, doc, streaming);
    return reject(frame_id(doc), ErrorCode::kBadRequest,
                  "unknown stream op \"" + name + "\"");
  } catch (const WireError& e) {
    return reject(frame_id(doc), ErrorCode::kBadRequest, e.what());
  } catch (const JsonError& e) {
    return reject(frame_id(doc), ErrorCode::kBadRequest, e.what());
  } catch (const std::invalid_argument& e) {
    // FleetPredictor::observe on a mismatched rates length.
    return reject(frame_id(doc), ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    // Anything else (bad_alloc, logic errors) is a server-side failure,
    // not a malformed client frame.
    return reject(frame_id(doc), ErrorCode::kInternal, e.what());
  }
}

void SessionManager::refresh_deadlines(Session& session) {
  const wsn::Network& network = session.base->network;
  const std::size_t n = network.n();
  std::vector<double> times =
      session.base->plan != nullptr
          ? plan_visit_times(*session.base->plan, network,
                             session.travel_speed, session.charge_time)
          : std::vector<double>(n, kInf);
  session.visit.assign(n, kInf);
  session.deadline.assign(n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(times[i])) {
      session.visit[i] = session.plan_epoch + times[i];
      session.deadline[i] = session.visit[i];
    } else {
      session.deadline[i] = session.plan_epoch + session.base->tau[i];
    }
  }
}

std::string SessionManager::handle_open(std::uint64_t conn_token,
                                        const Json& doc, PushFn& push,
                                        bool* streaming) {
  const std::string id = doc.at("id").as_string();
  if (id.empty()) throw WireError("id must be non-empty");
  const std::uint64_t fp =
      parse_fingerprint_hex(doc.at("base").as_string());

  const double gamma = optional_double(doc, "gamma", options_.gamma);
  if (!(gamma > 0.0 && gamma < 1.0))
    throw WireError("gamma must be in (0, 1)");
  const double margin = optional_double(doc, "margin", options_.margin);
  if (!(margin >= 0.0 && margin < 1.0))
    throw WireError("margin must be in [0, 1)");
  const double speed =
      optional_double(doc, "speed", options_.travel_speed);
  if (!(speed > 0.0)) throw WireError("speed must be > 0");
  const double charge_time =
      optional_double(doc, "charge_time", options_.charge_time);
  if (charge_time < 0.0) throw WireError("charge_time must be >= 0");
  const double t0 = checked_time(optional_double(doc, "t", 0.0));

  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions)
    return reject(id, ErrorCode::kSessionLimit,
                  "session table full (" +
                      std::to_string(options_.max_sessions) + " live)");
  std::shared_ptr<const BaseState> base = server_.cache().get_state(fp);
  if (base == nullptr)
    return reject(id, ErrorCode::kUnknownBase,
                  "unknown base plan \"" + fingerprint_hex(fp) +
                      "\"; solve it first on the same server");

  auto session = std::make_shared<Session>();
  session->id = next_session_++;
  session->conn = conn_token;
  session->push = std::move(push);
  session->fingerprint = fp;
  session->base = std::move(base);
  session->travel_speed = speed;
  session->charge_time = charge_time;
  session->margin = margin;
  session->plan_epoch = t0;
  session->now = t0;

  const wsn::Network& network = session->base->network;
  const std::size_t n = network.n();
  session->battery.resize(n);
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    session->battery[i] = network.sensor(i).battery_capacity;
    // Planned steady state: draining one battery per cycle τ_i.
    rates[i] = session->battery[i] / session->base->tau[i];
  }
  session->residual = session->battery;
  if (const Json* residual = doc.find("residual")) {
    if (!residual->is_array() || residual->size() != n)
      throw WireError("residual must be an array of n numbers");
    for (std::size_t i = 0; i < n; ++i) {
      session->residual[i] = residual->items()[i].as_double();
      if (session->residual[i] < 0.0)
        throw WireError("residual must be >= 0");
    }
  }
  session->predictor = std::make_unique<wsn::FleetPredictor>(
      gamma, std::move(rates), options_.report_threshold);
  refresh_deadlines(*session);
  std::size_t round_sensors = 0;
  for (const double v : session->visit)
    if (std::isfinite(v)) ++round_sensors;

  const std::uint64_t sid = session->id;
  sessions_.emplace(sid, std::move(session));
  *streaming = true;
  opened_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.stream.sessions");
  MWC_OBS_GAUGE_SET("svc.stream.active_sessions",
                    static_cast<double>(sessions_.size()));

  std::string out;
  append_head(out, id);
  out += ",\"ok\":true,\"op\":\"open\",\"session\":";
  append_json_number(out, static_cast<double>(sid));
  out += ",\"n\":";
  append_json_number(out, static_cast<double>(n));
  out += ",\"round_sensors\":";
  append_json_number(out, static_cast<double>(round_sensors));
  out += ",\"base\":\"";
  out += fingerprint_hex(fp);
  out += "\"}\n";
  return out;
}

std::string SessionManager::handle_observe(std::uint64_t conn_token,
                                           const Json& doc) {
  const std::string id = doc.at("id").as_string();
  const std::uint64_t sid =
      static_cast<std::uint64_t>(doc.at("session").as_int());
  const double t = checked_time(doc.at("t").as_double());
  const Json& rates_json = doc.at("rates");
  if (!rates_json.is_array())
    throw WireError("rates must be an array of n numbers");
  std::vector<double> rates;
  rates.reserve(rates_json.size());
  for (const Json& r : rates_json.items()) {
    rates.push_back(r.as_double());
    if (!(rates.back() >= 0.0)) throw WireError("rates must be >= 0");
  }

  bool do_replan = false;
  DeltaRequest delta;
  double trigger_t = 0.0;
  std::vector<std::size_t> at_risk;
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() || it->second->conn != conn_token)
      return reject(id, ErrorCode::kUnknownSession,
                    "unknown session " + std::to_string(sid));
    Session& session = *it->second;
    if (!(t >= session.now))
      return reject(id, ErrorCode::kBadRequest,
                    "t must be non-decreasing within a session");

    // FleetPredictor validates the rates length (throws on mismatch —
    // answered as bad_request by handle_frame's catch).
    const std::vector<std::size_t> reporters =
        session.predictor->observe(rates);

    // Integrate the observed discharge into the residual estimates,
    // crediting round visits that happened inside (now, t].
    const std::size_t n = session.battery.size();
    const double dt = t - session.now;
    std::uint64_t new_deaths = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool was_alive = session.residual[i] > 0.0;
      if (session.visit[i] > session.now && session.visit[i] <= t) {
        session.residual[i] =
            session.battery[i] - rates[i] * (t - session.visit[i]);
        // Visit consumed: the plan's next promise is one cycle out.
        session.deadline[i] = session.visit[i] + session.base->tau[i];
        session.visit[i] = kInf;
      } else {
        session.residual[i] -= rates[i] * dt;
      }
      if (session.residual[i] < 0.0) session.residual[i] = 0.0;
      if (was_alive && session.residual[i] <= 0.0) ++new_deaths;
      // A deadline that passed without a visit rolls forward whole
      // cycles so the monitor keeps a finite horizon instead of
      // latching. Closed form, never a t-driven loop: this runs on the
      // transport loop thread under mutex_, and kMaxSessionTime alone
      // must not be the only thing standing between a client frame and
      // an unbounded spin.
      const double tau = std::max(session.base->tau[i], kTauQuantum);
      if (session.deadline[i] <= t) {
        const double cycles =
            std::floor((t - session.deadline[i]) / tau) + 1.0;
        session.deadline[i] += tau * cycles;
        // floor rounding can land exactly on t; nudge one more cycle.
        if (session.deadline[i] <= t) session.deadline[i] += tau;
      }
    }
    session.now = t;
    if (new_deaths > 0) {
      deaths_.fetch_add(new_deaths, std::memory_order_relaxed);
      MWC_OBS_COUNT_N("svc.stream.deaths", new_deaths);
    }

    // Feasibility monitor: predicted residual lifetime vs. the time
    // remaining until the plan serves the sensor, with hysteresis.
    std::size_t dead = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (session.residual[i] <= 0.0) {
        ++dead;
        continue;
      }
      const double rate = session.predictor->predicted_rate(i);
      const double lifetime =
          rate > 0.0 ? session.residual[i] / rate : kInf;
      const double remaining = session.deadline[i] - t;
      if (remaining > 0.0 &&
          lifetime < remaining * (1.0 - session.margin))
        at_risk.push_back(i);
    }
    if (!at_risk.empty()) {
      at_risk_.fetch_add(at_risk.size(), std::memory_order_relaxed);
      MWC_OBS_COUNT_N("svc.stream.at_risk", at_risk.size());
    }

    if (!at_risk.empty() && !session.replan_in_flight &&
        t - session.last_replan_t >= options_.min_replan_interval &&
        build_replan(session, at_risk, reporters, &delta)) {
      session.replan_in_flight = true;
      session.last_replan_t = t;
      trigger_t = t;
      do_replan = true;
    }

    observes_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.stream.observes");
    append_head(out, id);
    out += ",\"ok\":true,\"op\":\"observe\",\"session\":";
    append_json_number(out, static_cast<double>(sid));
    out += ",\"t\":";
    append_json_number(out, t);
    out += ",\"at_risk\":";
    append_json_number(out, static_cast<double>(at_risk.size()));
    out += ",\"dead\":";
    append_json_number(out, static_cast<double>(dead));
    out += ",\"reporters\":";
    append_json_number(out, static_cast<double>(reporters.size()));
    out += do_replan ? ",\"replan\":true}\n" : ",\"replan\":false}\n";
  }

  // Submit outside the lock: a synchronous rejection (queue_full,
  // shutting_down) invokes on_replan inline, which re-locks mutex_.
  if (do_replan) {
    const auto started = std::chrono::steady_clock::now();
    server_.submit(
        std::move(delta),
        [this, sid, trigger_t, at_risk, started](const Response& r) {
          on_replan(sid, trigger_t, at_risk, started, r);
        },
        "stream");
  }
  return out;
}

bool SessionManager::build_replan(Session& session,
                                  const std::vector<std::size_t>& at_risk,
                                  const std::vector<std::size_t>& reporters,
                                  DeltaRequest* out) {
  std::vector<char> take(session.battery.size(), 0);
  for (const std::size_t i : at_risk) take[i] = 1;
  for (const std::size_t i : reporters) take[i] = 1;

  DeltaBuilder builder(
      "replan-" + std::to_string(session.id) + "-" +
          std::to_string(next_replan_++),
      session.fingerprint);
  builder.deadline_ms(options_.replan_deadline_ms);
  std::size_t ops = 0;
  for (std::size_t i = 0; i < take.size(); ++i) {
    if (take[i] == 0 || session.residual[i] <= 0.0) continue;
    const double predicted =
        session.predictor->predicted_cycle(i, session.battery[i]);
    if (!std::isfinite(predicted) || !(predicted > 0.0)) continue;
    const double tau = std::max(predicted, kTauQuantum);
    if (std::abs(tau - session.base->tau[i]) <=
        kTauQuantum * std::max(1.0, session.base->tau[i]))
      continue;
    builder.update_cycles(i, tau);
    ++ops;
  }
  if (ops == 0) return false;
  *out = builder.build();
  return true;
}

void SessionManager::on_replan(
    std::uint64_t session_id, double trigger_t,
    std::vector<std::size_t> at_risk,
    std::chrono::steady_clock::time_point started,
    const Response& response) {
  const double replan_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  std::string line;
  PushFn push;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // dropped while solving
    Session& session = *it->second;
    session.replan_in_flight = false;
    std::shared_ptr<const BaseState> state =
        response.ok && response.plan != nullptr
            ? server_.cache().get_state(response.plan->fingerprint)
            : nullptr;
    if (state == nullptr) {
      replan_failures_.fetch_add(1, std::memory_order_relaxed);
      MWC_OBS_COUNT("svc.stream.replan_failures");
      return;
    }
    const std::uint64_t old_fp = session.fingerprint;
    session.fingerprint = response.plan->fingerprint;
    session.base = std::move(state);
    session.plan_epoch = trigger_t;
    refresh_deadlines(session);
    ++session.replans;
    replans_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.stream.replans");
    last_replan_ms_.store(replan_ms, std::memory_order_relaxed);
    MWC_OBS_HISTOGRAM("svc.stream.replan_ms", replan_ms, 0.1, 0.25, 0.5,
                      1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                      500.0, 1000.0);

    line += "{\"v\":\"";
    line += kWireVersionStream;
    line += "\",\"op\":\"plan\",\"push\":true,\"session\":";
    append_json_number(line, static_cast<double>(session.id));
    line += ",\"seq\":";
    append_json_number(line, static_cast<double>(++session.push_seq));
    line += ",\"reason\":\"deadline\",\"t\":";
    append_json_number(line, trigger_t);
    line += ",\"at_risk\":[";
    bool first = true;
    for (const std::size_t i : at_risk) {
      if (!first) line += ',';
      first = false;
      append_json_number(line, static_cast<double>(i));
    }
    line += "],\"replan_ms\":";
    append_json_number(line, replan_ms);
    line += ",\"base\":\"";
    line += fingerprint_hex(old_fp);
    line += "\",\"plan\":";
    append_plan_json(line, *response.plan);
    line += "}\n";
    push = session.push;
  }
  if (push && push(std::move(line))) {
    pushes_.fetch_add(1, std::memory_order_relaxed);
    MWC_OBS_COUNT("svc.stream.pushes");
  }
}

std::string SessionManager::handle_close(std::uint64_t conn_token,
                                         const Json& doc,
                                         bool* streaming) {
  const std::string id = doc.at("id").as_string();
  const std::uint64_t sid =
      static_cast<std::uint64_t>(doc.at("session").as_int());
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(sid);
  if (it == sessions_.end() || it->second->conn != conn_token)
    return reject(id, ErrorCode::kUnknownSession,
                  "unknown session " + std::to_string(sid));
  sessions_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  MWC_OBS_COUNT("svc.stream.closed");
  MWC_OBS_GAUGE_SET("svc.stream.active_sessions",
                    static_cast<double>(sessions_.size()));
  bool any = false;
  for (const auto& [other_id, session] : sessions_)
    any = any || session->conn == conn_token;
  *streaming = any;

  std::string out;
  append_head(out, id);
  out += ",\"ok\":true,\"op\":\"close\",\"session\":";
  append_json_number(out, static_cast<double>(sid));
  out += "}\n";
  return out;
}

void SessionManager::drop_connection(std::uint64_t conn_token) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->conn == conn_token) {
      it = sessions_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped == 0) return;
  closed_.fetch_add(dropped, std::memory_order_relaxed);
  MWC_OBS_COUNT_N("svc.stream.closed", dropped);
  MWC_OBS_GAUGE_SET("svc.stream.active_sessions",
                    static_cast<double>(sessions_.size()));
}

StreamStats SessionManager::stats() const {
  StreamStats s;
  s.opened = opened_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.active = sessions_.size();
  }
  s.observes = observes_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.replans = replans_.load(std::memory_order_relaxed);
  s.replan_failures = replan_failures_.load(std::memory_order_relaxed);
  s.pushes = pushes_.load(std::memory_order_relaxed);
  s.at_risk = at_risk_.load(std::memory_order_relaxed);
  s.deaths = deaths_.load(std::memory_order_relaxed);
  s.last_replan_ms = last_replan_ms_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mwc::svc
