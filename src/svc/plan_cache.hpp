// svc::PlanCache — thread-safe LRU over solved plans.
//
// Keys are 64-bit instance fingerprints (FNV-1a over the *resolved*
// instance: quantized coordinates, slot-0 cycle draws, policy name, and
// solve options — see engine.hpp), so a preset request and an inline
// request describing the same geometry hit the same entry, and repeated
// or paired requests return the identical std::shared_ptr<const Plan>
// without re-solving. Hits/misses/evictions are tracked both on local
// counters (exact per-cache stats, usable under MWC_OBS=OFF) and on the
// global registry as `svc.cache.{hits,misses,evictions}`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>

#include "obs/registry.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {

/// Opaque solver-side state cached beside a Plan so the v2 delta path can
/// repair the base round instead of re-solving (defined in delta.hpp; the
/// cache only stores and hands back the pointer).
struct BaseState;

/// Incremental FNV-1a 64-bit hash with helpers for the quantized-value
/// folding the fingerprint needs (doubles are snapped to a fixed quantum
/// before hashing so -0.0/0.0 and formatting noise cannot split keys).
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) noexcept;
  void u64(std::uint64_t v) noexcept;
  void str(std::string_view s) noexcept;
  /// Quantizes v to integer multiples of `quantum` and folds it.
  void quantized(double v, double quantum) noexcept;

  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

class PlanCache {
 public:
  /// `capacity` = max retained plans; 0 disables caching (every lookup
  /// misses, puts are dropped).
  explicit PlanCache(std::size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan for `key`, promoting it to most-recently-used; null
  /// on a miss.
  std::shared_ptr<const Plan> get(std::uint64_t key);

  /// Inserts (or refreshes) `plan` under `key`, evicting the
  /// least-recently-used entry beyond capacity. The optional `state`
  /// rides along with the entry and feeds the v2 delta path.
  void put(std::uint64_t key, std::shared_ptr<const Plan> plan,
           std::shared_ptr<const BaseState> state = nullptr);

  /// The cached solver state for `key` (null when the entry is absent or
  /// was stored without state). Promotes the entry like `get` but does
  /// not count a hit/miss — delta resolution probes are tracked by the
  /// `svc.delta.*` counters instead.
  std::shared_ptr<const BaseState> get_state(std::uint64_t key);

  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

  std::uint64_t hits() const noexcept { return hits_.value(); }
  std::uint64_t misses() const noexcept { return misses_.value(); }
  std::uint64_t evictions() const noexcept { return evictions_.value(); }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const Plan> plan;
    std::shared_ptr<const BaseState> state;
  };
  using LruList = std::list<Entry>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
};

}  // namespace mwc::svc
