// svc::PlanCache — thread-safe sharded LRU over solved plans.
//
// Keys are 64-bit instance fingerprints (FNV-1a over the *resolved*
// instance: quantized coordinates, slot-0 cycle draws, policy name, and
// solve options — see engine.hpp), so a preset request and an inline
// request describing the same geometry hit the same entry, and repeated
// or paired requests return the identical std::shared_ptr<const Plan>
// without re-solving.
//
// The store is split into `shards` independently-locked shards selected
// by a mix of the key, each with its own LRU list, so concurrent warm
// hits on different instances never contend on one mutex. Capacity is
// divided evenly across shards (ceil), so the effective total reported
// by capacity() may round up slightly for non-divisible configurations.
// A single-sharded cache (the default) keeps exact global LRU order.
//
// Beside the plan store each shard keeps a bounded *spec memo*: a map
// from a cheap hash of the raw request spec to the instance fingerprint
// it resolved to. The warm path uses it to skip instance resolution
// (network deployment + quantized hashing) entirely — see
// svc::handle_request.
//
// Hits/misses/evictions are tracked both on local counters (exact
// per-cache stats, usable under MWC_OBS=OFF) and on the global registry
// as `svc.cache.{hits,misses,evictions}`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {

/// Opaque solver-side state cached beside a Plan so the v2 delta path can
/// repair the base round instead of re-solving (defined in delta.hpp; the
/// cache only stores and hands back the pointer).
struct BaseState;

/// Incremental FNV-1a 64-bit hash with helpers for the quantized-value
/// folding the fingerprint needs (doubles are snapped to a fixed quantum
/// before hashing so -0.0/0.0 and formatting noise cannot split keys).
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) noexcept;
  void u64(std::uint64_t v) noexcept;
  void str(std::string_view s) noexcept;
  /// Quantizes v to integer multiples of `quantum` and folds it.
  void quantized(double v, double quantum) noexcept;

  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

class PlanCache {
 public:
  /// `capacity` = max retained plans across all shards; 0 disables
  /// caching (every lookup misses, puts are dropped). `shards` = number
  /// of independently-locked shards; clamped to [1, capacity] so every
  /// shard holds at least one plan. The default single shard preserves
  /// exact global LRU order; servers use several to take the mutex off
  /// the warm path.
  explicit PlanCache(std::size_t capacity, std::size_t shards = 1);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan for `key`, promoting it to most-recently-used
  /// within its shard; null on a miss.
  std::shared_ptr<const Plan> get(std::uint64_t key);

  /// Inserts (or refreshes) `plan` under `key`, evicting the
  /// least-recently-used entry of the key's shard beyond its share of
  /// the capacity. The optional `state` rides along with the entry and
  /// feeds the v2 delta path.
  void put(std::uint64_t key, std::shared_ptr<const Plan> plan,
           std::shared_ptr<const BaseState> state = nullptr);

  /// The cached solver state for `key` (null when the entry is absent or
  /// was stored without state). Promotes the entry like `get` but does
  /// not count a hit/miss — delta resolution probes are tracked by the
  /// `svc.delta.*` counters instead.
  std::shared_ptr<const BaseState> get_state(std::uint64_t key);

  /// The instance fingerprint previously remembered for `spec_hash`, or
  /// 0 when unknown (0 is never remembered). Not counted as a cache
  /// hit/miss — the plan probe that follows is.
  std::uint64_t spec_lookup(std::uint64_t spec_hash) const;

  /// Remembers spec_hash -> fingerprint in a bounded FIFO memo (oldest
  /// entries fall out first). No-op when caching is disabled or
  /// `fingerprint` is 0.
  void spec_remember(std::uint64_t spec_hash, std::uint64_t fingerprint);

  void clear();

  std::size_t size() const;
  /// Effective total capacity (per-shard share x shard count).
  std::size_t capacity() const noexcept { return per_shard_ * shards_.size(); }
  std::size_t shards() const noexcept { return shards_.size(); }

  std::uint64_t hits() const noexcept { return hits_.value(); }
  std::uint64_t misses() const noexcept { return misses_.value(); }
  std::uint64_t evictions() const noexcept { return evictions_.value(); }

  /// One exported cache entry (snapshot serialization).
  struct ExportedEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const Plan> plan;
  };

  /// Every cached entry, least-recently-used first per shard, so
  /// replaying the list through put() reproduces the recency order.
  /// BaseState does not export — snapshots restore plans only.
  std::vector<ExportedEntry> export_entries() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const Plan> plan;
    std::shared_ptr<const BaseState> state;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, LruList::iterator> index;
    /// Spec memo: raw-request-spec hash -> instance fingerprint,
    /// bounded FIFO (spec_order tracks insertion age).
    std::unordered_map<std::uint64_t, std::uint64_t> spec;
    std::deque<std::uint64_t> spec_order;
  };

  Shard& shard_for(std::uint64_t key) const noexcept;

  std::size_t per_shard_ = 0;  ///< capacity each shard retains
  mutable std::vector<Shard> shards_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
};

}  // namespace mwc::svc
