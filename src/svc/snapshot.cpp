#include "svc/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "obs/obs.hpp"

namespace mwc::svc {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

/// Bounds-checked reader over the snapshot payload.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool u64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool f64(double* v) {
    if (size_ - pos_ < 8) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint64_t checksum(const char* data, std::size_t size) {
  Fnv1a h;
  h.bytes(data, size);
  return h.value();
}

}  // namespace

long save_cache_snapshot(const PlanCache& cache, const std::string& path) {
  const auto entries = cache.export_entries();
  std::string payload;
  put_u64(payload, entries.size());
  for (const auto& entry : entries) {
    const Plan& plan = *entry.plan;
    put_u64(payload, entry.key);
    put_u64(payload, plan.fingerprint);
    put_f64(payload, plan.first_round_length);
    put_f64(payload, plan.total_distance);
    put_u64(payload, plan.num_dispatches);
    put_u64(payload, plan.num_sensor_charges);
    put_u64(payload, plan.dead_sensors);
    put_u64(payload, plan.first_round_tours.size());
    for (const PlanTour& tour : plan.first_round_tours) {
      put_u64(payload, tour.depot);
      put_f64(payload, tour.length);
      put_u64(payload, tour.sensors.size());
      for (std::size_t id : tour.sensors) put_u64(payload, id);
    }
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return -1;
  bool ok = std::fwrite(kSnapshotMagic, 1, sizeof kSnapshotMagic, f) ==
            sizeof kSnapshotMagic;
  ok = ok && std::fwrite(payload.data(), 1, payload.size(), f) ==
                 payload.size();
  std::string tail;
  put_u64(tail, checksum(payload.data(), payload.size()));
  ok = ok && std::fwrite(tail.data(), 1, tail.size(), f) == tail.size();
  // The tmp+rename is only atomic against power loss if the data hits
  // disk before the rename does.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return -1;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  MWC_OBS_COUNT("svc.cache.snapshot_saved");
  return static_cast<long>(entries.size());
}

std::size_t load_cache_snapshot(PlanCache& cache, const std::string& path,
                                std::string* error) {
  const auto reject = [&](const char* reason) -> std::size_t {
    MWC_OBS_COUNT("svc.cache.snapshot_rejected");
    if (error != nullptr) *error = reason;
    return 0;
  };
  if (error != nullptr) error->clear();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;  // no snapshot yet: cold start, not an error
  std::string bytes;
  char buf[65536];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return reject("snapshot read failed");

  if (bytes.size() < sizeof kSnapshotMagic + 16)
    return reject("snapshot truncated");
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0)
    return reject("snapshot magic/version mismatch");
  const char* payload = bytes.data() + sizeof kSnapshotMagic;
  const std::size_t payload_size = bytes.size() - sizeof kSnapshotMagic - 8;
  std::uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes.data() + bytes.size() - 8, 8);
  if (checksum(payload, payload_size) != stored_sum)
    return reject("snapshot checksum mismatch");

  // Parse the whole payload into staging first: a bounds violation or a
  // key/fingerprint mismatch must not half-populate the cache.
  Reader r(payload, payload_size);
  std::uint64_t count;
  if (!r.u64(&count)) return reject("snapshot truncated");
  std::vector<std::pair<std::uint64_t, std::shared_ptr<Plan>>> staged;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key, tours;
    auto plan = std::make_shared<Plan>();
    std::uint64_t dispatches, charges, dead;
    if (!r.u64(&key) || !r.u64(&plan->fingerprint) ||
        !r.f64(&plan->first_round_length) || !r.f64(&plan->total_distance) ||
        !r.u64(&dispatches) || !r.u64(&charges) || !r.u64(&dead) ||
        !r.u64(&tours))
      return reject("snapshot truncated");
    if (key != plan->fingerprint)
      return reject("snapshot entry key != plan fingerprint");
    plan->num_dispatches = dispatches;
    plan->num_sensor_charges = charges;
    plan->dead_sensors = dead;
    for (std::uint64_t t = 0; t < tours; ++t) {
      PlanTour tour;
      std::uint64_t depot, sensors;
      if (!r.u64(&depot) || !r.f64(&tour.length) || !r.u64(&sensors))
        return reject("snapshot truncated");
      tour.depot = depot;
      if (sensors > (payload_size / 8))  // cheap bound before reserving
        return reject("snapshot tour length out of bounds");
      tour.sensors.reserve(sensors);
      for (std::uint64_t s = 0; s < sensors; ++s) {
        std::uint64_t id;
        if (!r.u64(&id)) return reject("snapshot truncated");
        tour.sensors.push_back(id);
      }
      plan->first_round_tours.push_back(std::move(tour));
    }
    staged.emplace_back(key, std::move(plan));
  }
  if (!r.done()) return reject("snapshot has trailing bytes");

  for (auto& [key, plan] : staged) cache.put(key, std::move(plan));
  MWC_OBS_COUNT_N("svc.cache.snapshot_loaded", staged.size());
  return staged.size();
}

}  // namespace mwc::svc
