#include "svc/admin.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "svc/access_log.hpp"
#include "svc/json.hpp"

namespace mwc::svc {

namespace {

Json envelope(const std::string& id, bool ok) {
  Json doc = Json::object();
  doc.set("v", Json(kAdminVersion));
  doc.set("id", Json(id));
  doc.set("ok", Json(ok));
  return doc;
}

std::string error_line(const std::string& id, const std::string& message) {
  Json doc = envelope(id, false);
  doc.set("error", Json("bad_request"));
  doc.set("message", Json(message));
  return doc.dump() + "\n";
}

Json statusz_json(const Server& server, const AdminInfo& info) {
  Json s = Json::object();
  s.set("build", Json(info.build));
  s.set("transport", Json(info.transport));
  s.set("uptime_s", Json((obs::now_us() - info.start_us) / 1e6));
  s.set("obs_enabled", Json(MWC_OBS_ENABLED != 0));
  s.set("trace_enabled", Json(obs::trace_enabled()));
  Json queue = Json::object();
  queue.set("in_flight", Json(server.in_flight()));
  queue.set("capacity", Json(server.options().queue_capacity));
  s.set("queue", std::move(queue));
  const PlanCache& cache = server.cache();
  Json c = Json::object();
  c.set("size", Json(cache.size()));
  c.set("capacity", Json(cache.capacity()));
  c.set("shards", Json(cache.shards()));
  c.set("hits", Json(static_cast<std::int64_t>(cache.hits())));
  c.set("misses", Json(static_cast<std::int64_t>(cache.misses())));
  c.set("evictions", Json(static_cast<std::int64_t>(cache.evictions())));
  const double probes = static_cast<double>(cache.hits() + cache.misses());
  c.set("hit_rate",
        Json(probes > 0.0 ? static_cast<double>(cache.hits()) / probes : 0.0));
  s.set("cache", std::move(c));
  if (const AccessLog* log = server.options().access_log) {
    Json a = Json::object();
    a.set("path", Json(log->path()));
    a.set("slow_ms", Json(log->slow_ms()));
    a.set("lines", Json(static_cast<std::int64_t>(log->lines_written())));
    s.set("access_log", std::move(a));
  }
  if (info.statusz_extra) info.statusz_extra(s);
  return s;
}

Json config_json(const Server& server, const AdminInfo& info) {
  const ServerOptions& options = server.options();
  Json c = Json::object();
  c.set("queue_capacity", Json(options.queue_capacity));
  c.set("threads", Json(options.threads));
  c.set("cache_capacity", Json(options.cache_capacity));
  c.set("cache_shards", Json(options.cache_shards));
  c.set("recent_capacity", Json(options.recent_capacity));
  c.set("access_log", Json(options.access_log != nullptr
                               ? options.access_log->path()
                               : std::string()));
  c.set("access_log_slow_ms", Json(options.access_log != nullptr
                                       ? options.access_log->slow_ms()
                                       : 0.0));
  c.set("transport", Json(info.transport));
  c.set("metrics_out", Json(info.metrics_out));
  c.set("trace_out", Json(info.trace_out));
  return c;
}

Json tracez_json(const Server& server, std::size_t limit) {
  std::vector<RequestRecord> records = server.recent_requests();
  std::sort(records.begin(), records.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.latency_ms > b.latency_ms;
            });
  if (records.size() > limit) records.resize(limit);
  Json t = Json::object();
  t.set("ring_capacity", Json(server.options().recent_capacity));
  Json slowest = Json::array();
  for (const RequestRecord& r : records) slowest.push_back(to_json(r));
  t.set("count", Json(slowest.size()));
  t.set("slowest", std::move(slowest));
  return t;
}

}  // namespace

bool AdminHandler::try_handle(const std::string& line,
                              std::string* response_line) const {
  // Fast path: scheduling requests never contain the key "admin".
  if (line.find("\"admin\"") == std::string::npos) return false;
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonError&) {
    return false;  // malformed; the scheduling parser answers bad_request
  }
  if (!doc.is_object()) return false;
  const Json* command = doc.find("admin");
  if (command == nullptr) return false;

  std::string id;
  if (const Json* j = doc.find("id"); j != nullptr && j->is_string())
    id = j->as_string();
  if (!command->is_string()) {
    *response_line = error_line(id, "admin command must be a string");
    return true;
  }
  const std::string& name = command->as_string();

  try {
    Json response = envelope(id, true);
    if (name == "statusz") {
      response.set("statusz", statusz_json(server_, info_));
    } else if (name == "metrics") {
      std::string format = "json";
      if (const Json* j = doc.find("format")) format = j->as_string();
      const obs::RegistrySnapshot snapshot =
          obs::Registry::global().snapshot();
      if (format == "openmetrics") {
        response.set("openmetrics", Json(snapshot.to_openmetrics()));
      } else if (format == "json") {
        // Re-parse the canonical (multi-line) mwc.metrics.v1 document to
        // embed it compactly in the one-line envelope.
        response.set("metrics", Json::parse(snapshot.to_json()));
      } else {
        *response_line =
            error_line(id, "metrics format must be \"json\" or "
                           "\"openmetrics\"");
        return true;
      }
    } else if (name == "tracez") {
      std::size_t limit = 10;
      if (const Json* j = doc.find("limit")) {
        const std::int64_t v = j->as_int();
        if (v < 1 || v > 1000) {
          *response_line = error_line(id, "limit must be in [1, 1000]");
          return true;
        }
        limit = static_cast<std::size_t>(v);
      }
      response.set("tracez", tracez_json(server_, limit));
    } else if (name == "config") {
      response.set("config", config_json(server_, info_));
    } else {
      *response_line = error_line(
          id, "unknown admin command \"" + name +
                  "\" (supported: statusz, metrics, tracez, config)");
      return true;
    }
    *response_line = response.dump() + "\n";
  } catch (const std::exception& e) {
    *response_line = error_line(id, e.what());
  }
  return true;
}

}  // namespace mwc::svc
