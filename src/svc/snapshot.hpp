// svc cache snapshots — persist the PlanCache across daemon restarts.
//
// A snapshot is a versioned binary file ("MWCSNAP1" magic) holding every
// cached plan: key, the Plan's scalar aggregates, and its first-round
// tours, with doubles stored as raw IEEE-754 bytes so a reloaded plan
// serializes to byte-identical wire JSON. The file ends in an FNV-1a
// checksum over the payload; loading validates magic, checksum, bounds,
// and that every entry's key matches its plan's recorded fingerprint,
// and rejects the whole file on any violation — a corrupt or stale
// snapshot never half-populates a cache.
//
// BaseState (the v2 delta repair state) intentionally does not persist:
// snapshot-restored entries serve full requests warm immediately, while
// a delta against one answers `unknown_base` until its base is solved
// once in the new process.
//
// Counters: svc.cache.snapshot_saved (files written),
// svc.cache.snapshot_loaded (entries restored),
// svc.cache.snapshot_rejected (files refused).
#pragma once

#include <cstddef>
#include <string>

#include "svc/plan_cache.hpp"

namespace mwc::svc {

inline constexpr char kSnapshotMagic[8] = {'M', 'W', 'C', 'S',
                                           'N', 'A', 'P', '1'};

/// Writes every entry of `cache` to `path` (atomically: a temp file
/// renamed into place). Returns the number of entries written, or -1 on
/// I/O failure. An empty cache still writes a valid zero-entry file.
long save_cache_snapshot(const PlanCache& cache, const std::string& path);

/// Loads a snapshot into `cache` via put() (restoring recency order).
/// Returns the number of entries restored; 0 with `svc.cache.
/// snapshot_rejected` bumped when the file exists but fails validation,
/// and 0 silently when it does not exist. `error` (optional) receives a
/// one-line reason on rejection.
std::size_t load_cache_snapshot(PlanCache& cache, const std::string& path,
                                std::string* error = nullptr);

}  // namespace mwc::svc
