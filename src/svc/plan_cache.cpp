#include "svc/plan_cache.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"

namespace mwc::svc {

namespace {

/// Finalizer mix (splitmix64) so shard selection uses all key bits even
/// when the low bits correlate (FNV keys are well mixed, derived keys
/// less so).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void Fnv1a::bytes(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 0x100000001b3ULL;  // FNV prime
  }
}

void Fnv1a::u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }

void Fnv1a::str(std::string_view s) noexcept {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Fnv1a::quantized(double v, double quantum) noexcept {
  const double scaled = v / quantum;
  // llround saturates UB-free only in range; instances live well inside.
  const auto q = static_cast<std::int64_t>(std::llround(scaled));
  u64(static_cast<std::uint64_t>(q));
}

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  if (shards == 0 || capacity == 0) shards = 1;
  if (capacity > 0 && shards > capacity) shards = capacity;
  per_shard_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
}

PlanCache::Shard& PlanCache::shard_for(std::uint64_t key) const noexcept {
  return shards_[shards_.size() == 1 ? 0 : mix(key) % shards_.size()];
}

std::shared_ptr<const Plan> PlanCache::get(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.add(1);
    MWC_OBS_COUNT("svc.cache.misses");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // -> MRU
  hits_.add(1);
  MWC_OBS_COUNT("svc.cache.hits");
  return it->second->plan;
}

std::shared_ptr<const BaseState> PlanCache::get_state(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->state;
}

void PlanCache::put(std::uint64_t key, std::shared_ptr<const Plan> plan,
                    std::shared_ptr<const BaseState> state) {
  if (per_shard_ == 0 || plan == nullptr) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->plan = std::move(plan);
    if (state != nullptr) it->second->state = std::move(state);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(Entry{key, std::move(plan), std::move(state)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.add(1);
    MWC_OBS_COUNT("svc.cache.evictions");
  }
}

std::uint64_t PlanCache::spec_lookup(std::uint64_t spec_hash) const {
  if (per_shard_ == 0) return 0;
  Shard& shard = shard_for(spec_hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.spec.find(spec_hash);
  return it == shard.spec.end() ? 0 : it->second;
}

void PlanCache::spec_remember(std::uint64_t spec_hash,
                              std::uint64_t fingerprint) {
  if (per_shard_ == 0 || fingerprint == 0) return;
  Shard& shard = shard_for(spec_hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.spec.emplace(spec_hash, fingerprint);
  if (!inserted) {
    it->second = fingerprint;
    return;
  }
  shard.spec_order.push_back(spec_hash);
  // A plan can be reachable under a handful of spec aliases (preset vs
  // inline form); 4x the plan share bounds the memo without evicting
  // live aliases under normal mixes.
  const std::size_t memo_capacity = per_shard_ * 4;
  while (shard.spec_order.size() > memo_capacity) {
    shard.spec.erase(shard.spec_order.front());
    shard.spec_order.pop_front();
  }
}

void PlanCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.spec.clear();
    shard.spec_order.clear();
  }
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

std::vector<PlanCache::ExportedEntry> PlanCache::export_entries() const {
  std::vector<ExportedEntry> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Reverse iteration: LRU first, so replaying put() restores order.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it)
      out.push_back(ExportedEntry{it->key, it->plan});
  }
  return out;
}

}  // namespace mwc::svc
