#include "svc/plan_cache.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"

namespace mwc::svc {

void Fnv1a::bytes(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 0x100000001b3ULL;  // FNV prime
  }
}

void Fnv1a::u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }

void Fnv1a::str(std::string_view s) noexcept {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Fnv1a::quantized(double v, double quantum) noexcept {
  const double scaled = v / quantum;
  // llround saturates UB-free only in range; instances live well inside.
  const auto q = static_cast<std::int64_t>(std::llround(scaled));
  u64(static_cast<std::uint64_t>(q));
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const Plan> PlanCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.add(1);
    MWC_OBS_COUNT("svc.cache.misses");
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  hits_.add(1);
  MWC_OBS_COUNT("svc.cache.hits");
  return it->second->plan;
}

std::shared_ptr<const BaseState> PlanCache::get_state(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->state;
}

void PlanCache::put(std::uint64_t key, std::shared_ptr<const Plan> plan,
                    std::shared_ptr<const BaseState> state) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    if (state != nullptr) it->second->state = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(Entry{key, std::move(plan), std::move(state)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.add(1);
    MWC_OBS_COUNT("svc.cache.evictions");
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace mwc::svc
