#include "svc/delta.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <utility>

#include "geom/bbox.hpp"
#include "obs/obs.hpp"
#include "wsn/sensor.hpp"

namespace mwc::svc {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr double kCoordQuantum = 1e-6;  ///< metres; below survey accuracy
constexpr double kValueQuantum = 1e-9;  ///< cycles / times / options

}  // namespace

PatchState fold_patch(const std::vector<PatchOp>& patch, std::size_t n,
                      std::size_t q,
                      const std::vector<char>& base_charger_active) {
  PatchState state;
  std::vector<char> removed(n, 0);
  std::vector<char> active(q, 1);
  if (!base_charger_active.empty())
    for (std::size_t l = 0; l < q; ++l)
      active[l] = base_charger_active[l] != 0 ? 1 : 0;

  const auto check_sensor = [&](std::size_t id) {
    if (id >= n)
      throw WireError("patch references sensor " + std::to_string(id) +
                      " but the base instance has " + std::to_string(n) +
                      " sensors");
    if (removed[id] != 0)
      throw WireError("patch references sensor " + std::to_string(id) +
                      " after removing it");
  };
  const auto check_charger = [&](std::size_t id) {
    if (id >= q)
      throw WireError("patch references charger " + std::to_string(id) +
                      " but the base instance has " + std::to_string(q) +
                      " chargers");
  };

  for (const PatchOp& op : patch) {
    switch (op.kind) {
      case PatchOpKind::kAddSensor:
        if (!(op.tau > 0.0)) throw WireError("add_sensor needs tau > 0");
        state.added.emplace_back(op.pos, op.tau);
        break;
      case PatchOpKind::kRemoveSensor:
        check_sensor(op.target);
        removed[op.target] = 1;
        // A prior move/update of this sensor is moot once it is gone.
        state.moved.erase(op.target);
        state.retau.erase(op.target);
        break;
      case PatchOpKind::kMoveSensor:
        check_sensor(op.target);
        state.moved[op.target] = op.pos;  // last writer wins
        break;
      case PatchOpKind::kUpdateCycles:
        check_sensor(op.target);
        if (!(op.tau > 0.0)) throw WireError("update_cycles needs tau > 0");
        state.retau[op.target] = op.tau;
        break;
      case PatchOpKind::kChargerDown:
        check_charger(op.target);
        active[op.target] = 0;
        break;
      case PatchOpKind::kChargerUp:
        check_charger(op.target);
        active[op.target] = 1;
        break;
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    if (removed[i] != 0) state.removed.push_back(i);
  if (state.removed.size() == n && state.added.empty())
    throw WireError("patch removes every sensor");

  std::size_t num_active = 0;
  for (std::size_t l = 0; l < q; ++l) {
    const bool base_up = base_charger_active.empty() ||
                         base_charger_active[l] != 0;
    if (static_cast<bool>(active[l]) != base_up)
      state.charger[l] = active[l] != 0;
    if (active[l] != 0) ++num_active;
  }
  if (num_active == 0)
    throw WireError("patch downs every charger; at least one must stay up");
  return state;
}

std::uint64_t patch_fingerprint(const PatchState& state) {
  Fnv1a h;
  h.str("removed");
  for (const std::size_t id : state.removed) h.u64(id);
  h.str("moved");
  for (const auto& [id, pos] : state.moved) {
    h.u64(id);
    h.quantized(pos.x, kCoordQuantum);
    h.quantized(pos.y, kCoordQuantum);
  }
  h.str("retau");
  for (const auto& [id, tau] : state.retau) {
    h.u64(id);
    h.quantized(tau, kValueQuantum);
  }
  h.str("added");
  for (const auto& [pos, tau] : state.added) {
    h.quantized(pos.x, kCoordQuantum);
    h.quantized(pos.y, kCoordQuantum);
    h.quantized(tau, kValueQuantum);
  }
  h.str("chargers");
  for (const auto& [id, up] : state.charger) {
    h.u64(id);
    h.u64(up ? 1 : 0);
  }
  return h.value();
}

std::uint64_t derived_fingerprint(std::uint64_t base_fingerprint,
                                  const PatchState& state) {
  Fnv1a h;
  h.str("mwc.svc.delta");
  h.u64(base_fingerprint);
  h.u64(patch_fingerprint(state));
  return h.value();
}

std::shared_ptr<const BaseState> make_base_state(
    const Request& request, const ResolvedInstance& instance,
    const sim::SolveOutcome& outcome, std::shared_ptr<const Plan> plan) {
  const sim::RoundPlan& round = outcome.first_round;
  if (round.tours.empty()) return nullptr;  // nothing to repair

  auto state = std::make_shared<BaseState>();
  state->network = instance.network;
  const std::size_t n = instance.network.n();
  const std::size_t q = instance.network.q();
  state->tau.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    state->tau.push_back(instance.cycles->cycle_at_slot(i, 0));
  state->policy = request.policy;
  state->horizon = request.horizon;
  state->slot_length = request.slot_length;
  state->improve = request.improve;
  state->sim = instance.sim;
  state->round = round;
  state->round_points.reserve(q + round.sensors.size());
  state->round_points.insert(state->round_points.end(),
                             instance.network.depots().begin(),
                             instance.network.depots().end());
  for (const std::size_t id : round.sensors)
    state->round_points.push_back(instance.network.sensor_points()[id]);
  state->round_candidates = tsp::CandidateGraph::build(
      state->round_points, instance.sim.tour_options.candidate_options);
  state->plan = std::move(plan);
  return state;
}

namespace {

std::shared_ptr<Plan> build_derived_plan(const sim::RoundPlan& round,
                                         std::size_t q,
                                         const std::shared_ptr<const Plan>& base,
                                         std::uint64_t key) {
  auto plan = std::make_shared<Plan>();
  plan->first_round_tours.reserve(round.tours.size());
  for (std::size_t t = 0; t < round.tours.size(); ++t) {
    PlanTour tour;
    tour.depot = t;
    for (const std::size_t node : round.tours[t].order()) {
      if (node < q)
        tour.depot = node;
      else
        tour.sensors.push_back(node - q);
    }
    tour.length = round.tour_lengths[t];
    plan->first_round_length += tour.length;
    plan->first_round_tours.push_back(std::move(tour));
  }
  if (base != nullptr) {
    // Horizon aggregates are inherited: the delta path re-plans the next
    // rollout, not the whole monitoring period.
    plan->total_distance = base->total_distance;
    plan->num_dispatches = base->num_dispatches;
    plan->num_sensor_charges = base->num_sensor_charges;
    plan->dead_sensors = base->dead_sensors;
  }
  plan->fingerprint = key;
  return plan;
}

}  // namespace

Response handle_delta(const DeltaRequest& request, PlanCache* cache,
                      StageTimings* stages) {
  MWC_OBS_SCOPE("svc.handle_delta");
  MWC_OBS_COUNT("svc.delta.requests");
  MWC_OBS_COUNT_N("svc.delta.patch_ops", request.patch.size());
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto fail = [&](ErrorCode code, const std::string& message) {
    Response response =
        error_response(request.id, code, message, elapsed_ms());
    response.version = WireVersion::kV2;
    response.trace_id = request.trace_id;
    response.base_fingerprint = request.base_fingerprint;
    return response;
  };

  const std::shared_ptr<const BaseState> base =
      cache != nullptr ? cache->get_state(request.base_fingerprint) : nullptr;
  if (base == nullptr) {
    MWC_OBS_COUNT("svc.delta.base_misses");
    return fail(ErrorCode::kUnknownBase,
                "unknown base plan \"" +
                    fingerprint_hex(request.base_fingerprint) +
                    "\"; re-send the full request");
  }

  PatchState fold;
  try {
    fold = fold_patch(request.patch, base->network.n(), base->network.q(),
                      base->charger_active);
  } catch (const WireError& e) {
    return fail(ErrorCode::kBadRequest, e.what());
  }

  const std::uint64_t key =
      derived_fingerprint(request.base_fingerprint, fold);
  if (stages != nullptr) stages->cache_ms = elapsed_ms();
  if (auto hit = cache->get(key)) {
    MWC_OBS_COUNT("svc.delta.cache_hits");
    Response response;
    response.id = request.id;
    response.trace_id = request.trace_id;
    response.version = WireVersion::kV2;
    response.ok = true;
    response.cached = true;
    response.derived = true;
    response.base_fingerprint = request.base_fingerprint;
    response.plan = std::move(hit);
    response.latency_ms = elapsed_ms();
    response.policy = base->policy;
    return response;
  }
  MWC_OBS_COUNT("svc.delta.cache_misses");

  try {
    MWC_OBS_SCOPE("svc.delta.replan");
    const wsn::Network& bn = base->network;
    const std::size_t n0 = bn.n();
    const std::size_t q = bn.q();

    // Materialize the patched instance: surviving base sensors keep their
    // relative order under index compaction, additions append.
    std::vector<char> is_removed(n0, 0);
    for (const std::size_t id : fold.removed) is_removed[id] = 1;
    std::vector<std::size_t> new_id(n0, kNpos);
    std::vector<wsn::Sensor> sensors;
    std::vector<double> tau;
    sensors.reserve(n0 - fold.removed.size() + fold.added.size());
    tau.reserve(sensors.capacity());
    geom::BBox field = bn.field();
    for (std::size_t i = 0; i < n0; ++i) {
      if (is_removed[i] != 0) continue;
      geom::Point pos = bn.sensor_points()[i];
      if (const auto it = fold.moved.find(i); it != fold.moved.end())
        pos = it->second;
      new_id[i] = sensors.size();
      sensors.push_back(
          wsn::Sensor{sensors.size(), pos, bn.sensor(i).battery_capacity});
      double t = base->tau[i];
      if (const auto it = fold.retau.find(i); it != fold.retau.end())
        t = it->second;
      tau.push_back(t);
      field.expand(pos);
    }
    std::vector<std::size_t> added_ids;
    added_ids.reserve(fold.added.size());
    for (const auto& [pos, t] : fold.added) {
      added_ids.push_back(sensors.size());
      sensors.push_back(wsn::Sensor{sensors.size(), pos, 1.0});
      tau.push_back(t);
      field.expand(pos);
    }
    wsn::Network network(std::move(sensors), bn.base_station(), bn.depots(),
                         field);

    std::vector<char> charger_active(q, 1);
    if (!base->charger_active.empty())
      for (std::size_t l = 0; l < q; ++l)
        charger_active[l] = base->charger_active[l] != 0 ? 1 : 0;
    for (const auto& [l, up] : fold.charger) charger_active[l] = up ? 1 : 0;
    bool all_active = true;
    for (const char a : charger_active) all_active = all_active && a != 0;

    // Round membership: the base dispatch set minus removals plus every
    // addition (a new sensor needs charging in the upcoming rollout).
    sim::RoundPatch rpatch;
    if (!all_active) rpatch.charger_active = charger_active;
    for (std::size_t slot = 0; slot < base->round.sensors.size(); ++slot) {
      const std::size_t s = base->round.sensors[slot];
      if (is_removed[s] != 0) continue;
      const std::size_t j = rpatch.sensors.size();
      rpatch.sensors.push_back(new_id[s]);
      rpatch.base_slot.push_back(slot);
      if (fold.moved.find(s) != fold.moved.end())
        rpatch.touched.push_back(q + j);
    }
    // Deadline-driven admission (Rao et al.): a surviving sensor whose
    // cycle was shortened below the round's urgency bar — it now needs
    // charging at least as soon as some sensor already dispatched —
    // joins the round as a fresh insertion. This is what lets a
    // streaming session's update_cycles replan actually visit a sensor
    // the storm pushed toward death instead of only relabeling its τ.
    {
      const std::size_t n0 = base->network.n();
      std::vector<char> in_round(n0, 0);
      double round_tau_max = 0.0;
      for (const std::size_t s : base->round.sensors) {
        in_round[s] = 1;
        if (base->tau[s] > round_tau_max) round_tau_max = base->tau[s];
      }
      for (const auto& [s, t] : fold.retau) {
        if (in_round[s] != 0 || is_removed[s] != 0) continue;
        if (t > round_tau_max) continue;
        // The bar alone is not enough: a τ that grew (or stayed put
        // within the value quantum) was not shortened, so it must not
        // perturb the dispatched round even when it sits below the bar.
        if (t >= base->tau[s] - kValueQuantum * std::max(1.0, base->tau[s]))
          continue;
        rpatch.touched.push_back(q + rpatch.sensors.size());
        rpatch.sensors.push_back(new_id[s]);
        rpatch.base_slot.push_back(kNpos);
      }
    }
    for (const std::size_t id : added_ids) {
      rpatch.touched.push_back(q + rpatch.sensors.size());
      rpatch.sensors.push_back(id);
      rpatch.base_slot.push_back(kNpos);
    }
    for (const auto& [l, up] : fold.charger) {
      (void)up;
      rpatch.touched.push_back(l);
    }

    const double replan_start_ms = elapsed_ms();
    sim::ReplanOutcome outcome =
        sim::replan_round(network, base->round, base->round_points,
                          base->round_candidates, rpatch,
                          base->sim.tour_options);
    if (stages != nullptr)
      stages->solve_ms = elapsed_ms() - replan_start_ms;
    MWC_OBS_COUNT("svc.delta.replans");

    auto plan = build_derived_plan(outcome.round, q, base->plan, key);

    // The derived plan is a full-fledged base for further deltas.
    auto state = std::make_shared<BaseState>();
    state->network = std::move(network);
    state->tau = std::move(tau);
    if (!all_active) state->charger_active = charger_active;
    state->policy = base->policy;
    state->horizon = base->horizon;
    state->slot_length = base->slot_length;
    state->improve = base->improve;
    state->sim = base->sim;
    state->round = std::move(outcome.round);
    state->round_points.reserve(q + state->round.sensors.size());
    state->round_points.insert(state->round_points.end(),
                               state->network.depots().begin(),
                               state->network.depots().end());
    for (const std::size_t id : state->round.sensors)
      state->round_points.push_back(state->network.sensor_points()[id]);
    state->round_candidates = std::move(outcome.candidates);
    state->plan = plan;
    cache->put(key, plan, std::move(state));

    Response response;
    response.id = request.id;
    response.trace_id = request.trace_id;
    response.version = WireVersion::kV2;
    response.ok = true;
    response.derived = true;
    response.base_fingerprint = request.base_fingerprint;
    response.plan = std::move(plan);
    response.latency_ms = elapsed_ms();
    response.policy = base->policy;
    return response;
  } catch (const std::exception& e) {
    return fail(ErrorCode::kInternal, e.what());
  }
}

}  // namespace mwc::svc
