// Structured request access log + the completed-request record shared
// with the admin tracez endpoint.
//
// `RequestRecord` is the server's per-request postmortem: identity
// (trace id, wire id, peer), shape (version, full vs delta, policy),
// outcome (ok / structured error, cache hit, derived), and the stage
// breakdown (parse / queue / cache / solve / serialize, milliseconds).
// `svc::Server` materializes one per completed request, appends it to a
// small in-memory ring (served by `{"admin":"tracez"}`) and, when an
// `AccessLog` is configured, writes it as one JSONL line:
//
//   {"ts_ms":1723111845123,"trace_id":"lg-0007","id":"r7","peer":"tcp",
//    "v":"mwc.svc.v1","kind":"full","policy":"MinTotalDistance",
//    "outcome":"ok","cached":true,"derived":false,"latency_ms":0.08,
//    "t":{"parse_ms":0.01,"queue_ms":0.02,"cache_ms":0.03,
//         "solve_ms":0,"serialize_ms":0.01}}
//
// A slow-threshold filter (`slow_ms`) keeps production logs affordable:
// only requests with latency_ms >= slow_ms are written (0 logs all).
//
// Logging is asynchronous: write() applies the filter and enqueues a
// copy of the record (sub-microsecond, off the request's critical
// path); a dedicated logger thread serializes and appends the JSONL
// lines into a large stdio buffer, flushing adaptively — whenever a
// second has passed since the last flush or 256 lines are pending — so
// `tail -f` stays near-live at human request rates while sustained
// bursts amortize both the serialization and the flush syscall away
// from the serving threads. flush() and the destructor (graceful
// shutdown) drain the queue and flush the file; only a hard kill can
// lose the tail of the current burst.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/json.hpp"
#include "svc/wire.hpp"

namespace mwc::svc {

/// Everything the server knows about one completed request.
struct RequestRecord {
  std::string trace_id;  ///< resolved id (client-supplied or generated)
  std::string id;        ///< wire request id ("" for unparseable lines)
  std::string peer;      ///< transport label ("stdio", "tcp", ...)
  std::string policy;    ///< effective policy ("" when unknown)
  WireVersion version = WireVersion::kV1;
  bool is_delta = false;
  bool ok = false;
  ErrorCode error = ErrorCode::kNone;  ///< meaningful iff !ok
  bool cached = false;
  bool derived = false;
  double latency_ms = 0.0;
  StageTimings stages;
  std::int64_t ts_ms = 0;  ///< wall-clock completion time, ms since epoch
};

/// JSON object form of `record` — shared by the access log and the
/// admin tracez endpoint.
Json to_json(const RequestRecord& record);

/// One access-log JSONL line for `record` (newline included).
std::string to_access_jsonl(const RequestRecord& record);

/// Thread-safe JSONL access-log writer with a slow-request filter.
/// Opens `path` for append on construction; `ok()` reports whether the
/// open succeeded (a failed log never throws — write() just drops).
class AccessLog {
 public:
  explicit AccessLog(const std::string& path, double slow_ms = 0.0);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }
  double slow_ms() const noexcept { return slow_ms_; }
  const std::string& path() const noexcept { return path_; }

  /// Lines written to the file so far (post-filter). Queued records
  /// not yet drained by the logger thread are not counted; flush()
  /// first if an exact count is needed.
  std::uint64_t lines_written() const noexcept;

  /// Enqueues `record` for the logger thread unless it beats the slow
  /// filter. Returns true when the record was accepted for logging.
  bool write(const RequestRecord& record);

  /// Blocks until every record enqueued so far is serialized, written,
  /// and flushed to disk (also runs on destruction).
  void flush();

 private:
  /// stdio buffer size; large enough that the flush cadence, not the
  /// buffer, decides when the logger thread pays a syscall.
  static constexpr std::size_t kBufferBytes = 1 << 16;
  static constexpr std::int64_t kFlushIntervalMs = 1000;
  static constexpr std::uint64_t kFlushEveryLines = 256;
  /// Logger poll period. write() never wakes the logger (that would put
  /// a futex syscall on the request path); records just wait, at most
  /// this long, for the next drain. flush() and shutdown wake it early.
  static constexpr std::chrono::milliseconds kDrainInterval{10};

  void logger_loop();
  /// Serializes and writes one drained record; caller holds no locks.
  void write_line(const RequestRecord& record);

  std::string path_;
  double slow_ms_ = 0.0;
  std::FILE* file_ = nullptr;
  std::unique_ptr<char[]> buffer_;
  std::atomic<std::uint64_t> lines_{0};
  std::int64_t last_flush_ms_ = 0;   ///< logger thread only
  std::uint64_t pending_lines_ = 0;  ///< logger thread only

  std::mutex mutex_;  ///< guards the queue + drain bookkeeping
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::vector<RequestRecord> queue_;
  bool draining_ = false;  ///< logger thread is off processing a batch
  bool stopping_ = false;
  std::thread logger_;
};

}  // namespace mwc::svc
