// mwc::svc wire format — versioned JSONL requests and responses.
//
// One request per line, one response per line, matched by `id`. A request
// names a scheduling problem instance (a network carried inline or as a
// generator preset, a cycle assignment, a policy registry name, horizon /
// slot parameters) plus service-level fields (deadline). The schema is
// versioned ("v": "mwc.svc.v1"); unknown versions are rejected with a
// structured error rather than guessed at. See docs/SERVICE.md.
//
// Request example (preset network, fixed cycles from a model):
//
//   {"v":"mwc.svc.v1","id":"r1","policy":"MinTotalDistance",
//    "network":{"preset":{"n":200,"q":5,"field":1000,"seed":7}},
//    "cycles":{"model":{"dist":"linear","tau_min":1,"tau_max":50,
//                       "sigma":2,"seed":11}},
//    "horizon":1000,"slot_length":0,"improve":false,"deadline_ms":500}
//
// Inline variants carry "network":{"sensors":[[x,y],...],
// "depots":[[x,y],...],"base":[x,y]} and "cycles":{"values":[...]}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc::svc {

inline constexpr const char* kWireVersion = "mwc.svc.v1";

/// Problem network: either generator-preset parameters (the server runs
/// wsn::deploy_random) or inline geometry.
struct NetworkSpec {
  bool inline_points = false;

  // Preset form.
  wsn::DeploymentConfig deployment;  ///< n, q, field side, depot-at-BS
  std::uint64_t seed = 1;            ///< topology stream seed

  // Inline form (field side still used for the bounding box).
  std::vector<geom::Point> sensors;
  std::vector<geom::Point> depots;
  geom::Point base_station;
};

/// Per-sensor maximum charging cycles: explicit values (held for every
/// slot) or a synthetic wsn::CycleModel drawn server-side.
struct CycleSpec {
  bool inline_values = false;
  std::vector<double> values;  ///< inline: τ_i, one per sensor
  wsn::CycleModelConfig model;
  std::uint64_t seed = 1;
};

struct Request {
  std::string id;
  std::string policy = "MinTotalDistance";
  NetworkSpec network;
  CycleSpec cycles;
  double horizon = 1000.0;
  double slot_length = 0.0;  ///< <= 0 freezes cycles (fixed-τ setting)
  bool improve = false;      ///< polish tours with 2-opt/Or-opt
  /// Soft deadline measured from admission; a request still queued when
  /// it expires is answered with `deadline_exceeded` instead of solved.
  /// 0 = no deadline.
  double deadline_ms = 0.0;
};

/// One charger's closed tour within the plan's first charging round.
struct PlanTour {
  std::size_t depot = 0;             ///< depot / charger index
  std::vector<std::size_t> sensors;  ///< sensor ids in visit order
  double length = 0.0;
};

/// The solved schedule summary returned to the client. Immutable once
/// built; the cache shares instances across responses.
struct Plan {
  /// Tours of the first executed charging round (Algorithm 2 over the
  /// first dispatch set); empty when the policy never dispatches.
  std::vector<PlanTour> first_round_tours;
  double first_round_length = 0.0;
  /// Total travelled distance over the horizon (the paper's service
  /// cost) and its breakdown.
  double total_distance = 0.0;
  std::size_t num_dispatches = 0;
  std::size_t num_sensor_charges = 0;
  std::size_t dead_sensors = 0;
  std::uint64_t fingerprint = 0;  ///< cache key of the solved instance
};

enum class ErrorCode {
  kNone = 0,
  kBadRequest,        ///< malformed JSON / missing fields / bad version
  kUnknownPolicy,     ///< policy not in exp::PolicyRegistry
  kQueueFull,         ///< admission control rejected (backpressure)
  kDeadlineExceeded,  ///< deadline_ms expired before solving started
  kShuttingDown,      ///< server draining; no new admissions
  kInternal,          ///< unexpected solver failure
};

/// Stable wire spelling of an error code ("queue_full", ...).
const char* error_code_name(ErrorCode code);

struct Response {
  std::string id;
  bool ok = false;
  ErrorCode error = ErrorCode::kNone;
  std::string message;
  bool cached = false;      ///< plan served from svc::PlanCache
  double latency_ms = 0.0;  ///< admission -> completion
  std::shared_ptr<const Plan> plan;  ///< set iff ok
};

/// Parses one request line. Throws WireError (an std::runtime_error)
/// on malformed JSON, a missing/mismatched version, or missing fields.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

Request parse_request(const std::string& line);

/// Serializes a request to its canonical one-line JSON (round-trips
/// through parse_request; used by the load generator and tests).
std::string to_json(const Request& request);

/// Serializes a response as one JSONL line (newline included).
std::string to_jsonl(const Response& response);

/// Convenience: a failed response carrying a structured error.
Response error_response(const std::string& id, ErrorCode code,
                        const std::string& message, double latency_ms = 0.0);

}  // namespace mwc::svc
