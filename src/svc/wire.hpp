// mwc::svc wire format — versioned JSONL requests and responses.
//
// One request per line, one response per line, matched by `id`. A request
// names a scheduling problem instance (a network carried inline or as a
// generator preset, a cycle assignment, a policy registry name, horizon /
// slot parameters) plus service-level fields (deadline). The schema is
// versioned: "v" is "mwc.svc.v1" or "mwc.svc.v2"; a request without the
// field is treated as v1, and unknown versions are rejected with the
// structured `unsupported_version` error. Responses echo the negotiated
// version. See docs/SERVICE.md.
//
// Full request example (preset network, fixed cycles from a model):
//
//   {"v":"mwc.svc.v1","id":"r1","policy":"MinTotalDistance",
//    "network":{"preset":{"n":200,"q":5,"field":1000,"seed":7}},
//    "cycles":{"model":{"dist":"linear","tau_min":1,"tau_max":50,
//                       "sigma":2,"seed":11}},
//    "horizon":1000,"slot_length":0,"improve":false,"deadline_ms":500}
//
// Inline variants carry "network":{"sensors":[[x,y],...],
// "depots":[[x,y],...],"base":[x,y]} and "cycles":{"values":[...]}.
//
// v2 adds the delta form — a patch against a previously solved base plan,
// selected by the presence of "base" (the base plan's fingerprint):
//
//   {"v":"mwc.svc.v2","id":"d1","base":"0c0f1095d4693a41",
//    "patch":[{"op":"move_sensor","sensor":3,"pos":[120.5,80.0]},
//             {"op":"add_sensor","pos":[40.0,60.0],"tau":5.0}],
//    "deadline_ms":250}
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc::svc {

inline constexpr const char* kWireVersion = "mwc.svc.v1";
inline constexpr const char* kWireVersionV2 = "mwc.svc.v2";
/// Streaming-session frames ({"op":"open"/"observe"/"close"} plus the
/// server-initiated {"op":"plan"} push) carry this version string and
/// are routed to svc::SessionManager instead of parse_any_request.
/// See docs/SERVICE.md and svc/session.hpp.
inline constexpr const char* kWireVersionStream = "mwc.svc.stream.v1";

/// Negotiated protocol version. Requests without "v" default to kV1 so
/// pre-versioning clients keep working byte-for-byte.
enum class WireVersion { kV1 = 1, kV2 = 2 };

/// Stable wire spelling of a version ("mwc.svc.v1" / "mwc.svc.v2").
const char* wire_version_name(WireVersion version);

/// Problem network: either generator-preset parameters (the server runs
/// wsn::deploy_random) or inline geometry.
struct NetworkSpec {
  bool inline_points = false;

  // Preset form.
  wsn::DeploymentConfig deployment;  ///< n, q, field side, depot-at-BS
  std::uint64_t seed = 1;            ///< topology stream seed

  // Inline form (field side still used for the bounding box).
  std::vector<geom::Point> sensors;
  std::vector<geom::Point> depots;
  geom::Point base_station;
};

/// Per-sensor maximum charging cycles: explicit values (held for every
/// slot) or a synthetic wsn::CycleModel drawn server-side.
struct CycleSpec {
  bool inline_values = false;
  std::vector<double> values;  ///< inline: τ_i, one per sensor
  wsn::CycleModelConfig model;
  std::uint64_t seed = 1;
};

/// Maximum accepted length of a client-supplied trace id (longer ids
/// are rejected with bad_request so access-log lines stay bounded).
inline constexpr std::size_t kMaxTraceIdLength = 128;

/// Per-request stage breakdown, filled in by the server as a request
/// moves through the pipeline. Milliseconds, wall clock. `serialize_ms`
/// is measured *around* the response callback, so it can only appear in
/// the access log and tracez ring — never in the wire echo.
struct StageTimings {
  double parse_ms = 0.0;      ///< JSONL line -> ParsedRequest
  double queue_ms = 0.0;      ///< admission -> worker dequeue
  double cache_ms = 0.0;      ///< instance resolve + plan-cache probe
  double solve_ms = 0.0;      ///< sim::solve_network / sim::replan_round
  double serialize_ms = 0.0;  ///< Response -> JSONL line + write
};

struct Request {
  std::string id;
  /// Optional client-supplied trace id, echoed in the response and used
  /// to correlate spans / access-log lines. Empty = server generates one
  /// (echoed on v2; omitted from v1 echoes to keep pre-tracing v1
  /// responses byte-identical).
  std::string trace_id;
  WireVersion version = WireVersion::kV1;
  std::string policy = "MinTotalDistance";
  NetworkSpec network;
  CycleSpec cycles;
  double horizon = 1000.0;
  double slot_length = 0.0;  ///< <= 0 freezes cycles (fixed-τ setting)
  bool improve = false;      ///< polish tours with 2-opt/Or-opt
  /// Soft deadline measured from admission; a request still queued when
  /// it expires is answered with `deadline_exceeded` instead of solved.
  /// 0 = no deadline.
  double deadline_ms = 0.0;
};

/// One mutation in a v2 delta patch list. Sensor/charger ids always
/// reference the *base* instance; sensors added earlier in the same
/// patch list cannot be referenced by later ops.
enum class PatchOpKind {
  kAddSensor,     ///< {"op":"add_sensor","pos":[x,y],"tau":v}
  kRemoveSensor,  ///< {"op":"remove_sensor","sensor":i}
  kMoveSensor,    ///< {"op":"move_sensor","sensor":i,"pos":[x,y]}
  kUpdateCycles,  ///< {"op":"update_cycles","sensor":i,"tau":v}
  kChargerDown,   ///< {"op":"charger_down","charger":l}
  kChargerUp,     ///< {"op":"charger_up","charger":l}
};

/// Stable wire spelling of a patch op ("add_sensor", ...).
const char* patch_op_name(PatchOpKind kind);

struct PatchOp {
  PatchOpKind kind = PatchOpKind::kAddSensor;
  std::size_t target = 0;  ///< base sensor id or charger id (op-dependent)
  geom::Point pos{};       ///< add_sensor / move_sensor
  double tau = 0.0;        ///< add_sensor / update_cycles
};

/// v2 delta request: repair the cached plan identified by
/// `base_fingerprint` under a list of patch ops instead of re-solving.
struct DeltaRequest {
  std::string id;
  std::string trace_id;  ///< same semantics as Request::trace_id
  std::uint64_t base_fingerprint = 0;
  std::vector<PatchOp> patch;
  double deadline_ms = 0.0;  ///< same semantics as Request::deadline_ms
};

/// One parsed request line: exactly one of the two forms is active.
/// v1 lines always parse as full requests; v2 lines parse as deltas
/// when the "base" key is present.
struct ParsedRequest {
  bool is_delta = false;
  Request full;        ///< valid iff !is_delta
  DeltaRequest delta;  ///< valid iff is_delta
};

/// One charger's closed tour within the plan's first charging round.
struct PlanTour {
  std::size_t depot = 0;             ///< depot / charger index
  std::vector<std::size_t> sensors;  ///< sensor ids in visit order
  double length = 0.0;
};

/// The solved schedule summary returned to the client. Immutable once
/// built; the cache shares instances across responses.
struct Plan {
  /// Tours of the first executed charging round (Algorithm 2 over the
  /// first dispatch set); empty when the policy never dispatches.
  std::vector<PlanTour> first_round_tours;
  double first_round_length = 0.0;
  /// Total travelled distance over the horizon (the paper's service
  /// cost) and its breakdown. Derived (delta) plans inherit these
  /// horizon aggregates from their base plan; only the first round is
  /// re-planned.
  double total_distance = 0.0;
  std::size_t num_dispatches = 0;
  std::size_t num_sensor_charges = 0;
  std::size_t dead_sensors = 0;
  std::uint64_t fingerprint = 0;  ///< cache key of the solved instance
};

enum class ErrorCode {
  kNone = 0,
  kBadRequest,          ///< malformed JSON / missing fields
  kUnknownPolicy,       ///< policy not in exp::PolicyRegistry
  kQueueFull,           ///< admission control rejected (backpressure)
  kDeadlineExceeded,    ///< deadline_ms expired before solving started
  kShuttingDown,        ///< server draining; no new admissions
  kInternal,            ///< unexpected solver failure
  kUnsupportedVersion,  ///< "v" names a version this server doesn't speak
  kUnknownBase,         ///< delta base fingerprint not in the plan cache
  // Streaming-session codes (mwc.svc.stream.v1 frames only; never
  // emitted on v1/v2 responses, so the v1 golden bytes are unaffected).
  kSessionsDisabled,  ///< stream frame on a server without --sessions
  kUnknownSession,    ///< "session" does not name a live session
  kSessionLimit,      ///< open rejected: session table is full
};

/// Stable wire spelling of an error code ("queue_full", ...).
const char* error_code_name(ErrorCode code);

struct Response {
  std::string id;
  /// Trace id echo: serialized as "trace_id" when non-empty. The server
  /// sets it to the client-supplied id (any version) or, for v2
  /// requests, the server-generated one; v1 requests without a client
  /// id leave it empty so pre-tracing v1 responses stay byte-identical.
  std::string trace_id;
  WireVersion version = WireVersion::kV1;  ///< echoed negotiated version
  bool ok = false;
  ErrorCode error = ErrorCode::kNone;
  std::string message;
  bool cached = false;      ///< plan served from svc::PlanCache
  double latency_ms = 0.0;  ///< admission -> completion
  /// Stage breakdown echo: serialized as "t" (parse/queue/cache/solve)
  /// when `has_timings` — the server sets it whenever a trace id is
  /// echoed.
  StageTimings stages;
  bool has_timings = false;
  std::shared_ptr<const Plan> plan;  ///< set iff ok
  /// Delta responses: the base fingerprint the plan was derived from
  /// (serialized as "base" alongside "derived":true). 0 = not derived.
  std::uint64_t base_fingerprint = 0;
  bool derived = false;
  /// Effective policy label (request policy, or the base plan's policy
  /// for deltas). Not serialized; feeds the access log and tracez.
  std::string policy;
};

/// Parsing throws WireError (an std::runtime_error) on malformed JSON
/// or missing fields.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when "v" names a version this server does not speak, so
/// callers can answer with `unsupported_version` rather than the
/// generic `bad_request`.
class UnsupportedVersionError : public WireError {
 public:
  explicit UnsupportedVersionError(const std::string& what)
      : WireError(what) {}
};

/// Parses one request line of either form (full or v2 delta).
ParsedRequest parse_any_request(const std::string& line);

/// Parses one full-request line (v1 or v2). Kept for callers that do
/// not speak the delta form; a delta line fails with WireError.
Request parse_request(const std::string& line);

/// Serializes a request to its canonical one-line JSON (round-trips
/// through parse_request; used by the load generator and tests).
std::string to_json(const Request& request);
std::string to_json(const DeltaRequest& request);

/// Serializes a response as one JSONL line (newline included).
std::string to_jsonl(const Response& response);

/// Convenience: a failed response carrying a structured error.
Response error_response(const std::string& id, ErrorCode code,
                        const std::string& message, double latency_ms = 0.0);

/// Canonical 16-hex-digit wire spelling of a plan fingerprint.
std::string fingerprint_hex(std::uint64_t fingerprint);

/// Parses a 1-16 hex digit fingerprint string (throws WireError).
std::uint64_t parse_fingerprint_hex(const std::string& hex);

/// Appends the plan object (the exact bytes to_jsonl emits for "plan")
/// to `out`. Shared with the stream-session plan push so pushed plans
/// are byte-identical to the same plan served over v1/v2.
void append_plan_json(std::string& out, const Plan& plan);

/// True when a request line is an mwc.svc.stream.v1 session frame:
/// a cheap scan for the `"v":"mwc.svc.stream.v1"` key/value pair
/// (whitespace around the colon tolerated), used by transports to
/// route session traffic before parse_any_request (which rejects the
/// stream version string). A v1/v2 request whose id merely contains
/// the version string does not match.
bool is_stream_frame(const std::string& line);

/// Best-effort "id" extraction from a stream frame (empty string when
/// the frame is malformed or carries no string id) — lets a transport
/// echo the id on sessions_disabled errors without a session layer.
std::string stream_frame_id(const std::string& line);

/// One structured stream-session error frame (newline included):
///   {"v":"mwc.svc.stream.v1","id":...,"ok":false,"error":...,
///    "message":...}
/// `id` is echoed when non-empty (it may be unrecoverable from a
/// malformed frame).
std::string stream_error_line(const std::string& id, ErrorCode code,
                              const std::string& message);

/// Fluent builder for full requests — the one in-tree producer of the
/// wire schema (tools, benches, and tests assemble requests through it
/// instead of hand-rolling JSON).
///
///   const Request r = RequestBuilder("r1")
///                         .preset(200, 5, 1000.0, /*seed=*/7)
///                         .cycle_values(taus)
///                         .horizon(500)
///                         .improve(true)
///                         .build();
class RequestBuilder {
 public:
  explicit RequestBuilder(std::string id) { request_.id = std::move(id); }

  RequestBuilder& version(WireVersion v) {
    request_.version = v;
    return *this;
  }
  RequestBuilder& trace_id(std::string id) {
    request_.trace_id = std::move(id);
    return *this;
  }
  RequestBuilder& policy(std::string name) {
    request_.policy = std::move(name);
    return *this;
  }
  /// Generator-preset network: n sensors, q depots on a square field.
  RequestBuilder& preset(std::size_t n, std::size_t q,
                         double field_side = 1000.0, std::uint64_t seed = 1) {
    request_.network.inline_points = false;
    request_.network.deployment.n = n;
    request_.network.deployment.q = q;
    request_.network.deployment.field_side = field_side;
    request_.network.seed = seed;
    return *this;
  }
  /// Inline network geometry (field side still bounds the box).
  RequestBuilder& inline_network(std::vector<geom::Point> sensors,
                                 std::vector<geom::Point> depots,
                                 geom::Point base_station) {
    request_.network.inline_points = true;
    request_.network.sensors = std::move(sensors);
    request_.network.depots = std::move(depots);
    request_.network.base_station = base_station;
    return *this;
  }
  RequestBuilder& cycle_values(std::vector<double> values) {
    request_.cycles.inline_values = true;
    request_.cycles.values = std::move(values);
    return *this;
  }
  RequestBuilder& cycle_model(const wsn::CycleModelConfig& model,
                              std::uint64_t seed) {
    request_.cycles.inline_values = false;
    request_.cycles.model = model;
    request_.cycles.seed = seed;
    return *this;
  }
  RequestBuilder& horizon(double v) {
    request_.horizon = v;
    return *this;
  }
  RequestBuilder& slot_length(double v) {
    request_.slot_length = v;
    return *this;
  }
  RequestBuilder& improve(bool v) {
    request_.improve = v;
    return *this;
  }
  RequestBuilder& deadline_ms(double v) {
    request_.deadline_ms = v;
    return *this;
  }

  const Request& build() const { return request_; }
  /// The canonical one-line JSON of the built request.
  std::string to_json_line() const { return to_json(request_); }

 private:
  Request request_;
};

/// Fluent builder for v2 delta requests.
///
///   const DeltaRequest d = DeltaBuilder("d1", base_fp)
///                              .move_sensor(3, {120.5, 80.0})
///                              .add_sensor({40.0, 60.0}, 5.0)
///                              .build();
class DeltaBuilder {
 public:
  DeltaBuilder(std::string id, std::uint64_t base_fingerprint) {
    request_.id = std::move(id);
    request_.base_fingerprint = base_fingerprint;
  }

  DeltaBuilder& add_sensor(geom::Point pos, double tau) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kAddSensor, 0, pos, tau});
    return *this;
  }
  DeltaBuilder& remove_sensor(std::size_t sensor) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kRemoveSensor, sensor, {}, 0.0});
    return *this;
  }
  DeltaBuilder& move_sensor(std::size_t sensor, geom::Point pos) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kMoveSensor, sensor, pos, 0.0});
    return *this;
  }
  DeltaBuilder& update_cycles(std::size_t sensor, double tau) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kUpdateCycles, sensor, {}, tau});
    return *this;
  }
  DeltaBuilder& charger_down(std::size_t charger) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kChargerDown, charger, {}, 0.0});
    return *this;
  }
  DeltaBuilder& charger_up(std::size_t charger) {
    request_.patch.push_back(
        PatchOp{PatchOpKind::kChargerUp, charger, {}, 0.0});
    return *this;
  }
  DeltaBuilder& trace_id(std::string id) {
    request_.trace_id = std::move(id);
    return *this;
  }
  DeltaBuilder& deadline_ms(double v) {
    request_.deadline_ms = v;
    return *this;
  }

  const DeltaRequest& build() const { return request_; }
  /// The canonical one-line JSON of the built delta request.
  std::string to_json_line() const { return to_json(request_); }

 private:
  DeltaRequest request_;
};

}  // namespace mwc::svc
