#include "svc/wire.hpp"

#include <cstdio>
#include <utility>

#include "svc/json.hpp"

namespace mwc::svc {

namespace {

double require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw WireError(std::string(what) + " must be > 0");
  return v;
}

geom::Point parse_point(const Json& j, const char* what) {
  if (!j.is_array() || j.size() != 2)
    throw WireError(std::string(what) + " must be [x, y]");
  return geom::Point{j.items()[0].as_double(), j.items()[1].as_double()};
}

NetworkSpec parse_network(const Json& j) {
  NetworkSpec spec;
  if (const Json* preset = j.find("preset")) {
    spec.inline_points = false;
    spec.deployment.n = static_cast<std::size_t>(preset->at("n").as_int());
    spec.deployment.q = static_cast<std::size_t>(preset->at("q").as_int());
    if (const Json* field = preset->find("field"))
      spec.deployment.field_side =
          require_positive(field->as_double(), "network.preset.field");
    if (const Json* at_bs = preset->find("depot_at_base"))
      spec.deployment.depot_at_base_station = at_bs->as_bool();
    if (const Json* seed = preset->find("seed"))
      spec.seed = static_cast<std::uint64_t>(seed->as_int());
    if (spec.deployment.n == 0) throw WireError("network.preset.n must be > 0");
    if (spec.deployment.q == 0) throw WireError("network.preset.q must be > 0");
    return spec;
  }
  if (j.find("sensors") == nullptr)
    throw WireError("network needs \"preset\" or \"sensors\"");
  spec.inline_points = true;
  for (const Json& p : j.at("sensors").items())
    spec.sensors.push_back(parse_point(p, "network.sensors[i]"));
  for (const Json& p : j.at("depots").items())
    spec.depots.push_back(parse_point(p, "network.depots[i]"));
  spec.base_station = parse_point(j.at("base"), "network.base");
  if (const Json* field = j.find("field"))
    spec.deployment.field_side =
        require_positive(field->as_double(), "network.field");
  if (spec.sensors.empty()) throw WireError("network.sensors is empty");
  if (spec.depots.empty()) throw WireError("network.depots is empty");
  return spec;
}

CycleSpec parse_cycles(const Json& j) {
  CycleSpec spec;
  if (const Json* values = j.find("values")) {
    spec.inline_values = true;
    for (const Json& v : values->items()) {
      const double tau = v.as_double();
      if (!(tau > 0.0)) throw WireError("cycles.values must be > 0");
      spec.values.push_back(tau);
    }
    if (spec.values.empty()) throw WireError("cycles.values is empty");
    return spec;
  }
  const Json* model = j.find("model");
  if (model == nullptr) throw WireError("cycles needs \"values\" or \"model\"");
  if (const Json* dist = model->find("dist")) {
    const std::string& name = dist->as_string();
    if (name == "linear") {
      spec.model.distribution = wsn::CycleDistribution::kLinear;
    } else if (name == "random") {
      spec.model.distribution = wsn::CycleDistribution::kRandom;
    } else {
      throw WireError("cycles.model.dist must be \"linear\" or \"random\"");
    }
  }
  if (const Json* v = model->find("tau_min"))
    spec.model.tau_min = require_positive(v->as_double(), "tau_min");
  if (const Json* v = model->find("tau_max"))
    spec.model.tau_max = require_positive(v->as_double(), "tau_max");
  if (spec.model.tau_max < spec.model.tau_min)
    throw WireError("cycles.model.tau_max must be >= tau_min");
  if (const Json* v = model->find("sigma")) {
    spec.model.sigma = v->as_double();
    if (spec.model.sigma < 0.0) throw WireError("sigma must be >= 0");
  }
  if (const Json* v = model->find("seed"))
    spec.seed = static_cast<std::uint64_t>(v->as_int());
  return spec;
}

Json network_json(const NetworkSpec& spec) {
  Json j = Json::object();
  if (!spec.inline_points) {
    Json preset = Json::object();
    preset.set("n", Json(spec.deployment.n));
    preset.set("q", Json(spec.deployment.q));
    preset.set("field", Json(spec.deployment.field_side));
    preset.set("depot_at_base", Json(spec.deployment.depot_at_base_station));
    preset.set("seed", Json(static_cast<std::int64_t>(spec.seed)));
    j.set("preset", std::move(preset));
    return j;
  }
  const auto points_json = [](const std::vector<geom::Point>& points) {
    Json arr = Json::array();
    for (const auto& p : points) {
      Json pair = Json::array();
      pair.push_back(Json(p.x));
      pair.push_back(Json(p.y));
      arr.push_back(std::move(pair));
    }
    return arr;
  };
  j.set("sensors", points_json(spec.sensors));
  j.set("depots", points_json(spec.depots));
  Json base = Json::array();
  base.push_back(Json(spec.base_station.x));
  base.push_back(Json(spec.base_station.y));
  j.set("base", std::move(base));
  j.set("field", Json(spec.deployment.field_side));
  return j;
}

Json cycles_json(const CycleSpec& spec) {
  Json j = Json::object();
  if (spec.inline_values) {
    Json values = Json::array();
    for (double tau : spec.values) values.push_back(Json(tau));
    j.set("values", std::move(values));
    return j;
  }
  Json model = Json::object();
  model.set("dist",
            Json(spec.model.distribution == wsn::CycleDistribution::kLinear
                     ? "linear"
                     : "random"));
  model.set("tau_min", Json(spec.model.tau_min));
  model.set("tau_max", Json(spec.model.tau_max));
  model.set("sigma", Json(spec.model.sigma));
  model.set("seed", Json(static_cast<std::int64_t>(spec.seed)));
  j.set("model", std::move(model));
  return j;
}

/// Negotiates the request's wire version: missing "v" means v1 (the
/// pre-versioning schema), known names map to their version, anything
/// else is an UnsupportedVersionError so callers can answer with the
/// structured `unsupported_version` code.
WireVersion negotiate_version(const Json& doc) {
  const Json* version = doc.find("v");
  if (version == nullptr) return WireVersion::kV1;
  const std::string& name = version->as_string();
  if (name == kWireVersion) return WireVersion::kV1;
  if (name == kWireVersionV2) return WireVersion::kV2;
  throw UnsupportedVersionError("unsupported wire version \"" + name +
                                "\" (supported: " +
                                std::string(kWireVersion) + ", " +
                                std::string(kWireVersionV2) + ")");
}

std::uint64_t parse_fingerprint(const Json& j, const char* what) {
  const std::string& hex = j.as_string();
  try {
    return parse_fingerprint_hex(hex);
  } catch (const WireError&) {
    throw WireError(std::string(what) + " must be 1-16 hex digits");
  }
}

PatchOp parse_patch_op(const Json& j) {
  if (!j.is_object()) throw WireError("patch[i] must be an object");
  const std::string& name = j.at("op").as_string();
  PatchOp op;
  if (name == "add_sensor") {
    op.kind = PatchOpKind::kAddSensor;
    op.pos = parse_point(j.at("pos"), "patch.pos");
    op.tau = require_positive(j.at("tau").as_double(), "patch.tau");
  } else if (name == "remove_sensor") {
    op.kind = PatchOpKind::kRemoveSensor;
    op.target = static_cast<std::size_t>(j.at("sensor").as_int());
  } else if (name == "move_sensor") {
    op.kind = PatchOpKind::kMoveSensor;
    op.target = static_cast<std::size_t>(j.at("sensor").as_int());
    op.pos = parse_point(j.at("pos"), "patch.pos");
  } else if (name == "update_cycles") {
    op.kind = PatchOpKind::kUpdateCycles;
    op.target = static_cast<std::size_t>(j.at("sensor").as_int());
    op.tau = require_positive(j.at("tau").as_double(), "patch.tau");
  } else if (name == "charger_down") {
    op.kind = PatchOpKind::kChargerDown;
    op.target = static_cast<std::size_t>(j.at("charger").as_int());
  } else if (name == "charger_up") {
    op.kind = PatchOpKind::kChargerUp;
    op.target = static_cast<std::size_t>(j.at("charger").as_int());
  } else {
    throw WireError("unknown patch op \"" + name + "\"");
  }
  return op;
}

/// Optional "trace_id": any non-empty string up to kMaxTraceIdLength.
/// An explicitly empty string parses as absent (server generates).
std::string parse_trace_id(const Json& doc) {
  const Json* j = doc.find("trace_id");
  if (j == nullptr) return {};
  const std::string& id = j->as_string();
  if (id.size() > kMaxTraceIdLength)
    throw WireError("trace_id longer than 128 bytes");
  return id;
}

DeltaRequest parse_delta(const Json& doc) {
  DeltaRequest request;
  request.id = doc.at("id").as_string();
  if (request.id.empty()) throw WireError("id must be non-empty");
  request.trace_id = parse_trace_id(doc);
  request.base_fingerprint = parse_fingerprint(doc.at("base"), "base");
  const Json& patch = doc.at("patch");
  if (!patch.is_array()) throw WireError("patch must be an array");
  if (patch.size() == 0) throw WireError("patch is empty");
  for (const Json& op : patch.items())
    request.patch.push_back(parse_patch_op(op));
  if (const Json* deadline = doc.find("deadline_ms")) {
    request.deadline_ms = deadline->as_double();
    if (request.deadline_ms < 0.0)
      throw WireError("deadline_ms must be >= 0");
  }
  return request;
}

Request parse_full(const Json& doc, WireVersion version) {
  Request request;
  request.version = version;
  request.id = doc.at("id").as_string();
  if (request.id.empty()) throw WireError("id must be non-empty");
  request.trace_id = parse_trace_id(doc);
  if (const Json* policy = doc.find("policy"))
    request.policy = policy->as_string();
  request.network = parse_network(doc.at("network"));
  request.cycles = parse_cycles(doc.at("cycles"));
  if (const Json* horizon = doc.find("horizon"))
    request.horizon = require_positive(horizon->as_double(), "horizon");
  if (const Json* slot = doc.find("slot_length"))
    request.slot_length = slot->as_double();
  if (const Json* improve = doc.find("improve"))
    request.improve = improve->as_bool();
  if (const Json* deadline = doc.find("deadline_ms")) {
    request.deadline_ms = deadline->as_double();
    if (request.deadline_ms < 0.0)
      throw WireError("deadline_ms must be >= 0");
  }
  if (request.cycles.inline_values && !request.network.inline_points) {
    // Inline values must match a known sensor count; presets know it.
    if (request.cycles.values.size() != request.network.deployment.n)
      throw WireError("cycles.values size != network.preset.n");
  }
  if (request.cycles.inline_values && request.network.inline_points &&
      request.cycles.values.size() != request.network.sensors.size()) {
    throw WireError("cycles.values size != network.sensors size");
  }
  return request;
}

}  // namespace

const char* wire_version_name(WireVersion version) {
  return version == WireVersion::kV2 ? kWireVersionV2 : kWireVersion;
}

const char* patch_op_name(PatchOpKind kind) {
  switch (kind) {
    case PatchOpKind::kAddSensor: return "add_sensor";
    case PatchOpKind::kRemoveSensor: return "remove_sensor";
    case PatchOpKind::kMoveSensor: return "move_sensor";
    case PatchOpKind::kUpdateCycles: return "update_cycles";
    case PatchOpKind::kChargerDown: return "charger_down";
    case PatchOpKind::kChargerUp: return "charger_up";
  }
  return "add_sensor";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownPolicy: return "unknown_policy";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kUnknownBase: return "unknown_base";
    case ErrorCode::kSessionsDisabled: return "sessions_disabled";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kSessionLimit: return "session_limit";
  }
  return "internal";
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

std::uint64_t parse_fingerprint_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16)
    throw WireError("fingerprint must be 1-16 hex digits");
  std::uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= std::uint64_t(c - '0');
    else if (c >= 'a' && c <= 'f') value |= std::uint64_t(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= std::uint64_t(c - 'A' + 10);
    else throw WireError("fingerprint must be hex");
  }
  return value;
}

bool is_stream_frame(const std::string& line) {
  // Probe for the "v":"mwc.svc.stream.v1" key/value pair rather than a
  // raw substring: a v1/v2 request whose id merely *contains* the
  // stream version string must still reach the solver. JSON escapes
  // every quote inside a string value, so this exact byte sequence can
  // only occur as a genuine "v" member.
  static const std::string value =
      '"' + std::string(kWireVersionStream) + '"';
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t pos = 0;
  while ((pos = line.find("\"v\"", pos)) != std::string::npos) {
    std::size_t i = pos + 3;
    while (i < line.size() && is_space(line[i])) ++i;
    if (i < line.size() && line[i] == ':') {
      ++i;
      while (i < line.size() && is_space(line[i])) ++i;
      if (line.compare(i, value.size(), value) == 0) return true;
    }
    pos += 3;
  }
  return false;
}

std::string stream_frame_id(const std::string& line) {
  try {
    const Json doc = Json::parse(line);
    if (!doc.is_object()) return {};
    const Json* id = doc.find("id");
    if (id != nullptr && id->is_string() &&
        id->as_string().size() <= kMaxTraceIdLength)
      return id->as_string();
  } catch (const JsonError&) {
  }
  return {};
}

std::string stream_error_line(const std::string& id, ErrorCode code,
                              const std::string& message) {
  std::string out;
  out += "{\"v\":\"";
  out += kWireVersionStream;
  out += '"';
  if (!id.empty()) {
    out += ",\"id\":";
    append_json_escaped(out, id);
  }
  out += ",\"ok\":false,\"error\":\"";
  out += error_code_name(code);
  out += "\",\"message\":";
  append_json_escaped(out, message);
  out += "}\n";
  return out;
}

ParsedRequest parse_any_request(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonError& e) {
    throw WireError(e.what());
  }
  try {
    if (!doc.is_object()) throw WireError("request must be a JSON object");
    const WireVersion version = negotiate_version(doc);
    ParsedRequest parsed;
    if (version == WireVersion::kV2 && doc.find("base") != nullptr) {
      parsed.is_delta = true;
      parsed.delta = parse_delta(doc);
      return parsed;
    }
    parsed.full = parse_full(doc, version);
    return parsed;
  } catch (const JsonError& e) {
    throw WireError(e.what());
  }
}

Request parse_request(const std::string& line) {
  ParsedRequest parsed = parse_any_request(line);
  if (parsed.is_delta)
    throw WireError("delta request where a full request was expected");
  return std::move(parsed.full);
}

std::string to_json(const Request& request) {
  Json doc = Json::object();
  doc.set("v", Json(wire_version_name(request.version)));
  doc.set("id", Json(request.id));
  if (!request.trace_id.empty()) doc.set("trace_id", Json(request.trace_id));
  doc.set("policy", Json(request.policy));
  doc.set("network", network_json(request.network));
  doc.set("cycles", cycles_json(request.cycles));
  doc.set("horizon", Json(request.horizon));
  doc.set("slot_length", Json(request.slot_length));
  doc.set("improve", Json(request.improve));
  doc.set("deadline_ms", Json(request.deadline_ms));
  return doc.dump();
}

std::string to_json(const DeltaRequest& request) {
  Json doc = Json::object();
  doc.set("v", Json(kWireVersionV2));
  doc.set("id", Json(request.id));
  if (!request.trace_id.empty()) doc.set("trace_id", Json(request.trace_id));
  doc.set("base", Json(fingerprint_hex(request.base_fingerprint)));
  Json patch = Json::array();
  for (const PatchOp& op : request.patch) {
    Json oj = Json::object();
    oj.set("op", Json(patch_op_name(op.kind)));
    switch (op.kind) {
      case PatchOpKind::kAddSensor: {
        Json pos = Json::array();
        pos.push_back(Json(op.pos.x));
        pos.push_back(Json(op.pos.y));
        oj.set("pos", std::move(pos));
        oj.set("tau", Json(op.tau));
        break;
      }
      case PatchOpKind::kMoveSensor: {
        oj.set("sensor", Json(op.target));
        Json pos = Json::array();
        pos.push_back(Json(op.pos.x));
        pos.push_back(Json(op.pos.y));
        oj.set("pos", std::move(pos));
        break;
      }
      case PatchOpKind::kUpdateCycles:
        oj.set("sensor", Json(op.target));
        oj.set("tau", Json(op.tau));
        break;
      case PatchOpKind::kRemoveSensor:
        oj.set("sensor", Json(op.target));
        break;
      case PatchOpKind::kChargerDown:
      case PatchOpKind::kChargerUp:
        oj.set("charger", Json(op.target));
        break;
    }
    patch.push_back(std::move(oj));
  }
  doc.set("patch", std::move(patch));
  doc.set("deadline_ms", Json(request.deadline_ms));
  return doc.dump();
}

std::string to_jsonl(const Response& response) {
  // Responses are serialized once per request (serialize_ms on the
  // stage breakdown), so this appends straight into the output string
  // instead of building a Json tree — byte-identical to the tree form
  // (golden_v1_test pins the exact bytes; keys are escape-free literals
  // and values go through the shared append_json_* helpers).
  std::string out;
  out.reserve(256 + (response.plan != nullptr
                         ? 24 * response.plan->num_sensor_charges + 512
                         : 0));
  out += "{\"v\":\"";
  out += wire_version_name(response.version);
  out += "\",\"id\":";
  append_json_escaped(out, response.id);
  // Both trace fields are conditional so trace-less v1 responses stay
  // byte-identical to the pre-tracing wire format (golden_v1_test).
  if (!response.trace_id.empty()) {
    out += ",\"trace_id\":";
    append_json_escaped(out, response.trace_id);
  }
  out += response.ok ? ",\"ok\":true" : ",\"ok\":false";
  if (!response.ok) {
    out += ",\"error\":\"";
    out += error_code_name(response.error);
    out += "\",\"message\":";
    append_json_escaped(out, response.message);
  }
  out += response.cached ? ",\"cached\":true" : ",\"cached\":false";
  out += ",\"latency_ms\":";
  append_json_number(out, response.latency_ms);
  if (response.has_timings) {
    out += ",\"t\":{\"parse_ms\":";
    append_json_number(out, response.stages.parse_ms);
    out += ",\"queue_ms\":";
    append_json_number(out, response.stages.queue_ms);
    out += ",\"cache_ms\":";
    append_json_number(out, response.stages.cache_ms);
    out += ",\"solve_ms\":";
    append_json_number(out, response.stages.solve_ms);
    out += '}';
  }
  if (response.derived) {
    out += ",\"derived\":true,\"base\":\"";
    out += fingerprint_hex(response.base_fingerprint);
    out += '"';
  }
  if (response.ok && response.plan != nullptr) {
    out += ",\"plan\":";
    append_plan_json(out, *response.plan);
  }
  out += "}\n";
  return out;
}

void append_plan_json(std::string& out, const Plan& plan) {
  out += "{\"first_round_tours\":[";
  bool first_tour = true;
  for (const auto& tour : plan.first_round_tours) {
    if (!first_tour) out += ',';
    first_tour = false;
    out += "{\"depot\":";
    append_json_number(out, static_cast<double>(tour.depot));
    out += ",\"sensors\":[";
    bool first_id = true;
    for (std::size_t id : tour.sensors) {
      if (!first_id) out += ',';
      first_id = false;
      append_json_number(out, static_cast<double>(id));
    }
    out += "],\"length\":";
    append_json_number(out, tour.length);
    out += '}';
  }
  out += "],\"first_round_length\":";
  append_json_number(out, plan.first_round_length);
  out += ",\"total_distance\":";
  append_json_number(out, plan.total_distance);
  out += ",\"num_dispatches\":";
  append_json_number(out, static_cast<double>(plan.num_dispatches));
  out += ",\"num_sensor_charges\":";
  append_json_number(out, static_cast<double>(plan.num_sensor_charges));
  out += ",\"dead_sensors\":";
  append_json_number(out, static_cast<double>(plan.dead_sensors));
  out += ",\"fingerprint\":\"";
  out += fingerprint_hex(plan.fingerprint);
  out += "\"}";
}

Response error_response(const std::string& id, ErrorCode code,
                        const std::string& message, double latency_ms) {
  Response response;
  response.id = id;
  response.ok = false;
  response.error = code;
  response.message = message;
  response.latency_ms = latency_ms;
  return response;
}

}  // namespace mwc::svc
