#include "svc/access_log.hpp"

#include <chrono>
#include <cstdint>
#include <utility>

#include "obs/obs.hpp"
#include "svc/json.hpp"

namespace mwc::svc {

Json to_json(const RequestRecord& record) {
  Json doc = Json::object();
  doc.set("ts_ms", Json(static_cast<std::int64_t>(record.ts_ms)));
  doc.set("trace_id", Json(record.trace_id));
  doc.set("id", Json(record.id));
  doc.set("peer", Json(record.peer));
  doc.set("v", Json(wire_version_name(record.version)));
  doc.set("kind", Json(record.is_delta ? "delta" : "full"));
  doc.set("policy", Json(record.policy));
  doc.set("outcome", Json(record.ok ? "ok" : error_code_name(record.error)));
  doc.set("cached", Json(record.cached));
  doc.set("derived", Json(record.derived));
  doc.set("latency_ms", Json(record.latency_ms));
  Json t = Json::object();
  t.set("parse_ms", Json(record.stages.parse_ms));
  t.set("queue_ms", Json(record.stages.queue_ms));
  t.set("cache_ms", Json(record.stages.cache_ms));
  t.set("solve_ms", Json(record.stages.solve_ms));
  t.set("serialize_ms", Json(record.stages.serialize_ms));
  doc.set("t", std::move(t));
  return doc;
}

std::string to_access_jsonl(const RequestRecord& record) {
  // One line per request on the hot path, so this appends directly
  // instead of building a Json tree. Byte-identical to
  // to_json(record).dump() — access_log_test pins the equivalence.
  std::string out;
  out.reserve(320);
  out += "{\"ts_ms\":";
  append_json_number(out, static_cast<double>(record.ts_ms));
  out += ",\"trace_id\":";
  append_json_escaped(out, record.trace_id);
  out += ",\"id\":";
  append_json_escaped(out, record.id);
  out += ",\"peer\":";
  append_json_escaped(out, record.peer);
  out += ",\"v\":\"";
  out += wire_version_name(record.version);
  out += "\",\"kind\":\"";
  out += record.is_delta ? "delta" : "full";
  out += "\",\"policy\":";
  append_json_escaped(out, record.policy);
  out += ",\"outcome\":\"";
  out += record.ok ? "ok" : error_code_name(record.error);
  out += record.cached ? "\",\"cached\":true" : "\",\"cached\":false";
  out += record.derived ? ",\"derived\":true" : ",\"derived\":false";
  out += ",\"latency_ms\":";
  append_json_number(out, record.latency_ms);
  out += ",\"t\":{\"parse_ms\":";
  append_json_number(out, record.stages.parse_ms);
  out += ",\"queue_ms\":";
  append_json_number(out, record.stages.queue_ms);
  out += ",\"cache_ms\":";
  append_json_number(out, record.stages.cache_ms);
  out += ",\"solve_ms\":";
  append_json_number(out, record.stages.solve_ms);
  out += ",\"serialize_ms\":";
  append_json_number(out, record.stages.serialize_ms);
  out += "}}\n";
  return out;
}

AccessLog::AccessLog(const std::string& path, double slow_ms)
    : path_(path), slow_ms_(slow_ms) {
  file_ = std::fopen(path.c_str(), "a");
  if (file_ != nullptr) {
    buffer_ = std::make_unique<char[]>(kBufferBytes);
    std::setvbuf(file_, buffer_.get(), _IOFBF, kBufferBytes);
    logger_ = std::thread(&AccessLog::logger_loop, this);
  }
}

AccessLog::~AccessLog() {
  if (logger_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_one();
    logger_.join();  // drains the queue before exiting
  }
  if (file_ != nullptr) std::fclose(file_);  // flushes the tail
}

std::uint64_t AccessLog::lines_written() const noexcept {
  return lines_.load(std::memory_order_relaxed);
}

bool AccessLog::write(const RequestRecord& record) {
  if (file_ == nullptr) return false;
  if (slow_ms_ > 0.0 && record.latency_ms < slow_ms_) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(record);
  }
  // No wakeup here: the logger polls on a short timeout, so the hot
  // path pays a lock and a copy but never a futex syscall.
  MWC_OBS_COUNT("svc.access_log.lines");
  return true;
}

void AccessLog::flush() {
  if (file_ == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.notify_one();  // cut the logger's poll nap short
    drained_cv_.wait(lock, [&] { return queue_.empty() && !draining_; });
  }
  // The logger is idle here (queue empty, batch done); pending_lines_
  // is left alone so only the logger thread ever touches it.
  std::fflush(file_);
}

void AccessLog::logger_loop() {
  std::vector<RequestRecord> batch;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait_for(lock, kDrainInterval,
                      [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) break;
      continue;
    }
    batch.swap(queue_);
    draining_ = true;
    lock.unlock();
    for (const RequestRecord& record : batch) write_line(record);
    batch.clear();
    lock.lock();
    draining_ = false;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

void AccessLog::write_line(const RequestRecord& record) {
  const std::string line = to_access_jsonl(record);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    return;
  lines_.fetch_add(1, std::memory_order_relaxed);
  ++pending_lines_;
  if (record.ts_ms - last_flush_ms_ >= kFlushIntervalMs ||
      pending_lines_ >= kFlushEveryLines) {
    std::fflush(file_);
    last_flush_ms_ = record.ts_ms;
    pending_lines_ = 0;
  }
}

}  // namespace mwc::svc
