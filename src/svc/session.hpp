// svc::SessionManager — mwc.svc.stream.v1 predictive streaming sessions.
//
// The paper's Sec. VI online protocol has sensors report EWMA-predicted
// discharge rates so the base station re-plans before deaths occur. This
// subsystem is that protocol as a service: a client opens a long-lived
// session against a previously solved plan (named by fingerprint, so the
// BaseState is still in the PlanCache), then streams observed per-sensor
// discharge rates as {"op":"observe"} frames. The server integrates the
// observations into per-sensor residual-energy estimates, feeds a
// wsn::FleetPredictor (per-sensor EWMA, the paper's ρ̂ update), and runs
// a feasibility monitor: each sensor's predicted residual lifetime
// l̂_i = residual_i / ρ̂_i is compared against the time remaining until
// the current plan next serves it (tour arrival time for sensors in the
// dispatched round; the planned cycle τ_i otherwise). When a predicted
// death violates its charging deadline — the deadline-driven trigger of
// Rao et al. — the monitor synthesizes an update_cycles patch from the
// predicted cycles, drives svc::handle_delta against the session's
// cached BaseState through the normal Server::submit admission path, and
// pushes the revised plan to the client unsolicited as an {"op":"plan"}
// frame through the transport's ordered write path.
//
// Frames (one JSON object per line, all carrying
// "v":"mwc.svc.stream.v1"; see docs/SERVICE.md for the full schema):
//
//   -> {"op":"open","id":"c1","base":"0c0f1095d4693a41"}
//   <- {"v":...,"id":"c1","ok":true,"op":"open","session":1,"n":60,...}
//   -> {"op":"observe","id":"c2","session":1,"t":1.5,"rates":[...]}
//   <- {"v":...,"id":"c2","ok":true,"op":"observe","at_risk":3,...}
//   <- {"v":...,"op":"plan","push":true,"session":1,"reason":"deadline",
//       "at_risk":[...],"replan_ms":...,"base":"<old fp>","plan":{...}}
//   -> {"op":"close","id":"c9","session":1}
//
// Threading: handle_frame and drop_connection run on the transport's
// loop thread; the replan completion callback runs on a solver worker.
// All session state is guarded by one mutex. The manager must outlive
// in-flight replans — its destructor drains the Server to guarantee it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/delta.hpp"
#include "svc/event_loop.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "wsn/predictor.hpp"

namespace mwc::svc {

struct SessionOptions {
  /// Live sessions across all connections; opens beyond are rejected
  /// with the structured session_limit error.
  std::size_t max_sessions = 64;
  /// EWMA weight of the newest rate observation (the paper's γ).
  double gamma = 0.3;
  /// FleetPredictor report threshold: relative predicted-rate change
  /// that makes a sensor a "reporter" (included in the next patch).
  double report_threshold = 0.05;
  /// Deadline-trigger hysteresis: a sensor is at risk when its
  /// predicted lifetime drops below (1 - margin) x the time remaining
  /// until the plan serves it. 0.1 = trigger 10% early.
  double margin = 0.1;
  /// Charger travel speed in field units per session time unit, used to
  /// turn tour order into per-sensor arrival times. The default treats
  /// one cycle unit as enough to cross ~1000m of field.
  double travel_speed = 1000.0;
  /// Time spent charging each visited sensor, in session time units.
  double charge_time = 0.0;
  /// Minimum session time between replan triggers (per session).
  double min_replan_interval = 0.0;
  /// deadline_ms forwarded on synthesized delta requests; 0 = none.
  double replan_deadline_ms = 0.0;
};

/// Exact monotonic counters (usable under MWC_OBS=OFF); mirrors the
/// svc.stream.* instruments on the global registry. `active` is the one
/// point-in-time gauge.
struct StreamStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t active = 0;
  std::uint64_t observes = 0;
  std::uint64_t rejected = 0;  ///< frames answered with ok:false
  std::uint64_t replans = 0;   ///< successful deadline-triggered replans
  std::uint64_t replan_failures = 0;
  std::uint64_t pushes = 0;    ///< plan frames handed to the transport
  std::uint64_t at_risk = 0;   ///< cumulative at-risk flags raised
  std::uint64_t deaths = 0;    ///< sensors whose residual estimate hit 0
  double last_replan_ms = 0.0;
};

/// Per-sensor first-visit times implied by a plan's first-round tours:
/// out[i] = time from plan start until a charger reaches sensor i
/// (cumulative tour distance / travel_speed + charge_time per earlier
/// stop), or +inf for sensors the round does not visit. Shared by the
/// feasibility monitor, the load generator, and bench/micro_stream so
/// all three walk tours identically.
std::vector<double> plan_visit_times(const Plan& plan,
                                     const wsn::Network& network,
                                     double travel_speed,
                                     double charge_time);

class SessionManager : public StreamHub {
 public:
  /// `server` must outlive the manager and have a plan cache (sessions
  /// resolve their base plan through Server::cache()).
  explicit SessionManager(Server& server, SessionOptions options = {});

  /// Drains the Server first so no replan callback can outlive the
  /// session table.
  ~SessionManager() override;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  std::string handle_frame(std::uint64_t conn_token,
                           const std::string& line, PushFn push,
                           bool* streaming) override;
  void drop_connection(std::uint64_t conn_token) override;

  StreamStats stats() const;

 private:
  struct Session {
    std::uint64_t id = 0;
    std::uint64_t conn = 0;
    PushFn push;
    std::uint64_t fingerprint = 0;  ///< current plan (delta base)
    std::shared_ptr<const BaseState> base;
    std::unique_ptr<wsn::FleetPredictor> predictor;
    std::vector<double> battery;   ///< B_i
    std::vector<double> residual;  ///< current residual-energy estimate
    /// Absolute session time a charger reaches each sensor on the
    /// current plan's round (+inf when the round skips it); consumed —
    /// reset to +inf — once the visit recharges the sensor.
    std::vector<double> visit;
    /// Absolute session time the current plan next serves each sensor:
    /// the round arrival for visited sensors, plan_epoch + τ_i (the
    /// plan's recharge promise) otherwise. Rolled forward by τ_i when
    /// it passes, so the monitor keeps watching between rounds.
    std::vector<double> deadline;
    double plan_epoch = 0.0;  ///< session time the current plan applied
    double now = 0.0;         ///< last observed t
    double travel_speed = 0.0;
    double charge_time = 0.0;
    double margin = 0.0;
    bool replan_in_flight = false;
    double last_replan_t = -std::numeric_limits<double>::infinity();
    std::uint64_t replans = 0;
    std::uint64_t push_seq = 0;
  };

  std::string handle_open(std::uint64_t conn_token, const Json& doc,
                          PushFn& push, bool* streaming);
  std::string handle_observe(std::uint64_t conn_token, const Json& doc);
  std::string handle_close(std::uint64_t conn_token, const Json& doc,
                           bool* streaming);
  /// Recomputes a session's absolute visit/deadline vectors from its
  /// current base state and plan epoch.
  void refresh_deadlines(Session& session);
  /// Synthesizes the update_cycles delta for at_risk ∪ reporters from
  /// the session's predicted cycles. Caller holds mutex_. Returns false
  /// when every candidate folds to a no-op (nothing to submit).
  bool build_replan(Session& session,
                    const std::vector<std::size_t>& at_risk,
                    const std::vector<std::size_t>& reporters,
                    DeltaRequest* out);
  /// Replan completion (solver worker): swap the session onto the
  /// derived plan and push it to the client.
  void on_replan(std::uint64_t session_id, double trigger_t,
                 std::vector<std::size_t> at_risk,
                 std::chrono::steady_clock::time_point started,
                 const Response& response);
  std::string reject(const std::string& id, ErrorCode code,
                     const std::string& message);

  Server& server_;
  SessionOptions options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_replan_ = 1;

  std::atomic<std::uint64_t> opened_{0}, closed_{0}, observes_{0},
      rejected_{0}, replans_{0}, replan_failures_{0}, pushes_{0},
      at_risk_{0}, deaths_{0};
  std::atomic<double> last_replan_ms_{0.0};
};

}  // namespace mwc::svc
