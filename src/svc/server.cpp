#include "svc/server.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "svc/delta.hpp"
#include "svc/engine.hpp"

namespace mwc::svc {

namespace {

// Log-ish spaced millisecond buckets: sub-millisecond cache hits through
// multi-second cold solves.
constexpr double kLatencyBucketsMs[] = {0.1,  0.25, 0.5,  1.0,   2.5,  5.0,
                                        10.0, 25.0, 50.0, 100.0, 250.0,
                                        500.0, 1000.0, 2500.0, 5000.0,
                                        10000.0};

const std::string& job_id(const ParsedRequest& job) {
  return job.is_delta ? job.delta.id : job.full.id;
}

double job_deadline_ms(const ParsedRequest& job) {
  return job.is_delta ? job.delta.deadline_ms : job.full.deadline_ms;
}

/// Error responses for delta jobs echo the v2 version and the base
/// fingerprint; full-request errors echo the request's own version.
Response job_error(const ParsedRequest& job, ErrorCode code,
                   const std::string& message, double latency_ms = 0.0) {
  Response response = error_response(job_id(job), code, message, latency_ms);
  if (job.is_delta) {
    response.version = WireVersion::kV2;
    response.base_fingerprint = job.delta.base_fingerprint;
  } else {
    response.version = job.full.version;
  }
  return response;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      accepted_(metrics_.counter("svc.requests_accepted")),
      completed_(metrics_.counter("svc.completed")),
      rejected_full_(metrics_.counter("svc.rejected.queue_full")),
      rejected_shutdown_(metrics_.counter("svc.rejected.shutdown")),
      expired_(metrics_.counter("svc.deadline_expired")),
      latency_ms_(metrics_.histogram("svc.request_latency_ms",
                                     kLatencyBucketsMs)),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Server::~Server() { shutdown(); }

bool Server::submit(Request request, ResponseCallback callback) {
  ParsedRequest job;
  job.is_delta = false;
  job.full = std::move(request);
  return admit(std::move(job), std::move(callback));
}

bool Server::submit(DeltaRequest request, ResponseCallback callback) {
  ParsedRequest job;
  job.is_delta = true;
  job.delta = std::move(request);
  return admit(std::move(job), std::move(callback));
}

bool Server::admit(ParsedRequest job, ResponseCallback callback) {
  const auto admitted = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      rejected_shutdown_.add(1);
      MWC_OBS_COUNT("svc.rejected.shutdown");
      callback(job_error(job, ErrorCode::kShuttingDown,
                         "server is shutting down"));
      return false;
    }
    if (in_flight_ >= options_.queue_capacity) {
      rejected_full_.add(1);
      MWC_OBS_COUNT("svc.rejected.queue_full");
      callback(job_error(job, ErrorCode::kQueueFull,
                         "queue full (capacity " +
                             std::to_string(options_.queue_capacity) + ")"));
      return false;
    }
    ++in_flight_;
    accepted_.add(1);
    MWC_OBS_COUNT("svc.requests_accepted");
  }
  // The pool queue is unbounded and its submit() only throws after the
  // pool starts stopping, which shutdown() orders strictly after the
  // in-flight drain — so this enqueue cannot fail for admitted work.
  pool_->submit([this, job = std::move(job), callback = std::move(callback),
                 admitted] {
    finish(process(job, admitted), callback);
  });
  return true;
}

bool Server::submit_line(const std::string& line, ResponseCallback callback) {
  ParsedRequest job;
  try {
    job = parse_any_request(line);
  } catch (const UnsupportedVersionError& e) {
    MWC_OBS_COUNT("svc.unsupported_version");
    callback(error_response("", ErrorCode::kUnsupportedVersion, e.what()));
    return false;
  } catch (const WireError& e) {
    MWC_OBS_COUNT("svc.bad_request");
    callback(error_response("", ErrorCode::kBadRequest, e.what()));
    return false;
  }
  return admit(std::move(job), std::move(callback));
}

Response Server::process(const ParsedRequest& job,
                         Clock::time_point admitted) {
  const auto elapsed_ms = [admitted] {
    return std::chrono::duration<double, std::milli>(Clock::now() - admitted)
        .count();
  };
  const double deadline_ms = job_deadline_ms(job);
  if (deadline_ms > 0.0 && elapsed_ms() > deadline_ms) {
    expired_.add(1);
    MWC_OBS_COUNT("svc.deadline_expired");
    return job_error(job, ErrorCode::kDeadlineExceeded,
                     "deadline of " + std::to_string(deadline_ms) +
                         " ms expired before solving started",
                     elapsed_ms());
  }
  Response response;
  try {
    if (job.is_delta) {
      response = handle_delta(job.delta, &cache_);
    } else {
      response = options_.handler ? options_.handler(job.full)
                                  : handle_request(job.full, &cache_);
    }
  } catch (const std::exception& e) {
    response = job_error(job, ErrorCode::kInternal, e.what());
  } catch (...) {
    response = job_error(job, ErrorCode::kInternal,
                         "unknown handler failure");
  }
  // Report full admission -> completion latency (queueing included),
  // not just the handler's own solve time.
  response.latency_ms = elapsed_ms();
  return response;
}

void Server::finish(const Response& response,
                    const ResponseCallback& callback) {
  completed_.add(1);
  MWC_OBS_COUNT("svc.completed");
  latency_ms_.observe(response.latency_ms);
  MWC_OBS_HISTOGRAM("svc.request_latency_ms", response.latency_ms, 0.1,
                    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0);
  try {
    callback(response);
  } catch (...) {
    // A throwing sink must not leak a worker or wedge the drain.
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  drained_cv_.notify_all();
}

void Server::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  pool_.reset();  // joins workers; idempotent (reset of null is a no-op)
}

std::size_t Server::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

}  // namespace mwc::svc
