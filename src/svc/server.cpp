#include "svc/server.hpp"

#include <chrono>
#include <cstdio>
#include <random>
#include <utility>

#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "svc/delta.hpp"
#include "svc/engine.hpp"

namespace mwc::svc {

namespace {

// Log-ish spaced millisecond buckets: sub-millisecond cache hits through
// multi-second cold solves.
constexpr double kLatencyBucketsMs[] = {0.1,  0.25, 0.5,  1.0,   2.5,  5.0,
                                        10.0, 25.0, 50.0, 100.0, 250.0,
                                        500.0, 1000.0, 2500.0, 5000.0,
                                        10000.0};

// Finer-grained buckets for the per-stage breakdown: parse and cache
// probes live in the microseconds, solves in the milliseconds+.
constexpr double kStageBucketsMs[] = {0.001, 0.005, 0.01,  0.025, 0.05,
                                      0.1,   0.25,  0.5,   1.0,   2.5,
                                      5.0,   10.0,  25.0,  50.0,  100.0,
                                      250.0, 1000.0};

/// Metric-name-safe policy label: lowercased, anything outside
/// [a-z0-9_] becomes '_' ("MinTotalDistance" -> "mintotaldistance"),
/// bounded so hostile policy strings can't bloat the registry.
std::string sanitize_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (out.size() >= 48) break;
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

double wall_clock_ms() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const std::string& job_id(const ParsedRequest& job) {
  return job.is_delta ? job.delta.id : job.full.id;
}

double job_deadline_ms(const ParsedRequest& job) {
  return job.is_delta ? job.delta.deadline_ms : job.full.deadline_ms;
}

WireVersion job_version(const ParsedRequest& job) {
  return job.is_delta ? WireVersion::kV2 : job.full.version;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      accepted_(metrics_.counter("svc.requests_accepted")),
      completed_(metrics_.counter("svc.completed")),
      rejected_full_(metrics_.counter("svc.rejected.queue_full")),
      rejected_shutdown_(metrics_.counter("svc.rejected.shutdown")),
      expired_(metrics_.counter("svc.deadline_expired")),
      latency_ms_(metrics_.histogram("svc.request_latency_ms",
                                     kLatencyBucketsMs)),
      pool_(std::make_unique<ThreadPool>(options_.threads)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  trace_prefix_ = (std::uint64_t(std::random_device{}()) << 32) ^
                  std::random_device{}();
  if (options_.recent_capacity > 0) recent_.reserve(options_.recent_capacity);
}

Server::~Server() { shutdown(); }

std::string Server::generate_trace_id() {
  // Per-server random salt x a golden-ratio-stepped sequence: ids are
  // unique within a server and effectively unique across restarts.
  const std::uint64_t seq =
      trace_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = trace_prefix_ ^ (seq * 0x9e3779b97f4a7c15ULL);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

Server::Job Server::make_job(ParsedRequest parsed, std::string peer,
                             double parse_ms) {
  Job job;
  const std::string& supplied =
      parsed.is_delta ? parsed.delta.trace_id : parsed.full.trace_id;
  job.trace_supplied = !supplied.empty();
  job.trace_id = job.trace_supplied ? supplied : generate_trace_id();
  job.parsed = std::move(parsed);
  job.peer = std::move(peer);
  job.stages.parse_ms = parse_ms;
  return job;
}

bool Server::submit(Request request, ResponseCallback callback,
                    std::string peer) {
  ParsedRequest parsed;
  parsed.is_delta = false;
  parsed.full = std::move(request);
  return admit(make_job(std::move(parsed), std::move(peer), 0.0),
               std::move(callback));
}

bool Server::submit(DeltaRequest request, ResponseCallback callback,
                    std::string peer) {
  ParsedRequest parsed;
  parsed.is_delta = true;
  parsed.delta = std::move(request);
  return admit(make_job(std::move(parsed), std::move(peer), 0.0),
               std::move(callback));
}

bool Server::submit_line(const std::string& line, ResponseCallback callback,
                         std::string peer) {
  ParsedRequest parsed;
  const double parse_start_us = obs::now_us();
  try {
    parsed = parse_any_request(line);
  } catch (const UnsupportedVersionError& e) {
    MWC_OBS_COUNT("svc.unsupported_version");
    callback(error_response("", ErrorCode::kUnsupportedVersion, e.what()));
    return false;
  } catch (const WireError& e) {
    MWC_OBS_COUNT("svc.bad_request");
    callback(error_response("", ErrorCode::kBadRequest, e.what()));
    return false;
  }
  const double parse_ms = (obs::now_us() - parse_start_us) / 1000.0;
  return admit(make_job(std::move(parsed), std::move(peer), parse_ms),
               std::move(callback));
}

bool Server::admit(Job job, ResponseCallback callback) {
  const auto admitted = Clock::now();
  // Rejections echo the trace id under the same rule as completions:
  // always for v2, only when client-supplied for v1.
  const auto reject = [&](ErrorCode code, const std::string& message) {
    Response response = error_response(job_id(job.parsed), code, message);
    response.version = job_version(job.parsed);
    if (job.parsed.is_delta)
      response.base_fingerprint = job.parsed.delta.base_fingerprint;
    if (job.trace_supplied || response.version == WireVersion::kV2)
      response.trace_id = job.trace_id;
    callback(response);
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      rejected_shutdown_.add(1);
      MWC_OBS_COUNT("svc.rejected.shutdown");
      reject(ErrorCode::kShuttingDown, "server is shutting down");
      return false;
    }
    if (in_flight_ >= options_.queue_capacity) {
      rejected_full_.add(1);
      MWC_OBS_COUNT("svc.rejected.queue_full");
      reject(ErrorCode::kQueueFull,
             "queue full (capacity " +
                 std::to_string(options_.queue_capacity) + ")");
      return false;
    }
    ++in_flight_;
    accepted_.add(1);
    MWC_OBS_COUNT("svc.requests_accepted");
  }
  // The pool queue is unbounded and its submit() only throws after the
  // pool starts stopping, which shutdown() orders strictly after the
  // in-flight drain — so this enqueue cannot fail for admitted work.
  pool_->submit([this, job = std::move(job), callback = std::move(callback),
                 admitted]() mutable {
    Response response = process(job, admitted);
    finish(job, std::move(response), callback);
  });
  return true;
}

Response Server::process(Job& job, Clock::time_point admitted) {
  const auto elapsed_ms = [admitted] {
    return std::chrono::duration<double, std::milli>(Clock::now() - admitted)
        .count();
  };
  job.stages.queue_ms = elapsed_ms();
  const ParsedRequest& parsed = job.parsed;
  const auto job_error = [&](ErrorCode code, const std::string& message) {
    Response response =
        error_response(job_id(parsed), code, message, elapsed_ms());
    response.version = job_version(parsed);
    if (parsed.is_delta)
      response.base_fingerprint = parsed.delta.base_fingerprint;
    return response;
  };

  const double deadline_ms = job_deadline_ms(parsed);
  if (deadline_ms > 0.0 && job.stages.queue_ms > deadline_ms) {
    expired_.add(1);
    MWC_OBS_COUNT("svc.deadline_expired");
    return job_error(ErrorCode::kDeadlineExceeded,
                     "deadline of " + std::to_string(deadline_ms) +
                         " ms expired before solving started");
  }

  // Every span opened on this worker while the handler runs — engine,
  // delta repair, solver internals — carries this request's trace id.
  Fnv1a trace_hash;
  trace_hash.str(job.trace_id);
  obs::TraceContext trace_scope(trace_hash.value());
  Response response;
  try {
    if (parsed.is_delta) {
      response = handle_delta(parsed.delta, &cache_, &job.stages);
    } else {
      response = options_.handler
                     ? options_.handler(parsed.full)
                     : handle_request(parsed.full, &cache_, &job.stages);
    }
  } catch (const std::exception& e) {
    response = job_error(ErrorCode::kInternal, e.what());
  } catch (...) {
    response = job_error(ErrorCode::kInternal, "unknown handler failure");
  }
  // Report full admission -> completion latency (queueing included),
  // not just the handler's own solve time.
  response.latency_ms = elapsed_ms();
  return response;
}

void Server::finish(const Job& job, Response response,
                    const ResponseCallback& callback) {
  // Wire echo policy: v2 responses always carry a trace id (generated if
  // need be); v1 echoes only client-supplied ids so pre-tracing v1
  // responses stay byte-identical. Timings ride with the trace id.
  response.version = job_version(job.parsed);
  if (job.trace_supplied || response.version == WireVersion::kV2) {
    response.trace_id = job.trace_id;
  } else {
    response.trace_id.clear();
  }
  response.stages.parse_ms = job.stages.parse_ms;
  response.stages.queue_ms = job.stages.queue_ms;
  response.stages.cache_ms = job.stages.cache_ms;
  response.stages.solve_ms = job.stages.solve_ms;
  response.has_timings = !response.trace_id.empty();
  if (response.policy.empty() && !job.parsed.is_delta)
    response.policy = job.parsed.full.policy;

  completed_.add(1);
  MWC_OBS_COUNT("svc.completed");
  latency_ms_.observe(response.latency_ms);
  MWC_OBS_HISTOGRAM("svc.request_latency_ms", response.latency_ms, 0.1,
                    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0);
  const double serialize_start_us = obs::now_us();
  try {
    callback(response);
  } catch (...) {
    // A throwing sink must not leak a worker or wedge the drain.
  }
  response.stages.serialize_ms =
      (obs::now_us() - serialize_start_us) / 1000.0;

  record_stages(job, response);

  RequestRecord record;
  record.trace_id = job.trace_id;
  record.id = response.id;
  record.peer = job.peer;
  record.policy = response.policy;
  record.version = response.version;
  record.is_delta = job.parsed.is_delta;
  record.ok = response.ok;
  record.error = response.error;
  record.cached = response.cached;
  record.derived = response.derived;
  record.latency_ms = response.latency_ms;
  record.stages = response.stages;
  record.ts_ms = static_cast<std::int64_t>(wall_clock_ms());
  if (options_.access_log != nullptr) options_.access_log->write(record);
  if (options_.recent_capacity > 0) {
    std::lock_guard<std::mutex> lock(recent_mutex_);
    if (recent_.size() < options_.recent_capacity) {
      recent_.push_back(std::move(record));
    } else {
      recent_[recent_head_] = std::move(record);
      recent_head_ = (recent_head_ + 1) % options_.recent_capacity;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  drained_cv_.notify_all();
}

void Server::record_stages(const Job& job, const Response& response) {
  struct StageValue {
    const char* name;
    double ms;
  };
  const StageValue stages[] = {
      {"parse", response.stages.parse_ms},
      {"queue", response.stages.queue_ms},
      {"cache", response.stages.cache_ms},
      {"solve", response.stages.solve_ms},
      {"serialize", response.stages.serialize_ms},
  };
  const char* version_label =
      job_version(job.parsed) == WireVersion::kV2 ? "v2" : "v1";
  const std::string policy_label = sanitize_label(
      response.policy.empty() ? std::string("none") : response.policy);
  for (const StageValue& s : stages) {
    const std::string base = std::string("svc.stage.") + s.name + "_ms";
    metrics_.histogram(base, kStageBucketsMs).observe(s.ms);
    const std::string keyed = base + "." + version_label + "." + policy_label;
    metrics_.histogram(keyed, kStageBucketsMs).observe(s.ms);
#if MWC_OBS_ENABLED
    obs::Registry::global().histogram(base, kStageBucketsMs).observe(s.ms);
    obs::Registry::global().histogram(keyed, kStageBucketsMs).observe(s.ms);
#endif
  }
}

void Server::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  pool_.reset();  // joins workers; idempotent (reset of null is a no-op)
}

std::size_t Server::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::vector<RequestRecord> Server::recent_requests() const {
  std::lock_guard<std::mutex> lock(recent_mutex_);
  return recent_;
}

}  // namespace mwc::svc
