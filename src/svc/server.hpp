// svc::Server — bounded scheduling service over util::ThreadPool.
//
// Admission control: the pool's internal queue is unbounded, so the server
// bounds *in-flight* work (queued + running) itself — submit() past
// `queue_capacity` is rejected synchronously with a structured queue_full
// response and never blocks the producer. Accepted requests may carry a
// deadline; one still waiting when its deadline_ms expires is answered
// deadline_exceeded instead of solved. shutdown() stops admissions
// (shutting_down responses) and drains every request already accepted, so
// no callback is ever dropped.
//
// Observability: every request gets a trace id (client-supplied or
// server-generated) that is echoed on the wire (always for v2; for v1
// only when the client supplied one, keeping pre-tracing v1 responses
// byte-identical), installed as an obs::TraceContext around the handler
// so solver spans carry the owning request id, and attached to a
// per-request stage breakdown (parse / queue wait / cache probe / solve /
// serialize). Completed requests land in a bounded ring of
// RequestRecords (served by the admin `tracez` endpoint) and, when
// `ServerOptions::access_log` is set, as one JSONL access-log line each.
//
// Telemetry lives on a per-server obs::Registry (exact even under
// MWC_OBS=OFF builds) and is mirrored onto the global registry:
// svc.requests_accepted, svc.completed, svc.rejected.queue_full,
// svc.rejected.shutdown, svc.deadline_expired, the
// svc.request_latency_ms histogram (admission -> completion), and the
// svc.stage.* stage histograms — both unkeyed (svc.stage.solve_ms) and
// keyed by wire version and lowercased policy
// (svc.stage.solve_ms.v1.mintotaldistance).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "svc/access_log.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"
#include "util/thread_pool.hpp"

namespace mwc::svc {

/// Invoked exactly once per submitted request, either synchronously (parse
/// error, rejection) or from a worker thread (solved / expired). May run
/// concurrently with other callbacks; the callee synchronizes its sink.
using ResponseCallback = std::function<void(const Response&)>;

/// Maps an admitted request to its response. The default (null) handler is
/// engine::handle_request against the server's PlanCache; tests inject
/// blocking or constant handlers to exercise queue and shutdown paths.
using Handler = std::function<Response(const Request&)>;

struct ServerOptions {
  /// Max in-flight requests (queued + solving); further submits are
  /// rejected with queue_full. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// PlanCache capacity (plans retained); 0 disables caching.
  std::size_t cache_capacity = 128;
  /// PlanCache shard count (independently-locked LRUs; clamped to the
  /// capacity). More shards take the cache mutex off the warm path.
  std::size_t cache_shards = 8;
  /// Request handler override; null = solve via svc::handle_request.
  Handler handler;
  /// Structured access log; non-owning, may be null (no logging). Must
  /// outlive the server.
  AccessLog* access_log = nullptr;
  /// Completed-request records retained for the admin tracez endpoint;
  /// 0 disables the ring.
  std::size_t recent_capacity = 256;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Drains accepted work (shutdown()) before joining the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits `request`. Returns true when accepted (the callback fires
  /// later from a worker); false when rejected, in which case the
  /// callback has already been invoked synchronously with a queue_full /
  /// shutting_down error. Never blocks. `peer` labels the transport in
  /// the access log and tracez ("stdio", "tcp", ...).
  bool submit(Request request, ResponseCallback callback,
              std::string peer = "local");

  /// Admits a v2 delta request — same backpressure, deadline, and drain
  /// semantics; served by svc::handle_delta against the server's cache.
  bool submit(DeltaRequest request, ResponseCallback callback,
              std::string peer = "local");

  /// Parses one wire line of either form (full or v2 delta) and submits
  /// it. Malformed lines are answered synchronously with bad_request;
  /// lines naming a version this server does not speak get the
  /// structured unsupported_version error (id "" in both cases — the
  /// line never parsed far enough to trust one).
  bool submit_line(const std::string& line, ResponseCallback callback,
                   std::string peer = "local");

  /// Stops admissions and blocks until every accepted request has been
  /// answered, then joins the workers. Idempotent; also run by the
  /// destructor.
  void shutdown();

  /// Requests admitted but not yet answered.
  std::size_t in_flight() const;

  PlanCache& cache() noexcept { return cache_; }
  const PlanCache& cache() const noexcept { return cache_; }

  const ServerOptions& options() const noexcept { return options_; }

  /// Per-server telemetry (svc.* instruments); exact under MWC_OBS=OFF.
  const obs::Registry& metrics() const noexcept { return metrics_; }

  /// Copy of the completed-request ring (up to `recent_capacity`
  /// records, unordered). Feeds the admin tracez endpoint.
  std::vector<RequestRecord> recent_requests() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request plus its request-scoped observability state.
  struct Job {
    ParsedRequest parsed;
    std::string peer;
    std::string trace_id;        ///< client-supplied or server-generated
    bool trace_supplied = false;
    StageTimings stages;
  };

  Job make_job(ParsedRequest parsed, std::string peer, double parse_ms);
  /// Shared admission path for both request forms.
  bool admit(Job job, ResponseCallback callback);
  Response process(Job& job, Clock::time_point admitted);
  void finish(const Job& job, Response response,
              const ResponseCallback& callback);
  void record_stages(const Job& job, const Response& response);
  std::string generate_trace_id();

  ServerOptions options_;
  PlanCache cache_;
  obs::Registry metrics_;
  obs::Counter& accepted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_shutdown_;
  obs::Counter& expired_;
  obs::Histogram& latency_ms_;

  std::uint64_t trace_prefix_ = 0;  ///< random per-server id stream salt
  std::atomic<std::uint64_t> trace_seq_{0};

  mutable std::mutex recent_mutex_;
  std::vector<RequestRecord> recent_;  ///< ring; recent_head_ = next slot
  std::size_t recent_head_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::unique_ptr<ThreadPool> pool_;  ///< null once shutdown() joined it
};

}  // namespace mwc::svc
