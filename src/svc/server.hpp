// svc::Server — bounded scheduling service over util::ThreadPool.
//
// Admission control: the pool's internal queue is unbounded, so the server
// bounds *in-flight* work (queued + running) itself — submit() past
// `queue_capacity` is rejected synchronously with a structured queue_full
// response and never blocks the producer. Accepted requests may carry a
// deadline; one still waiting when its deadline_ms expires is answered
// deadline_exceeded instead of solved. shutdown() stops admissions
// (shutting_down responses) and drains every request already accepted, so
// no callback is ever dropped.
//
// Telemetry lives on a per-server obs::Registry (exact even under
// MWC_OBS=OFF builds) and is mirrored onto the global registry:
// svc.requests_accepted, svc.completed, svc.rejected.queue_full,
// svc.rejected.shutdown, svc.deadline_expired, and the
// svc.request_latency_ms histogram (admission -> completion).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "obs/registry.hpp"
#include "svc/plan_cache.hpp"
#include "svc/wire.hpp"
#include "util/thread_pool.hpp"

namespace mwc::svc {

/// Invoked exactly once per submitted request, either synchronously (parse
/// error, rejection) or from a worker thread (solved / expired). May run
/// concurrently with other callbacks; the callee synchronizes its sink.
using ResponseCallback = std::function<void(const Response&)>;

/// Maps an admitted request to its response. The default (null) handler is
/// engine::handle_request against the server's PlanCache; tests inject
/// blocking or constant handlers to exercise queue and shutdown paths.
using Handler = std::function<Response(const Request&)>;

struct ServerOptions {
  /// Max in-flight requests (queued + solving); further submits are
  /// rejected with queue_full. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// PlanCache capacity (plans retained); 0 disables caching.
  std::size_t cache_capacity = 128;
  /// Request handler override; null = solve via svc::handle_request.
  Handler handler;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Drains accepted work (shutdown()) before joining the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits `request`. Returns true when accepted (the callback fires
  /// later from a worker); false when rejected, in which case the
  /// callback has already been invoked synchronously with a queue_full /
  /// shutting_down error. Never blocks.
  bool submit(Request request, ResponseCallback callback);

  /// Admits a v2 delta request — same backpressure, deadline, and drain
  /// semantics; served by svc::handle_delta against the server's cache.
  bool submit(DeltaRequest request, ResponseCallback callback);

  /// Parses one wire line of either form (full or v2 delta) and submits
  /// it. Malformed lines are answered synchronously with bad_request;
  /// lines naming a version this server does not speak get the
  /// structured unsupported_version error (id "" in both cases — the
  /// line never parsed far enough to trust one).
  bool submit_line(const std::string& line, ResponseCallback callback);

  /// Stops admissions and blocks until every accepted request has been
  /// answered, then joins the workers. Idempotent; also run by the
  /// destructor.
  void shutdown();

  /// Requests admitted but not yet answered.
  std::size_t in_flight() const;

  PlanCache& cache() noexcept { return cache_; }

  /// Per-server telemetry (svc.* instruments); exact under MWC_OBS=OFF.
  const obs::Registry& metrics() const noexcept { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Shared admission path for both request forms.
  bool admit(ParsedRequest job, ResponseCallback callback);
  Response process(const ParsedRequest& job, Clock::time_point admitted);
  void finish(const Response& response, const ResponseCallback& callback);

  ServerOptions options_;
  PlanCache cache_;
  obs::Registry metrics_;
  obs::Counter& accepted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_shutdown_;
  obs::Counter& expired_;
  obs::Histogram& latency_ms_;

  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::unique_ptr<ThreadPool> pool_;  ///< null once shutdown() joined it
};

}  // namespace mwc::svc
