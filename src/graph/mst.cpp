#include "graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace mwc::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

template <typename DistFn>
MstResult prim_impl(std::size_t n, DistFn&& dist, std::size_t root) {
  MstResult result;
  if (n == 0) return result;
  MWC_ASSERT(root < n);

  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, kNone);
  std::vector<bool> in_tree(n, false);

  best[root] = 0.0;
  result.edges.reserve(n > 0 ? n - 1 : 0);

  for (std::size_t iter = 0; iter < n; ++iter) {
    // Extract the cheapest fringe node.
    std::size_t u = kNone;
    double u_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < u_cost) {
        u_cost = best[v];
        u = v;
      }
    }
    MWC_ASSERT_MSG(u != kNone, "graph must be connected (finite distances)");
    in_tree[u] = true;
    if (best_from[u] != kNone) {
      result.edges.push_back(Edge{best_from[u], u, best[u]});
      result.total_weight += best[u];
    }
    // Relax all non-tree nodes through u.
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = dist(u, v);
      if (d < best[v]) {
        best[v] = d;
        best_from[v] = u;
      }
    }
  }
  return result;
}

}  // namespace

MstResult prim_mst(std::size_t n,
                   const std::function<double(std::size_t, std::size_t)>& dist,
                   std::size_t root) {
  return prim_impl(n, dist, root);
}

MstResult prim_mst(const mwc::geom::DistanceMatrix& dist, std::size_t root) {
  return prim_impl(dist.size(),
                   [&](std::size_t i, std::size_t j) { return dist(i, j); },
                   root);
}

MstResult kruskal_mst(std::size_t n, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
  Dsu dsu(n);
  MstResult result;
  for (const Edge& e : edges) {
    MWC_DEBUG_ASSERT(e.u < n && e.v < n);
    if (dsu.unite(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.w;
      if (result.edges.size() + 1 == n) break;
    }
  }
  return result;
}

std::vector<std::size_t> mst_parents(std::size_t n,
                                     std::span<const Edge> edges,
                                     std::size_t root) {
  MWC_ASSERT(root < n);
  std::vector<std::vector<std::size_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<std::size_t> parent(n, kNone);
  std::vector<std::size_t> stack{root};
  parent[root] = root;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj[u]) {
      if (parent[v] == kNone) {
        parent[v] = u;
        stack.push_back(v);
      }
    }
  }
  return parent;
}

}  // namespace mwc::graph
