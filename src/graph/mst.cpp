#include "graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace mwc::graph {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

MstResult prim_mst(std::size_t n,
                   const std::function<double(std::size_t, std::size_t)>& dist,
                   std::size_t root) {
  return prim_mst_with(n, dist, root);
}

MstResult prim_mst(const mwc::geom::DistanceMatrix& dist, std::size_t root) {
  return prim_mst_with(
      dist.size(),
      [&](std::size_t i, std::size_t j) { return dist(i, j); }, root);
}

MstResult kruskal_mst(std::size_t n, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
  Dsu dsu(n);
  MstResult result;
  for (const Edge& e : edges) {
    MWC_DEBUG_ASSERT(e.u < n && e.v < n);
    if (dsu.unite(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.w;
      if (result.edges.size() + 1 == n) break;
    }
  }
  return result;
}

std::vector<std::size_t> mst_parents(std::size_t n,
                                     std::span<const Edge> edges,
                                     std::size_t root) {
  MWC_ASSERT(root < n);
  std::vector<std::vector<std::size_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<std::size_t> parent(n, kNone);
  std::vector<std::size_t> stack{root};
  parent[root] = root;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj[u]) {
      if (parent[v] == kNone) {
        parent[v] = u;
        stack.push_back(v);
      }
    }
  }
  return parent;
}

}  // namespace mwc::graph
