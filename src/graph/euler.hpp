// Eulerian circuits of small multigraphs (Hierholzer's algorithm).
//
// Two places in the paper need Euler tours: Algorithm 2 walks the doubled
// q-rooted MSF trees, and the proof of Lemma 3 merges per-depot tour groups
// into one Eulerian circuit before shortcutting. The library exposes the
// general multigraph routine so both uses (and the tests for the lemma's
// construction) share one implementation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/mst.hpp"

namespace mwc::graph {

/// True iff every vertex touched by `edges` has even degree and all
/// touched vertices are in one connected component.
bool has_eulerian_circuit(std::span<const Edge> edges);

/// Eulerian circuit of the multigraph given by `edges`, starting and
/// ending at `start`. `start` must touch at least one edge unless `edges`
/// is empty (then the result is just {start}). Precondition: an Eulerian
/// circuit exists. Returns the vertex sequence (first == last == start).
std::vector<std::size_t> eulerian_circuit(std::span<const Edge> edges,
                                          std::size_t start);

/// Doubles each edge (making all degrees even) and returns the Eulerian
/// circuit of the doubled multigraph from `start` — the classic step of
/// the 2-approximation.
std::vector<std::size_t> doubled_tree_circuit(std::span<const Edge> tree_edges,
                                              std::size_t start);

/// Removes repeated vertices from a closed walk, keeping first occurrences
/// (the triangle-inequality "shortcut"). The returned sequence lists each
/// distinct vertex once, starting with walk.front(); interpret it as a
/// closed tour. An empty walk yields an empty tour.
std::vector<std::size_t> shortcut_closed_walk(
    std::span<const std::size_t> walk);

}  // namespace mwc::graph
