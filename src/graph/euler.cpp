#include "graph/euler.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace mwc::graph {

namespace {

// Compact multigraph over the vertices actually touched by the edge list.
struct CompactGraph {
  std::unordered_map<std::size_t, std::size_t> to_local;
  std::vector<std::size_t> to_global;
  // adj[u] = list of (neighbour, edge_id)
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;

  explicit CompactGraph(std::span<const Edge> edges) {
    auto local = [&](std::size_t g) {
      const auto [it, inserted] = to_local.try_emplace(g, to_global.size());
      if (inserted) {
        to_global.push_back(g);
        adj.emplace_back();
      }
      return it->second;
    };
    std::size_t edge_id = 0;
    for (const Edge& e : edges) {
      const std::size_t u = local(e.u);
      const std::size_t v = local(e.v);
      adj[u].emplace_back(v, edge_id);
      adj[v].emplace_back(u, edge_id);
      ++edge_id;
    }
  }
};

}  // namespace

bool has_eulerian_circuit(std::span<const Edge> edges) {
  if (edges.empty()) return true;
  CompactGraph g(edges);
  for (const auto& nbrs : g.adj) {
    if (nbrs.size() % 2 != 0) return false;
  }
  // Connectivity over touched vertices.
  Dsu dsu(g.to_global.size());
  for (std::size_t u = 0; u < g.adj.size(); ++u) {
    for (const auto& [v, id] : g.adj[u]) dsu.unite(u, v);
  }
  return dsu.num_sets() == 1;
}

std::vector<std::size_t> eulerian_circuit(std::span<const Edge> edges,
                                          std::size_t start) {
  if (edges.empty()) return {start};
  CompactGraph g(edges);
  const auto it = g.to_local.find(start);
  MWC_ASSERT_MSG(it != g.to_local.end(),
                 "eulerian_circuit: start vertex must touch an edge");
  const std::size_t s = it->second;

  // Hierholzer with per-vertex cursors; O(E).
  std::vector<std::size_t> cursor(g.adj.size(), 0);
  std::vector<bool> used(edges.size(), false);
  std::vector<std::size_t> stack{s};
  std::vector<std::size_t> circuit;
  circuit.reserve(edges.size() + 1);

  while (!stack.empty()) {
    const std::size_t u = stack.back();
    auto& cur = cursor[u];
    while (cur < g.adj[u].size() && used[g.adj[u][cur].second]) ++cur;
    if (cur == g.adj[u].size()) {
      circuit.push_back(g.to_global[u]);
      stack.pop_back();
    } else {
      const auto [v, id] = g.adj[u][cur];
      used[id] = true;
      stack.push_back(v);
    }
  }
  MWC_ASSERT_MSG(circuit.size() == edges.size() + 1,
                 "graph has no Eulerian circuit (disconnected or odd degree)");
  std::reverse(circuit.begin(), circuit.end());
  return circuit;
}

std::vector<std::size_t> doubled_tree_circuit(std::span<const Edge> tree_edges,
                                              std::size_t start) {
  if (tree_edges.empty()) return {start};
  std::vector<Edge> doubled;
  doubled.reserve(tree_edges.size() * 2);
  for (const Edge& e : tree_edges) {
    doubled.push_back(e);
    doubled.push_back(e);
  }
  return eulerian_circuit(doubled, start);
}

std::vector<std::size_t> shortcut_closed_walk(
    std::span<const std::size_t> walk) {
  std::vector<std::size_t> tour;
  if (walk.empty()) return tour;
  std::unordered_set<std::size_t> seen;
  tour.reserve(walk.size());
  for (std::size_t v : walk) {
    if (seen.insert(v).second) tour.push_back(v);
  }
  return tour;
}

}  // namespace mwc::graph
