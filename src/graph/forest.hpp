// Rooted trees and forests over index-identified nodes.
//
// The q-rooted MSF (Algorithm 1 of the paper) produces q disjoint trees,
// each rooted at a depot; Algorithm 2 then walks each tree. `RootedTree`
// stores adjacency plus the root and offers the depth-first preorder that
// the double-tree shortcut uses (preorder of a tree = the order in which
// an Euler tour of the doubled tree first visits each node).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/mst.hpp"

namespace mwc::graph {

class RootedTree {
 public:
  RootedTree() = default;

  /// Builds from an undirected edge list; `root` must be a node of the
  /// tree. Nodes are arbitrary indices (not necessarily 0..k); adjacency
  /// is stored sparsely.
  RootedTree(std::size_t root, std::span<const Edge> edges);

  std::size_t root() const noexcept { return root_; }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  double total_weight() const noexcept { return total_weight_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// All node indices of the tree (root first, then discovery order).
  const std::vector<std::size_t>& nodes() const noexcept { return nodes_; }

  /// Depth-first preorder starting at the root. Children are visited in
  /// edge-insertion order; deterministic for a deterministic edge list.
  std::vector<std::size_t> preorder() const;

  /// True when the edges form a connected acyclic graph containing root.
  bool valid() const;

 private:
  std::size_t root_ = 0;
  double total_weight_ = 0.0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> nodes_;  // discovery order, root first
};

/// A forest of rooted trees (the output of the q-rooted MSF).
struct RootedForest {
  std::vector<RootedTree> trees;

  double total_weight() const noexcept {
    double sum = 0.0;
    for (const auto& t : trees) sum += t.total_weight();
    return sum;
  }

  std::size_t total_nodes() const noexcept {
    std::size_t sum = 0;
    for (const auto& t : trees) sum += t.num_nodes();
    return sum;
  }
};

}  // namespace mwc::graph
