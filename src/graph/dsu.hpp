// Disjoint-set union (union-find) with path halving and union by size.
// Backs Kruskal's MST and connectivity checks in tests.
#pragma once

#include <cstddef>
#include <vector>

namespace mwc::graph {

class Dsu {
 public:
  explicit Dsu(std::size_t n = 0);

  /// Resets to n singleton sets.
  void reset(std::size_t n);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's set (with path halving).
  std::size_t find(std::size_t x) noexcept;

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) noexcept;

  bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  /// Number of elements in x's set.
  std::size_t set_size(std::size_t x) noexcept;

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const noexcept { return num_sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace mwc::graph
