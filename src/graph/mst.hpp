// Minimum spanning trees on dense metric graphs.
//
// Prim's O(n^2) variant is the workhorse: the q-rooted algorithms operate
// on complete Euclidean graphs where the dense scan is optimal. Kruskal is
// provided for sparse edge lists and as an independent cross-check in the
// property tests.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "geom/distance.hpp"

namespace mwc::graph {

struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double w = 0.0;
};

struct MstResult {
  std::vector<Edge> edges;  ///< n-1 edges for a connected graph of n nodes
  double total_weight = 0.0;
};

/// Prim's algorithm over a complete graph given by a distance oracle
/// `dist(i, j)` on n nodes, starting from node `root`. O(n^2) time,
/// O(n) extra space.
MstResult prim_mst(std::size_t n,
                   const std::function<double(std::size_t, std::size_t)>& dist,
                   std::size_t root = 0);

/// Prim's algorithm over a precomputed distance matrix (fast path, no
/// std::function indirection in the inner loop).
MstResult prim_mst(const mwc::geom::DistanceMatrix& dist,
                   std::size_t root = 0);

/// Kruskal's algorithm on an explicit edge list over n nodes. Returns the
/// minimum spanning forest (spanning tree if connected).
MstResult kruskal_mst(std::size_t n, std::vector<Edge> edges);

/// Parent array (parent[root] == root) of the MST re-rooted at `root`,
/// computed from its edge list. Helper for decomposing contracted MSTs.
std::vector<std::size_t> mst_parents(std::size_t n,
                                     std::span<const Edge> edges,
                                     std::size_t root);

}  // namespace mwc::graph
